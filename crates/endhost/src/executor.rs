//! The TPP Executor library (§4.4): common execution patterns built from
//! the raw TPP primitives.
//!
//! * **Reliable execution** — standalone probes tracked by a nonce stamped
//!   into the last packet-memory word, retried on timeout.
//! * **Targeted execution** — wrap a TPP in a `CEXEC` on the switch ID so
//!   it executes at exactly one switch; send it to the switch's IP and it
//!   reflects back (§4.4 "Reflective TPP").
//! * **Scatter-gather** — the same TPP fanned out to a set of switches,
//!   with per-probe retries and a completion barrier.
//! * **Large TPPs** — statistics that don't fit in one packet are split
//!   into several hop-range TPPs by pre-winding the hop counter, so each
//!   split's hop windows cover a later slice of the path.

use std::collections::BTreeMap;

use tpp_core::addr::{resolve_mnemonic, Address};
use tpp_core::asm::AsmError;
use tpp_core::isa::{Instruction, MAX_INSTRUCTIONS};
use tpp_core::wire::{build_standalone, AddrMode, EthernetAddress, Ipv4Address, Tpp};

use crate::shim::{mac_of_ip, CompletedTpp};

/// Executor tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    pub max_retries: u32,
    /// Base timeout: the first deadline is `send time + timeout_ns`.
    pub timeout_ns: u64,
    /// Exponential backoff cap: retry `k` waits `timeout_ns << min(k,
    /// max_backoff_exp)` (plus jitter). 0 disables backoff entirely.
    pub max_backoff_exp: u32,
    /// Jitter divisor: each backoff wait adds a deterministic pseudo-random
    /// jitter in `0..=wait/jitter_div`, keyed by `(token, attempt)` so
    /// synchronized probes (scatter-gather fan-outs, fleet-wide monitors)
    /// don't retransmit in lockstep. 0 disables jitter.
    pub jitter_div: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { max_retries: 3, timeout_ns: 10_000_000, max_backoff_exp: 3, jitter_div: 8 }
    }
}

/// `SplitMix64` finalizer — the jitter hash. Deterministic and stateless:
/// the retry schedule of a probe depends only on its token and attempt
/// number, never on interleaving with other probes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Why a probe finished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    Completed {
        token: u32,
        tpp: Tpp,
    },
    /// All retries exhausted.
    Failed {
        token: u32,
    },
}

struct Pending {
    frame: Vec<u8>,
    retries_left: u32,
    deadline: u64,
    src_port: u16,
}

/// Tracks in-flight standalone probes (reliable execution).
pub struct Executor {
    pub cfg: ExecutorConfig,
    src_ip: Ipv4Address,
    src_mac: EthernetAddress,
    next_token: u32,
    pending: BTreeMap<u32, Pending>,
    /// UDP source port -> token, the fallback completion match for probes
    /// whose nonce word a long hop-addressed path may overwrite.
    sport_map: BTreeMap<u16, u32>,
    pub sent: u64,
    pub retransmitted: u64,
    pub completed: u64,
    pub failed: u64,
}

impl Executor {
    pub fn new(src_ip: Ipv4Address, src_mac: EthernetAddress, cfg: ExecutorConfig) -> Self {
        Executor {
            cfg,
            src_ip,
            src_mac,
            next_token: 1,
            pending: BTreeMap::new(),
            sport_map: BTreeMap::new(),
            sent: 0,
            retransmitted: 0,
            completed: 0,
            failed: 0,
        }
    }

    /// Stamp a nonce into the TPP's last packet-memory word, growing memory
    /// by one word so the program's own accesses can't clobber it. A probe
    /// already at the wire memory budget cannot grow (the one-byte length
    /// field would wrap): its last word is overwritten instead, and if the
    /// program then clobbers it, completion falls back to the source-port
    /// match ([`Executor::on_completed_full`]).
    fn stamp_nonce(tpp: &mut Tpp, token: u32) {
        if tpp.memory.len() + 4 <= tpp_core::wire::MAX_MEMORY_BYTES {
            tpp.memory.extend_from_slice(&token.to_be_bytes());
        } else if let Some(last) = tpp.memory.len().checked_sub(4) {
            tpp.memory[last..].copy_from_slice(&token.to_be_bytes());
        }
    }

    /// Read a probe's nonce back out of a completed TPP.
    pub fn nonce_of(tpp: &Tpp) -> Option<u32> {
        let n = tpp.memory_words();
        if n == 0 {
            return None;
        }
        tpp.read_word(n - 1)
    }

    /// Launch a reliable standalone probe toward `dst` (a host or a switch
    /// IP). Returns the token and the frame to transmit now.
    pub fn send(&mut self, now: u64, dst: Ipv4Address, mut tpp: Tpp) -> (u32, Vec<u8>) {
        let token = self.next_token;
        self.next_token += 1;
        Self::stamp_nonce(&mut tpp, token);
        // A per-probe source port doubles as a completion key (the shim's
        // echo channel carries the probe's flow context back).
        let src_port = 40_000 + (token % 16_384) as u16;
        let frame =
            build_standalone(self.src_mac, mac_of_ip(dst), self.src_ip, dst, src_port, &tpp);
        self.pending.insert(
            token,
            Pending {
                frame: frame.clone(),
                retries_left: self.cfg.max_retries,
                deadline: now + self.cfg.timeout_ns,
                src_port,
            },
        );
        self.sport_map.insert(src_port, token);
        self.sent += 1;
        (token, frame)
    }

    /// Feed a completed TPP (from the shim's echo channel). Returns the
    /// outcome if it matches a pending probe.
    pub fn on_completed(&mut self, tpp: &Tpp) -> Option<ProbeOutcome> {
        let token = Self::nonce_of(tpp)?;
        let p = self.pending.remove(&token)?;
        self.sport_map.remove(&p.src_port);
        self.completed += 1;
        Some(ProbeOutcome::Completed { token, tpp: tpp.clone() })
    }

    /// Like [`Executor::on_completed`] but with the shim's full completion
    /// record: if the nonce was overwritten by a long hop-addressed path,
    /// fall back to matching by the probe's source port.
    pub fn on_completed_full(&mut self, done: &CompletedTpp) -> Option<ProbeOutcome> {
        if let Some(o) = self.on_completed(&done.tpp) {
            return Some(o);
        }
        let token = *self.sport_map.get(&done.flow.src_port)?;
        self.pending.remove(&token)?;
        self.sport_map.remove(&done.flow.src_port);
        self.completed += 1;
        Some(ProbeOutcome::Completed { token, tpp: done.tpp.clone() })
    }

    /// Check timeouts: returns frames to retransmit and probes that failed
    /// permanently. Call when [`Executor::next_deadline`] passes.
    pub fn poll(&mut self, now: u64) -> (Vec<Vec<u8>>, Vec<ProbeOutcome>) {
        let mut resend = Vec::new();
        let mut done = Vec::new();
        let expired: Vec<u32> =
            self.pending.iter().filter(|(_, p)| p.deadline <= now).map(|(t, _)| *t).collect();
        for token in expired {
            let p = self.pending.get_mut(&token).unwrap();
            if p.retries_left == 0 {
                let sport = p.src_port;
                self.pending.remove(&token);
                self.sport_map.remove(&sport);
                self.failed += 1;
                done.push(ProbeOutcome::Failed { token });
            } else {
                p.retries_left -= 1;
                let attempt = self.cfg.max_retries - p.retries_left; // 1st retry = 1
                p.deadline = now + Self::backoff_ns(&self.cfg, token, attempt);
                self.retransmitted += 1;
                resend.push(p.frame.clone());
            }
        }
        (resend, done)
    }

    /// The wait before retry `attempt` (1-based) of probe `token`:
    /// exponential backoff capped at `max_backoff_exp` doublings, plus a
    /// deterministic jitter keyed by `(token, attempt)`.
    fn backoff_ns(cfg: &ExecutorConfig, token: u32, attempt: u32) -> u64 {
        let exp = attempt.min(cfg.max_backoff_exp);
        let base = cfg.timeout_ns << exp;
        let jitter = base
            .checked_div(cfg.jitter_div)
            .map_or(0, |bound| splitmix64(((token as u64) << 32) | attempt as u64) % (bound + 1));
        base + jitter
    }

    /// Earliest pending timeout.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending.values().map(|p| p.deadline).min()
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Wrap a stack-mode TPP so it executes only at the switch whose
/// `[Switch:SwitchID]` equals `switch_id` (§4.4 "Targeted execution").
///
/// Layout: the CEXEC mask/value live at packet-memory words 0 and 1 and the
/// stack starts at word 2 (the 4-bit operand encoding requires absolute
/// offsets < 16).
pub fn targeted(tpp: &Tpp, switch_id: u32) -> Result<Tpp, AsmError> {
    if tpp.mode != AddrMode::Stack {
        return Err(AsmError::Syntax(0, "targeted() requires a stack-mode TPP".into()));
    }
    if tpp.instrs.len() + 1 > MAX_INSTRUCTIONS {
        return Err(AsmError::TooManyInstructions(tpp.instrs.len() + 1));
    }
    let sid: Address = resolve_mnemonic("Switch:SwitchID").expect("known mnemonic");
    let mut out = tpp.clone();
    out.instrs.insert(0, Instruction::cexec(sid, 0, 1));
    // Shift memory by two words for the mask/value operands.
    let mut memory = Vec::with_capacity(tpp.memory.len() + 8);
    memory.extend_from_slice(&u32::MAX.to_be_bytes());
    memory.extend_from_slice(&switch_id.to_be_bytes());
    memory.extend_from_slice(&tpp.memory);
    out.memory = memory;
    out.sp = tpp.sp + 2;
    // Reflect so the probe comes straight back (§4.4).
    out.reflect = true;
    Ok(out)
}

/// A scatter-gather round: the same statistics program fanned out to many
/// switches, gathered with retries (§4.4).
pub struct ScatterGather {
    /// token -> switch id, for result attribution.
    pub memberships: BTreeMap<u32, u32>,
    pub results: BTreeMap<u32, Tpp>,
    pub failed: Vec<u32>,
}

impl ScatterGather {
    /// Launch one targeted probe per `(switch_id, switch_ip)`.
    pub fn launch(
        exec: &mut Executor,
        now: u64,
        tpp: &Tpp,
        switches: &[(u32, Ipv4Address)],
    ) -> Result<(ScatterGather, Vec<Vec<u8>>), AsmError> {
        let mut sg = ScatterGather {
            memberships: BTreeMap::new(),
            results: BTreeMap::new(),
            failed: Vec::new(),
        };
        let mut frames = Vec::new();
        for &(sid, ip) in switches {
            let probe = targeted(tpp, sid)?;
            let (token, frame) = exec.send(now, ip, probe);
            sg.memberships.insert(token, sid);
            frames.push(frame);
        }
        Ok((sg, frames))
    }

    /// Record an executor outcome. Returns `true` if it belonged to this
    /// round.
    pub fn absorb(&mut self, outcome: &ProbeOutcome) -> bool {
        match outcome {
            ProbeOutcome::Completed { token, tpp } => {
                let Some(sid) = self.memberships.get(token) else { return false };
                self.results.insert(*sid, tpp.clone());
                true
            }
            ProbeOutcome::Failed { token } => {
                let Some(sid) = self.memberships.get(token) else { return false };
                self.failed.push(*sid);
                true
            }
        }
    }

    /// All probes resolved (completed or failed)?
    pub fn done(&self) -> bool {
        self.results.len() + self.failed.len() == self.memberships.len()
    }
}

/// Split a per-hop statistics collection that doesn't fit in one packet
/// into several hop-mode TPPs (§4.4 "Large TPPs").
///
/// Each split TPP reads `stats` into its per-hop window via `LOAD`; the
/// `k`-th split starts its hop counter at `-(k * hops_per_tpp) mod 256`, so
/// its windows address hops `k*hops_per_tpp ..` of the path and every other
/// hop falls outside its memory (and is skipped gracefully).
pub fn split_for_path(
    stats: &[Address],
    path_len: usize,
    max_memory_words: usize,
) -> Result<Vec<Tpp>, AsmError> {
    if stats.is_empty() || stats.len() > MAX_INSTRUCTIONS {
        return Err(AsmError::TooManyInstructions(stats.len()));
    }
    let per_hop_words = stats.len();
    let hops_per_tpp = (max_memory_words / per_hop_words).max(1);
    let instrs: Vec<Instruction> =
        stats.iter().enumerate().map(|(i, &a)| Instruction::load(a, i as u8)).collect();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < path_len {
        let hops = hops_per_tpp.min(path_len - start);
        out.push(Tpp {
            mode: AddrMode::Hop,
            per_hop_len: (per_hop_words * 4) as u8,
            // Pre-wind the counter so this TPP's hop 0 is path hop `start`.
            hop: (start as u8).wrapping_neg(),
            instrs: instrs.clone(),
            memory: vec![0; hops * per_hop_words * 4],
            ..Tpp::default()
        });
        start += hops;
    }
    Ok(out)
}

/// Reassemble the per-hop values collected by [`split_for_path`] TPPs into
/// one `path_len x stats.len()` matrix. `tpps` must be in launch order (the
/// initial hop pre-wind is consumed by execution, so coverage is inferred
/// from each TPP's memory capacity).
pub fn merge_split_results(tpps: &[Tpp], path_len: usize, n_stats: usize) -> Vec<Vec<u32>> {
    let mut rows = vec![vec![0u32; n_stats]; path_len];
    let mut hop = 0usize;
    for t in tpps {
        let hops_here = t.memory_words() / n_stats;
        for h in 0..hops_here {
            if hop >= path_len {
                break;
            }
            for (s, cell) in rows[hop].iter_mut().enumerate().take(n_stats) {
                *cell = t.read_word(h * n_stats + s).unwrap_or(0);
            }
            hop += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::asm::TppBuilder;
    use tpp_core::exec::{execute, ExecOptions, MapBus};

    fn probe() -> Tpp {
        TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(3).build().unwrap()
    }

    fn exec() -> Executor {
        Executor::new(
            Ipv4Address::from_host_id(1),
            EthernetAddress::from_node_id(1),
            ExecutorConfig::default(),
        )
    }

    #[test]
    fn nonce_roundtrip() {
        let mut e = exec();
        let (token, frame) = e.send(0, Ipv4Address::from_host_id(2), probe());
        let (_, tpp) = tpp_core::wire::extract_tpp(&frame).unwrap();
        assert_eq!(Executor::nonce_of(&tpp), Some(token));
        // Completion matches.
        match e.on_completed(&tpp) {
            Some(ProbeOutcome::Completed { token: t2, .. }) => assert_eq!(t2, token),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn full_capacity_probe_stays_wire_valid() {
        // A probe compiled at the full wire memory budget cannot grow by a
        // nonce word: the one-byte length field would wrap to 0. The nonce
        // overwrites the last word instead and the section stays parseable.
        let mut e = exec();
        let mut big = probe();
        big.memory = vec![0; tpp_core::wire::MAX_MEMORY_BYTES];
        let (token, frame) = e.send(0, Ipv4Address::from_host_id(2), big);
        let (_, tpp) = tpp_core::wire::extract_tpp(&frame).expect("section parses");
        assert_eq!(tpp.memory.len(), tpp_core::wire::MAX_MEMORY_BYTES);
        assert_eq!(Executor::nonce_of(&tpp), Some(token));
        assert!(e.on_completed(&tpp).is_some());
    }

    #[test]
    fn duplicate_completion_ignored() {
        let mut e = exec();
        let (_, frame) = e.send(0, Ipv4Address::from_host_id(2), probe());
        let (_, tpp) = tpp_core::wire::extract_tpp(&frame).unwrap();
        assert!(e.on_completed(&tpp).is_some());
        assert!(e.on_completed(&tpp).is_none());
    }

    #[test]
    fn retry_then_fail() {
        let mut e = exec();
        // Jitter off: the backoff schedule is exactly 1000, 2000, 4000.
        e.cfg =
            ExecutorConfig { max_retries: 2, timeout_ns: 1000, max_backoff_exp: 3, jitter_div: 0 };
        let (token, _) = e.send(0, Ipv4Address::from_host_id(2), probe());
        assert_eq!(e.next_deadline(), Some(1000));
        // First timeout: retransmit, next wait doubles.
        let (resend, done) = e.poll(1000);
        assert_eq!(resend.len(), 1);
        assert!(done.is_empty());
        assert_eq!(e.next_deadline(), Some(3000), "1000 + 1000<<1");
        // Second: retransmit again, wait doubles again.
        let (resend, _) = e.poll(3000);
        assert_eq!(resend.len(), 1);
        assert_eq!(e.next_deadline(), Some(7000), "3000 + 1000<<2");
        // Third: out of retries.
        let (resend, done) = e.poll(7000);
        assert!(resend.is_empty());
        assert_eq!(done, vec![ProbeOutcome::Failed { token }]);
        assert_eq!(e.failed, 1);
        assert_eq!(e.retransmitted, 2);
    }

    #[test]
    fn backoff_caps_and_jitters_deterministically() {
        let cfg =
            ExecutorConfig { max_retries: 8, timeout_ns: 1000, max_backoff_exp: 2, jitter_div: 4 };
        // The exponent caps at 2: attempts 2, 3, 9 share the same base.
        for attempt in [2u32, 3, 9] {
            let base = 1000u64 << 2;
            let expected = base + splitmix64(((7u64) << 32) | attempt as u64) % (base / 4 + 1);
            assert_eq!(Executor::backoff_ns(&cfg, 7, attempt), expected);
            assert!(Executor::backoff_ns(&cfg, 7, attempt) >= base);
            assert!(Executor::backoff_ns(&cfg, 7, attempt) <= base + base / 4);
        }
        // Different tokens de-synchronize: some pair of 16 tokens must
        // disagree (they all share attempt 1).
        let waits: Vec<u64> = (0..16).map(|t| Executor::backoff_ns(&cfg, t, 1)).collect();
        assert!(waits.windows(2).any(|w| w[0] != w[1]), "{waits:?}");
        // Jitter off means pure exponential.
        let plain = ExecutorConfig { jitter_div: 0, ..cfg };
        assert_eq!(Executor::backoff_ns(&plain, 7, 1), 2000);
        assert_eq!(Executor::backoff_ns(&plain, 7, 2), 4000);
        assert_eq!(Executor::backoff_ns(&plain, 7, 3), 4000);
    }

    #[test]
    fn poll_before_deadline_is_noop() {
        let mut e = exec();
        e.send(0, Ipv4Address::from_host_id(2), probe());
        let deadline = e.next_deadline().unwrap();
        let (resend, done) = e.poll(deadline - 1);
        assert!(resend.is_empty() && done.is_empty());
    }

    #[test]
    fn targeted_executes_only_on_matching_switch() {
        let t = targeted(&probe(), 9).unwrap();
        assert!(t.reflect);
        assert_eq!(t.instrs.len(), 2);
        // Simulate at switch 9 and at switch 8.
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let mut on9 = t.clone();
        execute(&mut on9, &mut MapBus::with(&[(sid, 9)]), &ExecOptions::default());
        assert_eq!(on9.read_word(2), Some(9)); // pushed after mask/value words

        let mut on8 = t.clone();
        execute(&mut on8, &mut MapBus::with(&[(sid, 8)]), &ExecOptions::default());
        assert_eq!(on8.read_word(2), Some(0)); // suppressed
    }

    #[test]
    fn targeted_rejects_full_programs() {
        let mut t = probe();
        let i = t.instrs[0];
        t.instrs = vec![i; 5];
        assert!(targeted(&t, 1).is_err());
    }

    #[test]
    fn scatter_gather_barrier() {
        let mut e = exec();
        let switches =
            [(1u32, Ipv4Address::new(192, 168, 0, 1)), (2, Ipv4Address::new(192, 168, 0, 2))];
        let (mut sg, frames) = ScatterGather::launch(&mut e, 0, &probe(), &switches).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(!sg.done());
        // First probe completes, second fails after retries.
        let (_, t0) = tpp_core::wire::extract_tpp(&frames[0]).unwrap();
        let o = e.on_completed(&t0).unwrap();
        assert!(sg.absorb(&o));
        assert!(!sg.done());
        // Exhaust the second probe's retries.
        let mut now = e.cfg.timeout_ns;
        while !sg.done() {
            let (_, done) = e.poll(now);
            for o in &done {
                sg.absorb(o);
            }
            now += e.cfg.timeout_ns;
        }
        assert_eq!(sg.results.len(), 1);
        assert_eq!(sg.failed.len(), 1);
        assert!(sg.results.contains_key(&1));
    }

    #[test]
    fn split_covers_long_paths() {
        let qsize = resolve_mnemonic("Link:QueueSize").unwrap();
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        // 2 stats x 10 hops = 20 words, but cap memory at 8 words -> 4 hops
        // per TPP -> 3 TPPs.
        let tpps = split_for_path(&[sid, qsize], 10, 8).unwrap();
        assert_eq!(tpps.len(), 3);
        assert_eq!(tpps[0].hop, 0);
        assert_eq!(tpps[1].hop, (4u8).wrapping_neg());
        assert_eq!(tpps[2].hop, (8u8).wrapping_neg());
        assert_eq!(tpps[0].memory.len(), 4 * 2 * 4);
        assert_eq!(tpps[2].memory.len(), 2 * 2 * 4);

        // Execute all three across a simulated 10-hop path; each hop's
        // switch has a distinct ID.
        let mut executed: Vec<Tpp> = tpps.clone();
        for t in &mut executed {
            for hop in 0..10u32 {
                let mut bus = MapBus::with(&[(sid, 100 + hop), (qsize, 1000 + hop)]);
                execute(t, &mut bus, &ExecOptions::default());
            }
        }
        let rows = merge_split_results(&executed, 10, 2);
        for (hop, row) in rows.iter().enumerate() {
            assert_eq!(row[0], 100 + hop as u32, "switch id at hop {hop}");
            assert_eq!(row[1], 1000 + hop as u32, "queue size at hop {hop}");
        }
    }

    #[test]
    fn split_single_tpp_when_it_fits() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let tpps = split_for_path(&[sid], 5, 63).unwrap();
        assert_eq!(tpps.len(), 1);
        assert_eq!(tpps[0].memory.len(), 5 * 4);
    }
}
