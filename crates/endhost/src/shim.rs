//! The end-host dataplane shim (§4.2).
//!
//! Sits between the application/transport layer and the NIC:
//!
//! * **Transmit**: matches outgoing frames against the filter table and
//!   piggy-backs at most one TPP per packet (transparent mode).
//! * **Receive**: strips completed TPPs before the stack sees the packet
//!   (applications are oblivious to TPPs); echoes standalone TPPs back to
//!   the source; routes completed piggy-backed TPPs to the owning
//!   application's aggregator.
//!
//! Completed TPPs travel on a dedicated UDP port ([`TPP_ECHO_PORT`]) as
//! *payload*, so switches do not re-execute them on the return path.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

use crate::filter::{Filter, FilterEntry, FilterTable};
use tpp_core::wire::{
    ethernet, insert_transparent, ipv4, locate_tpp, udp, EthernetAddress, EthernetRepr,
    Ipv4Address, Ipv4Packet, Tpp, TppLocation, TppView, UdpDatagram,
};

/// Completed TPPs are carried back to applications as the payload of UDP
/// datagrams to this port (one above the TPP execution port 0x6666, which
/// switches would execute).
pub const TPP_ECHO_PORT: u16 = 0x6667;

/// Recover the simulated node id behind a host IP (hosts are `10.x.y.z`
/// with `x.y.z` = node id; see `Ipv4Address::from_host_id`).
pub fn host_id_of_ip(ip: Ipv4Address) -> u32 {
    u32::from_be_bytes([0, ip.0[1], ip.0[2], ip.0[3]])
}

/// MAC of the host owning `ip` under the simulator's addressing convention.
pub fn mac_of_ip(ip: Ipv4Address) -> EthernetAddress {
    EthernetAddress::from_node_id(host_id_of_ip(ip))
}

/// Shim activity counters (observability for tests and benches).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShimCounters {
    pub tx_frames: u64,
    pub tx_stamped: u64,
    pub rx_frames: u64,
    pub rx_stripped: u64,
    pub echoes_sent: u64,
    pub completed_delivered: u64,
    pub parse_failures: u64,
}

/// The flow whose packet carried a TPP — NetSight-style context carried on
/// the echo channel so collectors can attribute histories to flows (§2.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowRef {
    pub src: Ipv4Address,
    pub dst: Ipv4Address,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowRef {
    pub const TRAILER_LEN: usize = 12;

    fn emit(&self) -> [u8; Self::TRAILER_LEN] {
        let mut b = [0u8; Self::TRAILER_LEN];
        b[0..4].copy_from_slice(&self.src.0);
        b[4..8].copy_from_slice(&self.dst.0);
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b
    }

    fn parse(b: &[u8]) -> Option<FlowRef> {
        if b.len() < Self::TRAILER_LEN {
            return None;
        }
        Some(FlowRef {
            src: Ipv4Address(b[0..4].try_into().unwrap()),
            dst: Ipv4Address(b[4..8].try_into().unwrap()),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
        })
    }
}

/// A completed TPP surfaced to an application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedTpp {
    pub app_id: u16,
    pub tpp: Tpp,
    /// Source of the packet that carried (or echoed) the TPP.
    pub from: Ipv4Address,
    /// The instrumented packet's flow.
    pub flow: FlowRef,
}

/// What the shim decided about an incoming frame. Several actions can
/// apply at once (e.g. deliver the stripped payload *and* surface the
/// completed TPP locally when this host is the aggregator).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Incoming {
    /// TPP-stripped frame for the local stack, if any.
    pub deliver: Option<Vec<u8>>,
    /// Completed-TPP frame to transmit toward the aggregator/source.
    pub echo: Option<Vec<u8>>,
    /// Completed TPP for a local application (this host is the origin or
    /// the app's aggregator).
    pub completed: Option<CompletedTpp>,
    /// Frame was unparseable and dropped.
    pub discarded: bool,
}

/// The per-host dataplane shim.
pub struct Shim {
    pub ip: Ipv4Address,
    pub mac: EthernetAddress,
    pub filters: FilterTable,
    /// app id -> aggregator address for piggy-backed TPPs (§4.2). Defaults
    /// to the packet source when absent.
    pub aggregators: BTreeMap<u16, Ipv4Address>,
    pub counters: ShimCounters,
    rng: StdRng,
}

impl Shim {
    pub fn new(ip: Ipv4Address, mac: EthernetAddress, seed: u64) -> Self {
        Shim {
            ip,
            mac,
            filters: FilterTable::default(),
            aggregators: BTreeMap::new(),
            counters: ShimCounters::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The TPP-CP `add_tpp` API realized on this host (§4.1). The caller
    /// must have validated the TPP against the app's policy.
    pub fn add_tpp(
        &mut self,
        app_id: u16,
        filter: Filter,
        tpp: Tpp,
        sample_frequency: u32,
        priority: u32,
    ) {
        self.add_tpp_verified(app_id, filter, tpp, None, sample_frequency, priority);
    }

    /// [`Shim::add_tpp`] carrying the static verifier's load-time proof,
    /// recorded on the filter entry so downstream consumers can use the
    /// unchecked execution path for covered hops.
    pub fn add_tpp_verified(
        &mut self,
        app_id: u16,
        filter: Filter,
        tpp: Tpp,
        verified: Option<tpp_core::verify::Verified>,
        sample_frequency: u32,
        priority: u32,
    ) {
        let mut tpp = tpp;
        tpp.app_id = app_id;
        self.filters.add(FilterEntry {
            app_id,
            filter,
            tpp,
            sample_frequency: sample_frequency.max(1),
            priority,
            matched: 0,
            stamped: 0,
            verified,
        });
    }

    pub fn set_aggregator(&mut self, app_id: u16, addr: Ipv4Address) {
        self.aggregators.insert(app_id, addr);
    }

    /// Transmit-side interposition: possibly piggy-back a TPP.
    pub fn outgoing(&mut self, frame: Vec<u8>) -> Vec<u8> {
        self.counters.tx_frames += 1;
        if self.filters.is_empty() {
            return frame;
        }
        // Never double-stamp.
        if !matches!(locate_tpp(&frame), TppLocation::None) {
            return frame;
        }
        let Some(key) = tpp_switch::FlowKey::from_frame(&frame) else {
            return frame;
        };
        let coin: f64 = self.rng.random();
        match self.filters.select(&key, coin) {
            Some((_, tpp)) => {
                self.counters.tx_stamped += 1;
                insert_transparent(&frame, &tpp)
            }
            None => frame,
        }
    }

    /// Receive-side interposition. TPP sections are validated and read
    /// through borrowed [`TppView`]s over the frame bytes; the owned [`Tpp`]
    /// is materialized only when a completion is surfaced to a local
    /// application, and echo frames carry the section bytes verbatim.
    pub fn incoming(&mut self, frame: Vec<u8>) -> Incoming {
        self.counters.rx_frames += 1;
        match locate_tpp(&frame) {
            TppLocation::Transparent { section } => match TppView::parse(&frame[section..]) {
                Ok((view, consumed)) => {
                    self.counters.rx_stripped += 1;
                    let inner = tpp_core::wire::restore_inner_frame(
                        &frame,
                        section,
                        consumed,
                        view.encap_proto(),
                    );
                    let flow = tpp_switch::FlowKey::from_frame(&inner)
                        .map(|k| FlowRef {
                            src: k.src,
                            dst: k.dst,
                            src_port: k.src_port,
                            dst_port: k.dst_port,
                        })
                        .unwrap_or_default();
                    let mut out = self.route_completed(&view, flow);
                    out.deliver = Some(inner);
                    out
                }
                Err(_) => {
                    self.counters.parse_failures += 1;
                    Incoming { discarded: true, ..Incoming::default() }
                }
            },
            TppLocation::Standalone { section, ip, udp } => {
                let (src, dst) = match Ipv4Packet::new_checked(&frame[ip..]) {
                    Some(p) => (p.src(), p.dst()),
                    None => {
                        self.counters.parse_failures += 1;
                        return Incoming { discarded: true, ..Incoming::default() };
                    }
                };
                let src_port = u16::from_be_bytes([frame[udp], frame[udp + 1]]);
                match TppView::parse(&frame[section..]) {
                    Ok((view, _)) => self.route_completed(
                        &view,
                        FlowRef { src, dst, src_port, dst_port: udp::TPP_PORT },
                    ),
                    Err(_) => {
                        self.counters.parse_failures += 1;
                        Incoming { discarded: true, ..Incoming::default() }
                    }
                }
            }
            TppLocation::None => {
                // The echo channel?
                if let Some(completed) = self.parse_echo(&frame) {
                    self.counters.completed_delivered += 1;
                    return Incoming { completed: Some(completed), ..Incoming::default() };
                }
                Incoming { deliver: Some(frame), ..Incoming::default() }
            }
        }
    }

    /// Route a freshly executed TPP: locally if this host is the app's
    /// aggregator, otherwise as an echo frame toward the aggregator (or
    /// the packet source when no aggregator is registered; §4.2).
    fn route_completed(&mut self, view: &TppView<'_>, flow: FlowRef) -> Incoming {
        let to = self.aggregators.get(&view.app_id()).copied().unwrap_or(flow.src);
        if to == self.ip {
            self.counters.completed_delivered += 1;
            return Incoming {
                completed: Some(CompletedTpp {
                    app_id: view.app_id(),
                    from: flow.src,
                    tpp: view.to_tpp(),
                    flow,
                }),
                ..Incoming::default()
            };
        }
        self.counters.echoes_sent += 1;
        Incoming {
            echo: Some(self.build_echo_frame(view.as_bytes(), to, flow)),
            ..Incoming::default()
        }
    }

    /// Build a completed-TPP frame around the executed section bytes,
    /// carried verbatim — no re-serialization of the TPP.
    fn build_echo_frame(&self, section: &[u8], to: Ipv4Address, flow: FlowRef) -> Vec<u8> {
        let mut payload = Vec::with_capacity(section.len() + FlowRef::TRAILER_LEN);
        payload.extend_from_slice(section);
        payload.extend_from_slice(&flow.emit());
        let u = udp::Repr {
            src_port: udp::TPP_PORT,
            dst_port: TPP_ECHO_PORT,
            payload_len: payload.len(),
        };
        let udp_bytes = u.encapsulate(self.ip, to, &payload);
        let ip_repr = ipv4::Repr {
            src: self.ip,
            dst: to,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_bytes.len(),
        };
        EthernetRepr { dst: mac_of_ip(to), src: self.mac, ethertype: ethernet::ethertype::IPV4 }
            .encapsulate(&ip_repr.encapsulate(&udp_bytes))
    }

    fn parse_echo(&self, frame: &[u8]) -> Option<CompletedTpp> {
        let eth = tpp_core::wire::EthernetFrame::new_checked(frame)?;
        if eth.ethertype() != ethernet::ethertype::IPV4 {
            return None;
        }
        let ip = Ipv4Packet::new_checked(eth.payload())?;
        if ip.protocol() != ipv4::protocol::UDP {
            return None;
        }
        let from = ip.src();
        let u = UdpDatagram::new_checked(ip.payload())?;
        if u.dst_port() != TPP_ECHO_PORT {
            return None;
        }
        let (view, consumed) = TppView::parse(u.payload()).ok()?;
        let flow = FlowRef::parse(&u.payload()[consumed..]).unwrap_or_default();
        Some(CompletedTpp { app_id: view.app_id(), tpp: view.to_tpp(), from, flow })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::asm::TppBuilder;
    use tpp_core::wire::extract_tpp;

    fn shim_for(host: u32) -> Shim {
        Shim::new(Ipv4Address::from_host_id(host), EthernetAddress::from_node_id(host), host as u64)
    }

    fn udp_frame(src: u32, dst: u32, dport: u16) -> Vec<u8> {
        let src_ip = Ipv4Address::from_host_id(src);
        let dst_ip = Ipv4Address::from_host_id(dst);
        let u = udp::Repr { src_port: 1111, dst_port: dport, payload_len: 32 };
        let udp_b = u.encapsulate(src_ip, dst_ip, &[7u8; 32]);
        let ip = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_b.len(),
        };
        EthernetRepr {
            dst: EthernetAddress::from_node_id(dst),
            src: EthernetAddress::from_node_id(src),
            ethertype: ethernet::ethertype::IPV4,
        }
        .encapsulate(&ip.encapsulate(&udp_b))
    }

    fn probe_tpp(app: u16) -> Tpp {
        let mut t =
            TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(4).build().unwrap();
        t.app_id = app;
        t
    }

    #[test]
    fn stamp_strip_echo_roundtrip() {
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::udp(), probe_tpp(7), 1, 0);
        let stamped = tx.outgoing(udp_frame(1, 2, 5000));
        assert!(extract_tpp(&stamped).is_some());
        assert_eq!(tx.counters.tx_stamped, 1);

        // Receiver strips and echoes to the source.
        let mut rx = shim_for(2);
        let out = rx.incoming(stamped);
        assert_eq!(out.deliver, Some(udp_frame(1, 2, 5000)));
        let echo = out.echo.expect("echo generated");
        assert!(out.completed.is_none());
        // The echo is addressed to host 1 on the echo port.
        let ip = Ipv4Packet::new_checked(&echo[14..]).unwrap();
        assert_eq!(ip.dst(), Ipv4Address::from_host_id(1));
        // And the origin shim surfaces it as a completion.
        let mut origin = shim_for(1);
        let back = origin.incoming(echo);
        let done = back.completed.expect("completion surfaced");
        assert_eq!(done.app_id, 7);
        assert_eq!(done.from, Ipv4Address::from_host_id(2));
        assert_eq!(done.tpp.instrs.len(), 1);
    }

    #[test]
    fn local_aggregator_consumes_without_echo() {
        // When the receiving host *is* the aggregator, the completed TPP is
        // surfaced locally and no echo traffic is generated.
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::udp(), probe_tpp(7), 1, 0);
        let stamped = tx.outgoing(udp_frame(1, 2, 5000));
        let mut rx = shim_for(2);
        rx.set_aggregator(7, Ipv4Address::from_host_id(2));
        let out = rx.incoming(stamped);
        assert!(out.deliver.is_some());
        assert!(out.echo.is_none());
        let done = out.completed.expect("local completion");
        assert_eq!(done.app_id, 7);
        assert_eq!(done.from, Ipv4Address::from_host_id(1));
        assert_eq!(rx.counters.echoes_sent, 0);
    }

    #[test]
    fn sampling_controls_stamp_rate() {
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::udp(), probe_tpp(7), 10, 0);
        for _ in 0..2000 {
            tx.outgoing(udp_frame(1, 2, 5000));
        }
        let rate = tx.counters.tx_stamped as f64 / 2000.0;
        assert!((rate - 0.1).abs() < 0.03, "sampling rate {rate} should be ~0.1");
    }

    #[test]
    fn non_matching_traffic_untouched() {
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::dst_port(80), probe_tpp(7), 1, 0);
        let f = udp_frame(1, 2, 5000);
        let out = tx.outgoing(f.clone());
        assert_eq!(out, f);
        assert_eq!(tx.counters.tx_stamped, 0);
    }

    #[test]
    fn standalone_probe_echoed() {
        let mut rx = shim_for(2);
        let tpp = probe_tpp(3);
        let frame = tpp_core::wire::build_standalone(
            EthernetAddress::from_node_id(1),
            EthernetAddress::from_node_id(2),
            Ipv4Address::from_host_id(1),
            Ipv4Address::from_host_id(2),
            9999,
            &tpp,
        );
        let out = rx.incoming(frame);
        assert!(out.deliver.is_none());
        let echo = out.echo.expect("probe echoed");
        let ip = Ipv4Packet::new_checked(&echo[14..]).unwrap();
        assert_eq!(ip.dst(), Ipv4Address::from_host_id(1));
        let u = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert_eq!(u.dst_port(), TPP_ECHO_PORT);
    }

    #[test]
    fn aggregator_overrides_echo_destination() {
        let mut rx = shim_for(2);
        rx.set_aggregator(7, Ipv4Address::from_host_id(9));
        let tx_frame = {
            let mut tx = shim_for(1);
            tx.add_tpp(7, Filter::udp(), probe_tpp(7), 1, 0);
            tx.outgoing(udp_frame(1, 2, 5000))
        };
        let out = rx.incoming(tx_frame);
        let echo = out.echo.expect("echo to aggregator");
        let ip = Ipv4Packet::new_checked(&echo[14..]).unwrap();
        assert_eq!(ip.dst(), Ipv4Address::from_host_id(9));
    }

    #[test]
    fn plain_traffic_passes_through() {
        let mut rx = shim_for(2);
        let f = udp_frame(1, 2, 5000);
        let out = rx.incoming(f.clone());
        assert_eq!(out.deliver, Some(f));
        assert!(out.echo.is_none() && out.completed.is_none() && !out.discarded);
    }

    #[test]
    fn corrupted_tpp_discarded() {
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::udp(), probe_tpp(7), 1, 0);
        let mut stamped = tx.outgoing(udp_frame(1, 2, 5000));
        stamped[16] ^= 0xFF; // corrupt TPP section
        let mut rx = shim_for(2);
        let out = rx.incoming(stamped);
        assert!(out.discarded && out.deliver.is_none());
        assert_eq!(rx.counters.parse_failures, 1);
    }

    #[test]
    fn already_stamped_frames_not_double_stamped() {
        let mut tx = shim_for(1);
        tx.add_tpp(7, Filter::udp(), probe_tpp(7), 1, 0);
        let stamped = tx.outgoing(udp_frame(1, 2, 5000));
        let len1 = stamped.len();
        let again = tx.outgoing(stamped);
        assert_eq!(again.len(), len1);
        assert_eq!(tx.counters.tx_stamped, 1);
    }

    #[test]
    fn ip_host_id_roundtrip() {
        for id in [1u32, 255, 300, 65_000] {
            assert_eq!(host_id_of_ip(Ipv4Address::from_host_id(id)), id);
        }
    }
}
