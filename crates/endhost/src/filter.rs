//! iptables-like packet filters for the end-host dataplane (§4.1–4.2).
//!
//! `add_tpp(filter, tpp, sample_frequency, priority)` installs a filter;
//! outgoing packets are matched against the table in priority order and the
//! first matching, sampling-admitted entry contributes its TPP ("Only one
//! TPP is added to any packet", §4.2).

use tpp_core::verify::Verified;
use tpp_core::wire::{Ipv4Address, Tpp};
use tpp_switch::FlowKey;

/// A packet filter over the 5-tuple (any field may be wildcarded).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Filter {
    /// IP protocol (6 = TCP, 17 = UDP); `None` matches any.
    pub protocol: Option<u8>,
    pub src: Option<Ipv4Address>,
    pub dst: Option<Ipv4Address>,
    pub src_port: Option<u16>,
    pub dst_port: Option<u16>,
}

impl Filter {
    /// Match everything.
    pub fn any() -> Filter {
        Filter::default()
    }

    pub fn udp() -> Filter {
        Filter { protocol: Some(17), ..Filter::default() }
    }

    pub fn tcp() -> Filter {
        Filter { protocol: Some(6), ..Filter::default() }
    }

    pub fn dst_port(port: u16) -> Filter {
        Filter { dst_port: Some(port), ..Filter::default() }
    }

    pub fn matches(&self, key: &FlowKey) -> bool {
        self.protocol.is_none_or(|p| p == key.protocol)
            && self.src.is_none_or(|a| a == key.src)
            && self.dst.is_none_or(|a| a == key.dst)
            && self.src_port.is_none_or(|p| p == key.src_port)
            && self.dst_port.is_none_or(|p| p == key.dst_port)
    }
}

/// One installed `add_tpp` rule.
#[derive(Clone, Debug)]
pub struct FilterEntry {
    pub app_id: u16,
    pub filter: Filter,
    pub tpp: Tpp,
    /// Sampling frequency N: a matched packet is stamped with probability
    /// 1/N (N = 1 stamps every packet; §4.1).
    pub sample_frequency: u32,
    /// Lower value = higher priority.
    pub priority: u32,
    pub matched: u64,
    pub stamped: u64,
    /// Load-time proof from the static verifier, when the entry was
    /// installed through the verifier-backed policy path. Switches covered
    /// by the token's hop/SP window may run the unchecked fast path.
    pub verified: Option<Verified>,
}

/// The ordered filter table.
#[derive(Clone, Debug, Default)]
pub struct FilterTable {
    entries: Vec<FilterEntry>,
}

impl FilterTable {
    pub fn add(&mut self, entry: FilterEntry) {
        self.entries.push(entry);
        // Stable sort keeps insertion order among equal priorities.
        self.entries.sort_by_key(|e| e.priority);
    }

    pub fn remove_app(&mut self, app_id: u16) {
        self.entries.retain(|e| e.app_id != app_id);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[FilterEntry] {
        &self.entries
    }

    /// Find the TPP to stamp on a packet with flow key `key`, if any.
    /// `coin` must be uniform in [0, 1): it drives sampling.
    ///
    /// All matching entries update their match counters (needed for the
    /// Table 5 experiment's `first`/`last`/`all` scenarios to be
    /// meaningfully different), but only the first sampling-admitted entry
    /// stamps.
    pub fn select(&mut self, key: &FlowKey, coin: f64) -> Option<(u16, Tpp)> {
        let mut chosen: Option<(u16, Tpp)> = None;
        for e in &mut self.entries {
            if !e.filter.matches(key) {
                continue;
            }
            e.matched += 1;
            if chosen.is_none() && coin < 1.0 / e.sample_frequency as f64 {
                e.stamped += 1;
                chosen = Some((e.app_id, e.tpp.clone()));
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::asm::TppBuilder;

    fn key(proto: u8, sport: u16, dport: u16) -> FlowKey {
        FlowKey {
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 2),
            protocol: proto,
            src_port: sport,
            dst_port: dport,
        }
    }

    fn tpp(app: u16) -> Tpp {
        let mut t =
            TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(5).build().unwrap();
        t.app_id = app;
        t
    }

    fn entry(app: u16, filter: Filter, freq: u32, prio: u32) -> FilterEntry {
        FilterEntry {
            app_id: app,
            filter,
            tpp: tpp(app),
            sample_frequency: freq,
            priority: prio,
            matched: 0,
            stamped: 0,
            verified: None,
        }
    }

    #[test]
    fn wildcards_and_fields() {
        assert!(Filter::any().matches(&key(6, 1, 2)));
        assert!(Filter::udp().matches(&key(17, 1, 2)));
        assert!(!Filter::udp().matches(&key(6, 1, 2)));
        assert!(Filter::dst_port(80).matches(&key(6, 5, 80)));
        assert!(!Filter::dst_port(80).matches(&key(6, 5, 81)));
        let f = Filter { src: Some(Ipv4Address::new(10, 0, 0, 1)), ..Filter::default() };
        assert!(f.matches(&key(17, 0, 0)));
        let g = Filter { src: Some(Ipv4Address::new(10, 0, 0, 9)), ..Filter::default() };
        assert!(!g.matches(&key(17, 0, 0)));
    }

    #[test]
    fn priority_order_first_match_wins() {
        let mut t = FilterTable::default();
        t.add(entry(2, Filter::any(), 1, 20));
        t.add(entry(1, Filter::any(), 1, 10));
        let (app, _) = t.select(&key(17, 1, 2), 0.0).unwrap();
        assert_eq!(app, 1);
        // Both matched, one stamped.
        assert_eq!(t.entries()[0].matched, 1);
        assert_eq!(t.entries()[1].matched, 1);
        assert_eq!(t.entries()[0].stamped, 1);
        assert_eq!(t.entries()[1].stamped, 0);
    }

    #[test]
    fn sampling_frequency() {
        let mut t = FilterTable::default();
        t.add(entry(1, Filter::any(), 10, 0));
        // coin < 0.1 stamps, otherwise not.
        assert!(t.select(&key(17, 1, 2), 0.05).is_some());
        assert!(t.select(&key(17, 1, 2), 0.5).is_none());
        assert_eq!(t.entries()[0].matched, 2);
        assert_eq!(t.entries()[0].stamped, 1);
    }

    #[test]
    fn skipped_entry_falls_through() {
        // If the first entry's sampling coin fails, the next matching entry
        // still gets a chance with the same coin.
        let mut t = FilterTable::default();
        t.add(entry(1, Filter::any(), 100, 0)); // p = 0.01
        t.add(entry(2, Filter::any(), 1, 1)); // p = 1
        let (app, _) = t.select(&key(17, 1, 2), 0.5).unwrap();
        assert_eq!(app, 2);
    }

    #[test]
    fn remove_app() {
        let mut t = FilterTable::default();
        t.add(entry(1, Filter::any(), 1, 0));
        t.add(entry(2, Filter::udp(), 1, 1));
        t.remove_app(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].app_id, 2);
    }

    #[test]
    fn coexisting_apps_one_stamp_per_packet() {
        // §4.1: multiple applications wanting TPPs on the same traffic
        // coexist; §4.2: only one TPP per packet.
        let mut t = FilterTable::default();
        t.add(entry(1, Filter::udp(), 1, 0));
        t.add(entry(2, Filter::udp(), 1, 1));
        for _ in 0..10 {
            let sel = t.select(&key(17, 1, 2), 0.0);
            assert_eq!(sel.unwrap().0, 1);
        }
        assert_eq!(t.entries()[0].stamped, 10);
        assert_eq!(t.entries()[1].stamped, 0);
        assert_eq!(t.entries()[1].matched, 10);
    }
}
