//! # tpp-endhost — the TPP end-host stack (paper §4, Figure 9)
//!
//! End-hosts do the heavy lifting in the TPP architecture: switches only
//! execute five-instruction programs, while hosts compose them, interpose
//! on traffic, enforce security policy, and compute on the results.
//!
//! * [`cp`] — TPP-CP: the control plane that registers applications,
//!   allocates exclusive switch-memory segments (GDT-style), and statically
//!   validates TPPs before installation (§4.1, §4.3).
//! * [`filter`] — iptables-like filters with sampling frequencies, backing
//!   the `add_tpp(filter, tpp, sample_freq, priority)` API (§4.1).
//! * [`shim`] — the dataplane shim on the host's critical path: stamps
//!   outgoing packets, strips incoming ones, echoes completed standalone
//!   TPPs to their source and piggy-backed ones to per-app aggregators
//!   (§4.2).
//! * [`executor`] — reliable / targeted / scatter-gather / split execution
//!   patterns (§4.4).
//! * [`transport`] — a Reno-like TCP model and paced UDP senders: the
//!   substrate for the paper's congestion-control and overhead experiments
//!   (§2.2, §6.2).
//! * [`harness`] — the unified application harness: declare typed
//!   [`Probe`](tpp_core::probe::Probe)s with completion callbacks and get a
//!   fully wired simulator host ([`Harness`] → [`Endhost`]).

#![forbid(unsafe_code)]

pub mod cp;
pub mod executor;
pub mod filter;
pub mod harness;
pub mod shim;
pub mod transport;

pub use cp::{CentralCp, CpError, Policy};
pub use executor::{Executor, ExecutorConfig, ProbeOutcome, ScatterGather};
pub use filter::{Filter, FilterTable};
pub use harness::{Aggregator, Completion, Endhost, Harness, HarnessError, Io};
pub use shim::{CompletedTpp, FlowRef, Incoming, Shim, TPP_ECHO_PORT};
pub use transport::{PacedSender, SegHeader, TcpConn};
