//! Host transports: a window-based TCP-Reno-like stream (the Figure 10 /
//! §2.2 baseline) and rate-limited UDP senders (the RCP* and CONGA* flow
//! substrate).
//!
//! The TCP model is deliberately compact: no handshake (connections are
//! pre-established by the experiment), cumulative ACKs with out-of-order
//! reassembly, slow start, congestion avoidance, fast retransmit on three
//! duplicate ACKs, and RTO with exponential backoff. Payload bytes are
//! zeros — only lengths and sequence numbers matter to the experiments.

use std::collections::BTreeMap;

use tpp_core::wire::{ethernet, ipv4, EthernetRepr, Ipv4Address, Ipv4Packet};

use crate::shim::mac_of_ip;

/// Our TCP-like segment header (IP protocol 6), 20 bytes like real TCP.
///
/// ```text
/// 0-1 src_port | 2-3 dst_port | 4-7 seq | 8-11 ack | 12 flags | 13 rsvd
/// 14-15 window | 16-19 reserved
/// ```
pub const SEG_HEADER_LEN: usize = 20;

/// Flags.
pub mod flags {
    pub const ACK: u8 = 0x01;
}

/// A decoded segment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub payload_len: usize,
}

impl SegHeader {
    pub fn parse(data: &[u8]) -> Option<SegHeader> {
        if data.len() < SEG_HEADER_LEN {
            return None;
        }
        Some(SegHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: data[12],
            payload_len: data.len() - SEG_HEADER_LEN,
        })
    }

    pub fn emit(&self) -> Vec<u8> {
        let mut out = vec![0u8; SEG_HEADER_LEN + self.payload_len];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = self.flags;
        out
    }
}

/// Build a full Ethernet frame carrying a segment.
pub fn seg_frame(src_ip: Ipv4Address, dst_ip: Ipv4Address, hdr: &SegHeader) -> Vec<u8> {
    let seg = hdr.emit();
    let ip = ipv4::Repr {
        src: src_ip,
        dst: dst_ip,
        protocol: ipv4::protocol::TCP,
        ttl: 64,
        payload_len: seg.len(),
    };
    EthernetRepr {
        dst: mac_of_ip(dst_ip),
        src: mac_of_ip(src_ip),
        ethertype: ethernet::ethertype::IPV4,
    }
    .encapsulate(&ip.encapsulate(&seg))
}

/// Extract a segment from a received frame, if it is one of ours.
pub fn parse_seg_frame(frame: &[u8]) -> Option<(Ipv4Address, Ipv4Address, SegHeader)> {
    let eth = tpp_core::wire::EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != ethernet::ethertype::IPV4 {
        return None;
    }
    let ip = Ipv4Packet::new_checked(eth.payload())?;
    if ip.protocol() != ipv4::protocol::TCP {
        return None;
    }
    Some((ip.src(), ip.dst(), SegHeader::parse(ip.payload())?))
}

/// A segment the connection wants transmitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegOut {
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub payload_len: usize,
}

/// Reno-style congestion-controlled stream endpoint (sender + receiver).
#[derive(Clone, Debug)]
pub struct TcpConn {
    pub local_port: u16,
    pub peer_port: u16,
    pub mss: usize,
    // Sender state.
    snd_una: u32,
    snd_nxt: u32,
    cwnd: f64,
    ssthresh: f64,
    /// Peer receive window in MSS units (caps cwnd, like a real advertised
    /// window; prevents unbounded growth when the path never drops).
    pub max_cwnd: f64,
    dup_acks: u32,
    /// Total bytes the application wants to send (`u64::MAX` = bulk).
    pub bytes_to_send: u64,
    // RTT estimation (Karn's algorithm: one sample in flight).
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    rto_ns: u64,
    rtt_probe: Option<(u32, u64)>,
    rto_deadline: Option<u64>,
    backoff: u32,
    // Receiver state.
    rcv_nxt: u32,
    ooo: BTreeMap<u32, u32>,
    /// In-order bytes delivered to the application.
    pub delivered: u64,
    // Counters.
    pub retransmits: u64,
    pub timeouts: u64,
}

/// Initial/min/max RTO for the simulated datacenter environment.
const INIT_RTO_NS: u64 = 10_000_000;
const MIN_RTO_NS: u64 = 1_000_000;
const MAX_RTO_NS: u64 = 2_000_000_000;

impl TcpConn {
    pub fn new(local_port: u16, peer_port: u16, mss: usize) -> Self {
        TcpConn {
            local_port,
            peer_port,
            mss,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: 2.0,
            ssthresh: 64.0,
            max_cwnd: 256.0,
            dup_acks: 0,
            bytes_to_send: u64::MAX,
            srtt_ns: None,
            rttvar_ns: 0,
            rto_ns: INIT_RTO_NS,
            rtt_probe: None,
            rto_deadline: None,
            backoff: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delivered: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    pub fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss as f64) as u64
    }

    pub fn bytes_acked(&self) -> u64 {
        self.snd_una as u64
    }

    /// Diagnostics: (`snd_una`, `snd_nxt`, `rcv_nxt`, out-of-order segments).
    pub fn debug_state(&self) -> (u32, u32, u32, usize) {
        (self.snd_una, self.snd_nxt, self.rcv_nxt, self.ooo.len())
    }

    /// When the retransmission timer should fire, if armed.
    pub fn rto_deadline(&self) -> Option<u64> {
        self.rto_deadline
    }

    fn arm_rto(&mut self, now: u64) {
        self.rto_deadline = Some(now + self.rto_ns.saturating_mul(1 << self.backoff.min(10)));
    }

    /// New data segments allowed by the window, advancing `snd_nxt`.
    pub fn pump(&mut self, now: u64) -> Vec<SegOut> {
        let mut out = Vec::new();
        let limit = self.snd_una as u64 + self.cwnd_bytes();
        while (self.snd_nxt as u64) < limit && (self.snd_nxt as u64) < self.bytes_to_send {
            let remaining = self.bytes_to_send - self.snd_nxt as u64;
            let window = limit - self.snd_nxt as u64;
            // Silly-window avoidance: never emit a sub-MSS segment unless it
            // is the final chunk of the stream.
            if window < self.mss as u64 && window < remaining {
                break;
            }
            let len = (self.mss as u64).min(remaining).min(window) as usize;
            if len == 0 {
                break;
            }
            out.push(SegOut { seq: self.snd_nxt, ack: self.rcv_nxt, flags: 0, payload_len: len });
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt.wrapping_add(len as u32), now));
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        out
    }

    /// Process a received segment; returns segments to send in response
    /// (ACKs, fast retransmits). Call [`TcpConn::pump`] afterwards.
    pub fn on_segment(&mut self, now: u64, hdr: &SegHeader) -> Vec<SegOut> {
        let mut out = Vec::new();

        // --- Receiver side: data?
        if hdr.payload_len > 0 {
            let seq = hdr.seq;
            let len = hdr.payload_len as u32;
            if seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(len);
                // Drain contiguous out-of-order segments.
                while let Some((&s, &l)) = self.ooo.first_key_value() {
                    if s == self.rcv_nxt {
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(l);
                        self.ooo.remove(&s);
                    } else if s < self.rcv_nxt {
                        self.ooo.remove(&s); // stale
                    } else {
                        break;
                    }
                }
            } else if seq > self.rcv_nxt {
                self.ooo.insert(seq, len);
            } // else: duplicate of already-received data
            self.delivered = self.rcv_nxt as u64;
            out.push(SegOut {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: flags::ACK,
                payload_len: 0,
            });
        }

        // --- Sender side: ACK?
        if hdr.flags & flags::ACK != 0 {
            let ack = hdr.ack;
            if ack > self.snd_una {
                let newly = (ack - self.snd_una) as u64;
                self.snd_una = ack;
                self.dup_acks = 0;
                self.backoff = 0;
                // RTT sample.
                if let Some((probe_seq, sent_at)) = self.rtt_probe {
                    if ack >= probe_seq {
                        self.update_rtt(now.saturating_sub(sent_at));
                        self.rtt_probe = None;
                    }
                }
                // Window growth.
                let acked_mss = newly as f64 / self.mss as f64;
                if self.cwnd < self.ssthresh {
                    self.cwnd += acked_mss; // slow start
                } else {
                    self.cwnd += acked_mss / self.cwnd; // congestion avoidance
                }
                self.cwnd = self.cwnd.min(self.max_cwnd);
                // Re-arm or disarm the RTO.
                if self.snd_una == self.snd_nxt {
                    self.rto_deadline = None;
                } else {
                    self.arm_rto(now);
                }
            } else if ack == self.snd_una && self.snd_nxt != self.snd_una {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit.
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.cwnd = self.ssthresh;
                    self.retransmits += 1;
                    let len =
                        (self.mss as u64).min(self.bytes_to_send - self.snd_una as u64) as usize;
                    out.push(SegOut {
                        seq: self.snd_una,
                        ack: self.rcv_nxt,
                        flags: 0,
                        payload_len: len,
                    });
                    self.rtt_probe = None; // Karn: no sample from retransmit
                    self.arm_rto(now);
                }
            }
        }
        out
    }

    /// The retransmission timer fired (call only when `now >=
    /// rto_deadline()`). Returns the go-back-N retransmission.
    pub fn on_rto(&mut self, now: u64) -> Vec<SegOut> {
        self.rto_deadline = None;
        if self.snd_una == self.snd_nxt {
            return Vec::new(); // nothing outstanding
        }
        self.timeouts += 1;
        self.retransmits += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.snd_nxt = self.snd_una; // go-back-N
        self.backoff = (self.backoff + 1).min(10);
        self.rtt_probe = None;
        let out = self.pump(now);
        self.arm_rto(now);
        out
    }

    fn update_rtt(&mut self, sample_ns: u64) {
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(sample_ns);
                self.rttvar_ns = sample_ns / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample_ns);
                self.rttvar_ns = (3 * self.rttvar_ns + diff) / 4;
                self.srtt_ns = Some((7 * srtt + sample_ns) / 8);
            }
        }
        let srtt = self.srtt_ns.unwrap();
        self.rto_ns = (srtt + 4 * self.rttvar_ns).clamp(MIN_RTO_NS, MAX_RTO_NS);
    }

    pub fn srtt_ns(&self) -> Option<u64> {
        self.srtt_ns
    }

    /// Render a [`SegOut`] as a frame between the connection's endpoints.
    pub fn frame_for(&self, src: Ipv4Address, dst: Ipv4Address, seg: &SegOut) -> Vec<u8> {
        seg_frame(
            src,
            dst,
            &SegHeader {
                src_port: self.local_port,
                dst_port: self.peer_port,
                seq: seg.seq,
                ack: seg.ack,
                flags: seg.flags,
                payload_len: seg.payload_len,
            },
        )
    }
}

/// A paced constant-bit-rate UDP sender whose rate can be retargeted at any
/// time — the "rate limiter" of the RCP* end-host implementation (§2.2).
#[derive(Clone, Debug)]
pub struct PacedSender {
    pub rate_bps: f64,
    pub payload_len: usize,
    /// Wire-level frame length used for pacing (payload + UDP/IP/Ethernet).
    pub frame_overhead: usize,
    next_send_ns: u64,
}

impl PacedSender {
    pub fn new(rate_bps: f64, payload_len: usize) -> Self {
        PacedSender {
            rate_bps,
            payload_len,
            frame_overhead: ethernet::HEADER_LEN + ipv4::HEADER_LEN + 8,
            next_send_ns: 0,
        }
    }

    pub fn set_rate(&mut self, rate_bps: f64) {
        self.rate_bps = rate_bps.max(1.0);
    }

    fn interval_ns(&self) -> u64 {
        let bits = ((self.payload_len + self.frame_overhead) * 8) as f64;
        (bits / self.rate_bps * 1e9) as u64
    }

    /// How many packets are due at `now`; advances internal state. The
    /// caller should re-poll at [`PacedSender::next_deadline`].
    pub fn due(&mut self, now: u64) -> usize {
        let mut n = 0;
        // Cap catch-up bursts at 32 packets so a rate increase doesn't dump
        // an unbounded burst.
        while self.next_send_ns <= now && n < 32 {
            n += 1;
            self.next_send_ns =
                self.next_send_ns.max(now.saturating_sub(self.interval_ns())) + self.interval_ns();
        }
        n
    }

    pub fn next_deadline(&self) -> u64 {
        self.next_send_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(conn: &mut TcpConn, now: u64) -> Vec<SegOut> {
        conn.pump(now)
    }

    /// Drive two connections over a perfect, instant link until `steps`
    /// exchanges complete. Returns total delivered at the receiver.
    fn run_lossless(bytes: u64, steps: usize) -> (TcpConn, TcpConn) {
        let mut a = TcpConn::new(1, 2, 1000);
        a.bytes_to_send = bytes;
        let mut b = TcpConn::new(2, 1, 1000);
        b.bytes_to_send = 0;
        let mut now = 0u64;
        let mut wire: Vec<(bool, SegOut)> =
            drain(&mut a, now).into_iter().map(|s| (true, s)).collect();
        for _ in 0..steps {
            if wire.is_empty() {
                break;
            }
            now += 1000;
            let mut next = Vec::new();
            for (from_a, seg) in wire.drain(..) {
                let hdr = SegHeader {
                    src_port: 0,
                    dst_port: 0,
                    seq: seg.seq,
                    ack: seg.ack,
                    flags: seg.flags,
                    payload_len: seg.payload_len,
                };
                if from_a {
                    for r in b.on_segment(now, &hdr) {
                        next.push((false, r));
                    }
                } else {
                    for r in a.on_segment(now, &hdr) {
                        next.push((true, r));
                    }
                    for r in a.pump(now) {
                        next.push((true, r));
                    }
                }
            }
            wire = next;
        }
        (a, b)
    }

    #[test]
    fn bulk_transfer_completes() {
        let (a, b) = run_lossless(50_000, 10_000);
        assert_eq!(b.delivered, 50_000);
        assert_eq!(a.bytes_acked(), 50_000);
        assert_eq!(a.retransmits, 0);
    }

    #[test]
    fn slow_start_doubles_window() {
        let mut a = TcpConn::new(1, 2, 1000);
        a.bytes_to_send = u64::MAX;
        let w0 = a.pump(0).len(); // initial cwnd = 2
        assert_eq!(w0, 2);
        // ACK both: cwnd 2 -> 4.
        let ack = SegHeader {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 2000,
            flags: flags::ACK,
            payload_len: 0,
        };
        a.on_segment(1000, &ack);
        let w1 = a.pump(1000).len();
        assert_eq!(w1, 4);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut a = TcpConn::new(1, 2, 1000);
        a.ssthresh = 2.0; // force CA immediately
        a.bytes_to_send = u64::MAX;
        let before = a.cwnd;
        let segs = a.pump(0);
        let mut acked = 0;
        for s in &segs {
            acked += s.payload_len as u32;
        }
        let ack = SegHeader {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: acked,
            flags: flags::ACK,
            payload_len: 0,
        };
        a.on_segment(1000, &ack);
        // Gained ~1 MSS per cwnd of data.
        assert!(a.cwnd - before > 0.9 && a.cwnd - before < 1.1, "cwnd {} -> {}", before, a.cwnd);
    }

    #[test]
    fn triple_dupack_fast_retransmit() {
        let mut a = TcpConn::new(1, 2, 1000);
        a.bytes_to_send = u64::MAX;
        a.cwnd = 8.0;
        let _segs = a.pump(0);
        let cwnd_before = a.cwnd;
        let dup = SegHeader {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: flags::ACK,
            payload_len: 0,
        };
        assert!(a.on_segment(10, &dup).is_empty());
        assert!(a.on_segment(20, &dup).is_empty());
        let rtx = a.on_segment(30, &dup);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 0);
        assert!(a.cwnd < cwnd_before);
        assert_eq!(a.retransmits, 1);
    }

    #[test]
    fn rto_go_back_n() {
        let mut a = TcpConn::new(1, 2, 1000);
        a.bytes_to_send = u64::MAX;
        let segs = a.pump(0);
        assert!(!segs.is_empty());
        let deadline = a.rto_deadline().unwrap();
        let rtx = a.on_rto(deadline);
        assert!(!rtx.is_empty());
        assert_eq!(rtx[0].seq, 0);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.cwnd as u32, 1);
        // Backoff doubles the next deadline interval.
        let d2 = a.rto_deadline().unwrap();
        assert!(d2 - deadline >= a.rto_ns);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut b = TcpConn::new(2, 1, 1000);
        let seg = |seq, len| SegHeader {
            src_port: 0,
            dst_port: 0,
            seq,
            ack: 0,
            flags: 0,
            payload_len: len,
        };
        // Deliver 1000..2000 first (out of order).
        let acks = b.on_segment(0, &seg(1000, 1000));
        assert_eq!(acks[0].ack, 0); // dup-ack semantics
        assert_eq!(b.delivered, 0);
        let acks = b.on_segment(10, &seg(0, 1000));
        assert_eq!(acks[0].ack, 2000); // both segments now in order
        assert_eq!(b.delivered, 2000);
    }

    #[test]
    fn rtt_estimation_converges() {
        let mut a = TcpConn::new(1, 2, 1000);
        a.bytes_to_send = u64::MAX;
        let mut now = 0;
        for _ in 0..20 {
            let segs = a.pump(now);
            let end = segs.iter().map(|s| s.seq + s.payload_len as u32).max().unwrap_or(a.snd_una);
            now += 5_000_000; // 5 ms RTT
            let ack = SegHeader {
                src_port: 0,
                dst_port: 0,
                seq: 0,
                ack: end,
                flags: flags::ACK,
                payload_len: 0,
            };
            a.on_segment(now, &ack);
        }
        let srtt = a.srtt_ns().unwrap();
        assert!((4_000_000..6_000_000).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn seg_frame_roundtrip() {
        let src = Ipv4Address::from_host_id(1);
        let dst = Ipv4Address::from_host_id(2);
        let hdr = SegHeader {
            src_port: 7,
            dst_port: 9,
            seq: 100,
            ack: 50,
            flags: flags::ACK,
            payload_len: 64,
        };
        let frame = seg_frame(src, dst, &hdr);
        let (s, d, back) = parse_seg_frame(&frame).unwrap();
        assert_eq!((s, d), (src, dst));
        assert_eq!(back, hdr);
    }

    #[test]
    fn paced_sender_rate() {
        // 10 Mb/s with 1000B payloads (+42B overhead): one packet per
        // 833.6 us.
        let mut p = PacedSender::new(10e6, 1000);
        let mut sent = 0;
        let mut now = 0;
        while now < 1_000_000_000 {
            sent += p.due(now);
            now = p.next_deadline();
        }
        // ~1200 packets in 1 s.
        assert!((1100..1300).contains(&sent), "sent {sent}");
    }

    #[test]
    fn paced_sender_rate_change() {
        let mut p = PacedSender::new(1e6, 1000);
        let d1 = p.interval_ns();
        p.set_rate(2e6);
        assert!(p.interval_ns() < d1);
    }
}
