//! The unified end-host application harness.
//!
//! Every TPP application repeats the same edge wiring: create a [`Shim`],
//! register probes (`add_tpp` + filter + sampling + aggregator), forward
//! echo frames, match completed TPPs back to the code that understands
//! them, and drive an [`Executor`] for reliable standalone probes. The
//! [`Harness`] builder packages that pattern once: applications declare
//! *probes* ([`Probe`] schemas from `tpp-core`) with typed completion
//! callbacks, and the produced [`Endhost`] implements the simulator's
//! `HostApp` with a single `on_frame`/`on_timer` entry.
//!
//! Three probe roles cover the paper's applications (§2):
//!
//! * [`Harness::stamp`] — piggy-back the probe on matching outgoing traffic
//!   (transparent mode, §4.2), optionally routing completions to an
//!   aggregator.
//! * [`Harness::launch`] — standalone probes sent on demand via
//!   [`Io::launch`], tracked with retries by the Executor (§4.4); the
//!   completion callback receives the matching token.
//! * [`Harness::listen`] — decode completions of an app ID this host
//!   receives (e.g. a NetSight-style collector that other hosts aggregate
//!   to).
//!
//! ```
//! use tpp_core::probe::Probe;
//! use tpp_endhost::harness::{Aggregator, Harness};
//! use tpp_endhost::Filter;
//!
//! struct Watcher {
//!     samples: Vec<u32>,
//! }
//!
//! let probe = Probe::stack("queues").field("q", "Queue:QueueOccupancyPkts").app_id(7);
//! let app = Harness::new(Watcher { samples: Vec::new() })
//!     .stamp_with(probe, Filter::udp(), 1, Aggregator::Local, |w, _io, c| {
//!         w.samples.extend(c.hops().filter_map(|r| r.get("q")));
//!     })
//!     .build()
//!     .unwrap();
//! // `app` implements tpp_netsim::HostApp; hand it to Network::set_app.
//! assert!(app.samples.is_empty()); // Deref exposes the state
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use tpp_core::probe::Probe;
use tpp_core::wire::{build_standalone, Ipv4Address, Tpp};
use tpp_netsim::{HostApp, HostCtx};

use crate::cp::{CentralCp, CpError, Policy};
use crate::executor::{Executor, ExecutorConfig, ProbeOutcome};
use crate::filter::Filter;
use crate::shim::{mac_of_ip, CompletedTpp, FlowRef, Shim};

/// Timer token reserved for the harness's executor retry sweep; application
/// tokens must stay below it.
pub const RETRY_TOKEN: u64 = u64::MAX;

/// Errors from building a [`Harness`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// A probe schema failed to compile.
    Probe(tpp_core::probe::ProbeError),
    /// A compiled probe violated the configured [`Policy`].
    Policy(CpError),
    /// Two registrations share an app ID; completions could not be routed.
    DuplicateAppId(u16),
    /// `launch`/`launch_mapped` registrations need [`Harness::executor`].
    NoExecutor,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Probe(e) => write!(f, "probe: {e}"),
            HarnessError::Policy(e) => write!(f, "policy: {e}"),
            HarnessError::DuplicateAppId(id) => write!(f, "duplicate app id {id}"),
            HarnessError::NoExecutor => write!(f, "launch probes require an executor config"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Where a stamped probe's completions are sent (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregator {
    /// Default: echo completions back to the instrumented packet's source.
    Source,
    /// This host consumes its own completions (receiver-side observation).
    Local,
    /// A dedicated collector host.
    Remote(Ipv4Address),
}

/// A completed probe surfaced to its typed callback.
pub struct Completion {
    /// The schema that decodes this TPP.
    pub probe: Arc<Probe>,
    pub tpp: Tpp,
    /// Source of the packet that carried (or echoed) the TPP.
    pub from: Ipv4Address,
    /// The instrumented packet's flow.
    pub flow: FlowRef,
    /// Executor token for `launch`ed probes; `None` for stamped/listened.
    pub token: Option<u32>,
}

impl Completion {
    /// Typed per-hop records of the completed TPP.
    pub fn hops(&self) -> tpp_core::probe::Records<'_, Tpp> {
        self.probe.records(&self.tpp)
    }
}

type StartFn<S> = Box<dyn FnMut(&mut S, &mut Io<'_, '_>) + Send>;
type TimerFn<S> = Box<dyn FnMut(&mut S, &mut Io<'_, '_>, u64) + Send>;
type DeliverFn<S> = Box<dyn FnMut(&mut S, &mut Io<'_, '_>, Vec<u8>) + Send>;
type CompletionFn<S> = Box<dyn FnMut(&mut S, &mut Io<'_, '_>, Completion) + Send>;
type FailedFn<S> = Box<dyn FnMut(&mut S, &mut Io<'_, '_>, u32) + Send>;
type RawFn<S> = Box<dyn FnMut(&mut S, &[u8]) + Send>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Stamp { sample_frequency: u32 },
    Launch,
    Listen,
}

struct Registration {
    app_id: u16,
    probe: Arc<Probe>,
    /// Compiled template (stamp: installed in the filter table; launch:
    /// cloned per send).
    template: Tpp,
    filter: Filter,
    aggregator: Aggregator,
    role: Role,
    /// Load-time proof produced by the verifier-backed policy check in
    /// [`Harness::build`]; `None` when no policy is configured.
    verified: Option<tpp_core::verify::Verified>,
}

/// The shim/executor half of an [`Endhost`], shared with callbacks as part
/// of [`Io`].
struct Core {
    shim: Option<Shim>,
    exec: Option<Executor>,
    exec_cfg: Option<ExecutorConfig>,
    seed: Option<u64>,
    regs: Vec<Registration>,
    aggregate_local: Vec<u16>,
    /// Bytes of standalone probe/update traffic sent (first transmissions
    /// and retries) — the §2.2 control-overhead numerator.
    probe_bytes_sent: u64,
}

struct Handlers<S> {
    on_start: Option<StartFn<S>>,
    on_timer: Option<TimerFn<S>>,
    on_deliver: Option<DeliverFn<S>>,
    on_failed: Option<FailedFn<S>>,
    on_raw: Option<RawFn<S>>,
    /// Completion callbacks keyed by registration index (app IDs may still
    /// be rewritten by `register` inheritance at build time).
    completions: Vec<(usize, CompletionFn<S>)>,
}

/// Builder for an [`Endhost`]: state + probes + callbacks.
pub struct Harness<S> {
    state: S,
    core: Core,
    handlers: Handlers<S>,
    policy: Option<Policy>,
    default_app_id: u16,
    err: Option<HarnessError>,
}

impl<S: Send + 'static> Harness<S> {
    pub fn new(state: S) -> Harness<S> {
        Harness {
            state,
            core: Core {
                shim: None,
                exec: None,
                exec_cfg: None,
                seed: None,
                regs: Vec::new(),
                aggregate_local: Vec::new(),
                probe_bytes_sent: 0,
            },
            handlers: Handlers {
                on_start: None,
                on_timer: None,
                on_deliver: None,
                on_failed: None,
                on_raw: None,
                completions: Vec::new(),
            },
            policy: None,
            default_app_id: 0,
            err: None,
        }
    }

    /// Seed for the shim's sampling RNG (default: the host's node id).
    #[must_use]
    pub fn shim_seed(mut self, seed: u64) -> Self {
        self.core.seed = Some(seed);
        self
    }

    /// Enable the reliable-execution [`Executor`] (required by
    /// [`Harness::launch`]); retries run on the reserved [`RETRY_TOKEN`]
    /// timer.
    #[must_use]
    pub fn executor(mut self, cfg: ExecutorConfig) -> Self {
        self.core.exec_cfg = Some(cfg);
        self
    }

    /// Validate every probe against `policy` at build time (§4.1: a TPP
    /// that violates its app's segments "is never installed").
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Register with the central TPP-CP: allocates (or re-uses — the call
    /// is idempotent per name) an app ID, and adopts the app's [`Policy`].
    /// Probes compiled with app ID 0 inherit the allocated ID.
    #[must_use]
    pub fn register(mut self, cp: &mut CentralCp, name: &str) -> Self {
        let app_id = cp.register_app(name);
        self.default_app_id = app_id;
        match cp.policy_for(app_id, false) {
            Ok(p) => self.policy = Some(p),
            Err(e) => self.err = Some(HarnessError::Policy(e)),
        }
        self
    }

    fn add(
        mut self,
        probe: Probe,
        filter: Filter,
        aggregator: Aggregator,
        role: Role,
        cb: Option<CompletionFn<S>>,
    ) -> Self {
        if self.err.is_some() {
            return self;
        }
        let template = match probe.compile() {
            Ok(t) => t,
            Err(e) => {
                self.err = Some(HarnessError::Probe(e));
                return self;
            }
        };
        // App-id inheritance, policy validation, executor and duplicate
        // checks all happen in build(), so registration order relative to
        // register()/policy()/executor() does not matter.
        let app_id = template.app_id;
        let index = self.core.regs.len();
        self.core.regs.push(Registration {
            app_id,
            probe: Arc::new(probe),
            template,
            filter,
            aggregator,
            role,
            verified: None,
        });
        if let Some(cb) = cb {
            self.handlers.completions.push((index, cb));
        }
        self
    }

    /// Piggy-back `probe` on outgoing traffic matching `filter`, one in
    /// `sample_frequency` packets (§4.1), without observing completions.
    #[must_use]
    pub fn stamp(
        self,
        probe: Probe,
        filter: Filter,
        sample_frequency: u32,
        aggregator: Aggregator,
    ) -> Self {
        self.add(probe, filter, aggregator, Role::Stamp { sample_frequency }, None)
    }

    /// Like [`Harness::stamp`], with a typed completion callback.
    #[must_use]
    pub fn stamp_with(
        self,
        probe: Probe,
        filter: Filter,
        sample_frequency: u32,
        aggregator: Aggregator,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, Completion) + Send + 'static,
    ) -> Self {
        self.add(probe, filter, aggregator, Role::Stamp { sample_frequency }, Some(Box::new(cb)))
    }

    /// Register a standalone probe sent on demand with [`Io::launch`];
    /// completions (matched by the Executor) invoke `cb` with the token.
    #[must_use]
    pub fn launch(
        self,
        probe: Probe,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, Completion) + Send + 'static,
    ) -> Self {
        self.add(probe, Filter::any(), Aggregator::Source, Role::Launch, Some(Box::new(cb)))
    }

    /// Decode completions of `probe`'s app ID arriving at this host (the
    /// collector side of a remote aggregation).
    #[must_use]
    pub fn listen(
        self,
        probe: Probe,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, Completion) + Send + 'static,
    ) -> Self {
        self.add(probe, Filter::any(), Aggregator::Source, Role::Listen, Some(Box::new(cb)))
    }

    /// Consume completions of `app_id` locally (sets this host as the
    /// app's aggregator) without decoding them — keeps foreign TPP echoes
    /// off the network, e.g. on a throughput sink's ACK path.
    #[must_use]
    pub fn aggregate_local(mut self, app_id: u16) -> Self {
        self.core.aggregate_local.push(app_id);
        self
    }

    /// Called once before the first event, after the shim and executor
    /// exist (send initial probes, arm timers here).
    #[must_use]
    pub fn on_start(mut self, cb: impl FnMut(&mut S, &mut Io<'_, '_>) + Send + 'static) -> Self {
        self.handlers.on_start = Some(Box::new(cb));
        self
    }

    /// Application timer dispatch ([`RETRY_TOKEN`] is consumed internally).
    #[must_use]
    pub fn on_timer(
        mut self,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, u64) + Send + 'static,
    ) -> Self {
        self.handlers.on_timer = Some(Box::new(cb));
        self
    }

    /// TPP-stripped frames for the local stack (§4.2). Without a handler
    /// they are dropped.
    #[must_use]
    pub fn on_deliver(
        mut self,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, Vec<u8>) + Send + 'static,
    ) -> Self {
        self.handlers.on_deliver = Some(Box::new(cb));
        self
    }

    /// Launched probes that exhausted their retries (token per failure).
    #[must_use]
    pub fn on_failed(
        mut self,
        cb: impl FnMut(&mut S, &mut Io<'_, '_>, u32) + Send + 'static,
    ) -> Self {
        self.handlers.on_failed = Some(Box::new(cb));
        self
    }

    /// Observe every raw frame before shim processing (wire-byte
    /// accounting for the §6.2 overhead experiments).
    #[must_use]
    pub fn on_raw_frame(mut self, cb: impl FnMut(&mut S, &[u8]) + Send + 'static) -> Self {
        self.handlers.on_raw = Some(Box::new(cb));
        self
    }

    /// Finish the wiring: resolve inherited app IDs, validate every probe
    /// against the policy, and check executor/duplicate constraints. These
    /// run here — not at registration — so builder calls compose in any
    /// order.
    pub fn build(mut self) -> Result<Endhost<S>, HarnessError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        for reg in &mut self.core.regs {
            if reg.template.app_id == 0 {
                reg.template.app_id = self.default_app_id;
                reg.app_id = self.default_app_id;
            }
            if let Some(policy) = &self.policy {
                // Verifier-backed validation: everything `Policy::validate`
                // catches plus packet-memory safety, and a fast-path token
                // on success (recorded on the filter-table entry).
                reg.verified =
                    Some(policy.validate_verified(&reg.template).map_err(HarnessError::Policy)?);
            }
            if matches!(reg.role, Role::Launch) && self.core.exec_cfg.is_none() {
                return Err(HarnessError::NoExecutor);
            }
        }
        for (i, reg) in self.core.regs.iter().enumerate() {
            if self.core.regs[..i].iter().any(|r| r.app_id == reg.app_id) {
                return Err(HarnessError::DuplicateAppId(reg.app_id));
            }
        }
        Ok(Endhost { state: self.state, core: self.core, handlers: self.handlers })
    }
}

/// What probe callbacks can do: the simulator context plus the harness's
/// shim/executor.
pub struct Io<'a, 'b> {
    /// The simulator host context (timers, `now`, raw sends, frame pool).
    pub ctx: &'a mut HostCtx<'b>,
    core: &'a mut Core,
}

impl Io<'_, '_> {
    /// Transmit through the shim's stamp path (piggy-backs a TPP when a
    /// stamped probe's filter matches; §4.2). Returns the wire length.
    pub fn send_data(&mut self, frame: Vec<u8>) -> usize {
        let frame = match self.core.shim.as_mut() {
            Some(shim) => shim.outgoing(frame),
            None => frame,
        };
        let len = frame.len();
        self.ctx.send(frame);
        len
    }

    /// Launch the registered standalone probe `app_id` toward `dst` with
    /// reliable retries. Returns the executor token, or `None` when no such
    /// registration exists.
    pub fn launch(&mut self, app_id: u16, dst: Ipv4Address) -> Option<u32> {
        self.launch_mapped(app_id, dst, |_| {})
    }

    /// Like [`Io::launch`], mutating the frame before (first) transmission —
    /// e.g. rewriting the source port to steer the probe onto an ECMP path.
    /// Retransmissions resend the unmapped frame.
    pub fn launch_mapped(
        &mut self,
        app_id: u16,
        dst: Ipv4Address,
        map: impl FnOnce(&mut Vec<u8>),
    ) -> Option<u32> {
        let tpp = self
            .core
            .regs
            .iter()
            .find(|r| r.app_id == app_id && r.role == Role::Launch)?
            .template
            .clone();
        let exec = self.core.exec.as_mut()?;
        let (token, mut frame) = exec.send(self.ctx.now, dst, tpp);
        map(&mut frame);
        self.core.probe_bytes_sent += frame.len() as u64;
        self.ctx.send(frame);
        if let Some(deadline) = exec.next_deadline() {
            self.ctx.set_timer_at(deadline, RETRY_TOKEN);
        }
        Some(token)
    }

    /// Fire-and-forget a standalone TPP (e.g. a write/update program whose
    /// effect the next collect probe verifies, §2.2). Counted in
    /// [`Endhost::probe_bytes_sent`].
    pub fn send_standalone(&mut self, tpp: &Tpp, dst: Ipv4Address, src_port: u16) -> usize {
        let frame = build_standalone(self.ctx.mac, mac_of_ip(dst), self.ctx.ip, dst, src_port, tpp);
        let len = frame.len();
        self.core.probe_bytes_sent += len as u64;
        self.ctx.send(frame);
        len
    }

    /// Bytes of standalone probe traffic sent so far (incl. retries).
    pub fn probe_bytes_sent(&self) -> u64 {
        self.core.probe_bytes_sent
    }

    /// The underlying shim, for counters and exotic needs.
    pub fn shim(&mut self) -> Option<&mut Shim> {
        self.core.shim.as_mut()
    }
}

/// A wired TPP end-host application: shim + executor + typed probe
/// dispatch around user state `S` (built by [`Harness`]).
///
/// Implements the simulator's `HostApp`; derefs to `S` so experiment
/// drivers read results straight off the state.
pub struct Endhost<S> {
    /// The application's own state, also reachable through `Deref`.
    pub state: S,
    core: Core,
    handlers: Handlers<S>,
}

impl<S> Deref for Endhost<S> {
    type Target = S;
    fn deref(&self) -> &S {
        &self.state
    }
}

impl<S> DerefMut for Endhost<S> {
    fn deref_mut(&mut self) -> &mut S {
        &mut self.state
    }
}

impl<S> Endhost<S> {
    /// Bytes of standalone probe/update traffic sent (incl. retries) — the
    /// §2.2 control-overhead numerator.
    pub fn probe_bytes_sent(&self) -> u64 {
        self.core.probe_bytes_sent
    }

    /// Shim counters (None before `start`).
    pub fn shim(&self) -> Option<&Shim> {
        self.core.shim.as_ref()
    }

    /// The reliable-execution engine with its retry/completion counters
    /// (None when the harness was built without [`Harness::executor`]).
    pub fn executor(&self) -> Option<&Executor> {
        self.core.exec.as_ref()
    }

    fn dispatch_completion(&mut self, ctx: &mut HostCtx<'_>, done: CompletedTpp) {
        // Executor-tracked first: a launched probe's completion must consume
        // its pending entry exactly once.
        let mut token = None;
        if let Some(exec) = self.core.exec.as_mut() {
            if let Some(reg) = self.core.regs.iter().find(|r| r.app_id == done.app_id) {
                if reg.role == Role::Launch {
                    match exec.on_completed_full(&done) {
                        Some(ProbeOutcome::Completed { token: t, .. }) => token = Some(t),
                        // Duplicate or stale completion: drop, like the
                        // hand-written apps did.
                        _ => return,
                    }
                }
            }
        }
        let Some((index, reg)) =
            self.core.regs.iter().enumerate().find(|(_, r)| r.app_id == done.app_id)
        else {
            return;
        };
        let probe = reg.probe.clone();
        if let Some((_, cb)) = self.handlers.completions.iter_mut().find(|(i, _)| *i == index) {
            let completion =
                Completion { probe, tpp: done.tpp, from: done.from, flow: done.flow, token };
            cb(&mut self.state, &mut Io { ctx, core: &mut self.core }, completion);
        }
    }

    fn poll_retries(&mut self, ctx: &mut HostCtx<'_>) {
        let Some(exec) = self.core.exec.as_mut() else { return };
        let (resend, failed) = exec.poll(ctx.now);
        for frame in resend {
            self.core.probe_bytes_sent += frame.len() as u64;
            ctx.send(frame);
        }
        if let Some(deadline) = self.core.exec.as_ref().and_then(Executor::next_deadline) {
            ctx.set_timer_at(deadline, RETRY_TOKEN);
        }
        if let Some(cb) = &mut self.handlers.on_failed {
            for outcome in failed {
                if let ProbeOutcome::Failed { token } = outcome {
                    cb(&mut self.state, &mut Io { ctx, core: &mut self.core }, token);
                }
            }
        }
    }
}

impl<S: Send + 'static> HostApp for Endhost<S> {
    fn start(&mut self, ctx: &mut HostCtx<'_>) {
        let seed = self.core.seed.unwrap_or(ctx.node.0 as u64);
        let mut shim = Shim::new(ctx.ip, ctx.mac, seed);
        for reg in &self.core.regs {
            if let Role::Stamp { sample_frequency } = reg.role {
                shim.add_tpp_verified(
                    reg.app_id,
                    reg.filter,
                    reg.template.clone(),
                    reg.verified,
                    sample_frequency,
                    0,
                );
            }
            match reg.aggregator {
                Aggregator::Source => {}
                Aggregator::Local => shim.set_aggregator(reg.app_id, ctx.ip),
                Aggregator::Remote(ip) => shim.set_aggregator(reg.app_id, ip),
            }
        }
        for &app_id in &self.core.aggregate_local {
            shim.set_aggregator(app_id, ctx.ip);
        }
        self.core.shim = Some(shim);
        self.core.exec = self.core.exec_cfg.map(|cfg| Executor::new(ctx.ip, ctx.mac, cfg));
        if let Some(cb) = &mut self.handlers.on_start {
            cb(&mut self.state, &mut Io { ctx, core: &mut self.core });
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
        if let Some(cb) = &mut self.handlers.on_raw {
            cb(&mut self.state, &frame);
        }
        let Some(shim) = self.core.shim.as_mut() else { return };
        let out = shim.incoming(frame);
        if let Some(echo) = out.echo {
            ctx.send(echo);
        }
        if let Some(done) = out.completed {
            self.dispatch_completion(ctx, done);
        }
        if let Some(inner) = out.deliver {
            if let Some(cb) = &mut self.handlers.on_deliver {
                cb(&mut self.state, &mut Io { ctx, core: &mut self.core }, inner);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token == RETRY_TOKEN {
            self.poll_retries(ctx);
            return;
        }
        if let Some(cb) = &mut self.handlers.on_timer {
            cb(&mut self.state, &mut Io { ctx, core: &mut self.core }, token);
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_probe() -> Probe {
        Probe::stack("t").field("s", "Switch:SwitchID")
    }

    #[test]
    fn builder_calls_compose_in_any_order() {
        // launch() before executor() must not error.
        let ok = Harness::new(0u32)
            .launch(read_probe().app_id(1), |_, _, _| {})
            .executor(ExecutorConfig::default())
            .build();
        assert!(ok.is_ok());
        // ...but a launch probe with no executor at all still does.
        let err = Harness::new(0u32).launch(read_probe().app_id(1), |_, _, _| {}).build();
        assert!(matches!(err, Err(HarnessError::NoExecutor)));
    }

    #[test]
    fn register_applies_to_probes_added_before_it() {
        // A write probe added *before* register() must still be validated
        // against the CP policy adopted by register() — which rejects it,
        // since the app holds no write grant.
        let mut cp = CentralCp::new();
        let write_probe = Probe::hop("w").store("r", "Link:AppSpecific_0");
        let err = Harness::new(0u32)
            .stamp(write_probe, Filter::udp(), 1, Aggregator::Source)
            .register(&mut cp, "reader")
            .build();
        assert!(matches!(err, Err(HarnessError::Policy(_))), "{:?}", err.err());
        // A read probe passes, inheriting the CP-allocated app id.
        let ok = Harness::new(0u32)
            .stamp(read_probe(), Filter::udp(), 1, Aggregator::Source)
            .register(&mut cp, "reader")
            .build()
            .unwrap();
        assert_eq!(ok.core.regs[0].template.app_id, cp.register_app("reader"));
    }

    #[test]
    fn duplicate_app_ids_rejected_at_build() {
        let err = Harness::new(0u32)
            .stamp(read_probe().app_id(7), Filter::udp(), 1, Aggregator::Source)
            .listen(read_probe().app_id(7), |_, _, _| {})
            .build();
        assert!(matches!(err, Err(HarnessError::DuplicateAppId(7))));
    }
}
