//! The TPP control plane (TPP-CP, §4.1) and security policy (§4.3).
//!
//! TPP-CP is "a central entity to keep track of running TPP applications
//! and manage switch memory". [`CentralCp`] allocates application IDs and
//! exclusive switch-memory segments (the x86-GDT-like access-control
//! table); [`Policy`] is the per-host enforcement: TPPs are statically
//! analyzed against the owning app's segments before installation, and a
//! hypervisor-style mode can reject any TPP containing writes.

use std::collections::BTreeMap;

use tpp_core::addr::{link_ns, Address, Namespace};
use tpp_core::analysis::{check_segments, writes_switch_memory, Segment, Violation};
use tpp_core::verify::{verify, Diagnostic, Verdict, Verified, VerifyOptions};
use tpp_core::wire::Tpp;

/// Errors from TPP-CP API calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CpError {
    /// The TPP touches memory outside the app's permitted segments.
    AccessViolation(Vec<Violation>),
    /// Write instructions are disabled for this app/host (§4.3).
    WritesForbidden,
    /// The instruction budget or memory bounds are exceeded.
    Malformed(String),
    UnknownApp(u16),
    /// No free `AppSpecific` registers to satisfy an allocation.
    OutOfMemory,
    /// The static verifier denied the program (verifier-backed policy
    /// mode); carries the deny-class diagnostics.
    Rejected(Vec<Diagnostic>),
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::AccessViolation(v) => write!(f, "access violations: {}", v.len()),
            CpError::WritesForbidden => write!(f, "write instructions forbidden"),
            CpError::Malformed(m) => write!(f, "malformed TPP: {m}"),
            CpError::UnknownApp(id) => write!(f, "unknown app {id}"),
            CpError::OutOfMemory => write!(f, "no free per-link registers"),
            CpError::Rejected(diags) => {
                write!(f, "verifier rejected the TPP: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CpError {}

/// One registered application and its memory grant.
#[derive(Clone, Debug)]
pub struct AppRecord {
    pub app_id: u16,
    pub name: String,
    pub segments: Vec<Segment>,
    /// First `AppSpecific` register granted (with `n_regs`, the exclusive
    /// per-link block), so re-registration can return the original grant.
    pub first_reg: u16,
    pub n_regs: u16,
}

/// The central TPP-CP: application registry and switch-memory allocator.
///
/// Memory allocation is modeled on the paper's RCP example: applications
/// ask for a number of per-link `AppSpecific` registers, which they then
/// own exclusively on every link.
#[derive(Debug)]
pub struct CentralCp {
    apps: BTreeMap<u16, AppRecord>,
    next_app_id: u16,
    /// Next free `AppSpecific` register index (allocated contiguously).
    next_app_reg: u16,
}

impl Default for CentralCp {
    fn default() -> Self {
        // Not derived: app IDs start at 1 (0 marks "unassigned" on the wire).
        CentralCp::new()
    }
}

/// Read-only statistics every app may query (Table 2): the whole address
/// space *except* the writable app registers owned by others.
fn read_everything_segment() -> Segment {
    Segment::read_only(Address::new(0), Address::new(0xFFFF))
}

impl CentralCp {
    pub fn new() -> Self {
        CentralCp { apps: BTreeMap::new(), next_app_id: 1, next_app_reg: 0 }
    }

    /// Register an application that only reads network state.
    ///
    /// Idempotent per name: re-registering returns the existing app ID.
    pub fn register_app(&mut self, name: &str) -> u16 {
        self.register_app_with_regs(name, 0).expect("zero-register registration cannot fail").0
    }

    /// Register an application and grant it `n_regs` exclusive per-link
    /// `AppSpecific` registers (read-write). Returns `(app_id, first_reg)`.
    ///
    /// Idempotent per name: re-registering an existing name returns its
    /// original `(app_id, first_reg)` grant instead of minting a duplicate
    /// (the requested `n_regs` is ignored in that case).
    pub fn register_app_with_regs(
        &mut self,
        name: &str,
        n_regs: u16,
    ) -> Result<(u16, u16), CpError> {
        if let Some(existing) = self.apps.values().find(|a| a.name == name) {
            return Ok((existing.app_id, existing.first_reg));
        }
        if self.next_app_reg + n_regs > link_ns::APP_COUNT {
            return Err(CpError::OutOfMemory);
        }
        let first = self.next_app_reg;
        self.next_app_reg += n_regs;
        let app_id = self.next_app_id;
        self.next_app_id += 1;

        let mut segments = vec![read_everything_segment()];
        if n_regs > 0 {
            // Grant the registers in both the per-packet [Link:...] segment
            // and every explicit [Link$p:...] block.
            segments.push(Segment::read_write(
                Namespace::CurrentLink.at(link_ns::APP_BASE + first),
                Namespace::CurrentLink.at(link_ns::APP_BASE + first + n_regs - 1),
            ));
            for p in 0..tpp_core::addr::layout::MAX_PORTS {
                segments.push(Segment::read_write(
                    Namespace::Link(p as u8).at(link_ns::APP_BASE + first),
                    Namespace::Link(p as u8).at(link_ns::APP_BASE + first + n_regs - 1),
                ));
            }
        }
        self.apps.insert(
            app_id,
            AppRecord { app_id, name: name.to_string(), segments, first_reg: first, n_regs },
        );
        Ok((app_id, first))
    }

    /// Grant an app write access to additional addresses (e.g. stage SRAM
    /// for a measurement app, or `[PacketMetadata:OutputPort]` for a
    /// rerouting app).
    pub fn grant(&mut self, app_id: u16, segment: Segment) -> Result<(), CpError> {
        let app = self.apps.get_mut(&app_id).ok_or(CpError::UnknownApp(app_id))?;
        app.segments.push(segment);
        Ok(())
    }

    pub fn app(&self, app_id: u16) -> Option<&AppRecord> {
        self.apps.get(&app_id)
    }

    /// Build the per-host enforcement view for one app.
    pub fn policy_for(&self, app_id: u16, drop_writes: bool) -> Result<Policy, CpError> {
        let app = self.apps.get(&app_id).ok_or(CpError::UnknownApp(app_id))?;
        Ok(Policy { app_id, segments: app.segments.clone(), drop_writes })
    }
}

/// Per-host, per-app static enforcement (§4.1, §4.3).
#[derive(Clone, Debug)]
pub struct Policy {
    pub app_id: u16,
    pub segments: Vec<Segment>,
    /// Hypervisor mode: "drop any TPPs with write instructions" (§4.3).
    pub drop_writes: bool,
}

impl Policy {
    /// Unrestricted policy (trusted infrastructure apps).
    pub fn trust_all(app_id: u16) -> Policy {
        Policy {
            app_id,
            segments: vec![Segment::read_write(Address::new(0), Address::new(0xFFFF))],
            drop_writes: false,
        }
    }

    /// Validate a TPP before installation (`add_tpp` returns failure and
    /// "the TPP is never installed" on violation, §4.1).
    pub fn validate(&self, tpp: &Tpp) -> Result<(), CpError> {
        if !tpp.within_instruction_budget() {
            return Err(CpError::Malformed(format!(
                "{} instructions exceed the budget",
                tpp.instrs.len()
            )));
        }
        if !tpp.memory.len().is_multiple_of(4) {
            return Err(CpError::Malformed("packet memory not word-aligned".into()));
        }
        if self.drop_writes && writes_switch_memory(&tpp.instrs) {
            return Err(CpError::WritesForbidden);
        }
        let violations = check_segments(&tpp.instrs, &self.segments);
        if !violations.is_empty() {
            return Err(CpError::AccessViolation(violations));
        }
        Ok(())
    }

    /// Run the full abstract-interpretation verifier against this app's
    /// segment table. Unlike [`Policy::validate`], this also proves
    /// packet-memory safety (stack/hop-window bounds, capacity,
    /// uninitialized reads) — everything the switch fast path would
    /// otherwise have to re-check per packet.
    pub fn verify(&self, tpp: &Tpp) -> Verdict {
        verify(tpp, VerifyOptions { hops: None, segments: Some(&self.segments) })
    }

    /// Verifier-backed installation check: every [`Policy::validate`]
    /// failure plus packet-memory safety, reported as typed diagnostics.
    /// On success, returns the [`Verified`] token for the switch's
    /// unchecked fast path.
    pub fn validate_verified(&self, tpp: &Tpp) -> Result<Verified, CpError> {
        if self.drop_writes && writes_switch_memory(&tpp.instrs) {
            return Err(CpError::WritesForbidden);
        }
        let verdict = self.verify(tpp);
        match verdict.token() {
            Some(token) => Ok(token),
            None => Err(CpError::Rejected(verdict.denials().cloned().collect())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::asm::{assemble, TppBuilder};

    #[test]
    fn register_and_allocate_registers() {
        let mut cp = CentralCp::new();
        let (rcp, first) = cp.register_app_with_regs("rcp", 2).unwrap();
        assert_eq!(first, 0);
        let (other, second) = cp.register_app_with_regs("conga", 1).unwrap();
        assert_ne!(rcp, other);
        assert_eq!(second, 2); // exclusive, contiguous
    }

    #[test]
    fn register_app_is_idempotent_per_name() {
        let mut cp = CentralCp::default(); // Default == new(): IDs start at 1
        let (a, first) = cp.register_app_with_regs("rcp", 2).unwrap();
        assert_eq!(a, 1);
        let (b, first2) = cp.register_app_with_regs("rcp", 4).unwrap();
        assert_eq!((a, first), (b, first2));
        assert_eq!(cp.register_app("rcp"), a);
        // A different name still gets a fresh grant after the first block.
        let (_, f) = cp.register_app_with_regs("mon", 1).unwrap();
        assert_eq!(f, 2);
    }

    #[test]
    fn allocation_exhausts() {
        let mut cp = CentralCp::new();
        assert!(cp.register_app_with_regs("big", 32).is_ok());
        assert_eq!(cp.register_app_with_regs("more", 1), Err(CpError::OutOfMemory));
    }

    #[test]
    fn rcp_tpp_validates_under_its_own_policy() {
        let mut cp = CentralCp::new();
        let (app_id, first) = cp.register_app_with_regs("rcp", 2).unwrap();
        assert_eq!(first, 0);
        let policy = cp.policy_for(app_id, false).unwrap();
        // The §2.2 phase-3 update TPP writes AppSpecific_0/_1.
        let update = assemble(
            "
            .mode hop
            .perhop 12
            .hops 2
            CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
            STORE [Link:AppSpecific_1], [Packet:Hop[2]]
            ",
        )
        .unwrap();
        policy.validate(&update).unwrap();
    }

    #[test]
    fn foreign_registers_rejected() {
        let mut cp = CentralCp::new();
        let (rcp, _) = cp.register_app_with_regs("rcp", 2).unwrap(); // owns regs 0-1
        let (mon, _) = cp.register_app_with_regs("mon", 1).unwrap(); // owns reg 2
        let rcp_update = assemble(
            "
            .mode hop
            .perhop 8
            .hops 2
            STORE [Link:AppSpecific_1], [Packet:Hop[0]]
            ",
        )
        .unwrap();
        // rcp can write reg 1; mon cannot.
        cp.policy_for(rcp, false).unwrap().validate(&rcp_update).unwrap();
        let err = cp.policy_for(mon, false).unwrap().validate(&rcp_update);
        assert!(matches!(err, Err(CpError::AccessViolation(_))), "{err:?}");
    }

    #[test]
    fn reads_always_allowed() {
        let mut cp = CentralCp::new();
        let app = cp.register_app("ndb");
        let probe = assemble(
            "
            PUSH [Switch:ID]
            PUSH [PacketMetadata:MatchedEntryID]
            PUSH [PacketMetadata:InputPort]
            ",
        )
        .unwrap();
        cp.policy_for(app, false).unwrap().validate(&probe).unwrap();
        // Even in drop-writes mode, pure reads pass.
        cp.policy_for(app, true).unwrap().validate(&probe).unwrap();
    }

    #[test]
    fn hypervisor_mode_drops_writes() {
        let mut cp = CentralCp::new();
        let (app, _) = cp.register_app_with_regs("rcp", 2).unwrap();
        let update =
            assemble(".mode hop\n.perhop 8\n.hops 1\nSTORE [Link:AppSpecific_0], [Packet:Hop[0]]")
                .unwrap();
        assert_eq!(
            cp.policy_for(app, true).unwrap().validate(&update),
            Err(CpError::WritesForbidden)
        );
    }

    #[test]
    fn grant_extends_permissions() {
        let mut cp = CentralCp::new();
        let app = cp.register_app("rerouter");
        let reroute = TppBuilder::hop_mode(1)
            .store_m("PacketMetadata:OutputPort", 0)
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        assert!(cp.policy_for(app, false).unwrap().validate(&reroute).is_err());
        let out_port = tpp_core::addr::resolve_mnemonic("PacketMetadata:OutputPort").unwrap();
        cp.grant(app, Segment::read_write(out_port, out_port)).unwrap();
        cp.policy_for(app, false).unwrap().validate(&reroute).unwrap();
    }

    #[test]
    fn oversized_tpp_rejected() {
        let cp_policy = Policy::trust_all(1);
        let mut t = TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().build().unwrap();
        let i = t.instrs[0];
        t.instrs = vec![i; 6];
        assert!(matches!(cp_policy.validate(&t), Err(CpError::Malformed(_))));
    }

    #[test]
    fn unknown_app() {
        let cp = CentralCp::new();
        assert_eq!(cp.policy_for(42, false).err(), Some(CpError::UnknownApp(42)));
    }

    #[test]
    fn verifier_backed_policy_returns_token_for_owned_writes() {
        let mut cp = CentralCp::new();
        let (app_id, _) = cp.register_app_with_regs("rcp", 2).unwrap();
        let update = assemble(
            "
            .mode hop
            .perhop 12
            .hops 2
            CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
            STORE [Link:AppSpecific_1], [Packet:Hop[2]]
            ",
        )
        .unwrap();
        let policy = cp.policy_for(app_id, false).unwrap();
        let token = policy.validate_verified(&update).unwrap();
        assert!(token.covers(0, update.sp));
    }

    #[test]
    fn verifier_backed_policy_rejects_foreign_registers() {
        let mut cp = CentralCp::new();
        let (_, _) = cp.register_app_with_regs("rcp", 2).unwrap(); // owns regs 0-1
        let (mon, _) = cp.register_app_with_regs("mon", 1).unwrap(); // owns reg 2
        let rcp_update = assemble(
            "
            .mode hop
            .perhop 8
            .hops 2
            STORE [Link:AppSpecific_1], [Packet:Hop[0]]
            ",
        )
        .unwrap();
        let err = cp.policy_for(mon, false).unwrap().validate_verified(&rcp_update);
        match err {
            Err(CpError::Rejected(diags)) => {
                assert!(!diags.is_empty());
                assert!(diags.iter().all(|d| d.severity() == tpp_core::verify::Severity::Deny));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn verifier_backed_policy_keeps_hypervisor_mode() {
        let mut cp = CentralCp::new();
        let (app, _) = cp.register_app_with_regs("rcp", 2).unwrap();
        let update =
            assemble(".mode hop\n.perhop 8\n.hops 1\nSTORE [Link:AppSpecific_0], [Packet:Hop[0]]")
                .unwrap();
        assert_eq!(
            cp.policy_for(app, true).unwrap().validate_verified(&update),
            Err(CpError::WritesForbidden)
        );
    }
}
