//! Proof of the zero-allocation forwarding path: in steady state, a switch
//! forwards packets — TPP-instrumented or plain — without touching the heap.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (queue rings grow to their working capacity), a measured run of
//! `receive` + `dequeue` cycles must perform **zero** allocations. The frame
//! buffer itself is recycled by the caller, exactly like the simulator does:
//! `dequeue` hands back the same `Vec` that `receive` consumed.
//!
//! This is the one `unsafe` block in the workspace (every crate lib is
//! `#![forbid(unsafe_code)]`): a `GlobalAlloc` impl is inherently unsafe
//! to declare, and each method body is audited below.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tpp_core::asm::TppBuilder;
use tpp_core::wire::{self, insert_transparent, ipv4, udp, EthernetAddress, Ipv4Address};
use tpp_switch::{Action, ReceiveOutcome, Switch, SwitchConfig};

struct CountingAlloc;

// Per-thread count: the libtest harness threads allocate sporadically
// (mpmc channel blocks, thread parking contexts) and a process-global
// counter picks those up as false positives in the measured window. Only
// allocations made by the thread actually running the forwarding loop
// count. Const-initialized so reading it never itself allocates;
// `try_with` tolerates allocator calls during TLS teardown.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the only extra work is a thread-local counter bump, which
// never allocates (const-initialized `Cell`) and never unwinds into the
// allocator (`try_with` swallows TLS-teardown errors).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: caller upholds `alloc`'s contract (non-zero-sized
        // `layout`); forwarded verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`; all allocation paths forward to `System`, so the
        // pointer is the system allocator's to free.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: same provenance argument as `dealloc`, and the caller
        // upholds `realloc`'s non-zero `new_size` requirement.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: caller upholds `alloc_zeroed`'s contract (non-zero-sized
        // `layout`); forwarded verbatim to the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn host_frame(ttl: u8) -> Vec<u8> {
    let src_ip = Ipv4Address::from_host_id(1);
    let dst_ip = Ipv4Address::from_host_id(2);
    let u = udp::Repr { src_port: 1000, dst_port: 2000, payload_len: 256 };
    let udp_bytes = u.encapsulate(src_ip, dst_ip, &vec![0xAB; 256]);
    let ip = ipv4::Repr {
        src: src_ip,
        dst: dst_ip,
        protocol: ipv4::protocol::UDP,
        ttl,
        payload_len: udp_bytes.len(),
    };
    wire::EthernetRepr {
        dst: EthernetAddress::from_node_id(2),
        src: EthernetAddress::from_node_id(1),
        ethertype: wire::ethernet::ethertype::IPV4,
    }
    .encapsulate(&ip.encapsulate(&udp_bytes))
}

/// Forward `frame` through receive+dequeue `rounds` times, reusing the frame
/// buffer, and return how many heap allocations that performed.
fn allocs_per_run(sw: &mut Switch, mut frame: Vec<u8>, rounds: usize) -> u64 {
    let mut now = 0u64;
    let before = allocs_on_this_thread();
    for _ in 0..rounds {
        now += 1000;
        let out = sw.receive(now, 0, frame);
        assert!(matches!(out, ReceiveOutcome::Enqueued { port: 2, .. }), "{out:?}");
        frame = sw.dequeue(now, 2).expect("frame queued");
    }
    allocs_on_this_thread() - before
}

#[test]
fn steady_state_forwarding_is_allocation_free() {
    let mut sw = Switch::new(SwitchConfig::new(7, 4));
    sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));

    // A TPP exercising stack pushes across ingress and egress stages.
    let tpp = TppBuilder::stack_mode()
        .push_m("Switch:SwitchID")
        .unwrap()
        .push_m("PacketMetadata:OutputPort")
        .unwrap()
        .push_m("Queue:QueueOccupancy")
        .unwrap()
        .hops(5)
        .build()
        .unwrap();
    let stamped = insert_transparent(&host_frame(200), &tpp);
    let plain = host_frame(200);

    // Warm-up: queue rings and table stats reach steady capacity.
    let w1 = allocs_per_run(&mut sw, stamped.clone(), 16);
    let w2 = allocs_per_run(&mut sw, plain.clone(), 16);
    let _ = (w1, w2);

    // Steady state: the TPP executes in place in the frame; the switch
    // must not allocate at all.
    let tpp_allocs = allocs_per_run(&mut sw, stamped, 64);
    assert_eq!(tpp_allocs, 0, "TPP forwarding path allocated {tpp_allocs} times in 64 rounds");

    let plain_allocs = allocs_per_run(&mut sw, plain, 64);
    assert_eq!(
        plain_allocs, 0,
        "plain forwarding path allocated {plain_allocs} times in 64 rounds"
    );
}
