//! Program-keyed plan cache: reuse one decoded [`TppRun`] across every
//! frame that carries the same program at the same packet position.
//!
//! Probe flows (RCP*, CONGA*, the WAN fan-out apps) stamp the *same* TPP
//! on every packet of a flow, so at any given switch the ingress parse
//! re-derives an identical plan — slot serialization, stage assignment,
//! and the plan-time `trusted` bounds proof — thousands of times. The
//! cache keys on the exact bytes the planner reads:
//!
//! * one byte of [`ExecOptions::max_instructions`] (the budget verdict),
//! * the first header byte with the `wrote`/reserved bits masked out
//!   (mode, reflect, and version feed the plan; `wrote` does not),
//! * header bytes 1–5 (`n_instr`, `mem_len`, `hop`, `sp`, `per_hop_len`),
//! * the instruction words themselves.
//!
//! The checksum and `encap_proto`/`app_id` bytes are excluded — the plan
//! never reads them. Matching is an **exact byte compare** (the hash only
//! picks the slot), so a collision can cost a miss but can never return
//! the wrong plan: behavior invariance is structural, not probabilistic.
//!
//! The cache is direct-mapped and bounded ([`PLAN_CACHE_SLOTS`]): an
//! insert into an occupied slot evicts its previous program, so memory is
//! O(1) per switch no matter how many distinct programs flow through.

use crate::pipeline::{PipelineConfig, TppRun};
use tpp_core::exec::ExecOptions;
use tpp_core::isa::{INSTR_BYTES, MAX_INSTRUCTIONS};
use tpp_core::wire::tpp::HEADER_LEN;
use tpp_core::wire::TppView;

/// Number of direct-mapped cache slots per switch. Sized for the working
/// set of concurrent probe programs a switch realistically sees (a few per
/// application), with headroom for hop/SP variants of each.
pub const PLAN_CACHE_SLOTS: usize = 64;

/// Maximum key length: options byte + masked header byte + header bytes
/// 1–5 + the instruction words.
const KEY_MAX: usize = 7 + MAX_INSTRUCTIONS * INSTR_BYTES;

/// Header-byte-0 bits the planner never reads: `wrote` (0x02) and the
/// reserved bit (0x01).
const KEY_BYTE0_MASK: u8 = 0xFC;

#[derive(Clone, Copy)]
struct Entry {
    key: [u8; KEY_MAX],
    key_len: u8,
    /// The cached plan, pre-execution, with `section == 0`; hits patch the
    /// frame's actual section offset in.
    run: TppRun,
}

/// Hit/miss/eviction counters, surfaced per switch and aggregated into
/// `NetStats` by the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from a cached plan.
    pub hits: u64,
    /// Lookups that had to plan afresh (including uncacheable programs).
    pub misses: u64,
    /// Misses that overwrote a different resident program.
    pub evictions: u64,
}

/// A bounded, direct-mapped cache of planned [`TppRun`] templates (see the
/// module docs for the key and the invariance argument).
pub struct PlanCache {
    slots: Box<[Option<Entry>]>,
    stats: PlanCacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            slots: vec![None; PLAN_CACHE_SLOTS].into_boxed_slice(),
            stats: PlanCacheStats::default(),
        }
    }
}

/// FNV-1a over the key bytes — only used to pick the slot; equality is
/// decided by the exact byte compare.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl PlanCache {
    /// Total slots (the bound on resident plans).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently holding a plan.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Counters since construction.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Plan `view` (located at byte offset `section` of its frame, with
    /// `section_bytes` its validated section bytes), reusing a cached plan
    /// when this exact program/header prefix was planned before.
    ///
    /// Exactly equivalent to [`TppRun::plan`] on every call: a hit returns
    /// a byte-identical pre-execution plan (only the `section` offset is
    /// patched), which the plan-determinism unit tests pin.
    pub fn plan(
        &mut self,
        view: &TppView<'_>,
        section_bytes: &[u8],
        section: usize,
        opts: &ExecOptions,
        cfg: &PipelineConfig,
    ) -> TppRun {
        let n = view.n_instr();
        if n > MAX_INSTRUCTIONS || n > opts.max_instructions {
            // Rejected plans are trivial to rebuild (no decode, no proof)
            // and their instruction words may exceed the key budget.
            self.stats.misses += 1;
            return TppRun::plan(view, section, opts, cfg);
        }
        let mut key = [0u8; KEY_MAX];
        key[0] = u8::try_from(opts.max_instructions).unwrap_or(u8::MAX);
        key[1] = section_bytes[0] & KEY_BYTE0_MASK;
        key[2..7].copy_from_slice(&section_bytes[1..6]);
        let ib = n * INSTR_BYTES;
        key[7..7 + ib].copy_from_slice(&section_bytes[HEADER_LEN..HEADER_LEN + ib]);
        let key_len = 7 + ib;
        let k = &key[..key_len];

        let slot = (fnv1a(k) % self.slots.len() as u64) as usize;
        if let Some(e) = &self.slots[slot] {
            if usize::from(e.key_len) == key_len && &e.key[..key_len] == k {
                self.stats.hits += 1;
                let mut run = e.run;
                run.section = section;
                return run;
            }
        }
        self.stats.misses += 1;
        if self.slots[slot].is_some() {
            self.stats.evictions += 1;
        }
        let run = TppRun::plan(view, section, opts, cfg);
        let mut template = run;
        template.section = 0;
        self.slots[slot] = Some(Entry { key, key_len: key_len as u8, run: template });
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::asm::TppBuilder;
    use tpp_core::wire::Tpp;

    fn plan_fresh(bytes: &[u8], opts: &ExecOptions, cfg: &PipelineConfig) -> TppRun {
        let (view, _) = TppView::parse(bytes).unwrap();
        TppRun::plan(&view, 0, opts, cfg)
    }

    fn probe(hops: u8) -> Tpp {
        TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(hops as usize)
            .build()
            .unwrap()
    }

    #[test]
    fn hit_returns_byte_identical_plan() {
        let opts = ExecOptions::default();
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        let bytes = probe(3).serialize();
        let (view, _) = TppView::parse(&bytes).unwrap();

        let miss = cache.plan(&view, &bytes, 14, &opts, &cfg);
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 1, evictions: 0 });
        let hit = cache.plan(&view, &bytes, 42, &opts, &cfg);
        assert_eq!(cache.stats().hits, 1);

        let mut fresh = plan_fresh(&bytes, &opts, &cfg);
        fresh.section = 14;
        assert_eq!(miss, fresh, "miss path must equal a fresh plan");
        fresh.section = 42;
        assert_eq!(hit, fresh, "hit must be byte-identical up to the section offset");
    }

    #[test]
    fn header_prefix_changes_miss() {
        // Same program at a different hop/SP position: the plan (slots,
        // trusted proof) can differ, so the cache must not conflate them.
        let opts = ExecOptions::default();
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        let mut tpp = probe(3);
        let a = tpp.serialize();
        tpp.hop = 1;
        tpp.sp = 2;
        let b = tpp.serialize();

        let (va, _) = TppView::parse(&a).unwrap();
        let (vb, _) = TppView::parse(&b).unwrap();
        let ra = cache.plan(&va, &a, 0, &opts, &cfg);
        let rb = cache.plan(&vb, &b, 0, &opts, &cfg);
        assert_eq!(cache.stats().hits, 0, "distinct hop/SP prefixes must not hit");
        assert_eq!(ra, plan_fresh(&a, &opts, &cfg));
        assert_eq!(rb, plan_fresh(&b, &opts, &cfg));
    }

    #[test]
    fn wrote_bit_does_not_key() {
        // The `wrote` flag is execution residue the planner ignores; frames
        // differing only in it share one cached plan.
        let opts = ExecOptions::default();
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        let mut tpp = probe(2);
        let a = tpp.serialize();
        tpp.wrote = true;
        let b = tpp.serialize();
        let (va, _) = TppView::parse(&a).unwrap();
        let (vb, _) = TppView::parse(&b).unwrap();
        cache.plan(&va, &a, 0, &opts, &cfg);
        cache.plan(&vb, &b, 0, &opts, &cfg);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn budget_change_does_not_reuse_stale_verdict() {
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        let tpp = TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .push_m("Switch:Version")
            .unwrap()
            .hops(2)
            .build()
            .unwrap();
        let bytes = tpp.serialize();
        let (view, _) = TppView::parse(&bytes).unwrap();
        let generous = ExecOptions::default();
        let strict = ExecOptions { max_instructions: 2, ..ExecOptions::default() };
        let accepted = cache.plan(&view, &bytes, 0, &generous, &cfg);
        assert!(!accepted.rejected);
        let rejected = cache.plan(&view, &bytes, 0, &strict, &cfg);
        assert!(rejected.rejected, "budget is part of the key");
    }

    #[test]
    fn bounded_size_with_eviction() {
        // More distinct programs than slots: occupancy stays bounded,
        // evictions are counted, and an evicted program re-planned later is
        // still byte-identical to a fresh plan.
        let opts = ExecOptions::default();
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        // Vary a *keyed* header byte (hop) across every frame: memory
        // contents are deliberately unkeyed, so they would all share one
        // slot. Planning (not executing) an out-of-range hop is fine — the
        // plan simply carries the graceful-skip verdict.
        let frames: Vec<Vec<u8>> = (1..=3 * PLAN_CACHE_SLOTS as u8 / 2)
            .map(|h| {
                let mut t = probe(4);
                t.hop = h;
                t.serialize()
            })
            .collect();
        for f in &frames {
            let (view, _) = TppView::parse(f).unwrap();
            cache.plan(&view, f, 0, &opts, &cfg);
        }
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.capacity(), PLAN_CACHE_SLOTS);
        let s = cache.stats();
        assert_eq!(s.misses, frames.len() as u64);
        assert!(s.evictions > 0, "more programs than slots must evict");

        // Every program — evicted or resident — still plans correctly.
        for f in &frames {
            let (view, _) = TppView::parse(f).unwrap();
            assert_eq!(cache.plan(&view, f, 0, &opts, &cfg), plan_fresh(f, &opts, &cfg));
        }
    }

    #[test]
    fn over_budget_program_bypasses_cache() {
        let opts = ExecOptions::default();
        let cfg = PipelineConfig::default();
        let mut cache = PlanCache::default();
        let sid = tpp_core::addr::resolve_mnemonic("Switch:SwitchID").unwrap();
        let tpp = Tpp {
            instrs: vec![tpp_core::isa::Instruction::push(sid); 6],
            memory: vec![0; 32],
            ..Tpp::default()
        };
        let bytes = tpp.serialize();
        let (view, _) = TppView::parse(&bytes).unwrap();
        let run = cache.plan(&view, &bytes, 0, &opts, &cfg);
        assert!(run.rejected);
        assert!(cache.is_empty(), "rejected programs are not cached");
    }
}
