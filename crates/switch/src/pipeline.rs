//! The distributed TCPU (paper §3.5, Figure 8).
//!
//! A single logical TCPU at the end of the pipeline would need read/write
//! paths from every module — prohibitively expensive wiring. Instead the
//! TCPU is *distributed*: each match-action stage executes the instructions
//! whose operands are local to it, out of program order across stages but in
//! program order within a stage. Two mechanisms make this sound:
//!
//! * PUSH/POP are converted at parse time into equivalent LOAD/STOREs with
//!   preassigned packet-memory offsets (the §3.5 serialization), so stack
//!   ordering in the packet always reflects program order;
//! * end-hosts must order conditional instructions (`CSTORE`/`CEXEC`) at or
//!   before the stages of the instructions they gate
//!   ([`check_pipeline_order`]); the failure of a conditional suppresses
//!   every *later-program-order* instruction that has not yet executed.
//!
//! Stage assignment mirrors where the data lives in a real ASIC: switch
//! globals at stage 0, flow-table state at its stage, routing results at
//! the last ingress stage, and link/queue state in the egress pipeline.

use crate::memmap::SwitchBus;
use tpp_core::addr::{meta_ns, Address, Namespace};
use tpp_core::exec::{ExecOptions, InstrStatus, MemoryBus, PlanTemplate, StatusVec, WriteOutcome};
use tpp_core::isa::{Instruction, Opcode, MAX_INSTRUCTIONS};
use tpp_core::wire::{Tpp, TppView, TppViewMut};

/// Shape of the pipeline: ingress stages (the last one computes routing)
/// followed by egress stages (entered after the packet buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    pub n_ingress: usize,
    pub n_egress: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // The NetFPGA prototype has a four-stage pipeline (§5); we add two
        // egress stages for link/queue state.
        PipelineConfig { n_ingress: 4, n_egress: 2 }
    }
}

impl PipelineConfig {
    pub fn total_stages(&self) -> usize {
        self.n_ingress + self.n_egress
    }
    /// The stage where routing results (output port, matched entry) appear.
    pub fn routing_stage(&self) -> usize {
        self.n_ingress - 1
    }
    /// The first egress stage, where link/queue state lives.
    pub fn egress_stage(&self) -> usize {
        self.n_ingress
    }
}

/// Which pipeline stage can satisfy an access to `addr` (§3.3: "instructions
/// are not executed if they access memory that doesn't exist" — a `None`
/// here makes the instruction skip gracefully).
pub fn stage_of(addr: Address, cfg: &PipelineConfig) -> Option<usize> {
    let ns = Namespace::of(addr)?;
    match ns {
        Namespace::Switch => Some(0),
        Namespace::PacketMetadata => Some(match addr.offset() {
            // Known at ingress parse.
            x if x == meta_ns::INPUT_PORT
                || x == meta_ns::PKT_LEN
                || x == meta_ns::HOP_COUNT
                || x == meta_ns::INGRESS_TSTAMP_NS_LO
                || x == meta_ns::INGRESS_TSTAMP_NS_HI =>
            {
                0
            }
            // Produced by the routing stage.
            x if x == meta_ns::OUTPUT_PORT
                || x == meta_ns::OUTPUT_QUEUE
                || x == meta_ns::MATCHED_ENTRY_ID
                || x == meta_ns::PATH_HASH =>
            {
                cfg.routing_stage()
            }
            // Known only after the packet buffer.
            _ => cfg.egress_stage(),
        }),
        Namespace::CurrentLink
        | Namespace::CurrentQueue
        | Namespace::Link(_)
        | Namespace::Queue(_, _) => Some(cfg.egress_stage()),
        Namespace::FlowEntry(s) => {
            let s = s as usize;
            (s < cfg.total_stages()).then_some(s)
        }
        Namespace::Stage(s) => {
            let s = s as usize;
            (s < cfg.total_stages()).then_some(s)
        }
    }
}

/// Verify the §3.5 ordering requirement: each conditional must execute at a
/// stage no later than every instruction it gates, so its outcome is
/// available in time.
pub fn check_pipeline_order(tpp: &Tpp, cfg: &PipelineConfig) -> bool {
    for (i, ins) in tpp.instrs.iter().enumerate() {
        if !ins.opcode.is_conditional() {
            continue;
        }
        let Some(cond_stage) = stage_of(ins.addr, cfg) else { continue };
        for later in &tpp.instrs[i + 1..] {
            if let Some(s) = stage_of(later.addr, cfg) {
                if s < cond_stage {
                    return false;
                }
            }
        }
    }
    true
}

/// Plan-time marker for an instruction whose operand maps to no pipeline
/// stage (it skips gracefully, §3.3) — stored in `TppRun::stages` so the
/// execute loop never resolves namespaces per frame.
const UNMAPPED_STAGE: u16 = u16::MAX;

/// How one instruction addresses packet memory after parse-time
/// serialization of PUSH/POP (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Hop-relative operands straight from the instruction.
    Direct,
    /// A preassigned absolute word index (serialized PUSH/POP).
    Stack(usize),
    /// Statically impossible (stack underflow / memory overflow).
    Invalid,
}

/// The in-flight execution state of one TPP as it traverses the pipeline.
///
/// Planned once at ingress parse from a validated [`TppView`], carried
/// through the packet buffer, finished at egress. The run holds **no owned
/// TPP**: instructions and slots live in fixed-size inline arrays (bounded
/// by the architectural [`MAX_INSTRUCTIONS`] budget) and every packet-memory
/// access goes straight to the frame bytes through a [`TppViewMut`], which
/// maintains the section checksum incrementally. The forwarding path
/// therefore performs no heap allocation per packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TppRun {
    /// Byte offset of the TPP section within the frame.
    pub section: usize,
    n_instr: u8,
    instrs: [Instruction; MAX_INSTRUCTIONS],
    slots: [Slot; MAX_INSTRUCTIONS],
    /// Plan-time stage assignment per instruction ([`stage_of`] resolved
    /// once; [`UNMAPPED_STAGE`] = skips gracefully), so the per-frame
    /// execute loop is a flat integer compare instead of a namespace
    /// resolve.
    stages: [u16; MAX_INSTRUCTIONS],
    status: [Option<InstrStatus>; MAX_INSTRUCTIONS],
    /// Program index of the first failed conditional, if any.
    fail_idx: Option<usize>,
    final_sp: u8,
    pub wrote: bool,
    /// Opcodes that reached an execution unit, for latency accounting.
    executed_ops: [Opcode; MAX_INSTRUCTIONS],
    n_executed: u8,
    pub rejected: bool,
    /// Plan-time proof that every packet-memory access this hop is in
    /// bounds: serialized stack slots landed below `memory_words` and every
    /// hop-relative operand falls inside the current hop's window. When
    /// set, [`TppRun::exec_one`] uses the unchecked view accessors — the
    /// eBPF-style "verify once, run unchecked" fast path.
    trusted: bool,
    /// Header snapshot taken at plan time (the view owns the live bytes).
    pub reflect: bool,
    pub hop: u8,
}

impl TppRun {
    /// Parse-time planning over a validated view at byte offset `section`
    /// of its frame: decode the program into a [`PlanTemplate`], then
    /// specialize it to this frame's header. Like the in-place interpreter,
    /// the pipeline enforces the architectural [`MAX_INSTRUCTIONS`] budget
    /// even when `opts.max_instructions` is configured above it.
    pub fn plan(
        view: &TppView<'_>,
        section: usize,
        opts: &ExecOptions,
        cfg: &PipelineConfig,
    ) -> TppRun {
        TppRun::from_template(&PlanTemplate::decode(view, opts), view, section, cfg)
    }

    /// Specialize a pre-decoded [`PlanTemplate`] to one frame: serialize
    /// PUSH/POP to preassigned offsets from this frame's SP, resolve each
    /// instruction's pipeline stage, and prove the hop-window bounds. This
    /// is the frame-dependent half of planning — the plan cache reuses the
    /// *whole* result for frames whose header prefix and instruction words
    /// match exactly, making this path per-program, not per-frame.
    pub fn from_template(
        template: &PlanTemplate,
        view: &TppView<'_>,
        section: usize,
        cfg: &PipelineConfig,
    ) -> TppRun {
        let filler = Instruction::load(Address::new(0), 0);
        let mut run = TppRun {
            section,
            n_instr: 0,
            instrs: [filler; MAX_INSTRUCTIONS],
            slots: [Slot::Direct; MAX_INSTRUCTIONS],
            stages: [UNMAPPED_STAGE; MAX_INSTRUCTIONS],
            status: [None; MAX_INSTRUCTIONS],
            fail_idx: None,
            final_sp: view.sp(),
            wrote: false,
            executed_ops: [Opcode::Load; MAX_INSTRUCTIONS],
            n_executed: 0,
            rejected: template.rejected(),
            trusted: false,
            reflect: view.reflect(),
            hop: view.hop(),
        };
        if run.rejected {
            return run;
        }
        let n = template.instrs().len();
        run.n_instr = n as u8;
        let mut sp = view.sp() as usize;
        let words = view.memory_words();
        for idx in 0..n {
            let ins = template.instrs()[idx];
            run.instrs[idx] = ins;
            run.stages[idx] = match stage_of(ins.addr, cfg) {
                // A pipeline deeper than the u16 sentinel is architecturally
                // impossible (per-stage SRAM alone forbids it).
                Some(s) => s as u16,
                None => UNMAPPED_STAGE,
            };
            run.slots[idx] = match ins.opcode {
                Opcode::Push => {
                    if sp < words {
                        sp += 1;
                        Slot::Stack(sp - 1)
                    } else {
                        Slot::Invalid
                    }
                }
                Opcode::Pop => {
                    if sp > 0 {
                        sp -= 1;
                        Slot::Stack(sp)
                    } else {
                        Slot::Invalid
                    }
                }
                _ => Slot::Direct,
            };
        }
        run.final_sp = sp.min(u8::MAX as usize) as u8;

        // Plan-time bounds proof for the unchecked fast path: every
        // serialized stack slot below `memory_words` and every hop-relative
        // operand inside this hop's window.
        let hop_base = view.hop() as usize * view.per_hop_words();
        run.trusted = (0..n).all(|idx| match run.instrs[idx].opcode {
            Opcode::Push | Opcode::Pop => {
                matches!(run.slots[idx], Slot::Stack(w) if w < words)
            }
            Opcode::Load | Opcode::Store => hop_base + usize::from(run.instrs[idx].op1) < words,
            Opcode::Cstore | Opcode::Cexec => {
                hop_base + usize::from(run.instrs[idx].op1) < words
                    && hop_base + usize::from(run.instrs[idx].op2) < words
            }
        });
        run
    }

    /// Opcodes that reached an execution unit so far, for cost accounting.
    pub fn executed_ops(&self) -> &[Opcode] {
        &self.executed_ops[..self.n_executed as usize]
    }

    /// Execute all instructions assigned to stages in `range` (processed in
    /// stage order, program order within a stage), mutating the TPP section
    /// inside `frame` in place. Stage assignment was resolved at plan time
    /// (`TppRun::stages`), so the scan over instructions is branch-cheap.
    pub fn exec_stages(
        &mut self,
        frame: &mut [u8],
        bus: &mut SwitchBus<'_>,
        range: std::ops::Range<usize>,
        opts: &ExecOptions,
    ) {
        if self.rejected {
            return;
        }
        let mut view = TppViewMut::from_validated(&mut frame[self.section..]);
        for stage in range {
            for idx in 0..self.n_instr as usize {
                if self.status[idx].is_some() {
                    continue;
                }
                if usize::from(self.stages[idx]) != stage {
                    continue;
                }
                let ins = self.instrs[idx];
                if self.fail_idx.is_some_and(|f| idx > f) {
                    self.status[idx] = Some(InstrStatus::Suppressed);
                    continue;
                }
                let st = self.exec_one(&mut view, bus, idx, opts);
                if matches!(st, InstrStatus::CondFailed | InstrStatus::PredicateFalse) {
                    self.fail_idx = Some(self.fail_idx.map_or(idx, |f| f.min(idx)));
                }
                if !matches!(st, InstrStatus::Skipped | InstrStatus::Suppressed) {
                    self.executed_ops[self.n_executed as usize] = ins.opcode;
                    self.n_executed += 1;
                }
                self.status[idx] = Some(st);
            }
        }
    }

    fn exec_one(
        &mut self,
        view: &mut TppViewMut<'_>,
        bus: &mut SwitchBus<'_>,
        idx: usize,
        opts: &ExecOptions,
    ) -> InstrStatus {
        let ins = self.instrs[idx];
        match ins.opcode {
            Opcode::Push => {
                let Slot::Stack(word) = self.slots[idx] else { return InstrStatus::Skipped };
                let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
                if self.trusted {
                    view.write_word_trusted(word, v);
                    return InstrStatus::Executed;
                }
                match view.write_word(word, v) {
                    Some(()) => InstrStatus::Executed,
                    None => InstrStatus::Skipped,
                }
            }
            Opcode::Pop => {
                let Slot::Stack(word) = self.slots[idx] else { return InstrStatus::Skipped };
                let v = if self.trusted {
                    view.read_word_trusted(word)
                } else {
                    match view.read_word(word) {
                        Some(v) => v,
                        None => return InstrStatus::Skipped,
                    }
                };
                if !opts.allow_writes {
                    return InstrStatus::Skipped;
                }
                match bus.write(ins.addr, v) {
                    WriteOutcome::Ok => {
                        self.wrote = true;
                        InstrStatus::Executed
                    }
                    _ => InstrStatus::Skipped,
                }
            }
            Opcode::Load => {
                let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
                if self.trusted {
                    view.write_hop_word_trusted(ins.op1, v);
                    return InstrStatus::Executed;
                }
                match view.write_hop_word(ins.op1, v) {
                    Some(()) => InstrStatus::Executed,
                    None => InstrStatus::Skipped,
                }
            }
            Opcode::Store => {
                let v = if self.trusted {
                    view.read_hop_word_trusted(ins.op1)
                } else {
                    match view.read_hop_word(ins.op1) {
                        Some(v) => v,
                        None => return InstrStatus::Skipped,
                    }
                };
                if !opts.allow_writes {
                    return InstrStatus::Skipped;
                }
                match bus.write(ins.addr, v) {
                    WriteOutcome::Ok => {
                        self.wrote = true;
                        InstrStatus::Executed
                    }
                    _ => InstrStatus::Skipped,
                }
            }
            Opcode::Cstore => {
                let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
                let (pre, post) = if self.trusted {
                    (view.read_hop_word_trusted(ins.op1), view.read_hop_word_trusted(ins.op2))
                } else {
                    match (view.read_hop_word(ins.op1), view.read_hop_word(ins.op2)) {
                        (Some(pre), Some(post)) => (pre, post),
                        _ => return InstrStatus::Skipped,
                    }
                };
                let mut observed = x;
                let mut succeeded = false;
                if x == pre && opts.allow_writes {
                    if let WriteOutcome::Ok = bus.write(ins.addr, post) {
                        self.wrote = true;
                        succeeded = true;
                        observed = post;
                    }
                }
                if self.trusted {
                    view.write_hop_word_trusted(ins.op1, observed);
                } else {
                    let _ = view.write_hop_word(ins.op1, observed);
                }
                if succeeded {
                    InstrStatus::Executed
                } else {
                    InstrStatus::CondFailed
                }
            }
            Opcode::Cexec => {
                let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
                let (mask, value) = if self.trusted {
                    (view.read_hop_word_trusted(ins.op1), view.read_hop_word_trusted(ins.op2))
                } else {
                    match (view.read_hop_word(ins.op1), view.read_hop_word(ins.op2)) {
                        (Some(mask), Some(value)) => (mask, value),
                        _ => return InstrStatus::Skipped,
                    }
                };
                if x & mask == value {
                    InstrStatus::Executed
                } else {
                    InstrStatus::PredicateFalse
                }
            }
        }
    }

    /// Complete the run after the last stage: write the final SP, wrote
    /// flag and hop counter into the frame (checksum folded incrementally).
    /// Rejected TPPs are forwarded byte-for-byte untouched.
    pub fn finish(&mut self, frame: &mut [u8], opts: &ExecOptions) {
        if self.rejected {
            return;
        }
        let mut view = TppViewMut::from_validated(&mut frame[self.section..]);
        view.set_sp(self.final_sp);
        if self.wrote {
            view.set_wrote(true);
        }
        if opts.increment_hop {
            view.set_hop(self.hop.wrapping_add(1));
        }
    }

    /// Per-instruction statuses with unexecuted slots resolved (Suppressed
    /// past a failed conditional, Skipped otherwise). Empty for rejected
    /// TPPs, mirroring the reference interpreter.
    pub fn final_statuses(&self) -> StatusVec {
        let mut out = StatusVec::default();
        if self.rejected {
            return out;
        }
        for (idx, s) in self.status[..self.n_instr as usize].iter().enumerate() {
            out.push(match s {
                Some(st) => *st,
                None => {
                    if self.fail_idx.is_some_and(|f| idx > f) {
                        InstrStatus::Suppressed
                    } else {
                        InstrStatus::Skipped
                    }
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmap::{PacketContext, SwitchMemory};
    use tpp_core::addr::resolve_mnemonic;
    use tpp_core::asm::{assemble, TppBuilder};
    use tpp_core::exec::{execute as ref_execute, MapBus};

    fn a(m: &str) -> Address {
        resolve_mnemonic(m).unwrap()
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn run_full(
        tpp: Tpp,
        mem: &mut SwitchMemory,
        ctx: &mut PacketContext,
    ) -> (Tpp, Vec<InstrStatus>) {
        let opts = ExecOptions::default();
        // The pipeline executes in place over wire bytes: serialize, run,
        // parse the mutated section back for the assertions.
        let mut frame = tpp.serialize();
        let c = cfg();
        let mut run = {
            let (view, _) = TppView::parse(&frame).expect("test TPP serializes validly");
            TppRun::plan(&view, 0, &opts, &c)
        };
        {
            let mut bus = SwitchBus { mem, ctx };
            run.exec_stages(&mut frame, &mut bus, 0..c.n_ingress, &opts);
        }
        {
            let mut bus = SwitchBus { mem, ctx };
            run.exec_stages(&mut frame, &mut bus, c.n_ingress..c.total_stages(), &opts);
        }
        run.finish(&mut frame, &opts);
        let st = run.final_statuses().as_slice().to_vec();
        let (tpp, _) = Tpp::parse(&frame).expect("executed section remains valid wire format");
        (tpp, st)
    }

    #[test]
    fn stage_assignment() {
        let c = cfg();
        assert_eq!(stage_of(a("Switch:SwitchID"), &c), Some(0));
        assert_eq!(stage_of(a("PacketMetadata:InputPort"), &c), Some(0));
        assert_eq!(stage_of(a("PacketMetadata:OutputPort"), &c), Some(3));
        assert_eq!(stage_of(a("Link:TX-Utilization"), &c), Some(4));
        assert_eq!(stage_of(a("Queue:QueueOccupancy"), &c), Some(4));
        assert_eq!(stage_of(a("Stage2:Reg0"), &c), Some(2));
        assert_eq!(stage_of(a("Stage5:Reg0"), &c), Some(5));
        assert_eq!(stage_of(a("Stage7:Reg0"), &c), None); // beyond 6 stages
        assert_eq!(stage_of(Address::new(0x0900), &c), None); // unmapped
    }

    #[test]
    fn paper_section35_example_order() {
        // PUSH out-port; PUSH in-port; PUSH Stage1:Reg1; POP Stage3:Reg3.
        // Values must land in packet memory in *program* order even though
        // the input port (stage 0) is known before the output port (stage 3).
        let mut mem = SwitchMemory::new(1, 4, 6);
        mem.stages[1].sram[1] = 0xAA;
        let mut ctx = PacketContext::new(3, 100, 0, 6);
        ctx.out_port = Some(2); // routing already decided
        let tpp = TppBuilder::stack_mode()
            .push(a("PacketMetadata:OutputPort"))
            .push(a("PacketMetadata:InputPort"))
            .push(a("Stage1:Reg1"))
            .pop(a("Stage3:Reg3"))
            .memory_words(4)
            .build()
            .unwrap();
        let (out, st) = run_full(tpp, &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Executed; 4]);
        // Program order preserved: word0 = output port, word1 = input port.
        assert_eq!(out.read_word(0), Some(2));
        assert_eq!(out.read_word(1), Some(3));
        assert_eq!(out.read_word(2), Some(0xAA));
        // POP landed in Stage3:Reg3 and consumed the stack slot.
        assert_eq!(mem.stages[3].sram[3], 0xAA);
        assert_eq!(out.sp, 2);
    }

    #[test]
    fn pipelined_matches_reference_semantics() {
        // For hazard-free, pipeline-ordered programs the distributed TCPU
        // must be observationally equivalent to the reference interpreter.
        let programs = [
            "PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:InputPort]\nPUSH [Queue:QueueOccupancy]",
            ".mode hop\n.perhop 12\n.hops 2\nLOAD [Switch:SwitchID], [Packet:Hop[0]]\nLOAD [Link:QueueSize], [Packet:Hop[1]]\nLOAD [Link:TX-Utilization], [Packet:Hop[2]]",
            "PUSH [Switch:Version]\nPUSH [Stage1:Version]\nPUSH [FlowEntry$3:MatchPkts]",
        ];
        for src in programs {
            let tpp = assemble(src).unwrap();

            // Pipelined execution against the real switch memory.
            let mut mem = SwitchMemory::new(9, 4, 6);
            mem.links[2].queued_bytes = 777;
            mem.links[2].tx_util_bps = 1234;
            mem.queues[2][0].bytes = 555;
            mem.stages[1].version = 6;
            let mut ctx = PacketContext::new(1, 100, 0, 6);
            ctx.out_port = Some(2);
            ctx.matched_entry.set(
                3,
                crate::memmap::FlowEntryStats {
                    entry_id: 5,
                    insert_clock: 0,
                    match_pkts: 42,
                    match_bytes: 0,
                },
            );
            let (pipe_out, _) = run_full(tpp.clone(), &mut mem, &mut ctx.clone());

            // Reference execution against a MapBus snapshot of the same state.
            let mut mem2 = SwitchMemory::new(9, 4, 6);
            mem2.links[2].queued_bytes = 777;
            mem2.links[2].tx_util_bps = 1234;
            mem2.queues[2][0].bytes = 555;
            mem2.stages[1].version = 6;
            let mut ctx2 = ctx.clone();
            let mut snapshot = MapBus::default();
            for ins in &tpp.instrs {
                let mut bus = SwitchBus { mem: &mut mem2, ctx: &mut ctx2 };
                if let Some(v) = bus.read(ins.addr) {
                    snapshot.mem.insert(ins.addr.raw(), v);
                }
            }
            let mut ref_tpp = tpp.clone();
            ref_execute(&mut ref_tpp, &mut snapshot, &ExecOptions::default());

            assert_eq!(pipe_out.memory, ref_tpp.memory, "program: {src}");
            assert_eq!(pipe_out.sp, ref_tpp.sp, "program: {src}");
            assert_eq!(pipe_out.hop, ref_tpp.hop, "program: {src}");
        }
    }

    #[test]
    fn cexec_at_stage0_gates_egress_instructions() {
        // Targeted TPP: CEXEC on switch id gates a link-state push at egress.
        let mk = |memory: Vec<u8>| {
            let mut t = TppBuilder::stack_mode()
                .cexec(a("Switch:SwitchID"), 0, 1)
                .push(a("Link:QueueSize"))
                .memory_words(4)
                .build()
                .unwrap();
            t.memory = memory;
            t.write_word(0, 0xFFFF_FFFF).unwrap();
            t.write_word(1, 9).unwrap(); // target switch 9
            t.sp = 2;
            t
        };
        // On switch 9 it runs.
        let mut mem = SwitchMemory::new(9, 4, 6);
        mem.links[2].queued_bytes = 42;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(2);
        let (out, st) = run_full(mk(vec![0; 16]), &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Executed, InstrStatus::Executed]);
        assert_eq!(out.read_word(2), Some(42));

        // On switch 8 the egress push is suppressed.
        let mut mem = SwitchMemory::new(8, 4, 6);
        mem.links[2].queued_bytes = 42;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(2);
        let (out, st) = run_full(mk(vec![0; 16]), &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::PredicateFalse, InstrStatus::Suppressed]);
        assert_eq!(out.read_word(2), Some(0));
    }

    #[test]
    fn rcp_update_tpp_versioned_write() {
        // §2.2 Phase 3 at the egress stage.
        let tpp = assemble(
            "
            .mode hop
            .perhop 12
            .hops 1
            CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
            STORE [Link:AppSpecific_1], [Packet:Hop[2]]
            .word 0 5
            .word 1 6
            .word 2 7777
            ",
        )
        .unwrap();
        let mut mem = SwitchMemory::new(1, 4, 6);
        mem.links[3].app[0] = 5; // version matches
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(3);
        let (_, st) = run_full(tpp.clone(), &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Executed, InstrStatus::Executed]);
        assert_eq!(mem.links[3].app[0], 6);
        assert_eq!(mem.links[3].app[1], 7777);

        // Stale version: both writes refused.
        let mut mem = SwitchMemory::new(1, 4, 6);
        mem.links[3].app[0] = 9;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(3);
        let (out, st) = run_full(tpp, &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::CondFailed, InstrStatus::Suppressed]);
        assert_eq!(mem.links[3].app[1], 0);
        assert_eq!(out.read_word(0), Some(9)); // observed version for the host
    }

    #[test]
    fn pipeline_order_check() {
        let c = cfg();
        // CEXEC on switch id (stage 0) before an egress push: fine.
        let ok = TppBuilder::stack_mode()
            .cexec(a("Switch:SwitchID"), 0, 1)
            .push(a("Link:QueueSize"))
            .memory_words(4)
            .build()
            .unwrap();
        assert!(check_pipeline_order(&ok, &c));
        // CSTORE on egress link state before a stage-0 read: violates §3.5.
        let bad = TppBuilder::stack_mode()
            .cstore(a("Link:AppSpecific_0"), 0, 1)
            .push(a("Switch:SwitchID"))
            .memory_words(4)
            .build()
            .unwrap();
        assert!(!check_pipeline_order(&bad, &c));
    }

    #[test]
    fn rejected_tpp_untouched() {
        let tpp = Tpp {
            instrs: vec![tpp_core::isa::Instruction::push(a("Switch:SwitchID")); 6],
            memory: vec![0; 32],
            ..Tpp::default()
        };
        let mut mem = SwitchMemory::new(1, 4, 6);
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        let (out, _) = run_full(tpp.clone(), &mut mem, &mut ctx);
        assert_eq!(out.hop, 0);
        assert_eq!(out.sp, 0);
        assert_eq!(out.memory, tpp.memory);
    }

    #[test]
    fn overflowing_push_stays_on_checked_path() {
        // Two pushes into one word: the second slot is statically invalid,
        // so the plan must not take the trusted fast path — and the
        // overflowing push skips exactly as on the checked path.
        let tpp = TppBuilder::stack_mode()
            .push(a("Switch:SwitchID"))
            .push(a("PacketMetadata:InputPort"))
            .memory_words(1)
            .build()
            .unwrap();
        let mut mem = SwitchMemory::new(7, 4, 6);
        let mut ctx = PacketContext::new(3, 100, 0, 6);
        let (out, st) = run_full(tpp, &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Executed, InstrStatus::Skipped]);
        assert_eq!(out.read_word(0), Some(7));
        assert_eq!(out.sp, 1);
    }

    #[test]
    fn hop_window_beyond_memory_stays_on_checked_path() {
        // A hop counter past the provisioned windows makes every Direct
        // access out of bounds: untrusted plan, graceful skips.
        let mut tpp =
            assemble(".mode hop\n.perhop 8\n.hops 1\nLOAD [Switch:SwitchID], [Packet:Hop[0]]")
                .unwrap();
        tpp.hop = 3; // only hop 0 has a window
        let mut mem = SwitchMemory::new(7, 4, 6);
        let mut ctx = PacketContext::new(3, 100, 0, 6);
        let (out, st) = run_full(tpp, &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Skipped]);
        assert_eq!(out.memory, vec![0; 8]);
        assert_eq!(out.hop, 4);
    }

    #[test]
    fn unmapped_stage_instruction_skipped() {
        let tpp = TppBuilder::stack_mode()
            .push(a("Stage7:Reg0")) // stage beyond the 6-stage pipeline
            .push(a("Switch:SwitchID"))
            .memory_words(4)
            .build()
            .unwrap();
        let mut mem = SwitchMemory::new(5, 4, 6);
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        let (out, st) = run_full(tpp, &mut mem, &mut ctx);
        assert_eq!(st, vec![InstrStatus::Skipped, InstrStatus::Executed]);
        // The skipped PUSH still owns its preassigned slot (hole), the
        // second lands at word 1 — stack order reflects program order.
        assert_eq!(out.read_word(0), Some(0));
        assert_eq!(out.read_word(1), Some(5));
        assert_eq!(out.sp, 2);
    }
}
