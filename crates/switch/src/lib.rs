//! # tpp-switch — a TPP-capable switch model
//!
//! Implements the switch side of the TPP contract (paper §3, §6):
//!
//! * [`memmap`] — the concrete state behind the unified address space:
//!   per-switch globals, per-stage SRAM + flow-table stats, per-port link
//!   stats, per-queue stats, and the per-packet indirections (Tables 6–8).
//! * [`tables`] — longest-prefix flow tables and ECMP group tables with
//!   deterministic flow hashing (§3.1, §2.4).
//! * [`pipeline`] — the distributed TCPU (§3.5): per-stage, out-of-order
//!   instruction execution with parse-time PUSH/POP serialization, proven
//!   equivalent to the reference interpreter for well-ordered programs.
//! * [`plan_cache`] — program-keyed cache of decoded [`TppRun`] plans, so
//!   the thousandth probe of a flow skips re-planning (and, via the PR 9
//!   verifier token, per-instruction bounds checks) entirely.
//! * [`switch`] — the full switch: ingress parse/execute/route/enqueue,
//!   drop-tail queues with enqueue snapshots, egress execute/rewrite,
//!   reflection (§4.4), write kill-switch (§4.3).
//! * [`cost`] — the hardware cost model (Tables 3–4): `NetFPGA` and ASIC
//!   cycle costs, worst-case added latency, resource accounting.
//!
//! ## Batch-execution contract
//!
//! [`Switch::receive_batch`] processes a delivery batch under one shared
//! context: the clock is set once, one route-lookup memo ([`LookupHint`])
//! and one [`tpp_core::exec::ExecOptions`] snapshot serve every frame, and
//! plans come from the per-switch [`PlanCache`]. Only **batch-invariant**
//! inputs may be hoisted: the clock, switch identity, link speeds,
//! exec/pipeline options, the route memo (which self-invalidates on table
//! version bumps), and the decoded program plan. Everything a TPP can
//! *observe changing* — queue stats, stage SRAM, flow counters, per-packet
//! context, CSTORE effects — is still read and written strictly per frame,
//! in arrival order. The FNV trace digests (netsim `NetStats::digest`,
//! fabric golden digests) pin this equivalence: batched and sequential
//! execution must be bit-identical.

#![forbid(unsafe_code)]

pub mod cost;
pub mod memmap;
pub mod pipeline;
pub mod plan_cache;
pub mod switch;
pub mod tables;

pub use cost::{CostProfile, ResourceModel, ASIC, NETFPGA};
pub use memmap::{MatchedEntries, PacketContext, SwitchBus, SwitchMemory};
pub use pipeline::{PipelineConfig, TppRun};
pub use plan_cache::{PlanCache, PlanCacheStats, PLAN_CACHE_SLOTS};
pub use switch::{DropReason, ReceiveOutcome, Switch, SwitchConfig};
pub use tables::{Action, FlowKey, FlowTable, GroupTable, LookupHint};
