//! # tpp-switch — a TPP-capable switch model
//!
//! Implements the switch side of the TPP contract (paper §3, §6):
//!
//! * [`memmap`] — the concrete state behind the unified address space:
//!   per-switch globals, per-stage SRAM + flow-table stats, per-port link
//!   stats, per-queue stats, and the per-packet indirections (Tables 6–8).
//! * [`tables`] — longest-prefix flow tables and ECMP group tables with
//!   deterministic flow hashing (§3.1, §2.4).
//! * [`pipeline`] — the distributed TCPU (§3.5): per-stage, out-of-order
//!   instruction execution with parse-time PUSH/POP serialization, proven
//!   equivalent to the reference interpreter for well-ordered programs.
//! * [`switch`] — the full switch: ingress parse/execute/route/enqueue,
//!   drop-tail queues with enqueue snapshots, egress execute/rewrite,
//!   reflection (§4.4), write kill-switch (§4.3).
//! * [`cost`] — the hardware cost model (Tables 3–4): `NetFPGA` and ASIC
//!   cycle costs, worst-case added latency, resource accounting.

#![forbid(unsafe_code)]

pub mod cost;
pub mod memmap;
pub mod pipeline;
pub mod switch;
pub mod tables;

pub use cost::{CostProfile, ResourceModel, ASIC, NETFPGA};
pub use memmap::{MatchedEntries, PacketContext, SwitchBus, SwitchMemory};
pub use pipeline::{PipelineConfig, TppRun};
pub use switch::{DropReason, ReceiveOutcome, Switch, SwitchConfig};
pub use tables::{Action, FlowKey, FlowTable, GroupTable, LookupHint};
