//! Concrete switch state behind the unified TPP address space (§3.3.1).
//!
//! [`SwitchMemory`] owns every addressable statistic of one switch: global
//! registers, per-stage SRAM and flow-table stats, per-port link stats and
//! per-queue stats. [`PacketContext`] carries the per-packet metadata of
//! Tables 7/8 and resolves the per-packet namespaces (`[Link:...]`,
//! `[Queue:...]`, `[FlowEntry$s:...]`, `[PacketMetadata:...]`).
//!
//! Wide counters are stored as `u64` and exposed as `_LO`/`_HI` word pairs.

use tpp_core::addr::{
    flow_entry_ns, layout, link_ns, meta_ns, queue_ns, stage_ns, switch_ns, Address, Namespace,
    Word,
};
use tpp_core::exec::{MemoryBus, WriteOutcome};

/// Per-port statistics block (Table 6, "Per Port").
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    pub link_id: u32,
    pub speed_mbps: u32,
    pub up: bool,
    pub queued_bytes: u64,
    pub queued_pkts: u64,
    pub tx_bytes: u64,
    pub tx_pkts: u64,
    pub rx_bytes: u64,
    pub rx_pkts: u64,
    pub drop_bytes: u64,
    pub drop_pkts: u64,
    pub err_pkts: u64,
    /// EWMA utilization in basis points (`0..=10_000`), refreshed every
    /// utilization interval.
    pub tx_util_bps: u32,
    pub rx_util_bps: u32,
    /// Application-specific registers (§2.2 stores RCP state here).
    pub app: [u32; link_ns::APP_COUNT as usize],
    /// Interval accumulators for utilization updates (not addressable).
    pub tx_bytes_interval: u64,
    pub rx_bytes_interval: u64,
}

impl LinkStats {
    fn read(&self, off: u16) -> Option<Word> {
        if (link_ns::APP_BASE..link_ns::APP_BASE + link_ns::APP_COUNT).contains(&off) {
            return Some(self.app[(off - link_ns::APP_BASE) as usize]);
        }
        Some(match off {
            x if x == link_ns::LINK_ID => self.link_id,
            x if x == link_ns::SPEED_MBPS => self.speed_mbps,
            x if x == link_ns::STATUS => self.up as u32,
            x if x == link_ns::QUEUED_BYTES => self.queued_bytes as u32,
            x if x == link_ns::QUEUED_PKTS => self.queued_pkts as u32,
            x if x == link_ns::TX_BYTES_LO => self.tx_bytes as u32,
            x if x == link_ns::TX_BYTES_HI => (self.tx_bytes >> 32) as u32,
            x if x == link_ns::TX_PKTS_LO => self.tx_pkts as u32,
            x if x == link_ns::TX_PKTS_HI => (self.tx_pkts >> 32) as u32,
            x if x == link_ns::RX_BYTES_LO => self.rx_bytes as u32,
            x if x == link_ns::RX_BYTES_HI => (self.rx_bytes >> 32) as u32,
            x if x == link_ns::RX_PKTS_LO => self.rx_pkts as u32,
            x if x == link_ns::RX_PKTS_HI => (self.rx_pkts >> 32) as u32,
            x if x == link_ns::DROP_BYTES_LO => self.drop_bytes as u32,
            x if x == link_ns::DROP_BYTES_HI => (self.drop_bytes >> 32) as u32,
            x if x == link_ns::DROP_PKTS_LO => self.drop_pkts as u32,
            x if x == link_ns::DROP_PKTS_HI => (self.drop_pkts >> 32) as u32,
            x if x == link_ns::ERR_PKTS => self.err_pkts as u32,
            x if x == link_ns::TX_UTIL_BPS => self.tx_util_bps,
            x if x == link_ns::RX_UTIL_BPS => self.rx_util_bps,
            _ => return None,
        })
    }

    fn write(&mut self, off: u16, value: Word) -> WriteOutcome {
        if (link_ns::APP_BASE..link_ns::APP_BASE + link_ns::APP_COUNT).contains(&off) {
            self.app[(off - link_ns::APP_BASE) as usize] = value;
            return WriteOutcome::Ok;
        }
        if self.read(off).is_some() {
            WriteOutcome::Denied
        } else {
            WriteOutcome::Unmapped
        }
    }
}

/// Per-queue statistics block (Table 6, "Per Queue").
#[derive(Clone, Debug)]
pub struct QueueStats {
    pub bytes: u64,
    pub pkts: u64,
    pub drop_pkts: u64,
    pub drop_bytes: u64,
    pub tx_pkts: u64,
    pub tx_bytes: u64,
    pub sched_weight: u32,
    pub limit_bytes: u32,
}

impl Default for QueueStats {
    fn default() -> Self {
        QueueStats {
            bytes: 0,
            pkts: 0,
            drop_pkts: 0,
            drop_bytes: 0,
            tx_pkts: 0,
            tx_bytes: 0,
            sched_weight: 1,
            limit_bytes: 150_000, // default drop-tail limit (~100 MTU packets)
        }
    }
}

impl QueueStats {
    fn read(&self, off: u16) -> Option<Word> {
        Some(match off {
            x if x == queue_ns::BYTES => self.bytes as u32,
            x if x == queue_ns::PKTS => self.pkts as u32,
            x if x == queue_ns::DROP_PKTS => self.drop_pkts as u32,
            x if x == queue_ns::DROP_BYTES => self.drop_bytes as u32,
            x if x == queue_ns::TX_PKTS => self.tx_pkts as u32,
            x if x == queue_ns::TX_BYTES => self.tx_bytes as u32,
            x if x == queue_ns::SCHED_WEIGHT => self.sched_weight,
            x if x == queue_ns::LIMIT_BYTES => self.limit_bytes,
            _ => return None,
        })
    }

    fn write(&mut self, off: u16, value: Word) -> WriteOutcome {
        match off {
            x if x == queue_ns::SCHED_WEIGHT => {
                self.sched_weight = value;
                WriteOutcome::Ok
            }
            x if x == queue_ns::LIMIT_BYTES => {
                self.limit_bytes = value;
                WriteOutcome::Ok
            }
            _ => {
                if self.read(off).is_some() {
                    WriteOutcome::Denied
                } else {
                    WriteOutcome::Unmapped
                }
            }
        }
    }
}

/// Per-stage state: general-purpose SRAM plus flow-table statistics
/// (Table 6, "Per Flow Table").
#[derive(Clone, Debug)]
pub struct StageMemory {
    pub sram: Vec<u32>,
    pub version: u32,
    pub refcount: u32,
    pub lookup_pkts: u64,
    pub lookup_bytes: u64,
    pub match_pkts: u64,
    pub match_bytes: u64,
}

impl Default for StageMemory {
    fn default() -> Self {
        StageMemory {
            sram: vec![0; stage_ns::SRAM_WORDS as usize],
            version: 0,
            refcount: 0,
            lookup_pkts: 0,
            lookup_bytes: 0,
            match_pkts: 0,
            match_bytes: 0,
        }
    }
}

impl StageMemory {
    fn read(&self, off: u16) -> Option<Word> {
        if off < stage_ns::SRAM_WORDS {
            return Some(self.sram[off as usize]);
        }
        Some(match off {
            x if x == stage_ns::VERSION => self.version,
            x if x == stage_ns::REFCOUNT => self.refcount,
            x if x == stage_ns::LOOKUP_PKTS_LO => self.lookup_pkts as u32,
            x if x == stage_ns::LOOKUP_PKTS_HI => (self.lookup_pkts >> 32) as u32,
            x if x == stage_ns::LOOKUP_BYTES_LO => self.lookup_bytes as u32,
            x if x == stage_ns::LOOKUP_BYTES_HI => (self.lookup_bytes >> 32) as u32,
            x if x == stage_ns::MATCH_PKTS_LO => self.match_pkts as u32,
            x if x == stage_ns::MATCH_PKTS_HI => (self.match_pkts >> 32) as u32,
            x if x == stage_ns::MATCH_BYTES_LO => self.match_bytes as u32,
            x if x == stage_ns::MATCH_BYTES_HI => (self.match_bytes >> 32) as u32,
            _ => return None,
        })
    }

    fn write(&mut self, off: u16, value: Word) -> WriteOutcome {
        if off < stage_ns::SRAM_WORDS {
            self.sram[off as usize] = value;
            return WriteOutcome::Ok;
        }
        if self.read(off).is_some() {
            WriteOutcome::Denied
        } else {
            WriteOutcome::Unmapped
        }
    }
}

/// Statistics of one flow-table entry, resolved through the per-packet
/// `[FlowEntry$s:...]` namespace.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowEntryStats {
    pub entry_id: u32,
    pub insert_clock: u64,
    pub match_pkts: u64,
    pub match_bytes: u64,
}

/// The flow entries a packet matched, keyed by pipeline stage.
///
/// Stored as a compact fixed-capacity list rather than a per-stage array:
/// a packet matches at most a couple of table stages (the seed datapath
/// records only the routing stage), and this struct rides inside every
/// queued packet, so it must be both allocation-free and small.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchedEntries {
    entries: [(u8, FlowEntryStats); Self::CAP],
    len: u8,
}

impl MatchedEntries {
    /// Distinct stages that can record a match for one packet.
    pub const CAP: usize = 2;

    /// Record (or replace) the entry matched at `stage`. Silently ignored
    /// beyond [`Self::CAP`] distinct stages.
    pub fn set(&mut self, stage: usize, stats: FlowEntryStats) {
        for e in &mut self.entries[..self.len as usize] {
            if e.0 == stage as u8 {
                e.1 = stats;
                return;
            }
        }
        if (self.len as usize) < Self::CAP {
            self.entries[self.len as usize] = (stage as u8, stats);
            self.len += 1;
        }
    }

    /// The entry matched at `stage`, if any.
    pub fn get(&self, stage: usize) -> Option<&FlowEntryStats> {
        self.entries[..self.len as usize].iter().find(|e| e.0 == stage as u8).map(|e| &e.1)
    }

    /// The match at the highest stage (by convention, the routing result).
    pub fn routing_match(&self) -> Option<&FlowEntryStats> {
        self.entries[..self.len as usize].iter().max_by_key(|e| e.0).map(|e| &e.1)
    }
}

impl FlowEntryStats {
    fn read(&self, off: u16) -> Option<Word> {
        Some(match off {
            x if x == flow_entry_ns::ENTRY_ID => self.entry_id,
            x if x == flow_entry_ns::INSERT_CLOCK_LO => self.insert_clock as u32,
            x if x == flow_entry_ns::INSERT_CLOCK_HI => (self.insert_clock >> 32) as u32,
            x if x == flow_entry_ns::MATCH_PKTS_LO => self.match_pkts as u32,
            x if x == flow_entry_ns::MATCH_PKTS_HI => (self.match_pkts >> 32) as u32,
            x if x == flow_entry_ns::MATCH_BYTES_LO => self.match_bytes as u32,
            x if x == flow_entry_ns::MATCH_BYTES_HI => (self.match_bytes >> 32) as u32,
            _ => return None,
        })
    }
}

/// All addressable state of one switch.
#[derive(Clone, Debug)]
pub struct SwitchMemory {
    pub switch_id: u32,
    pub vendor_id: u32,
    /// Global forwarding-state generation (bumped on every rule change).
    pub version: u32,
    pub clock_freq_hz: u32,
    pub n_ports: usize,
    pub n_stages: usize,
    pub tpp_executed: u64,
    pub tpp_rejected: u64,
    /// Current simulation time, mirrored in by the owner before execution.
    pub now_ns: u64,
    pub stages: Vec<StageMemory>,
    pub links: Vec<LinkStats>,
    pub queues: Vec<Vec<QueueStats>>,
}

impl SwitchMemory {
    pub fn new(switch_id: u32, n_ports: usize, n_stages: usize) -> Self {
        assert!(n_ports <= layout::MAX_PORTS as usize);
        assert!(n_stages <= layout::MAX_STAGES as usize);
        let links = (0..n_ports)
            .map(|p| LinkStats {
                link_id: (switch_id << 8) | p as u32,
                speed_mbps: 10_000,
                up: true,
                ..LinkStats::default()
            })
            .collect();
        SwitchMemory {
            switch_id,
            vendor_id: 0x0001,
            version: 0,
            clock_freq_hz: 1_000_000_000,
            n_ports,
            n_stages,
            tpp_executed: 0,
            tpp_rejected: 0,
            now_ns: 0,
            stages: (0..n_stages).map(|_| StageMemory::default()).collect(),
            links,
            queues: (0..n_ports)
                .map(|_| {
                    (0..layout::QUEUES_PER_PORT as usize).map(|_| QueueStats::default()).collect()
                })
                .collect(),
        }
    }

    /// Set the switch wall clock. The batch entry points
    /// ([`crate::switch::Switch::receive_batch`] /
    /// [`crate::switch::Switch::dequeue_batch`]) call this once per batch —
    /// part of the memory-map bus setup shared by every frame of the batch,
    /// since all frames of a batch observe the same instant.
    pub fn set_clock(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    fn read_switch_ns(&self, off: u16) -> Option<Word> {
        let cycles = self.now_ns.saturating_mul(self.clock_freq_hz as u64) / 1_000_000_000;
        Some(match off {
            x if x == switch_ns::SWITCH_ID => self.switch_id,
            x if x == switch_ns::VERSION => self.version,
            x if x == switch_ns::UPTIME_CYCLES_LO => cycles as u32,
            x if x == switch_ns::UPTIME_CYCLES_HI => (cycles >> 32) as u32,
            x if x == switch_ns::CLOCK_FREQ_HZ => self.clock_freq_hz,
            x if x == switch_ns::VENDOR_ID => self.vendor_id,
            x if x == switch_ns::NUM_PORTS => self.n_ports as u32,
            x if x == switch_ns::NUM_STAGES => self.n_stages as u32,
            x if x == switch_ns::TIME_NS_LO => self.now_ns as u32,
            x if x == switch_ns::TIME_NS_HI => (self.now_ns >> 32) as u32,
            x if x == switch_ns::TPP_EXECUTED_LO => self.tpp_executed as u32,
            x if x == switch_ns::TPP_EXECUTED_HI => (self.tpp_executed >> 32) as u32,
            x if x == switch_ns::TPP_REJECTED => self.tpp_rejected as u32,
            _ => return None,
        })
    }

    /// Update EWMA link utilizations from the interval accumulators and
    /// reset them. Called every utilization interval (1 ms by default).
    pub fn update_utilization(&mut self, interval_ns: u64) {
        for link in &mut self.links {
            let cap_bits = (link.speed_mbps as u64) * interval_ns / 1000; // Mbps * ns / 1000 = bits
            let tx_bps = (link.tx_bytes_interval * 8 * 10_000)
                .checked_div(cap_bits)
                .map_or(0, |v| v.min(10_000) as u32);
            let rx_bps = (link.rx_bytes_interval * 8 * 10_000)
                .checked_div(cap_bits)
                .map_or(0, |v| v.min(10_000) as u32);
            // EWMA with alpha = 1/2: responsive at RTT timescales yet smooth.
            link.tx_util_bps = (link.tx_util_bps + tx_bps) / 2;
            link.rx_util_bps = (link.rx_util_bps + rx_bps) / 2;
            link.tx_bytes_interval = 0;
            link.rx_bytes_interval = 0;
        }
    }
}

/// Per-packet metadata (Tables 7, 8), including the indirections that make
/// `[Link:...]` / `[Queue:...]` / `[FlowEntry$s:...]` resolve against *this*
/// packet.
#[derive(Clone, Debug)]
pub struct PacketContext {
    pub in_port: u8,
    /// Known only after the routing stage (end of ingress).
    pub out_port: Option<u8>,
    pub out_queue: u8,
    /// Matched flow entries, keyed by stage. Fixed-capacity so building a
    /// context per packet performs no heap allocation.
    pub matched_entry: MatchedEntries,
    pub pkt_len: u32,
    pub hop_count: u32,
    pub path_hash: u32,
    pub enq_qdepth_bytes: Option<u32>,
    pub enq_qdepth_pkts: Option<u32>,
    pub queue_wait_ns: Option<u32>,
    pub ingress_tstamp_ns: u64,
}

impl PacketContext {
    pub fn new(in_port: u8, pkt_len: u32, now_ns: u64, n_stages: usize) -> Self {
        debug_assert!(n_stages <= layout::MAX_STAGES as usize);
        let _ = n_stages;
        PacketContext {
            in_port,
            out_port: None,
            out_queue: 0,
            matched_entry: MatchedEntries::default(),
            pkt_len,
            hop_count: 0,
            path_hash: 0,
            enq_qdepth_bytes: None,
            enq_qdepth_pkts: None,
            queue_wait_ns: None,
            ingress_tstamp_ns: now_ns,
        }
    }

    fn read_meta(&self, off: u16) -> Option<Word> {
        Some(match off {
            x if x == meta_ns::INPUT_PORT => self.in_port as u32,
            x if x == meta_ns::OUTPUT_PORT => self.out_port? as u32,
            x if x == meta_ns::OUTPUT_QUEUE => {
                self.out_port?; // meaningful only once routed
                self.out_queue as u32
            }
            x if x == meta_ns::MATCHED_ENTRY_ID => {
                // Convention: the routing stage's matched entry.
                self.matched_entry.routing_match()?.entry_id
            }
            x if x == meta_ns::PKT_LEN => self.pkt_len,
            x if x == meta_ns::HOP_COUNT => self.hop_count,
            x if x == meta_ns::PATH_HASH => self.path_hash,
            x if x == meta_ns::ENQ_QDEPTH_BYTES => self.enq_qdepth_bytes?,
            x if x == meta_ns::ENQ_QDEPTH_PKTS => self.enq_qdepth_pkts?,
            x if x == meta_ns::QUEUE_WAIT_NS => self.queue_wait_ns?,
            x if x == meta_ns::INGRESS_TSTAMP_NS_LO => self.ingress_tstamp_ns as u32,
            x if x == meta_ns::INGRESS_TSTAMP_NS_HI => (self.ingress_tstamp_ns >> 32) as u32,
            _ => return None,
        })
    }

    fn write_meta(&mut self, off: u16, value: Word) -> WriteOutcome {
        match off {
            x if x == meta_ns::OUTPUT_PORT => {
                // Writes by a TPP supersede forwarding logic (§3.2) — but
                // only once the forwarding logic has run.
                if self.out_port.is_none() {
                    return WriteOutcome::Unmapped;
                }
                self.out_port = Some(value as u8);
                WriteOutcome::Ok
            }
            x if x == meta_ns::OUTPUT_QUEUE => {
                if self.out_port.is_none() {
                    return WriteOutcome::Unmapped;
                }
                self.out_queue = (value as u8) % layout::QUEUES_PER_PORT as u8;
                WriteOutcome::Ok
            }
            _ => {
                if self.read_meta(off).is_some() {
                    WriteOutcome::Denied
                } else {
                    WriteOutcome::Unmapped
                }
            }
        }
    }
}

/// A [`MemoryBus`] over the whole switch for one packet: the reference
/// (non-pipelined) view used by software switches, tests, and as the
/// per-stage bus's underlying accessor.
pub struct SwitchBus<'a> {
    pub mem: &'a mut SwitchMemory,
    pub ctx: &'a mut PacketContext,
}

impl SwitchBus<'_> {
    fn resolve_link(&self, ns: Namespace) -> Option<usize> {
        match ns {
            Namespace::CurrentLink => self.ctx.out_port.map(|p| p as usize),
            Namespace::Link(p) => Some(p as usize),
            _ => None,
        }
        .filter(|p| *p < self.mem.n_ports)
    }

    fn resolve_queue(&self, ns: Namespace) -> Option<(usize, usize)> {
        match ns {
            Namespace::CurrentQueue => {
                self.ctx.out_port.map(|p| (p as usize, self.ctx.out_queue as usize))
            }
            Namespace::Queue(p, q) => Some((p as usize, q as usize)),
            _ => None,
        }
        .filter(|(p, q)| *p < self.mem.n_ports && *q < layout::QUEUES_PER_PORT as usize)
    }
}

impl MemoryBus for SwitchBus<'_> {
    fn read(&mut self, a: Address) -> Option<Word> {
        let ns = Namespace::of(a)?;
        let off = a.offset();
        match ns {
            Namespace::Switch => self.mem.read_switch_ns(off),
            Namespace::PacketMetadata => self.ctx.read_meta(off),
            Namespace::CurrentLink | Namespace::Link(_) => {
                let p = self.resolve_link(ns)?;
                self.mem.links[p].read(off)
            }
            Namespace::CurrentQueue | Namespace::Queue(_, _) => {
                // Packet-consistency (§3.2): once the packet has been
                // buffered, its *current queue's* occupancy reads resolve to
                // the snapshot taken at enqueue — the same values the
                // forwarding logic used for this packet — rather than the
                // live counter, which by egress no longer includes it.
                if ns == Namespace::CurrentQueue {
                    if off == queue_ns::BYTES {
                        if let Some(snap) = self.ctx.enq_qdepth_bytes {
                            return Some(snap);
                        }
                    }
                    if off == queue_ns::PKTS {
                        if let Some(snap) = self.ctx.enq_qdepth_pkts {
                            return Some(snap);
                        }
                    }
                }
                let (p, q) = self.resolve_queue(ns)?;
                self.mem.queues[p][q].read(off)
            }
            Namespace::FlowEntry(s) => self.ctx.matched_entry.get(s as usize)?.read(off),
            Namespace::Stage(s) => {
                if (s as usize) < self.mem.n_stages {
                    self.mem.stages[s as usize].read(off)
                } else {
                    None
                }
            }
        }
    }

    fn write(&mut self, a: Address, value: Word) -> WriteOutcome {
        let Some(ns) = Namespace::of(a) else { return WriteOutcome::Unmapped };
        let off = a.offset();
        match ns {
            Namespace::Switch => {
                if self.mem.read_switch_ns(off).is_some() {
                    WriteOutcome::Denied
                } else {
                    WriteOutcome::Unmapped
                }
            }
            Namespace::PacketMetadata => self.ctx.write_meta(off, value),
            Namespace::CurrentLink | Namespace::Link(_) => match self.resolve_link(ns) {
                Some(p) => self.mem.links[p].write(off, value),
                None => WriteOutcome::Unmapped,
            },
            Namespace::CurrentQueue | Namespace::Queue(_, _) => match self.resolve_queue(ns) {
                Some((p, q)) => self.mem.queues[p][q].write(off, value),
                None => WriteOutcome::Unmapped,
            },
            Namespace::FlowEntry(_) => WriteOutcome::Denied,
            Namespace::Stage(s) => {
                if (s as usize) < self.mem.n_stages {
                    self.mem.stages[s as usize].write(off, value)
                } else {
                    WriteOutcome::Unmapped
                }
            }
        }
    }
}

/// Convenience: read an address without a packet context (per-packet
/// namespaces resolve to `None`). Used by control planes and tests.
pub fn read_global(mem: &mut SwitchMemory, a: Address) -> Option<Word> {
    let mut ctx = PacketContext::new(0, 0, mem.now_ns, mem.n_stages);
    ctx.out_port = None;
    SwitchBus { mem, ctx: &mut ctx }.read(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::addr::resolve_mnemonic;

    fn a(m: &str) -> Address {
        resolve_mnemonic(m).unwrap()
    }

    fn mem() -> SwitchMemory {
        SwitchMemory::new(7, 4, 6)
    }

    #[test]
    fn switch_globals_readable() {
        let mut m = mem();
        m.now_ns = 5_000_000_000;
        let mut ctx = PacketContext::new(0, 100, m.now_ns, 6);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("Switch:SwitchID")), Some(7));
        assert_eq!(bus.read(a("Switch:NumPorts")), Some(4));
        assert_eq!(bus.read(a("Switch:NumStages")), Some(6));
        assert_eq!(bus.read(a("Switch:TimeNs")), Some(5_000_000_000u64 as u32));
        assert_eq!(bus.read(a("Switch:TimeNsHi")), Some(1));
        // Globals are read-only.
        assert_eq!(bus.write(a("Switch:SwitchID"), 9), WriteOutcome::Denied);
    }

    #[test]
    fn current_link_indirection() {
        let mut m = mem();
        m.links[2].queued_bytes = 1234;
        m.links[3].queued_bytes = 9999;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        // Before routing: unmapped (output port unknown).
        {
            let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
            assert_eq!(bus.read(a("Link:QueueSize")), None);
        }
        ctx.out_port = Some(2);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("Link:QueueSize")), Some(1234));
        // Explicit-port addressing is independent of the packet.
        assert_eq!(bus.read(a("Link$3:QueueSize")), Some(9999));
    }

    #[test]
    fn current_queue_indirection() {
        let mut m = mem();
        m.queues[1][0].bytes = 4096;
        m.queues[1][5].bytes = 11;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(1);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("Queue:QueueOccupancy")), Some(4096));
        assert_eq!(bus.read(a("Queue$1$5:QueueOccupancy")), Some(11));
    }

    #[test]
    fn app_registers_writable() {
        let mut m = mem();
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.out_port = Some(0);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.write(a("Link:AppSpecific_0"), 777), WriteOutcome::Ok);
        assert_eq!(bus.read(a("Link:AppSpecific_0")), Some(777));
        // Counters reject writes.
        assert_eq!(bus.write(a("Link:RX-Bytes"), 0), WriteOutcome::Denied);
    }

    #[test]
    fn wide_counters_split() {
        let mut m = mem();
        m.links[0].tx_bytes = 0x1_2345_6789;
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("Link$0:TX-Bytes")), Some(0x2345_6789));
        assert_eq!(bus.read(a("Link$0:TX-BytesHi")), Some(1));
    }

    #[test]
    fn metadata_reads_and_reroute_write() {
        let mut m = mem();
        let mut ctx = PacketContext::new(3, 1500, 42, 6);
        ctx.path_hash = 0xABCD;
        {
            let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
            assert_eq!(bus.read(a("PacketMetadata:InputPort")), Some(3));
            assert_eq!(bus.read(a("PacketMetadata:PktLen")), Some(1500));
            assert_eq!(bus.read(a("PacketMetadata:PathHash")), Some(0xABCD));
            // Output port unknown pre-routing: read unmapped, write refused.
            assert_eq!(bus.read(a("PacketMetadata:OutputPort")), None);
            assert_eq!(bus.write(a("PacketMetadata:OutputPort"), 1), WriteOutcome::Unmapped);
        }
        ctx.out_port = Some(2);
        {
            let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
            assert_eq!(bus.read(a("PacketMetadata:OutputPort")), Some(2));
            // The fast-reroute write (§2.6).
            assert_eq!(bus.write(a("PacketMetadata:OutputPort"), 1), WriteOutcome::Ok);
            // Input port is read-only.
            assert_eq!(bus.write(a("PacketMetadata:InputPort"), 1), WriteOutcome::Denied);
        }
        assert_eq!(ctx.out_port, Some(1));
    }

    #[test]
    fn flow_entry_stats_via_indirection() {
        let mut m = mem();
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        ctx.matched_entry.set(
            3,
            FlowEntryStats { entry_id: 55, insert_clock: 1000, match_pkts: 10, match_bytes: 1500 },
        );
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("FlowEntry$3:EntryID")), Some(55));
        assert_eq!(bus.read(a("FlowEntry$3:MatchPkts")), Some(10));
        assert_eq!(bus.read(a("FlowEntry$2:EntryID")), None); // no match there
        assert_eq!(bus.read(a("PacketMetadata:MatchedEntryID")), Some(55));
        assert_eq!(bus.write(a("FlowEntry$3:EntryID"), 1), WriteOutcome::Denied);
    }

    #[test]
    fn stage_sram_readwrite_stats_readonly() {
        let mut m = mem();
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.write(a("Stage2:Reg7"), 0xCAFE), WriteOutcome::Ok);
        assert_eq!(bus.read(a("Stage2:Reg7")), Some(0xCAFE));
        assert_eq!(bus.write(a("Stage2:Version"), 1), WriteOutcome::Denied);
        // Stage beyond configured count is unmapped.
        assert_eq!(bus.read(a("Stage7:Reg0")), None);
        assert_eq!(bus.write(a("Stage7:Reg0"), 1), WriteOutcome::Unmapped);
    }

    #[test]
    fn out_of_range_ports_unmapped() {
        let mut m = mem(); // 4 ports
        let mut ctx = PacketContext::new(0, 100, 0, 6);
        let mut bus = SwitchBus { mem: &mut m, ctx: &mut ctx };
        assert_eq!(bus.read(a("Link$5:ID")), None);
        assert_eq!(bus.write(a("Link$5:AppSpecific_0"), 1), WriteOutcome::Unmapped);
    }

    #[test]
    fn utilization_update_ewma() {
        let mut m = mem();
        m.links[0].speed_mbps = 100;
        // 50% utilization over 1 ms: 100Mb/s * 1ms = 100_000 bits capacity;
        // send 6250 bytes = 50_000 bits.
        m.links[0].tx_bytes_interval = 6_250;
        m.update_utilization(1_000_000);
        assert_eq!(m.links[0].tx_util_bps, 2_500); // EWMA from 0: (0+5000)/2
        m.links[0].tx_bytes_interval = 6_250;
        m.update_utilization(1_000_000);
        assert_eq!(m.links[0].tx_util_bps, 3_750);
        // Accumulator reset each interval.
        m.update_utilization(1_000_000);
        assert_eq!(m.links[0].tx_util_bps, 1_875);
    }

    #[test]
    fn utilization_saturates_at_10000() {
        let mut m = mem();
        m.links[0].speed_mbps = 10;
        m.links[0].rx_bytes_interval = 10_000_000;
        m.update_utilization(1_000_000);
        assert!(m.links[0].rx_util_bps <= 10_000);
    }

    #[test]
    fn read_global_helper() {
        let mut m = mem();
        assert_eq!(read_global(&mut m, a("Switch:SwitchID")), Some(7));
        assert_eq!(read_global(&mut m, a("Link:QueueSize")), None); // per-packet
        assert_eq!(read_global(&mut m, a("Link$0:QueueSize")), Some(0));
    }
}
