//! Match-action flow tables and ECMP group tables (§3.1, §2.4).
//!
//! The routing stage holds an L3 exact/longest-prefix table keyed on
//! destination IPv4 address. Actions either output to a fixed port or
//! select among a *group* of ports by hashing packet headers — the "group
//! table available in many switches today for multipath routing" that
//! CONGA* repurposes (§2.4): end-hosts steer flowlets by varying the fields
//! the hash covers (we hash the UDP/TCP source port, among others).

use tpp_core::wire::{ipv4, udp, EthernetFrame, Ipv4Address, Ipv4Packet};

/// Forwarding actions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward out a specific port.
    Output(u8),
    /// Hash-select a port from a group.
    Group(u16),
    Drop,
}

/// One flow-table entry.
#[derive(Clone, Debug)]
pub struct FlowEntry {
    pub entry_id: u32,
    /// Destination prefix: `(addr, prefix_len)`.
    pub prefix: (Ipv4Address, u8),
    pub action: Action,
    pub insert_clock: u64,
    pub match_pkts: u64,
    pub match_bytes: u64,
}

fn prefix_matches(prefix: (Ipv4Address, u8), addr: Ipv4Address) -> bool {
    let (net, len) = prefix;
    if len == 0 {
        return true;
    }
    let mask = if len >= 32 { u32::MAX } else { !(u32::MAX >> len) };
    (net.to_u32() & mask) == (addr.to_u32() & mask)
}

/// A longest-prefix-match flow table.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    next_id: u32,
    /// Bumped on every mutation; mirrored into `Stage:Version` (Table 6:
    /// "a per flow table version number that monotonically increases on
    /// every flow update").
    pub version: u32,
}

impl FlowTable {
    /// Insert a route; returns the entry id.
    pub fn insert(&mut self, prefix: (Ipv4Address, u8), action: Action, now: u64) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(FlowEntry {
            entry_id: id,
            prefix,
            action,
            insert_clock: now,
            match_pkts: 0,
            match_bytes: 0,
        });
        self.version = self.version.wrapping_add(1);
        id
    }

    /// Insert a host route (`/32`).
    pub fn insert_host(&mut self, dst: Ipv4Address, action: Action, now: u64) -> u32 {
        self.insert((dst, 32), action, now)
    }

    /// Remove an entry by id. Returns whether it existed.
    pub fn remove(&mut self, entry_id: u32) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.entry_id != entry_id);
        let removed = self.entries.len() != before;
        if removed {
            self.version = self.version.wrapping_add(1);
        }
        removed
    }

    /// Replace the action of an existing destination (exact prefix match),
    /// or insert if absent. Used for fast network updates (§2.6).
    pub fn upsert(&mut self, prefix: (Ipv4Address, u8), action: Action, now: u64) -> u32 {
        if let Some(e) = self.entries.iter_mut().find(|e| e.prefix == prefix) {
            e.action = action;
            e.insert_clock = now;
            self.version = self.version.wrapping_add(1);
            return e.entry_id;
        }
        self.insert(prefix, action, now)
    }

    /// Longest-prefix match; updates the entry's counters on hit.
    pub fn lookup(&mut self, dst: Ipv4Address, pkt_bytes: u64) -> Option<&FlowEntry> {
        let mut hint = LookupHint::default();
        self.lookup_hinted(dst, pkt_bytes, &mut hint)
    }

    /// [`FlowTable::lookup`] with a caller-held memo: back-to-back packets
    /// of one delivery batch often share a destination, and the LPM scan is
    /// linear in the table, so a batch-scoped [`LookupHint`] turns the
    /// repeat lookups into O(1) — with *identical* side effects (the
    /// matched entry's packet/byte counters advance exactly as if the scan
    /// had run, which TPPs observe via `FlowEntry$i:MatchPkts`). The memo
    /// self-invalidates when the table version moves.
    pub fn lookup_hinted(
        &mut self,
        dst: Ipv4Address,
        pkt_bytes: u64,
        hint: &mut LookupHint,
    ) -> Option<&FlowEntry> {
        let i = if hint.valid && hint.version == self.version && hint.dst == dst {
            hint.outcome?
        } else {
            let mut best: Option<usize> = None;
            let mut best_len = 0u8;
            for (i, e) in self.entries.iter().enumerate() {
                if prefix_matches(e.prefix, dst) && (best.is_none() || e.prefix.1 > best_len) {
                    best = Some(i);
                    best_len = e.prefix.1;
                }
            }
            *hint = LookupHint { dst, version: self.version, outcome: best, valid: true };
            best?
        };
        let e = &mut self.entries[i];
        e.match_pkts += 1;
        e.match_bytes += pkt_bytes;
        Some(&self.entries[i])
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }
}

/// A one-destination memo for [`FlowTable::lookup_hinted`]: remembers the
/// LPM outcome (hit index or miss) for `dst` at a table `version`. Default
/// state is invalid, so a fresh hint always scans once.
#[derive(Clone, Copy, Debug, Default)]
pub struct LookupHint {
    dst: Ipv4Address,
    version: u32,
    /// `Some(index)` = hit; `None` = known miss.
    outcome: Option<usize>,
    valid: bool,
}

/// ECMP group table: each group is a list of candidate output ports.
#[derive(Clone, Debug, Default)]
pub struct GroupTable {
    groups: Vec<Vec<u8>>,
}

impl GroupTable {
    /// Register a group; returns its id.
    pub fn add(&mut self, ports: Vec<u8>) -> u16 {
        assert!(!ports.is_empty(), "empty ECMP group");
        self.groups.push(ports);
        (self.groups.len() - 1) as u16
    }

    /// Pick a member port by hash.
    pub fn select(&self, group: u16, hash: u32) -> Option<u8> {
        let ports = self.groups.get(group as usize)?;
        Some(ports[hash as usize % ports.len()])
    }

    pub fn ports(&self, group: u16) -> Option<&[u8]> {
        self.groups.get(group as usize).map(Vec::as_slice)
    }
}

/// The fields covered by the ECMP hash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowKey {
    pub src: Ipv4Address,
    pub dst: Ipv4Address,
    pub protocol: u8,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowKey {
    /// Extract the 5-tuple from an (inner) IPv4 packet.
    pub fn from_ipv4(ip: &Ipv4Packet<&[u8]>) -> FlowKey {
        let mut key = FlowKey {
            src: ip.src(),
            dst: ip.dst(),
            protocol: ip.protocol(),
            src_port: 0,
            dst_port: 0,
        };
        if matches!(ip.protocol(), ipv4::protocol::UDP | ipv4::protocol::TCP) {
            let pl = ip.payload();
            if pl.len() >= 4 {
                key.src_port = u16::from_be_bytes([pl[0], pl[1]]);
                key.dst_port = u16::from_be_bytes([pl[2], pl[3]]);
            }
        }
        key
    }

    /// Extract the key from a full Ethernet frame, looking through a
    /// transparent-mode TPP if present.
    pub fn from_frame(frame: &[u8]) -> Option<FlowKey> {
        let eth = EthernetFrame::new_checked(frame)?;
        let l3 = match eth.ethertype() {
            tpp_core::wire::ethernet::ethertype::IPV4 => eth.payload(),
            tpp_core::wire::ethernet::ethertype::TPP => {
                let (view, consumed) = tpp_core::wire::TppView::parse(eth.payload()).ok()?;
                if view.encap_proto() != tpp_core::wire::ethernet::ethertype::IPV4 {
                    return None;
                }
                &eth.payload()[consumed..]
            }
            _ => return None,
        };
        let ip = Ipv4Packet::new_checked(l3)?;
        Some(FlowKey::from_ipv4(&ip))
    }

    /// FNV-1a over the tuple: deterministic, well-mixed, cheap — a stand-in
    /// for the proprietary hash functions the paper notes are "often
    /// proprietary and unknown" (§2.1).
    pub fn hash(&self) -> u32 {
        self.hash_with(true)
    }

    /// Hash with or without the destination port. Excluding it makes a
    /// flow's standalone TPP probes (UDP dst 0x6666) follow the *same* ECMP
    /// path as its data packets — the configuration CONGA* uses (§2.4).
    pub fn hash_with(&self, include_dst_port: bool) -> u32 {
        let mut h: u32 = 0x811C_9DC5;
        let mut mix = |b: u8| {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        };
        for b in self.src.0 {
            mix(b);
        }
        for b in self.dst.0 {
            mix(b);
        }
        mix(self.protocol);
        for b in self.src_port.to_be_bytes() {
            mix(b);
        }
        if include_dst_port {
            for b in self.dst_port.to_be_bytes() {
                mix(b);
            }
        }
        h
    }
}

/// Is this frame's UDP destination port the TPP port? (Used by hosts to
/// avoid hashing TPP probes differently from their flows.)
pub fn is_standalone_tpp_key(key: &FlowKey) -> bool {
    key.protocol == ipv4::protocol::UDP && key.dst_port == udp::TPP_PORT
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Address {
        Ipv4Address::new(a, b, c, d)
    }

    #[test]
    fn exact_and_prefix_matching() {
        let mut t = FlowTable::default();
        t.insert((ip(10, 0, 0, 0), 8), Action::Output(1), 0);
        t.insert_host(ip(10, 0, 0, 5), Action::Output(2), 0);
        // Host route wins (longest prefix).
        assert_eq!(t.lookup(ip(10, 0, 0, 5), 100).unwrap().action, Action::Output(2));
        assert_eq!(t.lookup(ip(10, 9, 9, 9), 100).unwrap().action, Action::Output(1));
        assert!(t.lookup(ip(192, 168, 0, 1), 100).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = FlowTable::default();
        t.insert((ip(0, 0, 0, 0), 0), Action::Drop, 0);
        assert_eq!(t.lookup(ip(1, 2, 3, 4), 10).unwrap().action, Action::Drop);
    }

    #[test]
    fn counters_and_version() {
        let mut t = FlowTable::default();
        assert_eq!(t.version, 0);
        let id = t.insert_host(ip(10, 0, 0, 1), Action::Output(0), 42);
        assert_eq!(t.version, 1);
        t.lookup(ip(10, 0, 0, 1), 100);
        t.lookup(ip(10, 0, 0, 1), 200);
        let e = t.entries().iter().find(|e| e.entry_id == id).unwrap();
        assert_eq!(e.match_pkts, 2);
        assert_eq!(e.match_bytes, 300);
        assert_eq!(e.insert_clock, 42);
        assert!(t.remove(id));
        assert_eq!(t.version, 2);
        assert!(!t.remove(id));
        assert_eq!(t.version, 2);
    }

    #[test]
    fn upsert_replaces_action() {
        let mut t = FlowTable::default();
        let id1 = t.upsert((ip(10, 0, 0, 1), 32), Action::Output(0), 0);
        let id2 = t.upsert((ip(10, 0, 0, 1), 32), Action::Output(3), 5);
        assert_eq!(id1, id2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(10, 0, 0, 1), 1).unwrap().action, Action::Output(3));
    }

    #[test]
    fn group_selection_is_deterministic_and_covers_members() {
        let mut g = GroupTable::default();
        let gid = g.add(vec![2, 3]);
        let mut seen = std::collections::BTreeSet::new();
        for sport in 0..64u16 {
            let key = FlowKey {
                src: ip(10, 0, 0, 1),
                dst: ip(10, 0, 0, 9),
                protocol: 17,
                src_port: sport,
                dst_port: 80,
            };
            let p = g.select(gid, key.hash()).unwrap();
            assert!(p == 2 || p == 3);
            seen.insert(p);
            // Deterministic.
            assert_eq!(g.select(gid, key.hash()), Some(p));
        }
        assert_eq!(seen.len(), 2, "hash should spread across both paths");
        assert_eq!(g.select(99, 0), None);
    }

    #[test]
    fn flow_key_from_frames() {
        use tpp_core::wire::*;
        let src_ip = ip(10, 0, 0, 1);
        let dst_ip = ip(10, 0, 0, 2);
        let u = udp::Repr { src_port: 4321, dst_port: 80, payload_len: 2 };
        let udp_bytes = u.encapsulate(src_ip, dst_ip, b"hi");
        let ip_repr = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_bytes.len(),
        };
        let ip_bytes = ip_repr.encapsulate(&udp_bytes);
        let frame = EthernetRepr {
            dst: EthernetAddress::from_node_id(2),
            src: EthernetAddress::from_node_id(1),
            ethertype: ethernet::ethertype::IPV4,
        }
        .encapsulate(&ip_bytes);

        let key = FlowKey::from_frame(&frame).unwrap();
        assert_eq!(key.src_port, 4321);
        assert_eq!(key.dst_port, 80);

        // The key is identical when a transparent TPP is piggy-backed: the
        // hash (and thus the path) must not change when we instrument a
        // packet.
        let tpp = Tpp { memory: vec![0; 8], ..Tpp::default() };
        let outer = insert_transparent(&frame, &tpp);
        assert_eq!(FlowKey::from_frame(&outer).unwrap(), key);
    }

    #[test]
    fn hash_differs_across_ports() {
        let base = FlowKey {
            src: ip(10, 0, 0, 1),
            dst: ip(10, 0, 0, 2),
            protocol: 17,
            src_port: 1000,
            dst_port: 80,
        };
        let mut other = base;
        other.src_port = 1001;
        assert_ne!(base.hash(), other.hash());
    }
}
