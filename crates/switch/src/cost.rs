//! Hardware cost model (paper §6.1, Tables 3 and 4).
//!
//! The paper's hardware claims are per-stage cycle costs measured on a
//! `NetFPGA` prototype and estimated for 1 GHz merchant ASICs. We encode both
//! profiles so simulated switches can charge realistic TPP execution
//! latency, and so the Table 3/4 benches can print the same breakdowns.

use tpp_core::isa::Opcode;

/// Per-instruction-class cycle costs at one pipeline stage (Table 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostProfile {
    pub name: &'static str,
    pub clock_hz: u64,
    /// Parsing the TPP header + instructions.
    pub parse_cycles: u32,
    /// One switch-memory access (read or write).
    pub mem_access_cycles: u32,
    /// Executing a CSTORE (excluding its operand memory accesses).
    pub cstore_exec_cycles: u32,
    /// Executing any other instruction.
    pub other_exec_cycles: u32,
    /// Rewriting the packet with results.
    pub rewrite_cycles: u32,
    /// Number of match-action stages the estimate divides across.
    pub stages: u32,
    /// Baseline ingress–egress latency of the switch without TPPs, in ns.
    pub base_latency_ns: u64,
}

/// The `NetFPGA` prototype: 160 MHz, single-port block RAM with 1-cycle
/// access; parse/execute/rewrite each complete within a cycle; total
/// per-stage latency measured at exactly 2 cycles (§6.1).
pub const NETFPGA: CostProfile = CostProfile {
    name: "NetFPGA",
    clock_hz: 160_000_000,
    parse_cycles: 1,
    mem_access_cycles: 1,
    cstore_exec_cycles: 1,
    other_exec_cycles: 1,
    rewrite_cycles: 1,
    stages: 4,
    // Unloaded 4-stage pipeline at 160 MHz: 2 cycles/stage = 12.5ns each.
    base_latency_ns: 50,
};

/// A 1 GHz merchant ASIC (§6.1, from the authors' conversations with ASIC
/// designers): 2–5 cycle SRAM access (we charge the 5-cycle worst case),
/// 10-cycle CSTORE, ~500 ns baseline ingress–egress latency.
pub const ASIC: CostProfile = CostProfile {
    name: "ASIC (1GHz)",
    clock_hz: 1_000_000_000,
    parse_cycles: 1,
    mem_access_cycles: 5,
    cstore_exec_cycles: 10,
    other_exec_cycles: 1,
    rewrite_cycles: 1,
    stages: 5,
    base_latency_ns: 500,
};

impl CostProfile {
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }

    /// Cycle cost of executing one instruction (memory access + execute).
    pub fn instruction_cycles(&self, op: Opcode) -> u32 {
        let exec = match op {
            Opcode::Cstore => self.cstore_exec_cycles,
            _ => self.other_exec_cycles,
        };
        // CSTORE performs a read-modify-write: two memory operations.
        let mem_ops = match op {
            Opcode::Cstore => 2,
            _ => 1,
        };
        mem_ops * self.mem_access_cycles + exec
    }

    /// Total added cycles for a TPP whose executed opcodes are `ops`.
    pub fn tpp_cycles<I: IntoIterator<Item = Opcode>>(&self, ops: I) -> u32 {
        let instr: u32 = ops.into_iter().map(|o| self.instruction_cycles(o)).sum();
        self.parse_cycles + instr + self.rewrite_cycles
    }

    /// Added latency in nanoseconds for a TPP execution.
    pub fn tpp_latency_ns<I: IntoIterator<Item = Opcode>>(&self, ops: I) -> u64 {
        (self.tpp_cycles(ops) as f64 * self.ns_per_cycle()).round() as u64
    }

    /// The paper's §6.1 worst case: every instruction a CSTORE.
    pub fn worst_case_latency_ns(&self, n_instructions: usize) -> u64 {
        self.tpp_latency_ns(std::iter::repeat_n(Opcode::Cstore, n_instructions))
    }
}

/// Resource accounting for TPP support (Table 4). `NetFPGA` synthesis is
/// impossible here, so the model counts what the paper's design needs —
/// execution units, crossbar ports, and added state — and the bench prints
/// these next to the paper's published synthesis numbers.
#[derive(Clone, Copy, Debug)]
pub struct ResourceModel {
    pub n_pipelines: u32,
    pub stages_per_pipeline: u32,
    pub max_instructions: u32,
}

/// Paper Table 4: `NetFPGA` reference router vs. +TCPU, in device resources.
#[derive(Clone, Copy, Debug)]
pub struct NetFpgaTable4Row {
    pub resource: &'static str,
    pub router: f64,
    pub tcpu_extra: f64,
}

/// The published Table 4 numbers (thousands of units).
pub const NETFPGA_TABLE4: [NetFpgaTable4Row; 4] = [
    NetFpgaTable4Row { resource: "Slices", router: 26.8, tcpu_extra: 5.8 },
    NetFpgaTable4Row { resource: "Slice registers", router: 64.7, tcpu_extra: 14.0 },
    NetFpgaTable4Row { resource: "LUTs", router: 69.1, tcpu_extra: 20.8 },
    NetFpgaTable4Row { resource: "LUT-flip flop pairs", router: 88.8, tcpu_extra: 21.8 },
];

impl ResourceModel {
    /// One execution unit per instruction per stage (§3.5: "each stage has
    /// one execution unit for every instruction in the packet"). The paper
    /// counts 5 x 64 = 320 TCPUs for a full ASIC.
    pub fn execution_units(&self) -> u32 {
        self.max_instructions * self.stages_per_pipeline * self.n_pipelines
    }

    /// Crossbar ports: each execution unit connects to stage-local
    /// registers and packet memory (§3.5, Figure 8).
    pub fn crossbar_ports(&self) -> u32 {
        // instruction operands (addr + packet word) per unit
        self.execution_units() * 2
    }

    /// Added per-packet state carried between stages: decoded instructions
    /// (4B each), packet memory view (up to 320 bits per Figure 8), and
    /// execution flags.
    pub fn per_packet_state_bits(&self) -> u32 {
        self.max_instructions * 32 + 320 + 8
    }

    /// The paper's area argument (§6.1): ~7000 processing units cost <7% of
    /// ASIC area [Bosshart et al.]; TPP needs only `execution_units()`, so
    /// the area fraction scales proportionally.
    pub fn estimated_asic_area_percent(&self) -> f64 {
        7.0 * self.execution_units() as f64 / 7000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfpga_per_stage_cost_matches_table3() {
        // §6.1: "the total per-stage latency was exactly 2 cycles"; with our
        // accounting a 1-instruction stage costs parse(1)+mem(1)+exec(1)+
        // rewrite(1) but parse/exec/rewrite "all complete within a cycle" —
        // the measured 2 cycles/stage corresponds to mem access + everything
        // else pipelined. Check the coarse per-instruction numbers instead.
        assert_eq!(NETFPGA.instruction_cycles(Opcode::Load), 2);
        assert_eq!(NETFPGA.instruction_cycles(Opcode::Cstore), 3);
    }

    #[test]
    fn asic_worst_case_is_50ns() {
        // §6.1: "in the worst case, if every instruction is a CSTORE, a TPP
        // can add a maximum of 50ns latency".
        // 5 CSTOREs x 10 cycles execute = 50 cycles = 50ns at 1GHz. Our
        // model also charges operand memory access; the paper's 10-cycle
        // CSTORE figure already subsumes it, so compare exec-only.
        let exec_only: u32 = (0..5).map(|_| ASIC.cstore_exec_cycles).sum();
        assert_eq!(exec_only, 50);
        assert_eq!((exec_only as f64 * ASIC.ns_per_cycle()) as u64, 50);
    }

    #[test]
    fn asic_overhead_fraction_of_base_latency() {
        // §6.1: 50ns worst case on a 200–500ns switch = 10–25% extra.
        let worst = 50.0;
        assert!((worst / ASIC.base_latency_ns as f64) <= 0.25);
        assert!((worst / 200.0) >= 0.10);
    }

    #[test]
    fn tpp_cycles_monotone_in_instructions() {
        let one = NETFPGA.tpp_cycles([Opcode::Push]);
        let three = NETFPGA.tpp_cycles([Opcode::Push, Opcode::Push, Opcode::Push]);
        assert!(three > one);
    }

    #[test]
    fn resource_model_matches_paper_320_units() {
        // §6.1: "We only need 5 x 64 = 320 TCPUs, one per instruction per
        // stage in the ingress/egress pipelines; therefore the area costs
        // are not substantial (0.32%)".
        let m = ResourceModel { n_pipelines: 16, stages_per_pipeline: 4, max_instructions: 5 };
        assert_eq!(m.execution_units(), 320);
        let area = m.estimated_asic_area_percent();
        assert!((area - 0.32).abs() < 0.01, "got {area}");
    }

    #[test]
    fn netfpga_table4_percentages() {
        // The +TCPU column is within 30.1% of the reference router (§6.1).
        for row in NETFPGA_TABLE4 {
            let pct = 100.0 * row.tcpu_extra / row.router;
            assert!(pct <= 30.2, "{}: {pct}", row.resource);
        }
    }
}
