//! A TPP-capable switch: parser, ingress pipeline, output queues, egress
//! pipeline, and the distributed TCPU (§3, Figure 6).
//!
//! The switch is driven by its owner (the network simulator):
//!
//! * [`Switch::receive`] — a frame arrives on a port: parse, execute the
//!   ingress portion of any TPP, route, and enqueue (or drop).
//! * [`Switch::dequeue`] — the port is ready to transmit: pop the next
//!   frame, execute the egress portion of its TPP, rewrite the packet.
//! * [`Switch::tick`] — advance time-driven state (link-utilization EWMAs).
//!
//! Real ASIC pipelines process packets back-to-back; the simulator mirrors
//! that with *batch* entry points: [`Switch::receive_batch`] ingests every
//! frame arriving at one instant with the clock stored once and a shared
//! route-lookup memo ([`crate::tables::LookupHint`]), and
//! [`Switch::dequeue_batch`] pops the next frame of several ready ports in
//! one call. Both are exactly equivalent to looping the single-frame
//! forms — the batching amortizes bus setup, it never reorders effects.

use std::collections::VecDeque;

use crate::cost::{CostProfile, ASIC};
use crate::memmap::{FlowEntryStats, PacketContext, SwitchBus, SwitchMemory};
use crate::pipeline::{PipelineConfig, TppRun};
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::tables::{Action, FlowKey, FlowTable, GroupTable, LookupHint};
use tpp_core::addr::layout;
use tpp_core::exec::ExecOptions;
use tpp_core::wire::{
    ethernet, locate_tpp, EthernetFrame, Ipv4Address, Ipv4Packet, TppLocation, TppView,
};

/// Static configuration of one switch.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    pub switch_id: u32,
    /// The switch's own IP, used for targeted TPPs (§4.4).
    pub ip: Ipv4Address,
    pub n_ports: usize,
    pub pipeline: PipelineConfig,
    /// Administrative write kill-switch (§4.3).
    pub allow_writes: bool,
    pub max_instructions: usize,
    /// Drop-tail limit per queue, bytes.
    pub queue_limit_bytes: u32,
    /// Link-utilization refresh interval (§2.2: "the network updates link
    /// utilization counters every millisecond").
    pub util_interval_ns: u64,
    /// Include the L4 destination port in the ECMP hash. CONGA* deployments
    /// exclude it so a flow's TPP probes follow the flow's path (§2.4).
    pub ecmp_hash_dst_port: bool,
    pub cost: CostProfile,
}

impl SwitchConfig {
    pub fn new(switch_id: u32, n_ports: usize) -> Self {
        SwitchConfig {
            switch_id,
            ip: Ipv4Address::new(192, 168, (switch_id >> 8) as u8, switch_id as u8),
            n_ports,
            pipeline: PipelineConfig::default(),
            allow_writes: true,
            max_instructions: tpp_core::isa::MAX_INSTRUCTIONS,
            queue_limit_bytes: 150_000,
            util_interval_ns: 1_000_000,
            ecmp_hash_dst_port: true,
            cost: ASIC,
        }
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// No route for the destination.
    NoRoute,
    /// Drop-tail queue overflow.
    QueueFull,
    /// TTL expired.
    TtlExpired,
    /// Unparseable frame or unsupported ethertype.
    Malformed,
    /// Explicit drop action.
    Policy,
}

/// Result of [`Switch::receive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// Frame enqueued on `port`/`queue`; the pipeline spent
    /// `proc_latency_ns` on it (baseline + TPP execution, §6.1).
    Enqueued {
        port: u8,
        queue: u8,
        proc_latency_ns: u64,
    },
    Dropped(DropReason),
}

struct QueuedPacket {
    frame: Vec<u8>,
    run: Option<TppRun>,
    loc: TppLocation,
    ctx: PacketContext,
    enq_ns: u64,
    /// Reflect back toward the source after egress execution.
    reflect: bool,
}

/// A TPP-capable switch.
pub struct Switch {
    pub cfg: SwitchConfig,
    pub mem: SwitchMemory,
    pub table: FlowTable,
    pub groups: GroupTable,
    queues: Vec<Vec<VecDeque<QueuedPacket>>>,
    rr_next: Vec<usize>,
    last_util_ns: u64,
    /// Frame buffers of dropped packets, retained (bounded) for reuse so
    /// the owner — e.g. the network simulator's frame pool — can recycle
    /// them instead of round-tripping the allocator on every drop.
    retired: Vec<Vec<u8>>,
    /// Program-keyed cache of ingress plans: the same probe program on the
    /// thousandth packet of a flow reuses the decoded [`TppRun`] (slot
    /// serialization, stage assignment, `trusted` bounds proof) instead of
    /// re-planning. Exact-byte keyed — see [`crate::plan_cache`].
    plan_cache: PlanCache,
}

/// Retained dropped-frame buffers are capped; beyond this they free
/// normally.
const MAX_RETIRED: usize = 64;

impl Switch {
    pub fn new(cfg: SwitchConfig) -> Self {
        let mem = SwitchMemory::new(cfg.switch_id, cfg.n_ports, cfg.pipeline.total_stages());
        let queues = (0..cfg.n_ports)
            .map(|_| (0..layout::QUEUES_PER_PORT as usize).map(|_| VecDeque::new()).collect())
            .collect();
        let mut sw = Switch {
            mem,
            table: FlowTable::default(),
            groups: GroupTable::default(),
            queues,
            rr_next: vec![0; cfg.n_ports],
            last_util_ns: 0,
            retired: Vec::new(),
            plan_cache: PlanCache::default(),
            cfg,
        };
        for q in 0..layout::QUEUES_PER_PORT as usize {
            for p in 0..sw.cfg.n_ports {
                sw.mem.queues[p][q].limit_bytes = sw.cfg.queue_limit_bytes;
            }
        }
        sw
    }

    /// Park a dropped frame's buffer for reuse by the owner.
    fn retire(&mut self, frame: Vec<u8>) {
        if self.retired.len() < MAX_RETIRED {
            self.retired.push(frame);
        }
    }

    /// Take back one retired (dropped) frame buffer, if any.
    pub fn take_retired(&mut self) -> Option<Vec<u8>> {
        self.retired.pop()
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            allow_writes: self.cfg.allow_writes,
            max_instructions: self.cfg.max_instructions,
            increment_hop: true,
        }
    }

    /// Plan-cache hit/miss/eviction counters since construction.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Set the speed of a port (called when the simulator attaches a link).
    pub fn set_link_speed(&mut self, port: u8, mbps: u32) {
        self.mem.links[port as usize].speed_mbps = mbps;
    }

    /// Control-plane route insertion; bumps flow-table and switch versions.
    pub fn add_route(&mut self, prefix: (Ipv4Address, u8), action: Action) -> u32 {
        let now = self.mem.now_ns;
        let id = self.table.upsert(prefix, action, now);
        self.sync_table_meta();
        id
    }

    pub fn add_host_route(&mut self, dst: Ipv4Address, action: Action) -> u32 {
        self.add_route((dst, 32), action)
    }

    /// Control-plane route withdrawal: remove the `/32` entry for `dst`.
    /// Returns whether an entry existed. Bumps flow-table and switch
    /// versions on removal, so batch-scoped lookup hints self-invalidate
    /// and subsequent packets toward `dst` drop with `NoRoute`.
    pub fn remove_host_route(&mut self, dst: Ipv4Address) -> bool {
        let id = self.table.entries().iter().find(|e| e.prefix == (dst, 32)).map(|e| e.entry_id);
        let Some(id) = id else { return false };
        let removed = self.table.remove(id);
        if removed {
            self.sync_table_meta();
        }
        removed
    }

    /// The `/32` action currently installed for `dst`, if any (control-plane
    /// read used by the dependency-ordered update scheduler).
    pub fn host_route(&self, dst: Ipv4Address) -> Option<Action> {
        self.table.entries().iter().find(|e| e.prefix == (dst, 32)).map(|e| e.action)
    }

    pub fn add_group(&mut self, ports: Vec<u8>) -> u16 {
        self.groups.add(ports)
    }

    fn sync_table_meta(&mut self) {
        let rs = self.cfg.pipeline.routing_stage();
        self.mem.stages[rs].version = self.table.version;
        self.mem.stages[rs].refcount = self.table.len() as u32;
        self.mem.version = self.mem.version.wrapping_add(1);
    }

    /// Total bytes queued on a port (all queues).
    pub fn queued_bytes(&self, port: u8) -> u64 {
        self.mem.links[port as usize].queued_bytes
    }

    pub fn has_queued(&self, port: u8) -> bool {
        self.queues[port as usize].iter().any(|q| !q.is_empty())
    }

    /// Advance time-driven state. Call at least once per utilization
    /// interval.
    pub fn tick(&mut self, now_ns: u64) {
        self.mem.now_ns = now_ns;
        while now_ns - self.last_util_ns >= self.cfg.util_interval_ns {
            self.last_util_ns += self.cfg.util_interval_ns;
            self.mem.update_utilization(self.cfg.util_interval_ns);
        }
    }

    /// A frame arrives on `in_port` at `now_ns`.
    pub fn receive(&mut self, now_ns: u64, in_port: u8, frame: Vec<u8>) -> ReceiveOutcome {
        self.mem.set_clock(now_ns);
        let mut hint = LookupHint::default();
        let opts = self.exec_options();
        self.receive_one(now_ns, in_port, frame, &opts, &mut hint)
    }

    /// Ingest a batch of frames all arriving at `now_ns`, appending one
    /// [`ReceiveOutcome`] per frame (in order) to `out` and draining
    /// `frames`. Equivalent to calling [`Switch::receive`] per frame, but
    /// the batch-invariant inputs are snapshotted once — the memory-map
    /// clock, the [`ExecOptions`], a batch-scoped routing memo
    /// ([`LookupHint`]) — and programs plan through the per-switch
    /// [`PlanCache`], so back-to-back frames carrying the same probe skip
    /// both the linear LPM scan and re-planning. Everything a TPP can
    /// observe changing (queue stats, stage SRAM, flow counters, CSTORE
    /// effects) is still read and written per frame, in arrival order —
    /// the matched entry's counters still advance per frame; TPPs can't
    /// tell the difference.
    pub fn receive_batch(
        &mut self,
        now_ns: u64,
        frames: &mut Vec<(u8, Vec<u8>)>,
        out: &mut Vec<ReceiveOutcome>,
    ) {
        self.mem.set_clock(now_ns);
        let mut hint = LookupHint::default();
        let opts = self.exec_options();
        for (in_port, frame) in frames.drain(..) {
            let outcome = self.receive_one(now_ns, in_port, frame, &opts, &mut hint);
            out.push(outcome);
        }
    }

    fn receive_one(
        &mut self,
        now_ns: u64,
        in_port: u8,
        mut frame: Vec<u8>,
        opts: &ExecOptions,
        hint: &mut LookupHint,
    ) -> ReceiveOutcome {
        let len = frame.len() as u64;
        {
            let l = &mut self.mem.links[in_port as usize];
            l.rx_bytes += len;
            l.rx_pkts += 1;
            l.rx_bytes_interval += len;
        }

        let Some(eth) = EthernetFrame::new_checked(&frame[..]) else {
            return self.drop_malformed(in_port, frame);
        };
        let ethertype = eth.ethertype();
        if ethertype != ethernet::ethertype::IPV4 && ethertype != ethernet::ethertype::TPP {
            return self.drop_malformed(in_port, frame);
        }

        // Locate and validate the TPP, if any (Figure 7a parse graph). The
        // section is validated once as a borrowed view — no owned parse —
        // and planned into a fixed-size TppRun through the per-switch plan
        // cache (a repeated program reuses its decoded plan); the program
        // then executes in place against the frame bytes.
        let pcfg = self.cfg.pipeline;
        let loc = locate_tpp(&frame);
        let mut tpp_damaged = false;
        let (mut run, ip_offset): (Option<TppRun>, usize) = match loc {
            TppLocation::Transparent { section } => match TppView::parse(&frame[section..]) {
                Ok((view, consumed)) if view.encap_proto() == ethernet::ethertype::IPV4 => {
                    let run = self.plan_cache.plan(&view, &frame[section..], section, opts, &pcfg);
                    (Some(run), section + consumed)
                }
                // Damaged TPP (the inner packet's location is unknowable)
                // or unroutable non-IP payload: count and drop below, once
                // the frame is no longer borrowed.
                Ok(_) | Err(_) => {
                    tpp_damaged = true;
                    (None, 0)
                }
            },
            TppLocation::Standalone { section, ip, .. } => {
                match TppView::parse(&frame[section..]) {
                    Ok((view, _)) => {
                        let run =
                            self.plan_cache.plan(&view, &frame[section..], section, opts, &pcfg);
                        (Some(run), ip)
                    }
                    Err(_) => {
                        // Forward as a normal UDP packet, uninstrumented.
                        self.mem.tpp_rejected += 1;
                        (None, ip)
                    }
                }
            }
            TppLocation::None => (None, ethernet::HEADER_LEN),
        };
        if tpp_damaged {
            self.mem.tpp_rejected += 1;
            return self.drop_malformed(in_port, frame);
        }

        // Routing header checks (TTL) on the routed IP header.
        let (dst_ip, ttl) = {
            let Some(ip) = Ipv4Packet::new_checked(&frame[ip_offset..]) else {
                return self.drop_malformed(in_port, frame);
            };
            (ip.dst(), ip.ttl())
        };
        if ttl <= 1 {
            let l = &mut self.mem.links[in_port as usize];
            l.drop_bytes += len;
            l.drop_pkts += 1;
            self.retire(frame);
            return ReceiveOutcome::Dropped(DropReason::TtlExpired);
        }
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut frame[ip_offset..]);
            ip.decrement_ttl();
        }

        let mut ctx = PacketContext::new(in_port, frame.len() as u32, now_ns, self.mem.n_stages);
        if let Some(r) = &run {
            ctx.hop_count = r.hop as u32;
        }

        // Execute the pre-routing ingress stages in place.
        let cfg = pcfg;
        if let Some(r) = &mut run {
            if r.rejected {
                self.mem.tpp_rejected += 1;
            }
            let mut bus = SwitchBus { mem: &mut self.mem, ctx: &mut ctx };
            r.exec_stages(&mut frame, &mut bus, 0..cfg.routing_stage(), opts);
        }

        // Targeted TPP addressed to this switch (§4.4): execute and reflect.
        let reflect_here = dst_ip == self.cfg.ip
            || run.as_ref().is_some_and(|r| r.reflect)
                && matches!(loc, TppLocation::Standalone { .. });

        // Routing lookup at the routing stage.
        let rs = cfg.routing_stage();
        let out_port: Option<u8> = if reflect_here {
            Some(in_port)
        } else {
            // The routed IP header was located above — hash it directly
            // instead of re-walking the parse graph (which would re-validate
            // a transparent TPP section).
            let key = Ipv4Packet::new_checked(&frame[ip_offset..])
                .map(|ip| FlowKey::from_ipv4(&ip))
                .unwrap_or_default();
            ctx.path_hash = key.hash_with(self.cfg.ecmp_hash_dst_port);
            self.mem.stages[rs].lookup_pkts += 1;
            self.mem.stages[rs].lookup_bytes += len;
            match self.table.lookup_hinted(dst_ip, len, hint) {
                Some(entry) => {
                    self.mem.stages[rs].match_pkts += 1;
                    self.mem.stages[rs].match_bytes += len;
                    ctx.matched_entry.set(
                        rs,
                        FlowEntryStats {
                            entry_id: entry.entry_id,
                            insert_clock: entry.insert_clock,
                            match_pkts: entry.match_pkts,
                            match_bytes: entry.match_bytes,
                        },
                    );
                    match entry.action {
                        Action::Output(p) => Some(p),
                        Action::Group(g) => self.groups.select(g, ctx.path_hash),
                        Action::Drop => None,
                    }
                }
                None => None,
            }
        };
        let Some(out_port) = out_port else {
            let l = &mut self.mem.links[in_port as usize];
            l.drop_bytes += len;
            l.drop_pkts += 1;
            self.retire(frame);
            return ReceiveOutcome::Dropped(DropReason::NoRoute);
        };
        ctx.out_port = Some(out_port % self.cfg.n_ports as u8);

        // Execute the routing stage itself (output port now visible; a TPP
        // write to [PacketMetadata:OutputPort] supersedes the lookup, §3.2).
        if let Some(r) = &mut run {
            let mut bus = SwitchBus { mem: &mut self.mem, ctx: &mut ctx };
            r.exec_stages(&mut frame, &mut bus, rs..cfg.n_ingress, opts);
        }
        let out_port = ctx.out_port.unwrap() % self.cfg.n_ports as u8;
        ctx.out_port = Some(out_port);
        let queue = ctx.out_queue % layout::QUEUES_PER_PORT as u8;

        // Drop-tail admission against the queue limit.
        let qstats = &self.mem.queues[out_port as usize][queue as usize];
        if qstats.bytes + len > qstats.limit_bytes as u64 {
            let q = &mut self.mem.queues[out_port as usize][queue as usize];
            q.drop_pkts += 1;
            q.drop_bytes += len;
            let l = &mut self.mem.links[out_port as usize];
            l.drop_bytes += len;
            l.drop_pkts += 1;
            self.retire(frame);
            return ReceiveOutcome::Dropped(DropReason::QueueFull);
        }

        // Enqueue-time snapshot: the congestion this packet experienced.
        ctx.enq_qdepth_bytes = Some(qstats.bytes as u32);
        ctx.enq_qdepth_pkts = Some(qstats.pkts as u32);
        {
            let q = &mut self.mem.queues[out_port as usize][queue as usize];
            q.bytes += len;
            q.pkts += 1;
            let l = &mut self.mem.links[out_port as usize];
            l.queued_bytes += len;
            l.queued_pkts += 1;
        }

        // Pipeline latency: baseline plus what the executed instructions
        // cost so far (egress instructions are charged at dequeue).
        let proc_latency_ns = self.cfg.cost.base_latency_ns
            + run
                .as_ref()
                .map(|r| self.cfg.cost.tpp_latency_ns(r.executed_ops().iter().copied()))
                .unwrap_or(0);

        self.queues[out_port as usize][queue as usize].push_back(QueuedPacket {
            frame,
            run,
            loc,
            ctx,
            enq_ns: now_ns,
            reflect: reflect_here,
        });
        ReceiveOutcome::Enqueued { port: out_port, queue, proc_latency_ns }
    }

    fn drop_malformed(&mut self, in_port: u8, frame: Vec<u8>) -> ReceiveOutcome {
        let len = frame.len() as u64;
        self.retire(frame);
        let l = &mut self.mem.links[in_port as usize];
        l.err_pkts += 1;
        l.drop_bytes += len;
        l.drop_pkts += 1;
        ReceiveOutcome::Dropped(DropReason::Malformed)
    }

    /// The port is ready to transmit: pop the next frame (round-robin over
    /// non-empty queues), run the egress pipeline, rewrite the TPP.
    pub fn dequeue(&mut self, now_ns: u64, port: u8) -> Option<Vec<u8>> {
        self.mem.set_clock(now_ns);
        let opts = self.exec_options();
        self.dequeue_one(now_ns, port, &opts)
    }

    /// Pop the next frame of *each* listed port at one instant, appending
    /// `(port, frame)` pairs (in the given port order) to `out`. The
    /// batched counterpart of [`Switch::dequeue`], used by the link layer
    /// when several transmitters on one switch free up at the same
    /// timestamp: the memory-map clock is stored once, and per-port egress
    /// execution runs in exactly the order the caller passes — ports are
    /// disjoint, so the result is identical to single dequeues.
    pub fn dequeue_batch(&mut self, now_ns: u64, ports: &[u8], out: &mut Vec<(u8, Vec<u8>)>) {
        self.mem.set_clock(now_ns);
        let opts = self.exec_options();
        for &port in ports {
            if let Some(frame) = self.dequeue_one(now_ns, port, &opts) {
                out.push((port, frame));
            }
        }
    }

    fn dequeue_one(&mut self, now_ns: u64, port: u8, opts: &ExecOptions) -> Option<Vec<u8>> {
        let p = port as usize;
        let nq = layout::QUEUES_PER_PORT as usize;
        let start = self.rr_next[p];
        let qi = (0..nq).map(|i| (start + i) % nq).find(|&i| !self.queues[p][i].is_empty())?;
        self.rr_next[p] = (qi + 1) % nq;
        let mut pkt = self.queues[p][qi].pop_front().unwrap();
        let len = pkt.frame.len() as u64;

        {
            let q = &mut self.mem.queues[p][qi];
            q.bytes -= len;
            q.pkts -= 1;
            q.tx_bytes += len;
            q.tx_pkts += 1;
            let l = &mut self.mem.links[p];
            l.queued_bytes -= len;
            l.queued_pkts -= 1;
            l.tx_bytes += len;
            l.tx_pkts += 1;
            l.tx_bytes_interval += len;
        }

        pkt.ctx.queue_wait_ns = Some((now_ns - pkt.enq_ns).min(u32::MAX as u64) as u32);

        if let Some(run) = pkt.run.as_mut() {
            let cfg = self.cfg.pipeline;
            {
                let mut bus = SwitchBus { mem: &mut self.mem, ctx: &mut pkt.ctx };
                run.exec_stages(
                    &mut pkt.frame,
                    &mut bus,
                    cfg.egress_stage()..cfg.total_stages(),
                    opts,
                );
            }
            // In-place completion: SP/wrote/hop land in the frame with the
            // checksum folded incrementally — no re-serialization.
            run.finish(&mut pkt.frame, opts);
            if !run.rejected {
                self.mem.tpp_executed += 1;
            }
        }

        if pkt.reflect {
            reflect_frame(&mut pkt.frame, pkt.loc);
        }
        Some(pkt.frame)
    }
}

/// Send a standalone TPP back toward its source (§4.4 "Reflective TPP"):
/// swap Ethernet and IP addresses. Swapping src/dst leaves both the IPv4
/// header checksum and the UDP pseudo-header checksum unchanged (the ones'
/// complement sum is commutative), and the UDP destination port stays
/// 0x6666 so the origin's parse graph still recognizes the TPP.
pub fn reflect_frame(frame: &mut [u8], loc: TppLocation) {
    // Swap MACs.
    for i in 0..6 {
        frame.swap(i, i + 6);
    }
    if let TppLocation::Standalone { ip, .. } = loc {
        for i in 0..4 {
            frame.swap(ip + 12 + i, ip + 16 + i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_core::addr::resolve_mnemonic;
    use tpp_core::asm::TppBuilder;
    use tpp_core::wire::{
        self, build_standalone, insert_transparent, ipv4, udp, EthernetAddress, Tpp,
    };

    fn host_frame(src: u32, dst: u32, payload_len: usize, sport: u16, dport: u16) -> Vec<u8> {
        let src_ip = Ipv4Address::from_host_id(src);
        let dst_ip = Ipv4Address::from_host_id(dst);
        let u = udp::Repr { src_port: sport, dst_port: dport, payload_len };
        let udp_bytes = u.encapsulate(src_ip, dst_ip, &vec![0xAB; payload_len]);
        let ip = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_bytes.len(),
        };
        let ip_bytes = ip.encapsulate(&udp_bytes);
        wire::EthernetRepr {
            dst: EthernetAddress::from_node_id(dst),
            src: EthernetAddress::from_node_id(src),
            ethertype: ethernet::ethertype::IPV4,
        }
        .encapsulate(&ip_bytes)
    }

    fn basic_switch() -> Switch {
        let mut sw = Switch::new(SwitchConfig::new(7, 4));
        sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));
        sw
    }

    #[test]
    fn plain_forwarding() {
        let mut sw = basic_switch();
        let frame = host_frame(1, 2, 100, 1000, 2000);
        let out = sw.receive(0, 0, frame.clone());
        match out {
            ReceiveOutcome::Enqueued { port: 2, queue: 0, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let sent = sw.dequeue(10, 2).unwrap();
        // TTL decremented, checksum still valid.
        let ip = Ipv4Packet::new_checked(&sent[14..]).unwrap();
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());
        // Stats updated.
        assert_eq!(sw.mem.links[0].rx_pkts, 1);
        assert_eq!(sw.mem.links[2].tx_pkts, 1);
        assert!(!sw.has_queued(2));
    }

    #[test]
    fn no_route_drops() {
        let mut sw = basic_switch();
        let frame = host_frame(1, 99, 100, 1000, 2000);
        assert_eq!(sw.receive(0, 0, frame), ReceiveOutcome::Dropped(DropReason::NoRoute));
        assert_eq!(sw.mem.links[0].drop_pkts, 1);
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut sw = basic_switch();
        let mut frame = host_frame(1, 2, 100, 1, 2);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut frame[14..]);
            ip.set_ttl(1);
            ip.fill_checksum();
        }
        assert_eq!(sw.receive(0, 0, frame), ReceiveOutcome::Dropped(DropReason::TtlExpired));
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut cfg = SwitchConfig::new(7, 4);
        cfg.queue_limit_bytes = 300;
        let mut sw = Switch::new(cfg);
        sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));
        let mut drops = 0;
        for _ in 0..4 {
            if let ReceiveOutcome::Dropped(DropReason::QueueFull) =
                sw.receive(0, 0, host_frame(1, 2, 100, 1, 2))
            {
                drops += 1;
            }
        }
        assert!(drops >= 2, "expected overflow drops, got {drops}");
        assert_eq!(sw.mem.queues[2][0].drop_pkts, drops);
        assert_eq!(sw.mem.links[2].drop_pkts, drops);
    }

    #[test]
    fn transparent_tpp_executes_and_forwards() {
        let mut sw = basic_switch();
        let inner = host_frame(1, 2, 64, 1000, 2000);
        let tpp = TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("PacketMetadata:OutputPort")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(2)
            .build()
            .unwrap();
        let frame = insert_transparent(&inner, &tpp);
        let out = sw.receive(5, 0, frame);
        assert!(matches!(out, ReceiveOutcome::Enqueued { port: 2, .. }));
        let sent = sw.dequeue(10, 2).unwrap();
        let (_, executed) = wire::extract_tpp(&sent).expect("TPP still present and valid");
        assert_eq!(executed.hop, 1);
        assert_eq!(executed.sp, 3);
        let w = executed.words();
        assert_eq!(w[0], 7); // switch id
        assert_eq!(w[1], 2); // output port
        assert_eq!(w[2], 0); // empty queue at enqueue
        assert_eq!(sw.mem.tpp_executed, 1);
    }

    #[test]
    fn tpp_sees_enqueue_snapshot_of_queue() {
        let mut sw = basic_switch();
        // First fill the queue with two plain packets.
        sw.receive(0, 0, host_frame(1, 2, 200, 1, 2));
        sw.receive(1, 0, host_frame(1, 2, 200, 1, 2));
        let inner = host_frame(1, 2, 64, 1000, 2000);
        let tpp = TppBuilder::stack_mode()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        sw.receive(2, 0, insert_transparent(&inner, &tpp));
        // Drain: two plain packets then the instrumented one.
        sw.dequeue(10, 2);
        sw.dequeue(20, 2);
        let sent = sw.dequeue(30, 2).unwrap();
        let (_, executed) = wire::extract_tpp(&sent).unwrap();
        // Two 242-byte frames were ahead of it at enqueue.
        let expected = 2 * (200 + 8 + 20 + 14) as u32;
        assert_eq!(executed.words()[0], expected);
    }

    #[test]
    fn standalone_tpp_to_switch_ip_reflects() {
        let mut sw = basic_switch();
        let src_ip = Ipv4Address::from_host_id(1);
        let tpp =
            TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(1).build().unwrap();
        let frame = build_standalone(
            EthernetAddress::from_node_id(1),
            EthernetAddress::from_node_id(1000),
            src_ip,
            sw.cfg.ip,
            5000,
            &tpp,
        );
        let out = sw.receive(0, 1, frame);
        // Reflected: queued back out the ingress port.
        assert!(matches!(out, ReceiveOutcome::Enqueued { port: 1, .. }));
        let sent = sw.dequeue(5, 1).unwrap();
        let ip = Ipv4Packet::new_checked(&sent[14..]).unwrap();
        assert_eq!(ip.dst(), src_ip);
        assert!(ip.verify_checksum());
        // Still recognizable as a standalone TPP, now executed.
        let (_, executed) = wire::extract_tpp(&sent).unwrap();
        assert_eq!(executed.words()[0], 7);
        assert_eq!(executed.hop, 1);
    }

    #[test]
    fn ecmp_group_spreads_flows() {
        let mut sw = Switch::new(SwitchConfig::new(7, 4));
        let g = sw.add_group(vec![2, 3]);
        sw.add_host_route(Ipv4Address::from_host_id(2), Action::Group(g));
        let mut ports = std::collections::BTreeSet::new();
        for sport in 0..32 {
            let frame = host_frame(1, 2, 64, 1000 + sport, 2000);
            if let ReceiveOutcome::Enqueued { port, .. } = sw.receive(0, 0, frame) {
                ports.insert(port);
            }
        }
        assert_eq!(ports.into_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn tpp_reroute_write_overrides_lookup() {
        // A STORE to [PacketMetadata:OutputPort] supersedes forwarding (§3.2).
        let mut sw = basic_switch();
        let inner = host_frame(1, 2, 64, 1, 2);
        let mut tpp = TppBuilder::hop_mode(1)
            .store_m("PacketMetadata:OutputPort", 0)
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        tpp.write_word(0, 3).unwrap(); // force port 3 instead of routed 2
        let frame = insert_transparent(&inner, &tpp);
        let out = sw.receive(0, 0, frame);
        assert!(matches!(out, ReceiveOutcome::Enqueued { port: 3, .. }));
    }

    #[test]
    fn writes_disabled_by_admin() {
        let mut cfg = SwitchConfig::new(7, 4);
        cfg.allow_writes = false;
        let mut sw = Switch::new(cfg);
        sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));
        let inner = host_frame(1, 2, 64, 1, 2);
        let mut tpp = TppBuilder::hop_mode(1)
            .store_m("Link:AppSpecific_0", 0)
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        tpp.write_word(0, 999).unwrap();
        sw.receive(0, 0, insert_transparent(&inner, &tpp));
        let sent = sw.dequeue(1, 2).unwrap();
        let (_, executed) = wire::extract_tpp(&sent).unwrap();
        assert!(!executed.wrote);
        assert_eq!(sw.mem.links[2].app[0], 0);
    }

    #[test]
    fn over_budget_tpp_counted_and_forwarded_unexecuted() {
        let mut sw = basic_switch();
        let inner = host_frame(1, 2, 64, 1, 2);
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let tpp = Tpp {
            instrs: vec![tpp_core::isa::Instruction::push(sid); 6],
            memory: vec![0; 32],
            ..Tpp::default()
        };
        sw.receive(0, 0, insert_transparent(&inner, &tpp));
        let sent = sw.dequeue(1, 2).unwrap();
        let (_, t) = wire::extract_tpp(&sent).unwrap();
        assert_eq!(t.hop, 0); // untouched
        assert_eq!(sw.mem.tpp_rejected, 1);
        assert_eq!(sw.mem.tpp_executed, 0);
    }

    #[test]
    fn corrupted_transparent_tpp_dropped() {
        let mut sw = basic_switch();
        let inner = host_frame(1, 2, 64, 1, 2);
        let tpp =
            TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(1).build().unwrap();
        let mut frame = insert_transparent(&inner, &tpp);
        frame[20] ^= 0xFF;
        assert!(matches!(sw.receive(0, 0, frame), ReceiveOutcome::Dropped(DropReason::Malformed)));
        assert_eq!(sw.mem.tpp_rejected, 1);
    }

    #[test]
    fn utilization_ticks() {
        let mut sw = basic_switch();
        sw.set_link_speed(2, 100); // 100 Mb/s
                                   // ~50% load for 1ms: 6250 bytes.
        for _ in 0..10 {
            sw.receive(0, 0, host_frame(1, 2, 583, 1, 2));
            sw.dequeue(0, 2);
        }
        sw.tick(1_000_000);
        let util = sw.mem.links[2].tx_util_bps;
        assert!(util > 2000 && util < 3000, "expected ~2500 (EWMA of 5000), got {util}");
    }

    #[test]
    fn flow_table_version_exposed_to_tpps() {
        let mut sw = basic_switch();
        let rs = sw.cfg.pipeline.routing_stage();
        let v0 = sw.mem.stages[rs].version;
        sw.add_host_route(Ipv4Address::from_host_id(3), Action::Output(1));
        assert_eq!(sw.mem.stages[rs].version, v0 + 1);
        assert_eq!(sw.mem.stages[rs].refcount, 2);
    }

    #[test]
    fn receive_batch_equivalent_to_sequential_receives() {
        // Same frames (a mix of plain, TPP-carrying, and unroutable)
        // through receive_batch vs one-at-a-time receive: identical
        // outcomes, identical queue/link/table counters, identical bytes
        // out — the hinted route lookup must be observationally invisible.
        let build_frames = || {
            let tpp = TppBuilder::stack_mode()
                .push_m("Queue:QueueOccupancy")
                .unwrap()
                .push_m("FlowEntry$3:MatchPkts")
                .unwrap()
                .hops(2)
                .build()
                .unwrap();
            vec![
                (0u8, host_frame(1, 2, 64, 1000, 2000)),
                (1u8, insert_transparent(&host_frame(1, 2, 64, 1001, 2000), &tpp)),
                (0u8, host_frame(1, 2, 64, 1002, 2000)),
                (3u8, host_frame(1, 99, 64, 1003, 2000)), // no route
                (1u8, insert_transparent(&host_frame(1, 2, 64, 1004, 2000), &tpp)),
            ]
        };
        let mut sw_seq = basic_switch();
        let seq_outcomes: Vec<ReceiveOutcome> =
            build_frames().into_iter().map(|(p, f)| sw_seq.receive(7, p, f)).collect();

        let mut sw_batch = basic_switch();
        let mut frames = build_frames();
        let mut batch_outcomes = Vec::new();
        sw_batch.receive_batch(7, &mut frames, &mut batch_outcomes);
        assert!(frames.is_empty(), "receive_batch drains its input");
        assert_eq!(batch_outcomes, seq_outcomes);

        // Counters TPPs can observe agree exactly.
        let rs = sw_seq.cfg.pipeline.routing_stage();
        assert_eq!(sw_batch.mem.stages[rs].lookup_pkts, sw_seq.mem.stages[rs].lookup_pkts);
        assert_eq!(sw_batch.mem.stages[rs].match_pkts, sw_seq.mem.stages[rs].match_pkts);
        assert_eq!(
            sw_batch.table.entries()[0].match_pkts,
            sw_seq.table.entries()[0].match_pkts,
            "hinted lookups must bump entry counters like full scans"
        );
        // Drain both and compare the rewritten bytes (TPP results included).
        for t in 10..=13u64 {
            assert_eq!(sw_batch.dequeue(t, 2), sw_seq.dequeue(t, 2));
        }
    }

    /// Property generalization of the test above: random batches mixing
    /// plain frames, routable/unroutable destinations, several distinct
    /// TPP programs at varying hop positions (plan-cache hits, misses,
    /// and — via direct-mapped slot collisions — evictions), and frames
    /// with corrupted TPP sections. Batched and sequential receive must
    /// produce identical outcomes, byte-identical frames out, identical
    /// observable counters, and identical plan-cache statistics.
    /// (Deterministic eviction coverage lives in
    /// `plan_cache::tests::bounded_size_with_eviction`.)
    mod batch_equivalence {
        use super::*;
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Spec {
            Plain { dst: u32, sport: u16 },
            Probe { prog: usize, hop: u8, dst: u32, sport: u16 },
            Corrupt { prog: usize, sport: u16, flip: usize },
        }

        fn pool() -> Vec<Tpp> {
            let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
            let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
            let r0 = resolve_mnemonic("Link:AppSpecific_0").unwrap();
            let r1 = resolve_mnemonic("Link:AppSpecific_1").unwrap();
            vec![
                TppBuilder::stack_mode().push(sid).hops(4).build().unwrap(),
                TppBuilder::stack_mode()
                    .push(q)
                    .push_m("FlowEntry$3:MatchPkts")
                    .unwrap()
                    .hops(4)
                    .build()
                    .unwrap(),
                TppBuilder::hop_mode(2).load(sid, 0).load(q, 1).hops(4).build().unwrap(),
                TppBuilder::hop_mode(2).cstore(r0, 0, 1).store(r1, 1).hops(4).build().unwrap(),
            ]
        }

        fn frame_of(spec: &Spec, port: u8) -> (u8, Vec<u8>) {
            match *spec {
                Spec::Plain { dst, sport } => (port, host_frame(1, dst, 64, sport, 2000)),
                Spec::Probe { prog, hop, dst, sport } => {
                    let mut t = pool()[prog].clone();
                    t.hop = hop;
                    (port, insert_transparent(&host_frame(1, dst, 64, sport, 2000), &t))
                }
                Spec::Corrupt { prog, sport, flip } => {
                    let t = pool()[prog].clone();
                    let mut f = insert_transparent(&host_frame(1, 2, 64, sport, 2000), &t);
                    // Any single-bit flip inside the section header breaks
                    // the section checksum (or the length/version checks),
                    // so the parse fails identically on both paths.
                    f[ethernet::HEADER_LEN + flip % 12] ^= 0x40;
                    (port, f)
                }
            }
        }

        prop_compose! {
            fn spec()(
                kind in 0u8..3,
                prog in 0usize..4,
                hop in 0u8..6,
                routable in any::<bool>(),
                sport in 1000u16..2000u16,
                flip in 0usize..12,
            ) -> Spec {
                let dst = if routable { 2 } else { 99 };
                match kind {
                    0 => Spec::Plain { dst, sport },
                    1 => Spec::Probe { prog, hop, dst, sport },
                    _ => Spec::Corrupt { prog, sport, flip },
                }
            }
        }

        /// Every per-port counter a TPP (or the simulator) can observe.
        #[allow(clippy::type_complexity)]
        fn link_counters(sw: &Switch) -> Vec<(u64, u64, u64, u64, u64, u64, u64, Vec<u32>)> {
            sw.mem
                .links
                .iter()
                .map(|l| {
                    (
                        l.rx_pkts,
                        l.rx_bytes,
                        l.tx_pkts,
                        l.tx_bytes,
                        l.drop_pkts,
                        l.drop_bytes,
                        l.err_pkts,
                        l.app.to_vec(),
                    )
                })
                .collect()
        }

        proptest! {
            #[test]
            fn receive_batch_equals_sequential(
                specs in proptest::collection::vec(spec(), 1..24),
            ) {
                let frames: Vec<(u8, Vec<u8>)> = specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| frame_of(s, (i % 4) as u8))
                    .collect();

                let mut sw_seq = basic_switch();
                let seq_outcomes: Vec<ReceiveOutcome> =
                    frames.iter().cloned().map(|(p, f)| sw_seq.receive(7, p, f)).collect();

                let mut sw_batch = basic_switch();
                let mut input = frames.clone();
                let mut batch_outcomes = Vec::new();
                sw_batch.receive_batch(7, &mut input, &mut batch_outcomes);
                prop_assert!(input.is_empty(), "receive_batch drains its input");
                prop_assert_eq!(&batch_outcomes, &seq_outcomes);

                // The cache sees the identical plan() sequence either way,
                // so hit/miss/eviction counts must agree exactly.
                prop_assert_eq!(sw_batch.plan_cache_stats(), sw_seq.plan_cache_stats());

                // Counters a TPP could observe agree exactly.
                prop_assert_eq!(link_counters(&sw_batch), link_counters(&sw_seq));
                let rs = sw_seq.cfg.pipeline.routing_stage();
                prop_assert_eq!(
                    sw_batch.mem.stages[rs].lookup_pkts,
                    sw_seq.mem.stages[rs].lookup_pkts
                );
                prop_assert_eq!(
                    sw_batch.mem.stages[rs].match_pkts,
                    sw_seq.mem.stages[rs].match_pkts
                );
                prop_assert_eq!(sw_batch.mem.tpp_rejected, sw_seq.mem.tpp_rejected);
                for (a, b) in sw_batch.table.entries().iter().zip(sw_seq.table.entries()) {
                    prop_assert_eq!(a.match_pkts, b.match_pkts);
                    prop_assert_eq!(a.match_bytes, b.match_bytes);
                }

                // Drain every port: byte-identical frames, in order.
                for port in 0..4u8 {
                    loop {
                        let a = sw_batch.dequeue(50, port);
                        let b = sw_seq.dequeue(50, port);
                        let done = a.is_none();
                        prop_assert_eq!(a, b);
                        if done {
                            break;
                        }
                    }
                }
                prop_assert_eq!(sw_batch.mem.tpp_executed, sw_seq.mem.tpp_executed);
            }
        }
    }

    #[test]
    fn dequeue_batch_equivalent_to_sequential_dequeues() {
        let fill = |sw: &mut Switch| {
            sw.add_host_route(Ipv4Address::from_host_id(3), Action::Output(3));
            for i in 0..3 {
                sw.receive(i, 0, host_frame(1, 2, 100, 1000 + i as u16, 2000));
                sw.receive(i, 1, host_frame(1, 3, 100, 1100 + i as u16, 2000));
            }
        };
        let mut sw_seq = basic_switch();
        fill(&mut sw_seq);
        let mut sw_batch = basic_switch();
        fill(&mut sw_batch);

        let mut batched = Vec::new();
        sw_batch.dequeue_batch(50, &[2, 3], &mut batched);
        let expect: Vec<(u8, Vec<u8>)> =
            [2u8, 3].into_iter().filter_map(|p| sw_seq.dequeue(50, p).map(|f| (p, f))).collect();
        assert_eq!(batched, expect);
        // A port with nothing queued contributes no pair.
        batched.clear();
        sw_batch.dequeue_batch(60, &[0], &mut batched);
        assert!(batched.is_empty());
    }

    #[test]
    fn matched_entry_visible_to_tpp() {
        let mut sw = basic_switch();
        let inner = host_frame(1, 2, 64, 1, 2);
        let tpp = TppBuilder::stack_mode()
            .push_m("PacketMetadata:MatchedEntryID")
            .unwrap()
            .push_m("FlowEntry$3:MatchPkts")
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        sw.receive(0, 0, insert_transparent(&inner, &tpp));
        let sent = sw.dequeue(1, 2).unwrap();
        let (_, t) = wire::extract_tpp(&sent).unwrap();
        let w = t.words();
        assert_eq!(w[0], 0); // first entry id
        assert_eq!(w[1], 1); // this packet's match incremented it
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;
    use tpp_core::asm::TppBuilder;
    use tpp_core::wire::{self, insert_transparent, ipv4, udp, EthernetAddress};

    fn frame_to_queue(src: u32, dst: u32, queue: u8, payload: usize) -> Vec<u8> {
        // Steer into a queue via a TPP that writes [PacketMetadata:OutputQueue].
        let inner = {
            let src_ip = Ipv4Address::from_host_id(src);
            let dst_ip = Ipv4Address::from_host_id(dst);
            let u = udp::Repr { src_port: 1, dst_port: 2, payload_len: payload };
            let udp_b = u.encapsulate(src_ip, dst_ip, &vec![0u8; payload]);
            let ip = ipv4::Repr {
                src: src_ip,
                dst: dst_ip,
                protocol: ipv4::protocol::UDP,
                ttl: 64,
                payload_len: udp_b.len(),
            };
            wire::EthernetRepr {
                dst: EthernetAddress::from_node_id(dst),
                src: EthernetAddress::from_node_id(src),
                ethertype: ethernet::ethertype::IPV4,
            }
            .encapsulate(&ip.encapsulate(&udp_b))
        };
        let mut tpp = TppBuilder::hop_mode(1)
            .store_m("PacketMetadata:OutputQueue", 0)
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        tpp.write_word(0, queue as u32).unwrap();
        insert_transparent(&inner, &tpp)
    }

    fn sw() -> Switch {
        let mut sw = Switch::new(SwitchConfig::new(3, 4));
        sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));
        sw
    }

    #[test]
    fn tpp_can_steer_packets_into_queues() {
        let mut s = sw();
        let out = s.receive(0, 0, frame_to_queue(1, 2, 5, 64));
        assert!(matches!(out, ReceiveOutcome::Enqueued { port: 2, queue: 5, .. }), "{out:?}");
        assert_eq!(s.mem.queues[2][5].pkts, 1);
        assert_eq!(s.mem.queues[2][0].pkts, 0);
    }

    #[test]
    fn round_robin_across_nonempty_queues() {
        let mut s = sw();
        // Two packets into queue 1, two into queue 6.
        for q in [1u8, 1, 6, 6] {
            s.receive(0, 0, frame_to_queue(1, 2, q, 64));
        }
        // Dequeue order must alternate between the two queues.
        let mut order = Vec::new();
        for t in 1..=4 {
            s.dequeue(t, 2).unwrap();
            // Infer which queue was served from tx counters.
            order.push((s.mem.queues[2][1].tx_pkts, s.mem.queues[2][6].tx_pkts));
        }
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 1), (2, 2)]);
        assert!(!s.has_queued(2));
    }

    #[test]
    fn per_queue_limits_are_tpp_tunable() {
        let mut s = sw();
        // An admin TPP shrinks queue 0's drop-tail limit to ~1 packet.
        let mut tpp = TppBuilder::hop_mode(1)
            .store_m("Queue$2$0:LimitBytes", 0)
            .unwrap()
            .hops(1)
            .build()
            .unwrap();
        tpp.write_word(0, 200).unwrap();
        let inner = {
            let src_ip = Ipv4Address::from_host_id(1);
            let dst_ip = Ipv4Address::from_host_id(2);
            let u = udp::Repr { src_port: 1, dst_port: 2, payload_len: 16 };
            let udp_b = u.encapsulate(src_ip, dst_ip, &[0u8; 16]);
            let ip = ipv4::Repr {
                src: src_ip,
                dst: dst_ip,
                protocol: ipv4::protocol::UDP,
                ttl: 64,
                payload_len: udp_b.len(),
            };
            wire::EthernetRepr {
                dst: EthernetAddress::from_node_id(2),
                src: EthernetAddress::from_node_id(1),
                ethertype: ethernet::ethertype::IPV4,
            }
            .encapsulate(&ip.encapsulate(&udp_b))
        };
        s.receive(0, 0, insert_transparent(&inner, &tpp));
        s.dequeue(1, 2);
        assert_eq!(s.mem.queues[2][0].limit_bytes, 200);
        // Now a second full-size packet overflows immediately.
        let out = s.receive(2, 0, frame_to_queue(1, 2, 0, 400));
        assert_eq!(out, ReceiveOutcome::Dropped(DropReason::QueueFull));
    }

    #[test]
    fn reflect_frame_swaps_addresses_in_place() {
        let tpp =
            TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(1).build().unwrap();
        let mut frame = wire::build_standalone(
            EthernetAddress::from_node_id(1),
            EthernetAddress::from_node_id(9),
            Ipv4Address::from_host_id(1),
            Ipv4Address::new(192, 168, 0, 9),
            5555,
            &tpp,
        );
        let loc = wire::locate_tpp(&frame);
        reflect_frame(&mut frame, loc);
        let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
        assert_eq!(eth.dst(), EthernetAddress::from_node_id(1));
        assert_eq!(eth.src(), EthernetAddress::from_node_id(9));
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.dst(), Ipv4Address::from_host_id(1));
        assert!(ip.verify_checksum(), "address swap must not break the checksum");
        // Still a recognizable standalone TPP.
        assert!(matches!(wire::locate_tpp(&frame), wire::TppLocation::Standalone { .. }));
    }

    #[test]
    fn forwarding_loop_is_bounded_by_ttl() {
        // Two switches routing the destination at each other: the packet
        // must die by TTL, not live forever.
        let mut a = Switch::new(SwitchConfig::new(1, 2));
        let mut b = Switch::new(SwitchConfig::new(2, 2));
        let dst = Ipv4Address::from_host_id(9);
        a.add_host_route(dst, Action::Output(0));
        b.add_host_route(dst, Action::Output(0));
        let mut frame = {
            let u = udp::Repr { src_port: 1, dst_port: 2, payload_len: 8 };
            let udp_b = u.encapsulate(Ipv4Address::from_host_id(1), dst, &[0u8; 8]);
            let ip = ipv4::Repr {
                src: Ipv4Address::from_host_id(1),
                dst,
                protocol: ipv4::protocol::UDP,
                ttl: 8,
                payload_len: udp_b.len(),
            };
            wire::EthernetRepr {
                dst: EthernetAddress::from_node_id(9),
                src: EthernetAddress::from_node_id(1),
                ethertype: ethernet::ethertype::IPV4,
            }
            .encapsulate(&ip.encapsulate(&udp_b))
        };
        let mut hops = 0;
        loop {
            let out = a.receive(hops, 0, frame.clone());
            if matches!(out, ReceiveOutcome::Dropped(DropReason::TtlExpired)) {
                break;
            }
            frame = a.dequeue(hops, 0).unwrap();
            std::mem::swap(&mut a, &mut b);
            hops += 1;
            assert!(hops < 20, "TTL must bound the loop");
        }
        assert_eq!(hops, 7);
    }
}
