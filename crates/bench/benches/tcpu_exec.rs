//! Micro-benchmarks of TCPU execution (the Table 3 software column):
//! per-opcode execution cost through the reference interpreter and the
//! staged pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpp_core::addr::resolve_mnemonic;
use tpp_core::asm::TppBuilder;
use tpp_core::exec::{
    execute, execute_batch, execute_in_place, execute_in_place_verified, ExecOptions, MapBus,
    PlanTemplate,
};
use tpp_core::verify::{verify, VerifyOptions};
use tpp_core::wire::{Tpp, TppView, TppViewMut};
use tpp_switch::memmap::{PacketContext, SwitchBus, SwitchMemory};
use tpp_switch::pipeline::{PipelineConfig, TppRun};

fn programs() -> Vec<(&'static str, Tpp)> {
    let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
    let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
    let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
    vec![
        ("push1", TppBuilder::stack_mode().push(sid).hops(2).build().unwrap()),
        (
            "push5",
            TppBuilder::stack_mode()
                .push(sid)
                .push(q)
                .push(sid)
                .push(q)
                .push(sid)
                .hops(2)
                .build()
                .unwrap(),
        ),
        (
            "load5",
            TppBuilder::hop_mode(5)
                .load(sid, 0)
                .load(q, 1)
                .load(sid, 2)
                .load(q, 3)
                .load(sid, 4)
                .hops(2)
                .build()
                .unwrap(),
        ),
        (
            "cstore2",
            TppBuilder::hop_mode(3).cstore(reg, 0, 1).store(reg, 2).hops(2).build().unwrap(),
        ),
    ]
}

fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_reference");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        g.bench_with_input(BenchmarkId::from_parameter(name), &tpp, |b, tpp| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            b.iter(|| {
                let mut t = tpp.clone();
                black_box(execute(&mut t, &mut bus, &opts));
            });
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_pipeline");
    let cfg = PipelineConfig::default();
    for (name, tpp) in programs() {
        let opts = ExecOptions::default();
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut mem = SwitchMemory::new(7, 4, cfg.total_stages());
            let mut frame = bytes.clone();
            b.iter(|| {
                // Reset the section in place (what a fresh arrival carries).
                frame.copy_from_slice(bytes);
                let mut ctx = PacketContext::new(0, 100, 0, cfg.total_stages());
                ctx.out_port = Some(1);
                let mut run = {
                    let (view, _) = TppView::parse(&frame).unwrap();
                    TppRun::plan(&view, 0, &opts, &cfg)
                };
                {
                    let mut bus = SwitchBus { mem: &mut mem, ctx: &mut ctx };
                    run.exec_stages(&mut frame, &mut bus, 0..cfg.total_stages(), &opts);
                }
                run.finish(&mut frame, &opts);
                black_box(&frame);
            });
        });
    }
    g.finish();
}

/// The zero-allocation reference fast path: validate once, execute in place
/// over the wire bytes with incremental checksum maintenance.
fn bench_in_place(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_in_place");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            let mut frame = bytes.clone();
            b.iter(|| {
                frame.copy_from_slice(bytes);
                let (mut view, _) = TppViewMut::parse(&mut frame).unwrap();
                black_box(execute_in_place(&mut view, &mut bus, &opts));
            });
        });
    }
    g.finish();
}

/// The verified unchecked path: same in-place execution, but carrying the
/// `Verified` token the static verifier issued, so per-instruction bounds
/// checks are skipped. Paired with `tcpu_in_place` above to expose the
/// per-packet cost of runtime re-validation.
fn bench_verified(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_verified");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        let token = verify(&tpp, VerifyOptions::default())
            .token()
            .expect("bench programs must verify clean");
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            let mut frame = bytes.clone();
            b.iter(|| {
                frame.copy_from_slice(bytes);
                let (mut view, _) = TppViewMut::parse(&mut frame).unwrap();
                black_box(execute_in_place_verified(&mut view, &mut bus, &opts, &token));
            });
        });
    }
    g.finish();
}

/// Batch execution through a cached plan template — the shape the switch's
/// plan cache produces when every frame of a batch carries the same probe.
///
/// * `hit` — plan once (with the verifier token), then run all `BATCH`
///   frames back-to-back through `execute_batch` on the unchecked path.
/// * `miss` — re-validate and re-plan every frame (pre-cache behavior).
/// * `mixed` — two interleaved programs, each hitting its own cached
///   template (the realistic multi-flow batch).
fn bench_batch(c: &mut Criterion) {
    const BATCH: usize = 32;
    let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
    let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
    let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
    let opts = ExecOptions::default();
    let progs = programs();
    let lookup = |name: &str| progs.iter().find(|(n, _)| *n == name).unwrap().1.clone();
    let decode = |tpp: &Tpp| {
        let bytes = tpp.serialize();
        let token =
            verify(tpp, VerifyOptions::default()).token().expect("bench programs verify clean");
        let (view, _) = TppView::parse(&bytes).unwrap();
        (PlanTemplate::decode(&view, &opts).with_token(token), bytes)
    };

    let mut g = c.benchmark_group("tcpu_batch");
    g.throughput(Throughput::Elements(BATCH as u64));

    let (template, bytes) = decode(&lookup("push5"));
    g.bench_function("hit", |b| {
        let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
        let mut frames: Vec<Vec<u8>> = vec![bytes.clone(); BATCH];
        let mut out = Vec::with_capacity(BATCH);
        b.iter(|| {
            for f in &mut frames {
                f.copy_from_slice(&bytes);
            }
            out.clear();
            execute_batch(
                &template,
                frames.iter_mut().map(Vec::as_mut_slice),
                &mut bus,
                &opts,
                &mut out,
            );
            black_box(&out);
        });
    });

    g.bench_function("miss", |b| {
        let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
        let mut frames: Vec<Vec<u8>> = vec![bytes.clone(); BATCH];
        b.iter(|| {
            for f in &mut frames {
                f.copy_from_slice(&bytes);
                let (mut view, _) = TppViewMut::parse(f).unwrap();
                let template = PlanTemplate::decode(&view.as_view(), &opts);
                black_box(template.execute_one(&mut view, &mut bus, &opts));
            }
        });
    });

    let (t_push, b_push) = decode(&lookup("push5"));
    let (t_load, b_load) = decode(&lookup("load5"));
    let templates = [t_push, t_load];
    let sources = [b_push, b_load];
    g.bench_function("mixed", |b| {
        let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
        let mut frames: Vec<Vec<u8>> = (0..BATCH).map(|i| sources[i % 2].clone()).collect();
        b.iter(|| {
            for (i, f) in frames.iter_mut().enumerate() {
                f.copy_from_slice(&sources[i % 2]);
                let mut view = TppViewMut::from_validated(f);
                black_box(templates[i % 2].execute_one(&mut view, &mut bus, &opts));
            }
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30);
    targets = bench_reference, bench_in_place, bench_verified, bench_pipeline, bench_batch
}
criterion_main!(benches);
