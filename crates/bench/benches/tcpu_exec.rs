//! Micro-benchmarks of TCPU execution (the Table 3 software column):
//! per-opcode execution cost through the reference interpreter and the
//! staged pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tpp_core::addr::resolve_mnemonic;
use tpp_core::asm::TppBuilder;
use tpp_core::exec::{execute, execute_in_place, execute_in_place_verified, ExecOptions, MapBus};
use tpp_core::verify::{verify, VerifyOptions};
use tpp_core::wire::{Tpp, TppView, TppViewMut};
use tpp_switch::memmap::{PacketContext, SwitchBus, SwitchMemory};
use tpp_switch::pipeline::{PipelineConfig, TppRun};

fn programs() -> Vec<(&'static str, Tpp)> {
    let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
    let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
    let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
    vec![
        ("push1", TppBuilder::stack_mode().push(sid).hops(2).build().unwrap()),
        (
            "push5",
            TppBuilder::stack_mode()
                .push(sid)
                .push(q)
                .push(sid)
                .push(q)
                .push(sid)
                .hops(2)
                .build()
                .unwrap(),
        ),
        (
            "load5",
            TppBuilder::hop_mode(5)
                .load(sid, 0)
                .load(q, 1)
                .load(sid, 2)
                .load(q, 3)
                .load(sid, 4)
                .hops(2)
                .build()
                .unwrap(),
        ),
        (
            "cstore2",
            TppBuilder::hop_mode(3).cstore(reg, 0, 1).store(reg, 2).hops(2).build().unwrap(),
        ),
    ]
}

fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_reference");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        g.bench_with_input(BenchmarkId::from_parameter(name), &tpp, |b, tpp| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            b.iter(|| {
                let mut t = tpp.clone();
                black_box(execute(&mut t, &mut bus, &opts));
            });
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_pipeline");
    let cfg = PipelineConfig::default();
    for (name, tpp) in programs() {
        let opts = ExecOptions::default();
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut mem = SwitchMemory::new(7, 4, cfg.total_stages());
            let mut frame = bytes.clone();
            b.iter(|| {
                // Reset the section in place (what a fresh arrival carries).
                frame.copy_from_slice(bytes);
                let mut ctx = PacketContext::new(0, 100, 0, cfg.total_stages());
                ctx.out_port = Some(1);
                let mut run = {
                    let (view, _) = TppView::parse(&frame).unwrap();
                    TppRun::plan(&view, 0, &opts)
                };
                {
                    let mut bus = SwitchBus { mem: &mut mem, ctx: &mut ctx };
                    run.exec_stages(&mut frame, &mut bus, 0..cfg.total_stages(), &cfg, &opts);
                }
                run.finish(&mut frame, &opts);
                black_box(&frame);
            });
        });
    }
    g.finish();
}

/// The zero-allocation reference fast path: validate once, execute in place
/// over the wire bytes with incremental checksum maintenance.
fn bench_in_place(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_in_place");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            let mut frame = bytes.clone();
            b.iter(|| {
                frame.copy_from_slice(bytes);
                let (mut view, _) = TppViewMut::parse(&mut frame).unwrap();
                black_box(execute_in_place(&mut view, &mut bus, &opts));
            });
        });
    }
    g.finish();
}

/// The verified unchecked path: same in-place execution, but carrying the
/// `Verified` token the static verifier issued, so per-instruction bounds
/// checks are skipped. Paired with `tcpu_in_place` above to expose the
/// per-packet cost of runtime re-validation.
fn bench_verified(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcpu_verified");
    for (name, tpp) in programs() {
        let sid = resolve_mnemonic("Switch:SwitchID").unwrap();
        let q = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        let reg = resolve_mnemonic("Link:AppSpecific_0").unwrap();
        let opts = ExecOptions::default();
        let token = verify(&tpp, VerifyOptions::default())
            .token()
            .expect("bench programs must verify clean");
        let bytes = tpp.serialize();
        g.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            let mut bus = MapBus::with(&[(sid, 7), (q, 100), (reg, 0)]);
            let mut frame = bytes.clone();
            b.iter(|| {
                frame.copy_from_slice(bytes);
                let (mut view, _) = TppViewMut::parse(&mut frame).unwrap();
                black_box(execute_in_place_verified(&mut view, &mut bus, &opts, &token));
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30);
    targets = bench_reference, bench_in_place, bench_verified, bench_pipeline
}
criterion_main!(benches);
