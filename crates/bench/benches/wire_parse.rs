//! Wire-format micro-benchmarks: TPP parse/serialize and the Figure 7a
//! parse graph (transparent insertion/stripping), the operations a software
//! switch performs per packet.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use tpp_apps::common::udp_frame;
use tpp_core::asm::TppBuilder;
use tpp_core::wire::{
    extract_tpp, insert_transparent, locate_tpp, strip_transparent, Ipv4Address, Tpp,
};

fn sample_tpp() -> Tpp {
    TppBuilder::stack_mode()
        .push_m("Switch:SwitchID")
        .unwrap()
        .push_m("PacketMetadata:OutputPort")
        .unwrap()
        .push_m("Queue:QueueOccupancy")
        .unwrap()
        .hops(5)
        .build()
        .unwrap()
}

fn bench_wire(c: &mut Criterion) {
    let tpp = sample_tpp();
    let bytes = tpp.serialize();
    let inner = udp_frame(Ipv4Address::from_host_id(1), Ipv4Address::from_host_id(2), 1, 2, 1000);
    let stamped = insert_transparent(&inner, &tpp);

    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("tpp_serialize", |b| b.iter(|| black_box(tpp.serialize())));
    g.bench_function("tpp_parse", |b| b.iter(|| black_box(Tpp::parse(&bytes).unwrap())));
    g.throughput(Throughput::Bytes(stamped.len() as u64));
    g.bench_function("locate_tpp", |b| b.iter(|| black_box(locate_tpp(&stamped))));
    g.bench_function("extract_tpp", |b| b.iter(|| black_box(extract_tpp(&stamped))));
    g.bench_function("insert_transparent", |b| {
        b.iter(|| black_box(insert_transparent(&inner, &tpp)));
    });
    g.bench_function("strip_transparent", |b| b.iter(|| black_box(strip_transparent(&stamped))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30);
    targets = bench_wire
}
criterion_main!(benches);
