//! Whole-switch benchmarks: packets per second through receive+dequeue,
//! with and without TPP support exercised — the runtime counterpart of the
//! Table 4 "cost of adding TPP support" question.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use tpp_apps::common::udp_frame;
use tpp_core::asm::TppBuilder;
use tpp_core::wire::{insert_transparent, Ipv4Address};
use tpp_switch::{Action, Switch, SwitchConfig};

fn make_switch() -> Switch {
    let mut sw = Switch::new(SwitchConfig::new(1, 4));
    sw.add_host_route(Ipv4Address::from_host_id(2), Action::Output(2));
    sw
}

fn bench_switch(c: &mut Criterion) {
    let plain = udp_frame(Ipv4Address::from_host_id(1), Ipv4Address::from_host_id(2), 1, 2, 1000);
    let tpp = TppBuilder::stack_mode()
        .push_m("Switch:SwitchID")
        .unwrap()
        .push_m("PacketMetadata:OutputPort")
        .unwrap()
        .push_m("Queue:QueueOccupancy")
        .unwrap()
        .hops(5)
        .build()
        .unwrap();
    let stamped = insert_transparent(&plain, &tpp);

    let mut g = c.benchmark_group("switch_forward");
    g.throughput(Throughput::Elements(1));
    g.bench_function("plain_packet", |b| {
        let mut sw = make_switch();
        let mut now = 0u64;
        b.iter(|| {
            now += 1000;
            sw.receive(now, 0, plain.clone());
            black_box(sw.dequeue(now, 2));
        });
    });
    g.bench_function("tpp_packet", |b| {
        let mut sw = make_switch();
        let mut now = 0u64;
        b.iter(|| {
            now += 1000;
            sw.receive(now, 0, stamped.clone());
            black_box(sw.dequeue(now, 2));
        });
    });
    // Batched delivery of identical-program TPP frames: the plan cache and
    // the shared batch context (clock, exec options, route memo) amortize
    // per-frame setup, so per-packet cost must beat `tpp_packet` above.
    for batch in [8usize, 32] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("tpp_packet_batch{batch}"), |b| {
            let mut sw = make_switch();
            let mut now = 0u64;
            let mut frames: Vec<(u8, Vec<u8>)> = Vec::with_capacity(batch);
            let mut outcomes = Vec::with_capacity(batch);
            b.iter(|| {
                now += 1000;
                frames.clear();
                frames.extend((0..batch).map(|_| (0u8, stamped.clone())));
                outcomes.clear();
                sw.receive_batch(now, &mut frames, &mut outcomes);
                black_box(&outcomes);
                for _ in 0..batch {
                    black_box(sw.dequeue(now, 2));
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30);
    targets = bench_switch
}
criterion_main!(benches);
