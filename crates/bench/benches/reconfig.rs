//! Reconfiguration-event throughput: how fast the simulator applies
//! scheduled runtime changes through the event queue.
//!
//! * `reconfig/apply_route` — a k=4 fat-tree with a plan of route
//!   set/withdraw pairs on the edge switches, no traffic: measures the
//!   pure cost of delivering and applying route reconfigurations
//!   (flow-table update + version bump) through the scheduler.
//! * `reconfig/apply_link` — same shape, link up/down + degrade + fault
//!   toggles: the link-layer reconfiguration path (port table writes plus
//!   switch memory-map mirroring).
//! * `reconfig/flap_under_load` — a rerouting link-flap churn plan under
//!   uniform traffic on the fat-tree, digest-pinned so the measured
//!   workload can't silently drift.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use tpp_fabric::scenario::{Scenario, WorkloadSpec};
use tpp_netsim::{ChurnSpec, ReconfigAction, Time, TopologySpec, MILLIS};

const HORIZON: Time = 2 * MILLIS;

fn route_plan_events() -> u64 {
    let t = TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(8).build();
    let mut net = t.net;
    let mut n = 0u64;
    // One withdraw + restore pair per host route on each edge switch,
    // spaced across the horizon.
    for (i, &sw) in t.switches.iter().enumerate() {
        for &h in &t.hosts {
            let dst = net.host(h).ip;
            let Some(action) = net.switch(sw).host_route(dst) else { continue };
            let at = 1000 + (n % 1000) * (HORIZON / 2000).max(1) + i as u64;
            net.schedule_reconfig(at, ReconfigAction::RouteWithdraw { switch: sw, dst });
            net.schedule_reconfig(at + 500, ReconfigAction::RouteSet { switch: sw, dst, action });
            n += 2;
        }
    }
    net.run_until(HORIZON);
    assert_eq!(net.stats.reconfigs_applied, n, "every planned reconfig applied");
    n
}

fn link_plan_events() -> u64 {
    let t = TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(8).build();
    let mut net = t.net;
    let links: Vec<_> = net
        .links_iter()
        .filter(|&(a, _, b, _, _)| a < b && net.is_switch(a) && net.is_switch(b))
        .map(|(a, pa, _, _, _)| (a, pa))
        .collect();
    let mut n = 0u64;
    for (i, &(node, port)) in links.iter().enumerate() {
        let at = 1000 + i as u64 * 7;
        net.schedule_reconfig(at, ReconfigAction::LinkUp { node, port, up: false });
        net.schedule_reconfig(
            at + 100_000,
            ReconfigAction::LinkDegrade { node, port, rate_mbps: 500, delay_ns: 2000 },
        );
        net.schedule_reconfig(
            at + 200_000,
            ReconfigAction::LinkFaults { node, port, drop_prob: 0.01, corrupt_prob: 0.0 },
        );
        net.schedule_reconfig(at + 300_000, ReconfigAction::LinkUp { node, port, up: true });
        n += 4;
    }
    net.run_until(HORIZON);
    assert_eq!(net.stats.reconfigs_applied, n, "every planned reconfig applied");
    n
}

fn flap_under_load() -> (u64, u64) {
    let cell = Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        WorkloadSpec::uniform(),
    )
    .churn(ChurnSpec::LinkFlap {
        fraction: 0.3,
        period_ns: 500_000,
        down_ns: 100_000,
        seed: 7,
        reroute: true,
    })
    .duration_ns(HORIZON)
    .run();
    (cell.digest, cell.stats.reconfigs_applied)
}

fn bench_reconfig(c: &mut Criterion) {
    let routes = route_plan_events();
    let links = link_plan_events();
    let (digest, applied) = flap_under_load();
    assert_eq!(flap_under_load(), (digest, applied), "churn workload must be deterministic");
    assert!(applied > 0);

    let mut g = c.benchmark_group("reconfig");
    g.throughput(Throughput::Elements(routes));
    g.bench_function("apply_route", |b| b.iter(|| black_box(route_plan_events())));
    g.finish();

    let mut g = c.benchmark_group("reconfig");
    g.throughput(Throughput::Elements(links));
    g.bench_function("apply_link", |b| b.iter(|| black_box(link_plan_events())));
    g.finish();

    let mut g = c.benchmark_group("reconfig");
    g.throughput(Throughput::Elements(applied));
    g.bench_function("flap_under_load", |b| {
        b.iter(|| {
            let got = flap_under_load();
            assert_eq!(got.0, digest, "churned digest drifted");
            black_box(got)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_reconfig
}
criterion_main!(benches);
