//! Fabric-scale benchmark: one simulated millisecond of heavy all-hosts
//! traffic on a k=8 fat-tree (80 switches, 128 hosts), driven by the
//! single-threaded `Network` loop vs the sharded `tpp-fabric` runtime at
//! 2 and 4 shards. The sharded runs are digest-checked against the
//! single-threaded reference once up front — the timings compare *the same
//! simulation*, not approximations of it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use tpp_fabric::{
    install_traffic, ExecMode, Fabric, PartitionStrategy, TrafficConfig, TrafficPattern,
};
use tpp_netsim::{Time, TopologySpec, MILLIS};

const K: usize = 8;
const HORIZON: Time = 2 * MILLIS / 5;

fn traffic() -> TrafficConfig {
    // Same heavy-load shape as the fig_scale sweep.
    TrafficConfig {
        frames_per_tick: 16,
        tick_ns: 5_000,
        payload: 256,
        tpp_every: 4,
        stop_at: HORIZON,
        seed: 8,
        pattern: TrafficPattern::Uniform,
    }
}

fn run(n_shards: usize) -> u64 {
    let mut t =
        TopologySpec::FatTree { k: K }.builder().link_mbps(10_000).delay_ns(1000).seed(8).build();
    let hosts = t.hosts.clone();
    let _delivered = install_traffic(&mut t.net, &hosts, &traffic());
    if n_shards == 1 {
        t.net.run_until(HORIZON);
        t.net.stats.digest()
    } else {
        let mut fabric = Fabric::new(t.net, n_shards, PartitionStrategy::Locality);
        fabric.set_mode(ExecMode::Auto);
        fabric.run_until(HORIZON);
        fabric.stats().digest()
    }
}

fn bench_fabric(c: &mut Criterion) {
    // Prove once that every configuration is the same simulation.
    let reference = run(1);
    assert_eq!(run(2), reference, "2-shard digest must match single-threaded");
    assert_eq!(run(4), reference, "4-shard digest must match single-threaded");

    let mut g = c.benchmark_group("fabric_scale");
    g.throughput(Throughput::Elements(1));
    g.bench_function("k8_single_thread", |b| b.iter(|| black_box(run(1))));
    g.bench_function("k8_shards2", |b| b.iter(|| black_box(run(2))));
    g.bench_function("k8_shards4", |b| b.iter(|| black_box(run(4))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_fabric
}
criterion_main!(benches);
