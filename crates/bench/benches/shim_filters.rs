//! The Table 5 micro-benchmark: shim transmit-path cost as a function of
//! the number of installed filters (first/last-match scenarios).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpp_apps::common::udp_frame;
use tpp_core::asm::TppBuilder;
use tpp_core::wire::{EthernetAddress, Ipv4Address};
use tpp_endhost::{Filter, Shim};

fn shim_with_rules(n: usize) -> Shim {
    let probe =
        TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(5).build().unwrap();
    let mut shim = Shim::new(Ipv4Address::from_host_id(1), EthernetAddress::from_node_id(1), 1);
    for i in 0..n {
        shim.add_tpp(
            1,
            Filter { protocol: Some(17), dst_port: Some(1000 + i as u16), ..Filter::default() },
            probe.clone(),
            1,
            i as u32,
        );
    }
    shim
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("shim_outgoing");
    for n in [0usize, 1, 10, 100, 1000] {
        for scenario in ["first", "last"] {
            let mut shim = shim_with_rules(n);
            let dport = match scenario {
                "first" => 1000,
                _ => 1000 + n.saturating_sub(1) as u16,
            };
            let frame = udp_frame(
                Ipv4Address::from_host_id(1),
                Ipv4Address::from_host_id(2),
                40_000,
                dport,
                1400,
            );
            g.throughput(Throughput::Bytes(frame.len() as u64));
            g.bench_with_input(BenchmarkId::new(scenario, n), &frame, |b, frame| {
                b.iter(|| black_box(shim.outgoing(frame.clone())));
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(700))
        .sample_size(30);
    targets = bench_filters
}
criterion_main!(benches);
