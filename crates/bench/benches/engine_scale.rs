//! Engine-scale benchmark: raw scheduler throughput (events/sec) of the
//! hierarchical timing wheel vs the legacy `BinaryHeap` queue at 1k / 10k /
//! 100k scheduled events, plus the batched end-to-end delivery loop.
//!
//! * `wheel/{n}` — schedule `n` keyed events with delays mixed across every
//!   wheel level, then drain with same-timestamp batch pops (spill
//!   threshold 0: pure wheel).
//! * `hybrid/{n}` — the same schedule through the default [`Scheduler`],
//!   which starts on its heap backend and spills into the wheel at the
//!   crossover threshold — the configuration every simulation actually
//!   runs.
//! * `heap/{n}` — the identical schedule through [`HeapQueue`], drained one
//!   pop at a time (the pre-refactor engine's only mode).
//! * `pure_ns/{n}` / `mixed_ns_ms/{n}` — the WAN-mix pair: the same
//!   default-scheduler drain with delays confined to the ns–µs leaf levels
//!   vs. half the events pushed out to 1–10 ms, where WAN propagation
//!   lands (wheel levels 3–4, not the overflow heap). The ratio between
//!   the two is the scheduler's multi-site tax; it must stay within 10%.
//! * `delivery/batched` — one simulated window of heavy traffic on a k=4
//!   fat-tree through the batched `Network` loop (`receive_batch` /
//!   `dequeue_batch` under the wheel), digest-pinned so the workload can't
//!   silently drift.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use tpp_fabric::{install_traffic, TrafficConfig, TrafficPattern};
use tpp_netsim::engine::{HeapQueue, Scheduler};
use tpp_netsim::{Time, TopologySpec, MILLIS};

/// Delays mixed across wheel levels: immediate, sub-slot, level-1/2/3
/// spans, and a far-future sprinkle that exercises the overflow heap.
fn delay_for(i: u64) -> u64 {
    const DELAYS: [u64; 8] = [0, 3, 70, 900, 5_000, 70_000, 900_000, 1 << 37];
    DELAYS[(i.wrapping_mul(0x9E37_79B9)) as usize % DELAYS.len()] + (i % 50)
}

fn drive_wheel(n: u64) -> u64 {
    let mut q = Scheduler::with_spill_threshold(0);
    let mut popped = 0u64;
    let mut batch = Vec::new();
    for i in 0..n {
        q.schedule_keyed(q.now() + delay_for(i), i % 7, i);
    }
    while q.pop_batch(&mut batch).is_some() {
        popped += batch.len() as u64;
        batch.clear();
    }
    popped
}

fn drive_hybrid(n: u64) -> u64 {
    let mut q = Scheduler::new();
    let mut popped = 0u64;
    let mut batch = Vec::new();
    for i in 0..n {
        q.schedule_keyed(q.now() + delay_for(i), i % 7, i);
    }
    while q.pop_batch(&mut batch).is_some() {
        popped += batch.len() as u64;
        batch.clear();
    }
    popped
}

/// Intra-site-only delays: everything within the leaf and low wheel
/// levels, the profile of a single-DC simulation.
fn delay_pure_ns(i: u64) -> u64 {
    const DELAYS: [u64; 4] = [3, 900, 5_000, 70_000];
    DELAYS[(i.wrapping_mul(0x9E37_79B9)) as usize % DELAYS.len()] + (i % 50)
}

/// WAN-mix delays: every other event jumps 1–10 ms ahead — the profile of
/// a `MultiSite` scenario, where WAN propagation lands deep in the wheel
/// (levels 3–4) while intra-site events churn the leaf levels.
fn delay_mixed(i: u64) -> u64 {
    const MS: [u64; 4] = [1_000_000, 2_000_000, 5_000_000, 10_000_000];
    if i.is_multiple_of(2) {
        delay_pure_ns(i)
    } else {
        MS[(i.wrapping_mul(0x9E37_79B9)) as usize % MS.len()] + (i % 50)
    }
}

/// Schedule/drain through the default scheduler with an arbitrary delay
/// profile (the WAN-mix arms share this driver so only the profile
/// differs).
fn drive_profile(n: u64, delay: fn(u64) -> u64) -> u64 {
    let mut q = Scheduler::new();
    let mut popped = 0u64;
    let mut batch = Vec::new();
    for i in 0..n {
        q.schedule_keyed(q.now() + delay(i), i % 7, i);
    }
    while q.pop_batch(&mut batch).is_some() {
        popped += batch.len() as u64;
        batch.clear();
    }
    popped
}

fn drive_heap(n: u64) -> u64 {
    let mut q = HeapQueue::new();
    let mut popped = 0u64;
    for i in 0..n {
        q.schedule_keyed(q.now() + delay_for(i), i % 7, i);
    }
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

const HORIZON: Time = 2 * MILLIS / 5;

fn run_delivery() -> (u64, u64) {
    let mut t =
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(10_000).delay_ns(1000).seed(8).build();
    let hosts = t.hosts.clone();
    let cfg = TrafficConfig {
        frames_per_tick: 16,
        tick_ns: 5_000,
        payload: 256,
        tpp_every: 4,
        stop_at: HORIZON,
        seed: 8,
        pattern: TrafficPattern::Uniform,
    };
    let _delivered = install_traffic(&mut t.net, &hosts, &cfg);
    t.net.run_until(HORIZON);
    (t.net.stats.digest(), t.net.stats.events_processed)
}

fn bench_engine(c: &mut Criterion) {
    for n in [1_000u64, 10_000, 100_000] {
        let label = match n {
            1_000 => "1k",
            10_000 => "10k",
            _ => "100k",
        };
        assert_eq!(drive_wheel(n), n, "wheel must pop every scheduled event");
        assert_eq!(drive_hybrid(n), n, "hybrid must pop every scheduled event");
        assert_eq!(drive_heap(n), n, "heap must pop every scheduled event");
        assert_eq!(drive_profile(n, delay_pure_ns), n, "pure-ns must pop every event");
        assert_eq!(drive_profile(n, delay_mixed), n, "mixed ns/ms must pop every event");
        let mut g = c.benchmark_group("engine_scale");
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("wheel/{label}"), |b| b.iter(|| black_box(drive_wheel(n))));
        g.bench_function(format!("hybrid/{label}"), |b| b.iter(|| black_box(drive_hybrid(n))));
        g.bench_function(format!("heap/{label}"), |b| b.iter(|| black_box(drive_heap(n))));
        g.bench_function(format!("pure_ns/{label}"), |b| {
            b.iter(|| black_box(drive_profile(n, delay_pure_ns)));
        });
        g.bench_function(format!("mixed_ns_ms/{label}"), |b| {
            b.iter(|| black_box(drive_profile(n, delay_mixed)));
        });
        g.finish();
    }

    // End-to-end batched delivery, digest-pinned against drift: the same
    // run twice must agree, and the event count sets the throughput unit.
    let (digest, events) = run_delivery();
    assert_eq!(run_delivery(), (digest, events), "delivery workload must be deterministic");
    let mut g = c.benchmark_group("engine_scale");
    g.throughput(Throughput::Elements(events));
    g.bench_function("delivery/batched", |b| {
        b.iter(|| {
            let got = run_delivery();
            assert_eq!(got.0, digest, "batched delivery digest drifted");
            black_box(got)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
