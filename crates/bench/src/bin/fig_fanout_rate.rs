//! `fig_fanout_rate`: per-subtree rate convergence of the coordinated WAN
//! fan-out (`tpp_apps::wan`) on the viewer preset.
//!
//! One source in site 0 streams to a relay in every viewer site; each
//! subtree's WAN link is throttled to `wan / (site + 1)` Mb/s, and the
//! source's CSTORE/CEXEC discovery loop steps each subtree's rate to its
//! own measured bottleneck. Expected shape: every series climbs from the
//! 1 Mb/s starting rate and flattens just under its subtree's bottleneck,
//! without building a standing WAN queue.
//!
//! `TPP_BENCH_ITERS` below `10_000_000` switches to smoke mode (fewer
//! sites, shorter horizon) for CI; the convergence assertions always run.

use tpp_apps::wan::run_fanout;
use tpp_netsim::{Time, MILLIS, SECONDS};

fn main() {
    let smoke = std::env::var("TPP_BENCH_ITERS")
        .ok()
        .map(|v| v.trim().parse::<u64>().map_or(true, |n| n < 10_000_000))
        .unwrap_or(false);
    let (sites, wan_mbps, duration): (usize, u64, Time) =
        if smoke { (3, 24, 800 * MILLIS) } else { (4, 24, 2 * SECONDS) };

    let r = run_fanout(sites, 4, wan_mbps, duration, 11);

    println!("# fig_fanout_rate — coordinated fan-out rate adaptation");
    println!("# {sites} sites, WAN {wan_mbps} Mb/s throttled to wan/(site+1) per viewer site");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>14}",
        "site", "", "bottleneck", "adapted", "relay goodput"
    );
    for s in &r.subtrees {
        println!(
            "{:>8} {:>6} {:>10.1} {:>12.2} {:>12.2}",
            s.site, "", s.bottleneck_mbps, s.adapted_mbps, s.relay_goodput_mbps
        );
    }

    println!("\n## adaptation series, Mb/s");
    print!("{:>8}", "t(s)");
    for s in &r.subtrees {
        print!(" {:>10}", format!("site {}", s.site));
    }
    println!();
    let n = r.subtrees[0].series.len();
    for i in (0..n).step_by(4.max(n / 24)) {
        print!("{:>8.2}", r.subtrees[0].series[i].0);
        for s in &r.subtrees {
            print!(" {:>10.2}", s.series.get(i).map(|&(_, v)| v).unwrap_or(0.0));
        }
        println!();
    }
    println!(
        "\n## TPP control overhead: {:.2}% of data bytes",
        100.0 * r.control_overhead_fraction
    );

    // The deterministic convergence contract (same tolerance as the
    // tpp-apps test suite): each subtree ends within 25% of its own
    // bottleneck, and the ordering across subtrees follows the throttles.
    for s in &r.subtrees {
        assert!(
            (s.adapted_mbps - s.bottleneck_mbps).abs() <= 0.25 * s.bottleneck_mbps,
            "site {} adapted {:.2} Mb/s, bottleneck {:.1}",
            s.site,
            s.adapted_mbps,
            s.bottleneck_mbps
        );
    }
    for w in r.subtrees.windows(2) {
        assert!(
            w[0].adapted_mbps > w[1].adapted_mbps,
            "subtree rates must follow the per-site throttles"
        );
    }
    println!("# every subtree converged within 25% of its bottleneck");
}
