//! Figure 1b: queue-occupancy CDF and time series from per-packet TPPs on
//! the six-host dumbbell (all-to-all 10 kB messages at 30% load, 100 Mb/s).
//!
//! Prints, per observed queue: the CDF fractiles and a down-sampled time
//! series — the two panels of Figure 1b.

use std::collections::BTreeMap;

use tpp_apps::common::{cdf, cdf_at};
use tpp_apps::microburst::{queue_key, run_microburst};
use tpp_netsim::SECONDS;

fn main() {
    let duration = 3 * SECONDS;
    let r = run_microburst(3, duration, 42);
    println!("# Figure 1b reproduction (micro-burst detection, §2.1)");
    println!(
        "# {} messages sent; {} queue samples at the observer; {} fabric-wide",
        r.total_messages,
        r.observer_samples.len(),
        r.all_samples.len()
    );

    let mut by_queue: BTreeMap<(u32, u32), Vec<&tpp_apps::microburst::QueueSample>> =
        BTreeMap::new();
    for s in &r.all_samples {
        by_queue.entry(queue_key(s)).or_default().push(s);
    }

    println!("\n## CDF of queue occupancy at packet arrival (packets)");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "switch", "port", "P(q<=0)", "P(q<=2)", "P(q<=5)", "P(q<=10)", "max"
    );
    for (k, samples) in &by_queue {
        if samples.len() < 100 {
            continue; // uninteresting queue
        }
        let values: Vec<u32> = samples.iter().map(|s| s.q_pkts).collect();
        let c = cdf(&values);
        println!(
            "{:>8} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7}",
            k.0,
            k.1,
            cdf_at(&c, 0),
            cdf_at(&c, 2),
            cdf_at(&c, 5),
            cdf_at(&c, 10),
            values.iter().max().unwrap()
        );
    }

    println!("\n## Time series (10 ms bins, mean / max queue in packets)");
    let busiest =
        by_queue.iter().max_by_key(|(_, v)| v.len()).map(|(k, _)| *k).expect("at least one queue");
    println!("# busiest queue: switch {} port {}", busiest.0, busiest.1);
    println!("{:>8} {:>8} {:>8}", "t(ms)", "mean_q", "max_q");
    let bin = 10_000_000u64;
    let mut bins: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for s in &by_queue[&busiest] {
        bins.entry(s.t_ns / bin).or_default().push(s.q_pkts);
    }
    for (b, v) in bins.iter().take(100) {
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        println!("{:>8} {:>8.2} {:>8}", b * 10, mean, v.iter().max().unwrap());
    }
}
