//! tpp-lint: disassemble and statically verify TPP programs.
//!
//! The command-line face of `tpp_core::verify` — the same abstract
//! interpreter that gates `Probe::compile`, `Policy::validate_verified`
//! and the switch's unchecked fast path, with rustc-style diagnostics:
//!
//! ```text
//! tpp-lint --all-apps            verify every built-in app probe against
//!                                its declared TPP-CP segment table
//! tpp-lint [--hops N] FILE       assemble FILE (paper pseudo-assembly)
//!                                and verify it for N hops (default: derive)
//! tpp-lint [--hops N] --hex STR  parse STR as a hex dump of a wire-format
//!                                TPP section and verify it
//! ```
//!
//! Exit status: 0 when every program passes (lints are warnings), 1 when
//! any deny-class diagnostic fires, 2 on usage/parse errors.

use std::process::ExitCode;

use tpp_apps::{conga, microburst, netsight, netverify, overhead, rcp, sketch, wan};
use tpp_core::asm::{assemble, disassemble};
use tpp_core::probe::Probe;
use tpp_core::verify::{verify, Verdict, VerifyOptions};
use tpp_core::wire::Tpp;
use tpp_endhost::cp::{CentralCp, Policy};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tpp-lint --all-apps\n       tpp-lint [--hops N] FILE\n       tpp-lint [--hops N] --hex HEXSTRING"
    );
    ExitCode::from(2)
}

/// Print a verdict rustc-style; returns whether it denied.
fn report(name: &str, tpp: &Tpp, verdict: &Verdict) -> bool {
    let denied = !verdict.passed();
    for d in &verdict.diagnostics {
        println!("{d}");
        match d.instr.and_then(|i| tpp.instrs.get(i).map(|ins| (i, ins))) {
            Some((i, ins)) => println!("  --> {name}: instr {i}: {ins}"),
            None => println!("  --> {name}"),
        }
    }
    if denied {
        println!("{name}: DENY ({} error(s))", verdict.denials().count());
    } else {
        let hops = verdict.hops_verified;
        let lints = verdict.lints().count();
        match lints {
            0 => println!("{name}: ok ({hops} hop(s) verified)"),
            n => println!("{name}: ok ({hops} hop(s) verified, {n} warning(s))"),
        }
    }
    denied
}

/// Verify one built-in probe for `hops` hops against `policy`'s segments.
fn lint_probe(name: &str, probe: &Probe, hops: usize, policy: &Policy) -> bool {
    let tpp = match probe.compile_hops(hops) {
        Ok(t) => t,
        Err(e) => {
            println!("error[E-COMPILE]: {e}\n  --> {name}");
            println!("{name}: DENY (compile error)");
            return true;
        }
    };
    let verdict =
        verify(&tpp, VerifyOptions { hops: Some(hops), segments: Some(&policy.segments) });
    report(name, &tpp, &verdict)
}

/// `--all-apps`: every built-in application probe against the segment
/// table its app would be granted by the central TPP-CP. Mirrors (and is
/// pinned by) `crates/apps/tests/verify_apps.rs`.
fn lint_all_apps() -> ExitCode {
    let mut cp = CentralCp::new();
    let (rcp_app, _) = cp.register_app_with_regs("rcp", 2).expect("registers available");
    let (wan_app, _) = cp.register_app_with_regs("wan-fanout", 2).expect("registers available");
    let reader_app = cp.register_app("reader");
    let rcp_policy = cp.policy_for(rcp_app, false).expect("registered");
    let wan_policy = cp.policy_for(wan_app, false).expect("registered");
    let reader = cp.policy_for(reader_app, false).expect("registered");

    let mut denied = false;
    denied |= lint_probe("microburst", &microburst::microburst_probe(), 8, &reader);
    denied |= lint_probe("conga-path", &conga::conga_probe(), 8, &reader);
    denied |= lint_probe("netsight-history", &netsight::history_probe(), 8, &reader);
    denied |= lint_probe("netverify-trace", &netverify::trace_probe(), 8, &reader);
    denied |= lint_probe("transient-trace", &netverify::trace_probe(), 8, &reader);
    denied |= lint_probe("sketch", &sketch::sketch_probe(), 8, &reader);
    denied |= lint_probe("overhead", &overhead::overhead_probe(), 8, &reader);
    denied |= lint_probe("rcp-collect", &rcp::collect_probe(), 8, &rcp_policy);
    denied |= lint_probe("rcp-update", &rcp::update_probe(), 4, &rcp_policy);
    denied |= lint_probe("wan-discover", &wan::discover_probe(), 8, &wan_policy);
    denied |= lint_probe("wan-install", &wan::install_probe(), 4, &wan_policy);

    if denied {
        ExitCode::FAILURE
    } else {
        println!("all built-in app probes verified");
        ExitCode::SUCCESS
    }
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    let cleaned: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if !cleaned.len().is_multiple_of(2) {
        return None;
    }
    (0..cleaned.len()).step_by(2).map(|i| u8::from_str_radix(&cleaned[i..i + 2], 16).ok()).collect()
}

fn lint_tpp(name: &str, tpp: &Tpp, hops: Option<usize>) -> ExitCode {
    println!("{}", disassemble(tpp).trim_end());
    println!();
    let verdict = verify(tpp, VerifyOptions { hops, segments: None });
    if report(name, tpp, &verdict) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut hops: Option<usize> = None;
    let mut hex: Option<String> = None;
    let mut file: Option<String> = None;
    let mut all_apps = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all-apps" => all_apps = true,
            "--hops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                hops = Some(n);
            }
            "--hex" => {
                i += 1;
                let Some(h) = args.get(i) else { return usage() };
                hex = Some(h.clone());
            }
            "-h" | "--help" => return usage(),
            a if !a.starts_with('-') && file.is_none() => file = Some(a.to_string()),
            _ => return usage(),
        }
        i += 1;
    }

    if all_apps {
        return lint_all_apps();
    }
    if let Some(hex) = hex {
        let Some(bytes) = parse_hex(&hex) else {
            eprintln!("tpp-lint: --hex: not a hex string");
            return ExitCode::from(2);
        };
        return match Tpp::parse(&bytes) {
            Ok((tpp, _)) => lint_tpp("<hex>", &tpp, hops),
            Err(e) => {
                eprintln!("tpp-lint: --hex: invalid TPP section: {e:?}");
                ExitCode::from(2)
            }
        };
    }
    if let Some(path) = file {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tpp-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        return match assemble(&src) {
            Ok(tpp) => lint_tpp(&path, &tpp, hops),
            Err(e) => {
                eprintln!("tpp-lint: {path}: assembly error: {e}");
                ExitCode::from(2)
            }
        };
    }
    usage()
}
