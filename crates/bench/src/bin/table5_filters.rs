//! Table 5: maximum attainable network throughput vs the number of
//! dataplane filters, under the `first` / `last` / `all` match scenarios.
//!
//! Like the paper's, this is a *CPU* measurement of the end-host shim: we
//! push pre-built 1500-byte frames through `Shim::outgoing` with N
//! installed rules and report achievable Gb/s on this machine.

use std::time::Instant;

use tpp_apps::common::udp_frame;
use tpp_core::asm::TppBuilder;
use tpp_core::wire::{EthernetAddress, Ipv4Address};
use tpp_endhost::{Filter, Shim};

fn probe() -> tpp_core::wire::Tpp {
    TppBuilder::stack_mode().push_m("Switch:SwitchID").unwrap().hops(5).build().unwrap()
}

/// Build a shim with `n` rules. `scenario`: which rule the traffic matches.
fn build_shim(n: usize, scenario: &str) -> (Shim, Vec<Vec<u8>>) {
    let ip = Ipv4Address::from_host_id(1);
    let mut shim = Shim::new(ip, EthernetAddress::from_node_id(1), 1);
    for i in 0..n {
        // Each rule matches one TCP destination port, like the paper.
        shim.add_tpp(
            1,
            Filter { protocol: Some(17), dst_port: Some(1000 + i as u16), ..Filter::default() },
            probe(),
            1,
            i as u32,
        );
    }
    let dst = Ipv4Address::from_host_id(2);
    let frames: Vec<Vec<u8>> = match scenario {
        // All traffic hits the first rule.
        "first" => (0..64).map(|i| udp_frame(ip, dst, 40_000 + i, 1000, 1400)).collect(),
        // All traffic hits the last rule.
        "last" => (0..64)
            .map(|i| udp_frame(ip, dst, 40_000 + i, 1000 + n.saturating_sub(1) as u16, 1400))
            .collect(),
        // One flow per rule.
        "all" => (0..64.max(n))
            .map(|i| udp_frame(ip, dst, 40_000 + i as u16, 1000 + (i % n.max(1)) as u16, 1400))
            .collect(),
        _ => unreachable!(),
    };
    (shim, frames)
}

fn measure(n: usize, scenario: &str) -> f64 {
    let (mut shim, frames) = build_shim(n, scenario);
    // Warm up.
    for f in frames.iter().take(16) {
        std::hint::black_box(shim.outgoing(f.clone()));
    }
    let iters = if n >= 1000 { 20_000 } else { 100_000 };
    let mut bytes = 0u64;
    let start = Instant::now();
    for i in 0..iters {
        let f = &frames[i % frames.len()];
        bytes += f.len() as u64;
        std::hint::black_box(shim.outgoing(f.clone()));
    }
    let secs = start.elapsed().as_secs_f64();
    bytes as f64 * 8.0 / secs / 1e9
}

fn main() {
    println!("# Table 5 — shim throughput (Gb/s) vs number of filters (§6.2)");
    println!("{:>7} {:>8} {:>8} {:>8} {:>8} {:>8}", "match", "0", "1", "10", "100", "1000");
    for scenario in ["first", "last", "all"] {
        let mut cells = vec![format!("{scenario:>7}")];
        for n in [0usize, 1, 10, 100, 1000] {
            cells.push(format!("{:>8.2}", measure(n, scenario)));
        }
        println!("{}", cells.join(" "));
    }
    println!("\n# paper (kernel shim, 1500B MTU): first/last degrade only at 1000 rules;");
    println!("# 'all' degrades faster. The shape, not the absolute Gb/s, is the claim.");
}
