//! Figure 10: TCP goodput and network throughput vs TPP sampling frequency
//! (260-byte TPPs, MSS 1240), for 1 / 10 / 20 flows.
//!
//! The paper measured a CPU-bound veth path (~4–6.5 Gb/s baseline); our
//! substrate is a simulated 10 Gb/s link, so absolute numbers are
//! link-bound. The claims under test are the *shape*: network throughput
//! barely moves (TPP add/remove is cheap), application goodput drops
//! proportionally to header overhead as sampling frequency rises.

use tpp_apps::overhead::run_fig10;
use tpp_netsim::MILLIS;

fn main() {
    println!("# Figure 10 — goodput vs TPP sampling frequency (§6.2)");
    println!("{:>7} {:>10} {:>14} {:>14}", "flows", "freq", "goodput Gb/s", "network Gb/s");
    for p in run_fig10(200 * MILLIS, 3) {
        let freq = if p.sample_frequency == 0 {
            "inf".to_string()
        } else {
            p.sample_frequency.to_string()
        };
        println!("{:>7} {:>10} {:>14.2} {:>14.2}", p.n_flows, freq, p.goodput_gbps, p.network_gbps);
    }
}
