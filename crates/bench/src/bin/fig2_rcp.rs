//! Figure 2: RCP* throughput under max-min and proportional fairness on
//! the two-bottleneck topology (flow `a` over both links, `b` and `c` over
//! one each), plus the §2.2 control-overhead numbers.
//!
//! Expected shape: max-min converges all three flows to ~C/2; proportional
//! fairness gives flow `a` ~C/3 and `b`, `c` ~2C/3.

use tpp_apps::rcp::run_rcp_fig2;
use tpp_netsim::SECONDS;

fn main() {
    let duration = 20 * SECONDS;
    for (alpha, name) in [(f64::INFINITY, "Max-min fairness"), (1.0, "Proportional fairness")] {
        let r = run_rcp_fig2(alpha, duration, 7);
        println!("# Figure 2 — {name} (alpha = {alpha})");
        println!("{:>8} {:>10} {:>10} {:>10}", "t(s)", "flow a", "flow b", "flow c");
        let n = r.flows[0].1.len();
        for i in (0..n).step_by(5) {
            let t = r.flows[0].1[i].0;
            let vals: Vec<f64> =
                r.flows.iter().map(|(_, s)| s.get(i).map(|&(_, v)| v).unwrap_or(0.0)).collect();
            println!("{t:>8.1} {:>10.1} {:>10.1} {:>10.1}", vals[0], vals[1], vals[2]);
        }
        println!("\n## steady-state (second half) goodput, Mb/s");
        for (name, mbps) in &r.steady_mbps {
            println!("  flow {name}: {mbps:.1}");
        }
        println!(
            "## TPP control overhead: {:.2}% of data bytes (paper: 1.0-6.0%)\n",
            100.0 * r.control_overhead_fraction
        );
    }
}
