//! Figure 5 / §2.5: the bitmap-sketch measurement refactoring — estimate
//! the number of unique destination IPs traversing each link of a k=4
//! fat-tree, and reproduce the paper's k=64 memory arithmetic.

use tpp_apps::sketch::{fat_tree_sizing, run_sketch};
use tpp_netsim::SECONDS;

fn main() {
    println!("# Figure 5 / §2.5 — bitmap sketch over TPP routing context");
    let r = run_sketch(SECONDS, 1024, 1, 11);
    println!("# {} packets instrumented; {} links observed", r.packets_sent, r.links.len());
    println!("{:>8} {:>6} {:>10} {:>7} {:>8}", "switch", "port", "estimate", "truth", "err%");
    for l in r.links.iter().take(40) {
        let err = if l.truth > 0 {
            100.0 * (l.estimate - l.truth as f64).abs() / l.truth as f64
        } else {
            0.0
        };
        println!(
            "{:>8} {:>6} {:>10.1} {:>7} {:>8.1}",
            l.link.0, l.link.1, l.estimate, l.truth, err
        );
    }
    println!("\nmean relative error: {:.1}%", 100.0 * r.mean_relative_error);
    println!("sketch memory on the busiest host: {} bytes", r.memory_bytes_per_host);

    // Sampling variant: 1-in-10 packets (§2.5: "less than 1% bandwidth
    // overhead").
    let s = run_sketch(SECONDS, 1024, 10, 11);
    println!(
        "with 1-in-10 sampling: mean relative error {:.1}% over {} links",
        100.0 * s.mean_relative_error,
        s.links.len()
    );

    let (servers, links, bytes) = fat_tree_sizing(64, 1024);
    println!(
        "\n# §2.5 sizing: k=64 fat-tree = {servers} servers, {links} core links, \
         {:.0} MB/server of bitmaps (paper: about 8MB/server)",
        bytes as f64 / (1 << 20) as f64
    );
}
