//! Table 3: per-stage hardware latency costs, for the `NetFPGA` and ASIC
//! profiles, plus measured software-execution costs of our TCPU.

use std::time::Instant;

use tpp_core::asm::TppBuilder;
use tpp_core::exec::{execute, ExecOptions, MapBus};
use tpp_core::isa::Opcode;
use tpp_switch::{ASIC, NETFPGA};

fn main() {
    // Bounded by default; CI smoke runs set TPP_BENCH_ITERS lower still.
    // A set-but-invalid value must fail loudly — before any measurement —
    // not silently unbound the smoke run.
    let iters: u64 = match std::env::var("TPP_BENCH_ITERS") {
        Ok(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("TPP_BENCH_ITERS must be a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        Err(_) => 200_000,
    };
    println!("# Table 3 — hardware latency cost model (§6.1)");
    println!("{:>24} {:>12} {:>12}", "task", "NetFPGA", "ASIC");
    type CostCell = fn(&tpp_switch::CostProfile) -> String;
    let rows: [(&str, CostCell); 5] = [
        ("Parsing (cycles)", |p| p.parse_cycles.to_string()),
        ("Memory access (cycles)", |p| p.mem_access_cycles.to_string()),
        ("CSTORE exec (cycles)", |p| p.cstore_exec_cycles.to_string()),
        ("Other exec (cycles)", |p| p.other_exec_cycles.to_string()),
        ("Packet rewrite (cycles)", |p| p.rewrite_cycles.to_string()),
    ];
    for (name, f) in rows {
        println!("{:>24} {:>12} {:>12}", name, f(&NETFPGA), f(&ASIC));
    }
    println!("\n## end-to-end TPP cost (5 instructions)");
    for profile in [NETFPGA, ASIC] {
        let loads = profile.tpp_latency_ns(std::iter::repeat_n(Opcode::Load, 5));
        let worst = profile.worst_case_latency_ns(5);
        println!(
            "{:>12}: 5xLOAD = {} ns, worst case (5xCSTORE) = {} ns, baseline switch latency {} ns \
             -> {:.0}% worst-case overhead",
            profile.name,
            loads,
            worst,
            profile.base_latency_ns,
            100.0 * worst as f64 / profile.base_latency_ns as f64
        );
    }

    // Software TCPU: measured wall-clock per instruction class.
    println!("\n## measured software TCPU (this machine, reference interpreter)");
    let sid = tpp_core::addr::resolve_mnemonic("Switch:SwitchID").unwrap();
    let reg = tpp_core::addr::resolve_mnemonic("Link$0:AppSpecific_0").unwrap();
    let cases = [
        (
            "5x PUSH",
            TppBuilder::stack_mode()
                .push(sid)
                .push(sid)
                .push(sid)
                .push(sid)
                .push(sid)
                .hops(1)
                .build()
                .unwrap(),
        ),
        (
            "5x LOAD",
            TppBuilder::hop_mode(5)
                .load(sid, 0)
                .load(sid, 1)
                .load(sid, 2)
                .load(sid, 3)
                .load(sid, 4)
                .hops(1)
                .build()
                .unwrap(),
        ),
        (
            "5x CSTORE",
            TppBuilder::hop_mode(5)
                .cstore(reg, 0, 1)
                .cstore(reg, 0, 1)
                .cstore(reg, 0, 1)
                .cstore(reg, 0, 1)
                .cstore(reg, 0, 1)
                .hops(1)
                .build()
                .unwrap(),
        ),
    ];
    for (name, tpp) in cases {
        let mut bus = MapBus::with(&[(sid, 7), (reg, 0)]);
        let opts = ExecOptions::default();
        let start = Instant::now();
        for _ in 0..iters {
            let mut t = tpp.clone();
            std::hint::black_box(execute(&mut t, &mut bus, &opts));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:>12}: {ns:.0} ns per 5-instruction TPP (incl. clone)");
    }
}
