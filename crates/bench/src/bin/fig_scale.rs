//! `fig_scale`: wall-clock scaling of the sharded fabric runtime.
//!
//! Sweeps k ∈ {4, 8} fat-trees × {1, 2, 4} shards over an identical
//! timer-driven all-hosts traffic workload (a quarter of the frames carry
//! the §2.1 visibility TPP) and reports wall-clock time per configuration,
//! asserting along the way that every sharded run's `NetStats` digest is
//! bit-identical to the single-threaded reference — the scaling numbers
//! are only meaningful because the runs are provably the same simulation.
//!
//! `TPP_BENCH_ITERS` below `10_000_000` switches to smoke mode (k = 4 only,
//! short horizon) for CI; the digest-equality assertions always run.

use tpp_fabric::scenario::{Cell, Scenario, WorkloadSpec};
use tpp_fabric::{ExecMode, TrafficConfig, TrafficPattern};
use tpp_netsim::{Time, TopologySpec, MILLIS};

fn traffic(horizon: Time) -> TrafficConfig {
    // Heavy load: deep queues grow the event heap, which is where sharding
    // pays even before thread parallelism (smaller per-shard heaps and
    // working sets).
    TrafficConfig {
        frames_per_tick: 16,
        tick_ns: 5_000,
        payload: 256,
        tpp_every: 4,
        stop_at: horizon,
        seed: 8,
        pattern: TrafficPattern::Uniform,
    }
}

fn run_case(k: usize, n_shards: usize, horizon: Time, mode: ExecMode) -> Cell {
    Scenario::new(
        TopologySpec::FatTree { k }.builder().link_mbps(10_000).delay_ns(1000).seed(8),
        WorkloadSpec::custom("fig_scale", traffic(horizon)),
    )
    .shards(n_shards)
    .mode(mode)
    .duration_ns(horizon)
    .run()
}

fn main() {
    let smoke = std::env::var("TPP_BENCH_ITERS")
        .ok()
        .map(|v| v.trim().parse::<u64>().map_or(true, |n| n < 10_000_000))
        .unwrap_or(false);
    let (ks, horizon): (&[usize], Time) =
        if smoke { (&[4], MILLIS / 2) } else { (&[4, 8], MILLIS) };
    let mode = match std::env::var("TPP_FABRIC_MODE").as_deref() {
        Ok("threads") => ExecMode::Threaded,
        Ok("seq") => ExecMode::Sequential,
        _ => ExecMode::Auto,
    };

    println!("# fig_scale — sharded fabric runtime vs single-threaded Network");
    println!("# horizon {} us, mode {:?}, cores {}", horizon / 1000, mode, cores());
    println!(
        "{:>4} {:>7} {:>10} {:>12} {:>10} {:>8}  digest",
        "k", "shards", "delivered", "events", "wall ms", "speedup"
    );
    for &k in ks {
        let mut baseline_ms = 0.0;
        let mut baseline_digest = 0u64;
        for shards in [1usize, 2, 4] {
            let c = run_case(k, shards, horizon, mode);
            if shards == 1 {
                baseline_ms = c.wall_ms as f64;
                baseline_digest = c.digest;
            } else {
                assert_eq!(
                    c.digest, baseline_digest,
                    "k={k} shards={shards}: sharded digest diverged from single-threaded"
                );
            }
            println!(
                "{:>4} {:>7} {:>10} {:>12} {:>10} {:>7.2}x  {:016x}",
                k,
                shards,
                c.delivered,
                c.stats.events_processed,
                c.wall_ms,
                baseline_ms / (c.wall_ms.max(1) as f64),
                c.digest
            );
        }
    }
    println!("# digest equality asserted for every sharded configuration");
}

fn cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
}
