//! `fig_interdc_fct`: inter-DC transfer completion under RCP* over
//! heterogeneous-RTT WAN paths (`tpp_apps::wan`), shallow vs deep border
//! buffers.
//!
//! Site 0 runs one fixed-size transfer to every other site; WAN delay
//! grows with site distance, so the RCP* sender sees a different measured
//! RTT per path and runs each path's control loop on its own timescale.
//! The experiment repeats with the border switches' queues clamped
//! shallow — flow completion must survive both buffer profiles, with the
//! longer-RTT path always finishing later.
//!
//! `TPP_BENCH_ITERS` below `10_000_000` switches to smoke mode (two sites,
//! shorter horizon) for CI; the completion assertions always run.

use tpp_apps::wan::run_interdc;
use tpp_netsim::{Time, MILLIS, SECONDS};

fn main() {
    let smoke = std::env::var("TPP_BENCH_ITERS")
        .ok()
        .map(|v| v.trim().parse::<u64>().map_or(true, |n| n < 10_000_000))
        .unwrap_or(false);
    let (sites, transfer_bytes, duration): (usize, u64, Time) =
        if smoke { (2, 120_000, 1500 * MILLIS) } else { (3, 200_000, 3 * SECONDS) };
    let wan_mbps = 20;

    println!("# fig_interdc_fct — inter-DC RCP* flow completion times");
    println!("# {sites} sites, WAN {wan_mbps} Mb/s, {transfer_bytes} B per transfer");
    println!(
        "{:>14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "buffers", "path", "cap Mb/s", "rate Mb/s", "rtt ms", "fct ms"
    );
    for (queue_bytes, label) in [(0u32, "deep"), (12_000, "shallow")] {
        let r = run_interdc(sites, 4, wan_mbps, queue_bytes, transfer_bytes, duration, 7);
        let mut last_fct = 0.0;
        for p in &r.paths {
            let fct = p.fct_ms.unwrap_or_else(|| {
                panic!("{label}: DC{}->DC{} transfer must complete", p.src_dc, p.dst_dc)
            });
            println!(
                "{:>14} {:>6} {:>10.1} {:>10.2} {:>10.2} {:>10.1}",
                label,
                format!("{}->{}", p.src_dc, p.dst_dc),
                p.capacity_mbps,
                p.rate_mbps,
                p.rtt_est_ms,
                fct
            );
            assert!(
                fct > last_fct,
                "{label}: longer-RTT paths must not finish before shorter ones"
            );
            last_fct = fct;
        }
    }
    println!("# every transfer completed under both buffer profiles");
}
