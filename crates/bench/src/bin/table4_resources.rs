//! Table 4: hardware resource costs of TPP support.
//!
//! Synthesis is impossible without the FPGA toolchain, so this prints (a)
//! the paper's published `NetFPGA` synthesis numbers, and (b) our resource
//! *model*: the execution-unit / crossbar / state accounting the design
//! implies, with the paper's 0.32% ASIC area estimate reproduced.

use tpp_switch::cost::{ResourceModel, NETFPGA_TABLE4};

fn main() {
    println!("# Table 4 — NetFPGA synthesis cost (paper's published numbers)");
    println!("{:>22} {:>10} {:>10} {:>9}", "resource (thousands)", "router", "+TCPU", "%-extra");
    for r in NETFPGA_TABLE4 {
        println!(
            "{:>22} {:>10.1} {:>10.1} {:>8.1}%",
            r.resource,
            r.router,
            r.tcpu_extra,
            100.0 * r.tcpu_extra / r.router
        );
    }

    println!("\n# Resource model of this implementation's pipeline (§3.5, Fig. 8)");
    for (name, m) in [
        (
            "NetFPGA-like (4 pipelines x 4 stages)",
            ResourceModel { n_pipelines: 4, stages_per_pipeline: 4, max_instructions: 5 },
        ),
        (
            "ASIC-like (16 pipelines x 4 stages)",
            ResourceModel { n_pipelines: 16, stages_per_pipeline: 4, max_instructions: 5 },
        ),
    ] {
        println!("  {name}:");
        println!("    execution units        : {}", m.execution_units());
        println!("    crossbar ports         : {}", m.crossbar_ports());
        println!("    per-packet state (bits): {}", m.per_packet_state_bits());
        println!(
            "    est. ASIC area         : {:.2}% (paper: 0.32% for 320 units)",
            m.estimated_asic_area_percent()
        );
    }

    // Software model footprint: bytes of addressable state per switch.
    let mem = tpp_switch::SwitchMemory::new(1, 64, 6);
    let stage_bytes = mem.stages.len() * 256 * 4;
    let link_bytes = mem.links.len() * 256 * 4;
    let queue_bytes: usize = mem.queues.iter().map(|q| q.len() * 8 * 4).sum();
    println!("\n# Addressable state of one simulated 64-port switch");
    println!("    stage SRAM + stats : {stage_bytes} B");
    println!("    link stats blocks  : {link_bytes} B");
    println!("    queue stats blocks : {queue_bytes} B");
}
