//! Figure 4: CONGA* vs ECMP on the 2-spine / 3-leaf topology.
//!
//! Demands: L0 -> L2 at 50 Mb/s pinned to one path; L1 -> L2 at 120 Mb/s
//! (wire rate; ~115 Mb/s of payload) over two paths. The paper's table:
//! ECMP achieves 45 / 115 with max utilization 100; CONGA* 50 / 120 with
//! max utilization 85.

use tpp_apps::conga::{run_conga_fig4, Balancer, Metric};
use tpp_netsim::SECONDS;

fn main() {
    println!("# Figure 4 — congestion-aware load balancing (§2.4)");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10} {:>9}",
        "mode", "metric", "L0->L2 Mb/s", "L1->L2 Mb/s", "max util%", "moves"
    );
    for (mode, name) in [(Balancer::Ecmp, "ECMP"), (Balancer::Conga, "CONGA*")] {
        for (metric, mname) in [(Metric::Max, "max"), (Metric::Sum, "sum")] {
            if mode == Balancer::Ecmp && metric == Metric::Sum {
                continue; // metric is irrelevant for static ECMP
            }
            let r = run_conga_fig4(mode, metric, 4 * SECONDS, 1);
            println!(
                "{:>8} {:>8} {:>12.1} {:>12.1} {:>10.1} {:>9}",
                name, mname, r.l0_mbps, r.l1_mbps, r.max_util_percent, r.path_switches
            );
        }
    }
    println!("\n# paper: ECMP 45/115 @100% max util; CONGA* 50/120 @85% max util");
    println!("# (our demands are wire-rate, so full delivery = ~48/~115 of payload)");
}
