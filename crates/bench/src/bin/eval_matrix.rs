//! `eval_matrix`: the evaluation matrix — scenario × topology × shard count
//! from one binary.
//!
//! Sweeps every topology family in the matrix against every traffic
//! pattern at shard counts {1, 2, 4}, printing one JSON object per cell
//! (JSON-lines on stdout, or one `.json` file per cell with `--out DIR`)
//! and asserting at every multi-shard cell that the `NetStats` digest is
//! bit-identical to the cell's single-threaded reference — the matrix is
//! only meaningful because every parallel run is provably the same
//! simulation. A churn column (fat-tree × uniform × rerouting link flap)
//! runs at every shard count with the same digest assertion: chaos under
//! churn replays bit-for-bit too. A WAN column (two-site `MultiSite` ×
//! {fan-out, inter-DC} patterns, every frame crossing a 250 µs WAN link)
//! runs at every shard count — including smoke — with the same
//! assertion; since the locality partitioner glues each site into one
//! shard, these cells also exercise the large-lookahead epoch schedule.
//!
//! ```text
//! eval_matrix [--smoke] [--speedup N] [--out DIR] [--cell T:W:S]
//!   --smoke       2 topologies × 2 workloads × {1, 2} shards (CI-sized)
//!   --speedup N   fidelity knob: simulate 1/N of each cell's horizon
//!   --out DIR     also write each cell to DIR/<topology>_<workload>_xS.json
//!   --cell T:W:S  run exactly one cell, e.g. fat_tree4:uniform:2
//! ```
//!
//! `TPP_BENCH_ITERS` below `10_000_000` forces `--smoke`, mirroring the
//! other bench bins.

use std::collections::HashMap;

use tpp_fabric::scenario::{Cell, Scenario, WorkloadSpec};
use tpp_netsim::{ChurnSpec, TopologySpec, MILLIS};

/// The topology axis: the classic fabrics plus the builder's new families.
fn topologies(smoke: bool) -> Vec<TopologySpec> {
    if smoke {
        return vec![
            TopologySpec::FatTree { k: 4 },
            TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 2 },
        ];
    }
    vec![
        TopologySpec::FatTree { k: 4 },
        TopologySpec::OversubFatTree { k: 4, oversub: 4 },
        TopologySpec::AsymFatTree { k: 4 },
        TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 2 },
        TopologySpec::Jellyfish { switches: 10, degree: 4, hosts_per_switch: 2 },
    ]
}

/// The workload axis: every traffic pattern the generator knows.
fn workloads(smoke: bool) -> Vec<WorkloadSpec> {
    let all = vec![
        WorkloadSpec::uniform(),
        WorkloadSpec::heavy_tailed(),
        WorkloadSpec::incast(2),
        WorkloadSpec::shuffle(),
    ];
    if smoke {
        all.into_iter().take(2).collect()
    } else {
        all
    }
}

/// The WAN column's fabric: two sites whose border switches are joined
/// by 250 µs links — multi-ms-class relative to the 1 µs intra-site
/// links, so the cells mix both timescales in one event schedule.
fn wan_topology() -> TopologySpec {
    TopologySpec::MultiSite {
        sites: 2,
        site_k: 4,
        wan_delay_ns: 250_000,
        wan_delay_step_ns: 0,
        wan_mbps: 400,
        wan_site_mbps: Vec::new(),
        wan_queue_bytes: 0,
    }
}

/// The WAN column's patterns: both cross sites on every frame.
fn wan_workloads() -> Vec<WorkloadSpec> {
    vec![WorkloadSpec::fan_out(), WorkloadSpec::inter_dc(2)]
}

fn shard_counts(smoke: bool) -> &'static [usize] {
    if smoke {
        &[1, 2]
    } else {
        &[1, 2, 4]
    }
}

struct Args {
    smoke: bool,
    speedup: u64,
    out: Option<String>,
    cell: Option<(String, String, usize)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: eval_matrix [--smoke] [--speedup N] [--out DIR] [--cell TOPO:WORKLOAD:SHARDS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { smoke: false, speedup: 1, out: None, cell: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--speedup" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.speedup = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => args.out = Some(it.next().unwrap_or_else(|| usage())),
            "--cell" => {
                let v = it.next().unwrap_or_else(|| usage());
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    usage();
                }
                let shards = parts[2].parse().unwrap_or_else(|_| usage());
                args.cell = Some((parts[0].to_string(), parts[1].to_string(), shards));
            }
            _ => usage(),
        }
    }
    // CI smoke: mirror the other bins' TPP_BENCH_ITERS convention.
    if std::env::var("TPP_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|n| n < 10_000_000)
    {
        args.smoke = true;
    }
    args
}

fn emit(cell: &Cell, out: &Option<String>) {
    let json = cell.to_json();
    println!("{json}");
    if let Some(dir) = out {
        let churn = if cell.churn == "none" { String::new() } else { format!("_{}", cell.churn) };
        let path =
            format!("{dir}/{}_{}{churn}_x{}.json", cell.topology, cell.workload, cell.shards);
        std::fs::create_dir_all(dir).expect("create --out dir");
        std::fs::write(&path, format!("{json}\n")).expect("write cell json");
    }
}

fn main() {
    let args = parse_args();
    let duration = if args.smoke { 2 * MILLIS } else { 8 * MILLIS };

    let scenario = |spec: &TopologySpec, w: &WorkloadSpec, shards: usize| {
        Scenario::new(spec.clone().builder(), w.clone())
            .shards(shards)
            .duration_ns(duration)
            .speedup(args.speedup)
    };

    if let Some((topo_label, w_label, shards)) = &args.cell {
        let spec = topologies(args.smoke)
            .into_iter()
            .chain([wan_topology()])
            .find(|t| &t.label() == topo_label)
            .unwrap_or_else(|| {
                eprintln!("unknown topology {topo_label:?} (try e.g. fat_tree4)");
                std::process::exit(2);
            });
        let w = workloads(args.smoke)
            .into_iter()
            .chain(wan_workloads())
            .find(|w| &w.name == w_label)
            .unwrap_or_else(|| {
                eprintln!("unknown workload {w_label:?} (try e.g. uniform)");
                std::process::exit(2);
            });
        emit(&scenario(&spec, &w, *shards).run(), &args.out);
        return;
    }

    // Full sweep: shard count 1 first per (topology, workload) so every
    // multi-shard digest has its reference in hand.
    let mut cells = 0usize;
    let mut reference: HashMap<(String, String), u64> = HashMap::new();
    for spec in topologies(args.smoke) {
        for w in workloads(args.smoke) {
            for &shards in shard_counts(args.smoke) {
                let cell = scenario(&spec, &w, shards).run();
                emit(&cell, &args.out);
                cells += 1;
                let key = (cell.topology.clone(), cell.workload.clone());
                if shards == 1 {
                    reference.insert(key, cell.digest);
                } else {
                    let want = reference[&key];
                    assert_eq!(
                        cell.digest, want,
                        "digest diverged: {}:{} at {} shards",
                        cell.topology, cell.workload, shards
                    );
                }
            }
        }
    }
    // The chaos column: one churned cell per shard count — fat-tree ×
    // uniform × rerouting link flap — digest-asserted against its own
    // single-threaded reference, exactly like the clean cells. Churn is a
    // reconfiguration *plan* carried through `Network::split`, so the
    // flapping fabric must replay bit-for-bit too.
    let churn = ChurnSpec::LinkFlap {
        fraction: 0.3,
        period_ns: 500_000,
        down_ns: 100_000,
        seed: 7,
        reroute: true,
    };
    let mut churn_ref: Option<u64> = None;
    for &shards in shard_counts(args.smoke) {
        let cell = scenario(&TopologySpec::FatTree { k: 4 }, &WorkloadSpec::uniform(), shards)
            .churn(churn.clone())
            .run();
        emit(&cell, &args.out);
        cells += 1;
        match churn_ref {
            None => churn_ref = Some(cell.digest),
            Some(want) => assert_eq!(
                cell.digest, want,
                "churn digest diverged: {}:{}:{} at {} shards",
                cell.topology, cell.workload, cell.churn, shards
            ),
        }
    }
    // The WAN column: cross-site cells on the two-site fabric — patterns
    // whose every frame crosses a 250 µs WAN link — digest-asserted per
    // shard count like the rest. The locality partitioner glues each site
    // into one shard, so the multi-shard cells cut only at WAN links and
    // run the epoch schedule at the large WAN lookahead.
    for w in wan_workloads() {
        let mut wan_ref: Option<u64> = None;
        for &shards in shard_counts(args.smoke) {
            let cell = scenario(&wan_topology(), &w, shards).run();
            emit(&cell, &args.out);
            cells += 1;
            match wan_ref {
                None => wan_ref = Some(cell.digest),
                Some(want) => assert_eq!(
                    cell.digest, want,
                    "WAN digest diverged: {}:{} at {} shards",
                    cell.topology, cell.workload, shards
                ),
            }
        }
    }
    eprintln!(
        "eval_matrix: {cells} cells (incl. churn + WAN), every multi-shard \
         digest matched its single-threaded reference"
    );
}
