//! # tpp-bench — the reproduction harness
//!
//! One binary per table/figure in the paper's evaluation (see DESIGN.md §5
//! for the experiment index), plus criterion micro-benchmarks:
//!
//! ```text
//! cargo run -p tpp-bench --release --bin fig1_microburst
//! cargo run -p tpp-bench --release --bin fig2_rcp
//! cargo run -p tpp-bench --release --bin fig4_conga
//! cargo run -p tpp-bench --release --bin fig5_sketch
//! cargo run -p tpp-bench --release --bin fig10_sampling
//! cargo run -p tpp-bench --release --bin table3_latency
//! cargo run -p tpp-bench --release --bin table4_resources
//! cargo run -p tpp-bench --release --bin table5_filters
//! cargo bench -p tpp-bench
//! ```

#![forbid(unsafe_code)]

/// Render a simple fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}
