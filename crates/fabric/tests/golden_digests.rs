//! Golden-digest differential test for the layered engine refactor.
//!
//! The [`tpp_netsim::NetStats::digest`] values below were recorded on the
//! pre-refactor engine (`BinaryHeap` event queue, one-frame-at-a-time
//! `Switch::receive`) for twelve scenarios: {star, leaf-spine, fat-tree(4)}
//! × {clean, link faults} × {single-threaded, 4 fabric shards}. The
//! timing-wheel scheduler, the LinkFabric/NodeStore decomposition, and the
//! batched `receive_batch`/`dequeue_batch` delivery path must reproduce
//! every digest bit-for-bit — any divergence in a timestamp, a route, a
//! fault draw, or a single TPP result word changes the value.
//!
//! To re-record after an *intentional* behavior change, run with
//! `GOLDEN_PRINT=1 cargo test -p tpp-fabric --test golden_digests -- --nocapture`
//! and update the table (and say why in the commit message).

use std::sync::atomic::Ordering;

use tpp_fabric::{install_traffic, ExecMode, Fabric, PartitionStrategy, TrafficConfig};
use tpp_netsim::{NodeId, Topology, TopologySpec, MILLIS};

const HORIZON: u64 = 8 * MILLIS;

fn traffic() -> TrafficConfig {
    TrafficConfig { stop_at: 6 * MILLIS, ..TrafficConfig::default() }
}

struct Scenario {
    name: &'static str,
    build: fn() -> Topology,
    /// `(node, port, drop_prob, corrupt_prob)` applied before any split.
    faults: &'static [(u32, u8, f64, f64)],
    strategy: PartitionStrategy,
}

fn build(s: &Scenario) -> Topology {
    let mut t = (s.build)();
    for &(node, port, drop, corrupt) in s.faults {
        t.net.set_link_faults(NodeId(node), port, drop, corrupt);
    }
    t
}

fn run_single(s: &Scenario) -> u64 {
    let mut t = build(s);
    let hosts = t.hosts.clone();
    let delivered = install_traffic(&mut t.net, &hosts, &traffic());
    t.net.run_until(HORIZON);
    assert!(delivered.load(Ordering::Relaxed) > 100, "{}: workload too small", s.name);
    t.net.stats.digest()
}

fn run_sharded(s: &Scenario, n_shards: usize) -> u64 {
    let mut t = build(s);
    let hosts = t.hosts.clone();
    let _ = install_traffic(&mut t.net, &hosts, &traffic());
    let mut fabric = Fabric::new(t.net, n_shards, s.strategy);
    fabric.set_mode(ExecMode::Sequential);
    fabric.run_until(HORIZON);
    fabric.stats().digest()
}

/// `(scenario, digest at 1 shard, digest at 4 shards)` — both columns were
/// recorded on the pre-refactor engine and (by PR 3's determinism tests)
/// agree with each other.
const GOLDEN: &[(Scenario, u64, u64)] = &[
    (
        Scenario {
            name: "star/clean",
            build: || {
                TopologySpec::Star { hosts: 8 }
                    .builder()
                    .host_mbps(1000)
                    .delay_ns(1000)
                    .seed(11)
                    .build()
            },
            faults: &[],
            strategy: PartitionStrategy::RoundRobin,
        },
        GOLDEN_STAR_CLEAN_1,
        GOLDEN_STAR_CLEAN_4,
    ),
    (
        Scenario {
            name: "star/faults",
            build: || {
                TopologySpec::Star { hosts: 8 }
                    .builder()
                    .host_mbps(1000)
                    .delay_ns(1000)
                    .seed(11)
                    .build()
            },
            faults: &[(0, 0, 0.2, 0.05), (0, 3, 0.1, 0.0)],
            strategy: PartitionStrategy::RoundRobin,
        },
        GOLDEN_STAR_FAULTS_1,
        GOLDEN_STAR_FAULTS_4,
    ),
    (
        Scenario {
            name: "leaf_spine/clean",
            build: || {
                TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 2 }
                    .builder()
                    .link_mbps(1000)
                    .host_mbps(1000)
                    .delay_ns(1000)
                    .seed(12)
                    .build()
            },
            faults: &[],
            strategy: PartitionStrategy::Locality,
        },
        GOLDEN_LEAF_SPINE_CLEAN_1,
        GOLDEN_LEAF_SPINE_CLEAN_4,
    ),
    (
        Scenario {
            name: "leaf_spine/faults",
            build: || {
                TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 2 }
                    .builder()
                    .link_mbps(1000)
                    .host_mbps(1000)
                    .delay_ns(1000)
                    .seed(12)
                    .build()
            },
            faults: &[(0, 0, 0.2, 0.05), (1, 1, 0.1, 0.0)],
            strategy: PartitionStrategy::Locality,
        },
        GOLDEN_LEAF_SPINE_FAULTS_1,
        GOLDEN_LEAF_SPINE_FAULTS_4,
    ),
    (
        Scenario {
            name: "fat_tree4/clean",
            build: || {
                TopologySpec::FatTree { k: 4 }
                    .builder()
                    .link_mbps(1000)
                    .delay_ns(1000)
                    .seed(13)
                    .build()
            },
            faults: &[],
            strategy: PartitionStrategy::Locality,
        },
        GOLDEN_FAT_TREE_CLEAN_1,
        GOLDEN_FAT_TREE_CLEAN_4,
    ),
    (
        Scenario {
            name: "fat_tree4/faults",
            build: || {
                TopologySpec::FatTree { k: 4 }
                    .builder()
                    .link_mbps(1000)
                    .delay_ns(1000)
                    .seed(13)
                    .build()
            },
            // Degrade one core uplink and one edge downlink.
            faults: &[(0, 0, 0.15, 0.02), (12, 2, 0.1, 0.0)],
            strategy: PartitionStrategy::Locality,
        },
        GOLDEN_FAT_TREE_FAULTS_1,
        GOLDEN_FAT_TREE_FAULTS_4,
    ),
];

const GOLDEN_STAR_CLEAN_1: u64 = 0xF11C_1AE0_79FB_127B;
const GOLDEN_STAR_CLEAN_4: u64 = 0xF11C_1AE0_79FB_127B;
const GOLDEN_STAR_FAULTS_1: u64 = 0x3E87_1779_81FF_4B5E;
const GOLDEN_STAR_FAULTS_4: u64 = 0x3E87_1779_81FF_4B5E;
const GOLDEN_LEAF_SPINE_CLEAN_1: u64 = 0x4C24_3069_F999_FF0A;
const GOLDEN_LEAF_SPINE_CLEAN_4: u64 = 0x4C24_3069_F999_FF0A;
const GOLDEN_LEAF_SPINE_FAULTS_1: u64 = 0x4D88_FE9E_7F55_8AA2;
const GOLDEN_LEAF_SPINE_FAULTS_4: u64 = 0x4D88_FE9E_7F55_8AA2;
const GOLDEN_FAT_TREE_CLEAN_1: u64 = 0xEECD_4E22_7828_0281;
const GOLDEN_FAT_TREE_CLEAN_4: u64 = 0xEECD_4E22_7828_0281;
const GOLDEN_FAT_TREE_FAULTS_1: u64 = 0x2D4C_9941_7FA7_D594;
const GOLDEN_FAT_TREE_FAULTS_4: u64 = 0x2D4C_9941_7FA7_D594;

#[test]
fn digests_match_pre_refactor_engine() {
    let record = std::env::var("GOLDEN_PRINT").is_ok();
    for (scenario, want_1, want_4) in GOLDEN {
        let got_1 = run_single(scenario);
        let got_4 = run_sharded(scenario, 4);
        if record {
            println!("{}: 1-shard 0x{got_1:016X}  4-shard 0x{got_4:016X}", scenario.name);
            continue;
        }
        assert_eq!(
            got_1, *want_1,
            "{}: single-threaded digest diverged from the pre-refactor engine",
            scenario.name
        );
        assert_eq!(
            got_4, *want_4,
            "{}: 4-shard digest diverged from the pre-refactor engine",
            scenario.name
        );
    }
}
