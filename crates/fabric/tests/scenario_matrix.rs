//! Scenario-level differential determinism: the same [`Scenario`] run on
//! the single-threaded `Network` and on 2- and 4-shard fabrics must agree
//! on the `NetStats` digest — for every traffic pattern the workload
//! layer knows, not just the uniform one the older determinism tests
//! cover. Plus the contract details of the cell output itself (JSON
//! shape, speedup semantics).

use tpp_fabric::partition::lookahead;
use tpp_fabric::scenario::{Cell, Scenario, WorkloadSpec};
use tpp_fabric::{partition, PartitionStrategy};
use tpp_netsim::{TopologySpec, MILLIS};

fn run(w: WorkloadSpec, shards: usize) -> Cell {
    Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        w,
    )
    .shards(shards)
    .duration_ns(2 * MILLIS)
    .run()
}

fn assert_pattern_shards_match(w: WorkloadSpec) {
    let reference = run(w.clone(), 1);
    assert!(reference.stats.frames_delivered > 0, "{}: workload must deliver", w.name);
    for shards in [2usize, 4] {
        let got = run(w.clone(), shards);
        assert_eq!(
            got.digest, reference.digest,
            "{}: digest diverged at {shards} shards (single={:?} sharded={:?})",
            w.name, reference.stats, got.stats
        );
    }
}

#[test]
fn uniform_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::uniform());
}

#[test]
fn heavy_tailed_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::heavy_tailed());
}

#[test]
fn incast_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::incast(2));
}

#[test]
fn shuffle_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::shuffle());
}

/// A two-site WAN fabric for the cross-site cells: 250 µs WAN delay is
/// multi-ms-class relative to the 2 ms test horizon, so frames actually
/// cross during the run.
fn multi_site() -> TopologySpec {
    TopologySpec::MultiSite {
        sites: 2,
        site_k: 4,
        wan_delay_ns: 250_000,
        wan_delay_step_ns: 0,
        wan_mbps: 400,
        wan_site_mbps: Vec::new(),
        wan_queue_bytes: 0,
    }
}

fn run_wan(w: WorkloadSpec, shards: usize) -> Cell {
    Scenario::new(multi_site().builder().link_mbps(1000).delay_ns(1000).seed(5), w)
        .shards(shards)
        .duration_ns(2 * MILLIS)
        .run()
}

fn assert_wan_shards_match(w: WorkloadSpec) {
    let reference = run_wan(w.clone(), 1);
    assert!(reference.stats.frames_delivered > 0, "{}: workload must deliver", w.name);
    for shards in [2usize, 4] {
        let got = run_wan(w.clone(), shards);
        assert_eq!(
            got.digest, reference.digest,
            "{}: WAN digest diverged at {shards} shards",
            w.name
        );
    }
}

#[test]
fn fan_out_scenario_matches_across_shard_counts() {
    assert_wan_shards_match(WorkloadSpec::fan_out());
}

#[test]
fn inter_dc_scenario_matches_across_shard_counts() {
    assert_wan_shards_match(WorkloadSpec::inter_dc(2));
}

#[test]
fn wan_links_are_natural_shard_cuts_with_large_lookahead() {
    // Locality partitioning at 2 shards on a 2-site fabric must cut at
    // the WAN links — and the conservative lookahead must then be the
    // WAN delay, orders of magnitude above the intra-site 1 µs links.
    let t = multi_site().builder().link_mbps(1000).delay_ns(1000).seed(5).build();
    let assignment = partition(&t.net, 2, PartitionStrategy::Locality);
    let mut cut_delays = Vec::new();
    for (a, _, b, _, spec) in t.net.links_iter() {
        if assignment[a.0 as usize] != assignment[b.0 as usize] {
            cut_delays.push(spec.delay_ns);
        }
    }
    assert!(!cut_delays.is_empty(), "two shards must cut somewhere");
    assert!(
        cut_delays.iter().all(|&d| d == 250_000),
        "locality partitioning should cut only WAN links, cut delays: {cut_delays:?}"
    );
    assert_eq!(
        lookahead(&t.net, &assignment),
        Some(250_000),
        "the sharded runtime's lookahead window must be the WAN delay"
    );
}

#[test]
fn round_robin_partitioning_matches_too() {
    // The adversarial partition under the adversarial workload.
    let w = WorkloadSpec::incast(2);
    let reference = run(w.clone(), 1);
    let got = Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        w,
    )
    .shards(4)
    .strategy(PartitionStrategy::RoundRobin)
    .duration_ns(2 * MILLIS)
    .run();
    assert_eq!(got.digest, reference.digest, "round-robin digest diverged");
}

#[test]
fn speedup_shrinks_the_horizon() {
    let full = run(WorkloadSpec::uniform(), 1);
    let fast = Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        WorkloadSpec::uniform(),
    )
    .duration_ns(2 * MILLIS)
    .speedup(2)
    .run();
    assert_eq!(fast.duration_ns, MILLIS, "speedup 2 halves the simulated horizon");
    assert!(
        fast.stats.events_processed < full.stats.events_processed,
        "shorter horizon must process fewer events"
    );
    assert!(fast.stats.frames_delivered > 0, "but the cell still simulates");
}

#[test]
fn cell_json_has_the_schema_fields() {
    let cell = run(WorkloadSpec::uniform(), 2);
    let json = cell.to_json();
    for key in [
        "\"schema\":1",
        "\"topology\":\"fat_tree4\"",
        "\"workload\":\"uniform\"",
        "\"shards\":2",
        "\"speedup\":1",
        "\"duration_ns\":2000000",
        "\"frames_delivered\":",
        "\"rx_batches\":",
        "\"rx_batch_frames\":",
        "\"rx_batch_max\":",
        "\"plan_cache_hits\":",
        "\"plan_cache_misses\":",
        "\"plan_cache_evictions\":",
        "\"digest\":\"0x",
        "\"trace\":\"0x",
        "\"wall_ms\":",
    ] {
        assert!(json.contains(key), "cell JSON missing {key}: {json}");
    }
    assert!(json.starts_with('{') && json.ends_with('}'));
}

#[test]
fn batched_execution_engages_and_is_observable() {
    // The batching/plan-cache efficacy counters must actually move on a
    // real cell (fat-tree, TPP-stamping uniform workload): delivery
    // batches form, and the plan cache absorbs repeated probe programs.
    let cell = run(WorkloadSpec::uniform(), 1);
    let s = &cell.stats;
    assert!(s.rx_batches > 0, "no delivery batches formed: {s:?}");
    assert!(s.rx_batch_frames >= s.rx_batches, "batch frame total below batch count: {s:?}");
    assert!(s.rx_batch_max >= 1, "max batch size unset: {s:?}");
    assert!(s.plan_cache_misses > 0, "plan cache never consulted: {s:?}");
    assert!(
        s.plan_cache_hits > s.plan_cache_misses,
        "repeated probe programs should mostly hit the plan cache: {s:?}"
    );
}
