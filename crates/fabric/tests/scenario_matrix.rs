//! Scenario-level differential determinism: the same [`Scenario`] run on
//! the single-threaded `Network` and on 2- and 4-shard fabrics must agree
//! on the `NetStats` digest — for every traffic pattern the workload
//! layer knows, not just the uniform one the older determinism tests
//! cover. Plus the contract details of the cell output itself (JSON
//! shape, speedup semantics).

use tpp_fabric::scenario::{Cell, Scenario, WorkloadSpec};
use tpp_fabric::PartitionStrategy;
use tpp_netsim::{TopologySpec, MILLIS};

fn run(w: WorkloadSpec, shards: usize) -> Cell {
    Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        w,
    )
    .shards(shards)
    .duration_ns(2 * MILLIS)
    .run()
}

fn assert_pattern_shards_match(w: WorkloadSpec) {
    let reference = run(w.clone(), 1);
    assert!(reference.stats.frames_delivered > 0, "{}: workload must deliver", w.name);
    for shards in [2usize, 4] {
        let got = run(w.clone(), shards);
        assert_eq!(
            got.digest, reference.digest,
            "{}: digest diverged at {shards} shards (single={:?} sharded={:?})",
            w.name, reference.stats, got.stats
        );
    }
}

#[test]
fn uniform_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::uniform());
}

#[test]
fn heavy_tailed_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::heavy_tailed());
}

#[test]
fn incast_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::incast(2));
}

#[test]
fn shuffle_scenario_matches_across_shard_counts() {
    assert_pattern_shards_match(WorkloadSpec::shuffle());
}

#[test]
fn round_robin_partitioning_matches_too() {
    // The adversarial partition under the adversarial workload.
    let w = WorkloadSpec::incast(2);
    let reference = run(w.clone(), 1);
    let got = Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        w,
    )
    .shards(4)
    .strategy(PartitionStrategy::RoundRobin)
    .duration_ns(2 * MILLIS)
    .run();
    assert_eq!(got.digest, reference.digest, "round-robin digest diverged");
}

#[test]
fn speedup_shrinks_the_horizon() {
    let full = run(WorkloadSpec::uniform(), 1);
    let fast = Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        WorkloadSpec::uniform(),
    )
    .duration_ns(2 * MILLIS)
    .speedup(2)
    .run();
    assert_eq!(fast.duration_ns, MILLIS, "speedup 2 halves the simulated horizon");
    assert!(
        fast.stats.events_processed < full.stats.events_processed,
        "shorter horizon must process fewer events"
    );
    assert!(fast.stats.frames_delivered > 0, "but the cell still simulates");
}

#[test]
fn cell_json_has_the_schema_fields() {
    let cell = run(WorkloadSpec::uniform(), 2);
    let json = cell.to_json();
    for key in [
        "\"schema\":1",
        "\"topology\":\"fat_tree4\"",
        "\"workload\":\"uniform\"",
        "\"shards\":2",
        "\"speedup\":1",
        "\"duration_ns\":2000000",
        "\"frames_delivered\":",
        "\"digest\":\"0x",
        "\"trace\":\"0x",
        "\"wall_ms\":",
    ] {
        assert!(json.contains(key), "cell JSON missing {key}: {json}");
    }
    assert!(json.starts_with('{') && json.ends_with('}'));
}
