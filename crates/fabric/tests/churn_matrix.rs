//! Churn differential determinism: a churned scenario — links flapping,
//! routes detouring, faults toggling mid-run — must replay bit-for-bit
//! across shard counts. The reconfiguration plan is data carried through
//! `Network::split`, delivered by the shared event queue, so every cell
//! here asserts digest equality at 1, 2, and 4 shards, plus cross-shard
//! agreement of the per-cause drop and violation counters (which live
//! outside the digest).

use tpp_fabric::scenario::{Cell, Scenario, WorkloadSpec};
use tpp_netsim::{ChurnSpec, NetStats, ReconfigAction, TopologySpec, MILLIS};

fn run(churn: ChurnSpec, shards: usize) -> Cell {
    Scenario::new(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5),
        WorkloadSpec::uniform(),
    )
    .churn(churn)
    .shards(shards)
    .duration_ns(2 * MILLIS)
    .run()
}

fn assert_cause_counters_match(reference: &NetStats, got: &NetStats, label: &str) {
    assert_eq!(got.drops_ttl_expired, reference.drops_ttl_expired, "{label}: ttl drops");
    assert_eq!(got.drops_no_route, reference.drops_no_route, "{label}: no-route drops");
    assert_eq!(got.drops_queue_full, reference.drops_queue_full, "{label}: queue drops");
    assert_eq!(got.drops_malformed, reference.drops_malformed, "{label}: malformed drops");
    assert_eq!(got.violations_loop, reference.violations_loop, "{label}: loop violations");
    assert_eq!(
        got.violations_blackhole, reference.violations_blackhole,
        "{label}: blackhole violations"
    );
    assert_eq!(got.violations_path, reference.violations_path, "{label}: path violations");
}

fn assert_churn_shards_match(churn: ChurnSpec) {
    let label = churn.label();
    let reference = run(churn.clone(), 1);
    assert!(reference.stats.frames_delivered > 0, "{label}: cell must deliver");
    assert!(reference.stats.reconfigs_applied > 0, "{label}: churn must actually fire");
    for shards in [2usize, 4] {
        let got = run(churn.clone(), shards);
        assert_eq!(
            got.digest, reference.digest,
            "{label}: digest diverged at {shards} shards (single={:?} sharded={:?})",
            reference.stats, got.stats
        );
        assert_cause_counters_match(&reference.stats, &got.stats, label);
    }
}

#[test]
fn link_flap_churn_matches_across_shard_counts() {
    assert_churn_shards_match(ChurnSpec::LinkFlap {
        fraction: 0.3,
        period_ns: 500_000,
        down_ns: 100_000,
        seed: 7,
        reroute: false,
    });
}

#[test]
fn rerouting_link_flap_churn_matches_across_shard_counts() {
    assert_churn_shards_match(ChurnSpec::LinkFlap {
        fraction: 0.3,
        period_ns: 500_000,
        down_ns: 100_000,
        seed: 7,
        reroute: true,
    });
}

#[test]
fn explicit_plan_churn_matches_across_shard_counts() {
    // A hand-written plan poking all the action kinds: degrade one edge
    // uplink, toggle faults on it, and withdraw/restore a host route on a
    // fat-tree edge switch.
    let t = TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(5).build();
    let edge = t.switches[0];
    let host = t.hosts[0];
    let dst = t.net.host(host).ip;
    let uplink = t
        .net
        .neighbors_iter(edge)
        .find(|&(_, peer)| t.net.is_switch(peer))
        .map(|(p, _)| p)
        .expect("edge has a switch uplink");
    let plan = vec![
        (
            300_000,
            ReconfigAction::LinkDegrade {
                node: edge,
                port: uplink,
                rate_mbps: 100,
                delay_ns: 2000,
            },
        ),
        (
            600_000,
            ReconfigAction::LinkFaults {
                node: edge,
                port: uplink,
                drop_prob: 0.2,
                corrupt_prob: 0.0,
            },
        ),
        (900_000, ReconfigAction::RouteWithdraw { switch: edge, dst }),
        (
            1_200_000,
            ReconfigAction::LinkFaults {
                node: edge,
                port: uplink,
                drop_prob: 0.0,
                corrupt_prob: 0.0,
            },
        ),
    ];
    assert_churn_shards_match(ChurnSpec::Plan(plan));
}

#[test]
fn churned_cell_json_carries_the_churn_label() {
    let cell = run(
        ChurnSpec::LinkFlap {
            fraction: 0.3,
            period_ns: 500_000,
            down_ns: 100_000,
            seed: 7,
            reroute: false,
        },
        2,
    );
    let json = cell.to_json();
    assert!(json.contains("\"churn\":\"link_flap\""), "{json}");
    assert!(json.contains("\"reconfigs\":"), "{json}");
    assert!(json.contains("\"violations\":"), "{json}");
}
