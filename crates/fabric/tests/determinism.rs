//! Differential determinism: for identical seeds and scenarios, the
//! sharded fabric must produce the exact same `NetStats` digest as the
//! single-threaded `Network` loop — on every topology, at every shard
//! count, under both executors. The digest folds an FNV hash of every
//! frame at every hop arrival, so one reordered TPP read or one divergent
//! fault draw anywhere in the run changes it.

use std::sync::atomic::Ordering;

use tpp_fabric::{install_traffic, ExecMode, Fabric, PartitionStrategy, TrafficConfig};
use tpp_netsim::{NetStats, Topology, TopologySpec, MILLIS};

/// Sim horizon: long enough for thousands of multi-hop deliveries and a
/// few utilization intervals, short enough for quick tests.
const HORIZON: u64 = 8 * MILLIS;

fn traffic() -> TrafficConfig {
    TrafficConfig { stop_at: 6 * MILLIS, ..TrafficConfig::default() }
}

fn single(build: &dyn Fn() -> Topology) -> NetStats {
    let mut t = build();
    let hosts = t.hosts.clone();
    let delivered = install_traffic(&mut t.net, &hosts, &traffic());
    t.net.run_until(HORIZON);
    assert!(delivered.load(Ordering::Relaxed) > 100, "workload must generate real traffic");
    t.net.stats
}

fn sharded(
    build: &dyn Fn() -> Topology,
    n_shards: usize,
    strategy: PartitionStrategy,
    mode: ExecMode,
) -> NetStats {
    let mut t = build();
    let hosts = t.hosts.clone();
    let _delivered = install_traffic(&mut t.net, &hosts, &traffic());
    let mut fabric = Fabric::new(t.net, n_shards, strategy);
    fabric.set_mode(mode);
    fabric.run_until(HORIZON);
    fabric.stats()
}

fn assert_differential(build: &dyn Fn() -> Topology, strategy: PartitionStrategy, label: &str) {
    let reference = single(build);
    assert!(reference.frames_delivered > 0);
    for n_shards in [2usize, 4] {
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let got = sharded(build, n_shards, strategy, mode);
            assert_eq!(
                got.digest(),
                reference.digest(),
                "{label}: digest diverged at {n_shards} shards ({mode:?}); \
                 single={reference:?} sharded={got:?}"
            );
            // The counts behind the digest agree too (digest() already
            // covers them; this gives readable failures).
            assert_eq!(got.frames_delivered, reference.frames_delivered, "{label}");
            assert_eq!(got.trace, reference.trace, "{label}");
        }
    }
}

#[test]
fn star_matches_single_threaded() {
    // A star has one switch, so Locality would collapse to one shard;
    // RoundRobin forces hosts off the hub's shard and every frame across a
    // boundary — maximum cross-shard stress.
    assert_differential(
        &|| {
            TopologySpec::Star { hosts: 8 }
                .builder()
                .host_mbps(1000)
                .delay_ns(1000)
                .seed(11)
                .build()
        },
        PartitionStrategy::RoundRobin,
        "star",
    );
}

#[test]
fn leaf_spine_matches_single_threaded() {
    assert_differential(
        &|| {
            TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 2 }
                .builder()
                .link_mbps(1000)
                .host_mbps(1000)
                .delay_ns(1000)
                .seed(12)
                .build()
        },
        PartitionStrategy::Locality,
        "leaf-spine",
    );
}

#[test]
fn fat_tree_matches_single_threaded() {
    assert_differential(
        &|| {
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(13).build()
        },
        PartitionStrategy::Locality,
        "fat-tree",
    );
}

#[test]
fn fat_tree_round_robin_matches_single_threaded() {
    // The adversarial partition: no locality at all, every link a
    // potential shard crossing.
    assert_differential(
        &|| {
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(14).build()
        },
        PartitionStrategy::RoundRobin,
        "fat-tree/round-robin",
    );
}

#[test]
fn faults_draw_identically_across_shardings() {
    // Per-link fault streams must make drop/corruption decisions identical
    // under any partitioning. Degrade two leaf-spine fabric links before
    // splitting.
    let build = || {
        let mut t = TopologySpec::LeafSpine { leaves: 3, spines: 2, hosts_per_leaf: 2 }
            .builder()
            .link_mbps(1000)
            .host_mbps(1000)
            .delay_ns(1000)
            .seed(21)
            .build();
        let leaf0 = t.switches[0];
        let leaf1 = t.switches[1];
        t.net.set_link_faults(leaf0, 0, 0.2, 0.05);
        t.net.set_link_faults(leaf1, 1, 0.1, 0.0);
        t
    };
    let reference = single(&build);
    assert!(reference.frames_dropped_in_flight > 0, "faults must actually fire");
    assert!(reference.frames_corrupted > 0);
    for n_shards in [2usize, 4] {
        let got = sharded(&build, n_shards, PartitionStrategy::Locality, ExecMode::Sequential);
        assert_eq!(got.digest(), reference.digest(), "fault digests diverged at {n_shards} shards");
        assert_eq!(got.frames_dropped_in_flight, reference.frames_dropped_in_flight);
        assert_eq!(got.frames_corrupted, reference.frames_corrupted);
    }
}

#[test]
fn one_shard_fabric_is_the_single_threaded_network() {
    let build = || {
        TopologySpec::Star { hosts: 6 }.builder().host_mbps(1000).delay_ns(1000).seed(31).build()
    };
    let reference = single(&build);
    let got = sharded(&build, 1, PartitionStrategy::Locality, ExecMode::Sequential);
    assert_eq!(got.digest(), reference.digest());
    assert_eq!(
        got.events_processed, reference.events_processed,
        "1 shard is literally the same loop"
    );
}

#[test]
fn repeated_sharded_runs_are_bit_identical() {
    let run = || {
        sharded(
            &|| {
                TopologySpec::FatTree { k: 4 }
                    .builder()
                    .link_mbps(1000)
                    .delay_ns(1000)
                    .seed(42)
                    .build()
            },
            4,
            PartitionStrategy::Locality,
            ExecMode::Threaded,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "thread scheduling must not leak into results");
}

#[test]
fn run_until_never_moves_the_clock_backwards() {
    let mut t =
        TopologySpec::Star { hosts: 4 }.builder().host_mbps(1000).delay_ns(1000).seed(3).build();
    let hosts = t.hosts.clone();
    let _d = install_traffic(&mut t.net, &hosts, &traffic());
    let mut fabric = Fabric::new(t.net, 2, PartitionStrategy::RoundRobin);
    fabric.set_mode(ExecMode::Sequential);
    fabric.run_until(4 * MILLIS);
    let stats = fabric.stats();
    fabric.run_until(2 * MILLIS); // stale target: must be a no-op
    assert_eq!(fabric.now(), 4 * MILLIS);
    assert_eq!(fabric.stats(), stats);
    fabric.run_for(MILLIS); // and run_for still advances from 4ms, not 2ms
    assert_eq!(fabric.now(), 5 * MILLIS);
}

#[test]
fn incremental_run_until_matches_one_shot() {
    // Driving the fabric in small steps (as experiment drivers do) must
    // land on the same digest as one big run_until.
    let build = || {
        TopologySpec::LeafSpine { leaves: 3, spines: 2, hosts_per_leaf: 2 }
            .builder()
            .link_mbps(1000)
            .host_mbps(1000)
            .delay_ns(1000)
            .seed(55)
            .build()
    };
    let one_shot = sharded(&build, 2, PartitionStrategy::Locality, ExecMode::Sequential);
    let mut t = build();
    let hosts = t.hosts.clone();
    let _d = install_traffic(&mut t.net, &hosts, &traffic());
    let mut fabric = Fabric::new(t.net, 2, PartitionStrategy::Locality);
    fabric.set_mode(ExecMode::Sequential);
    let mut at = 0;
    while at < HORIZON {
        at += MILLIS / 2;
        fabric.run_until(at.min(HORIZON));
    }
    assert_eq!(fabric.stats().digest(), one_shot.digest());
}
