//! # tpp-fabric — sharded parallel simulation runtime
//!
//! The paper's headline claim is that TPPs execute at line rate across an
//! entire datacenter fabric; evaluating that at datacenter scale needs a
//! simulator that scales across cores. `tpp-fabric` partitions a built
//! [`tpp_netsim::Network`] into per-core *shards* — each owning a disjoint
//! set of switches and hosts plus its own event queue and frame pool — and
//! synchronizes them with the classic conservative-parallel discrete-event
//! recipe:
//!
//! * **Partitioning** ([`partition`](mod@partition)) — a union-find pass glues together
//!   anything joined by a zero-delay link (such links admit no lookahead,
//!   so they can never cross a shard boundary), optionally pulls hosts onto
//!   their edge switch for locality, then bin-packs the resulting
//!   components across shards. On fabrics with two delay scales — a
//!   multi-site WAN topology with microsecond intra-site links and
//!   millisecond WAN links — locality partitioning additionally glues
//!   every component whose link delays sit within 16× of each other, so
//!   only the slow WAN links are cut and the lookahead below equals the
//!   full WAN delay.
//! * **Lookahead epochs** ([`Fabric::run_until`]) — the minimum propagation
//!   delay `L` over cross-shard links bounds how far any shard can run
//!   ahead without risking a causality violation: a frame transmitted at
//!   time `t` cannot arrive remotely before `t + L`. Shards therefore
//!   advance in windows of length `L` and exchange boundary frames at a
//!   barrier between windows — null-message synchronization degenerated to
//!   its barrier form.
//! * **Determinism** — the shard kernel orders same-timestamp events by a
//!   content-derived key, draws link faults from per-link RNG streams, and
//!   stamps cross-shard frames with per-link sequence numbers, so a run is
//!   bit-identical for a given seed regardless of the shard count or
//!   thread interleaving. [`tpp_netsim::NetStats::digest`] is the proof
//!   hook: the differential tests assert digest equality between the
//!   single-threaded `Network` loop and 2- and 4-shard fabrics.
//!
//! Applications implement the ordinary [`tpp_netsim::HostApp`] trait and
//! run unchanged on either runtime.

#![forbid(unsafe_code)]

pub mod partition;
pub mod runtime;
pub mod scenario;
pub mod workload;

pub use partition::{partition, PartitionStrategy};
pub use runtime::{ExecMode, Fabric};
pub use scenario::{Cell, Scenario, WorkloadSpec};
pub use workload::{install_traffic, TrafficConfig, TrafficGen, TrafficPattern};
