//! Declarative experiments: a [`Scenario`] is *data* — topology ×
//! workload × shard count × duration — with one entry point that drives
//! either the single-threaded [`tpp_netsim::Network`] loop or the sharded
//! [`Fabric`] and returns one [`Cell`] of results.
//!
//! The point of the layer is the evaluation matrix (`eval_matrix` in
//! `tpp-bench`): sweep every topology family against every traffic
//! pattern at several shard counts from one binary, with the `NetStats`
//! digest proving that every multi-shard cell replayed the single-threaded
//! run bit-for-bit. Three knobs matter:
//!
//! * **Topology** — any [`TopologyBuilder`] (see
//!   [`tpp_netsim::scenario`]).
//! * **Workload** — a [`WorkloadSpec`]: a named [`TrafficConfig`] preset
//!   ([`WorkloadSpec::uniform`], [`WorkloadSpec::heavy_tailed`],
//!   [`WorkloadSpec::incast`], [`WorkloadSpec::shuffle`]). The in-band
//!   "app" is the §2.1 visibility TPP every `tpp_every`-th frame.
//! * **Fidelity** — [`Scenario::speedup`] divides the simulated horizon:
//!   `speedup(8)` runs one eighth of the configured duration, trading
//!   statistical weight for wall-clock time without touching per-frame
//!   fidelity (every frame still serializes, queues, and executes TPPs
//!   exactly). Digest cross-checks stay valid at any speedup because both
//!   runtimes see the same shrunk horizon.
//!
//! ```
//! use tpp_fabric::scenario::{Scenario, WorkloadSpec};
//! use tpp_netsim::{TopologySpec, MILLIS};
//!
//! let cell = Scenario::new(
//!     TopologySpec::Star { hosts: 4 }.builder(),
//!     WorkloadSpec::uniform(),
//! )
//! .duration_ns(2 * MILLIS)
//! .speedup(2)
//! .run();
//! assert!(cell.stats.frames_delivered > 0);
//! assert!(cell.to_json().starts_with('{'));
//! ```

use std::sync::atomic::Ordering;
use std::time::Instant;

use tpp_netsim::{ChurnSpec, NetStats, Time, TopologyBuilder, MILLIS};

use crate::partition::PartitionStrategy;
use crate::runtime::{ExecMode, Fabric};
use crate::workload::{install_traffic, TrafficConfig, TrafficPattern};

/// A named traffic workload: a preset name (used in matrix labels and
/// JSON) plus the full [`TrafficConfig`] it denotes. The config is public
/// — presets are starting points, not straitjackets.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Short label for matrix output (e.g. `uniform`, `incast2`).
    pub name: String,
    /// The traffic knobs handed to every host's [`crate::TrafficGen`].
    pub cfg: TrafficConfig,
}

impl WorkloadSpec {
    /// Uniform random destinations — the original scale workload.
    pub fn uniform() -> Self {
        WorkloadSpec { name: "uniform".into(), cfg: TrafficConfig::default() }
    }

    /// Pareto flow sizes (mean 48 frames): elephants and mice.
    pub fn heavy_tailed() -> Self {
        WorkloadSpec {
            name: "heavy_tailed".into(),
            cfg: TrafficConfig {
                pattern: TrafficPattern::HeavyTailed { mean_frames: 48 },
                ..TrafficConfig::default()
            },
        }
    }

    /// Fan-in onto the first `sinks` hosts; everyone else sends only.
    pub fn incast(sinks: usize) -> Self {
        WorkloadSpec {
            name: format!("incast{sinks}"),
            cfg: TrafficConfig {
                pattern: TrafficPattern::Incast { sinks },
                ..TrafficConfig::default()
            },
        }
    }

    /// All-to-all round-robin shuffle.
    pub fn shuffle() -> Self {
        WorkloadSpec {
            name: "shuffle".into(),
            cfg: TrafficConfig { pattern: TrafficPattern::Shuffle, ..TrafficConfig::default() },
        }
    }

    /// One-to-many fan-out: host 0 streams round-robin to every other
    /// host — the WAN video-multicast traffic shape.
    pub fn fan_out() -> Self {
        WorkloadSpec {
            name: "fan_out".into(),
            cfg: TrafficConfig { pattern: TrafficPattern::FanOut, ..TrafficConfig::default() },
        }
    }

    /// Cross-site transfers on a `MultiSite` fabric: every frame crosses
    /// a WAN link (see [`TrafficPattern::InterDcTransfer`]).
    pub fn inter_dc(sites: usize) -> Self {
        WorkloadSpec {
            name: format!("inter_dc{sites}"),
            cfg: TrafficConfig {
                pattern: TrafficPattern::InterDcTransfer { sites },
                ..TrafficConfig::default()
            },
        }
    }

    /// A fully custom workload under your own label.
    pub fn custom(name: impl Into<String>, cfg: TrafficConfig) -> Self {
        WorkloadSpec { name: name.into(), cfg }
    }

    /// Workload RNG seed (combined per host with the node id).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Carry the visibility TPP on every `n`-th frame (0 = never) — the
    /// "app" axis of a scenario.
    pub fn tpp_every(mut self, n: usize) -> Self {
        self.cfg.tpp_every = n;
        self
    }
}

/// One experiment cell: topology + workload + runtime shape + duration.
/// Construct with [`Scenario::new`], refine with the builder methods, and
/// [`Scenario::run`] it for a [`Cell`].
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Topology under test.
    pub topo: TopologyBuilder,
    /// Traffic under test.
    pub workload: WorkloadSpec,
    /// 1 runs the single-threaded [`tpp_netsim::Network`] loop; ≥ 2 runs
    /// the sharded [`Fabric`].
    pub shards: usize,
    /// How the fabric partitions nodes (ignored at 1 shard).
    pub strategy: PartitionStrategy,
    /// Fabric executor (ignored at 1 shard).
    pub mode: ExecMode,
    /// Simulated horizon in nanoseconds, *before* the speedup division.
    pub duration_ns: Time,
    /// Fidelity knob: divide the horizon by this factor (≥ 1).
    pub speedup: u64,
    /// Runtime churn: compiled against the built network and installed
    /// before the runtime starts, for every shard count alike.
    pub churn: ChurnSpec,
}

impl Scenario {
    /// A scenario with defaults: 1 shard, locality partitioning, auto
    /// executor, 8 ms horizon, no speedup.
    pub fn new(topo: TopologyBuilder, workload: WorkloadSpec) -> Self {
        Scenario {
            topo,
            workload,
            shards: 1,
            strategy: PartitionStrategy::Locality,
            mode: ExecMode::Auto,
            duration_ns: 8 * MILLIS,
            speedup: 1,
            churn: ChurnSpec::None,
        }
    }

    /// Shard count (1 = single-threaded `Network`).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Partitioning strategy for sharded runs.
    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Executor for sharded runs.
    pub fn mode(mut self, m: ExecMode) -> Self {
        self.mode = m;
        self
    }

    /// Simulated horizon (pre-speedup), in nanoseconds.
    pub fn duration_ns(mut self, ns: Time) -> Self {
        self.duration_ns = ns;
        self
    }

    /// Fidelity knob: run `duration_ns / factor` of simulated time.
    pub fn speedup(mut self, factor: u64) -> Self {
        self.speedup = factor;
        self
    }

    /// Runtime churn for the cell. The spec is compiled once against the
    /// built network and installed as a reconfiguration plan *before* the
    /// runtime starts, so the exact same plan rides through
    /// [`tpp_netsim::Network::split`] at every shard count — churned cells
    /// stay digest-comparable across shard counts.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = churn;
        self
    }

    /// The horizon actually simulated: `duration_ns / speedup`.
    pub fn effective_duration(&self) -> Time {
        self.duration_ns / self.speedup.max(1)
    }

    /// `topology:workload:shards`, the cell's identity in matrix output.
    pub fn label(&self) -> String {
        format!("{}:{}:x{}", self.topo.label(), self.workload.name, self.shards)
    }

    /// Build the topology, install the workload, run the chosen runtime to
    /// the (speedup-adjusted) horizon, and report the cell.
    pub fn run(&self) -> Cell {
        let horizon = self.effective_duration();
        let started = Instant::now();
        let mut t = self.topo.clone().build();
        let hosts = t.hosts.clone();
        let n_hosts = hosts.len();
        let n_switches = t.switches.len();
        let mut cfg = self.workload.cfg.clone();
        // Generators stop at the horizon at the latest; an explicit earlier
        // stop_at (e.g. the golden-digest 6 ms cutoff) is respected.
        cfg.stop_at = cfg.stop_at.min(horizon);
        let delivered = install_traffic(&mut t.net, &hosts, &cfg);
        for (at, action) in self.churn.compile(&t.net, horizon) {
            t.net.schedule_reconfig(at, action);
        }
        let stats = if self.shards <= 1 {
            t.net.run_until(horizon);
            t.net.stats
        } else {
            let mut fabric = Fabric::new(t.net, self.shards, self.strategy);
            fabric.set_mode(self.mode);
            fabric.run_until(horizon);
            fabric.stats()
        };
        Cell {
            topology: self.topo.label(),
            workload: self.workload.name.clone(),
            churn: self.churn.label().to_string(),
            shards: self.shards,
            speedup: self.speedup.max(1),
            duration_ns: horizon,
            hosts: n_hosts,
            switches: n_switches,
            delivered: delivered.load(Ordering::Relaxed),
            digest: stats.digest(),
            stats,
            wall_ms: started.elapsed().as_millis() as u64,
        }
    }
}

/// The result of one [`Scenario::run`]: identity, scale, counters, and
/// the determinism digest.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Topology label (e.g. `fat_tree4`).
    pub topology: String,
    /// Workload label (e.g. `heavy_tailed`).
    pub workload: String,
    /// Churn label (`none`, `plan`, `link_flap`).
    pub churn: String,
    /// Shard count the cell ran at.
    pub shards: usize,
    /// Fidelity divisor the cell ran at.
    pub speedup: u64,
    /// Simulated nanoseconds (post-speedup).
    pub duration_ns: Time,
    /// Hosts in the topology.
    pub hosts: usize,
    /// Switches in the topology.
    pub switches: usize,
    /// Frames delivered to host apps (the shared workload counter).
    pub delivered: u64,
    /// Full simulator statistics.
    pub stats: NetStats,
    /// `stats.digest()` — equal across shard counts iff the runs matched.
    pub digest: u64,
    /// Wall-clock milliseconds for build + run.
    pub wall_ms: u64,
}

impl Cell {
    /// One JSON object (hand-rolled: the workspace carries no serde).
    /// `digest` and `trace` are hex strings — u64 magnitudes don't survive
    /// JSON number parsing everywhere.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":1,\"topology\":\"{}\",\"workload\":\"{}\",",
                "\"churn\":\"{}\",",
                "\"shards\":{},\"speedup\":{},\"duration_ns\":{},",
                "\"hosts\":{},\"switches\":{},\"frames_delivered\":{},",
                "\"frames_dropped\":{},\"frames_corrupted\":{},",
                "\"reconfigs\":{},\"violations\":{},",
                "\"events\":{},",
                "\"rx_batches\":{},\"rx_batch_frames\":{},\"rx_batch_max\":{},",
                "\"plan_cache_hits\":{},\"plan_cache_misses\":{},",
                "\"plan_cache_evictions\":{},",
                "\"trace\":\"{:#018x}\",\"digest\":\"{:#018x}\",",
                "\"wall_ms\":{}}}"
            ),
            self.topology,
            self.workload,
            self.churn,
            self.shards,
            self.speedup,
            self.duration_ns,
            self.hosts,
            self.switches,
            self.stats.frames_delivered,
            self.stats.frames_dropped_in_flight,
            self.stats.frames_corrupted,
            self.stats.reconfigs_applied,
            self.stats.violations(),
            self.stats.events_processed,
            self.stats.rx_batches,
            self.stats.rx_batch_frames,
            self.stats.rx_batch_max,
            self.stats.plan_cache_hits,
            self.stats.plan_cache_misses,
            self.stats.plan_cache_evictions,
            self.stats.trace,
            self.digest,
            self.wall_ms,
        )
    }
}
