//! A deterministic, `Send` traffic workload for scale runs and
//! differential tests: every host streams UDP frames (a fraction carrying
//! transparent TPPs) to pseudo-randomly chosen peers on a fixed timer
//! cadence. All randomness comes from a per-host stream seeded by the
//! host's node id, so behavior is identical no matter which shard — or
//! how many shards — the host lands on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tpp_core::asm::TppBuilder;
use tpp_core::wire::{
    ethernet, insert_transparent, ipv4, udp, EthernetAddress, EthernetRepr, Ipv4Address, Tpp,
};
use tpp_netsim::{HostApp, HostCtx, Time};

/// How each generator picks destinations (see [`TrafficGen`]). Every
/// pattern draws only from the host's own RNG stream and per-host state,
/// so all of them shard deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every frame independently picks a uniform random peer — the
    /// original workload; its RNG call sequence is unchanged, so seeded
    /// digests from before patterns existed still hold.
    Uniform,
    /// Pareto flow sizes (shape 1.5, mean `mean_frames`): pick a uniform
    /// random peer, stream a heavy-tailed number of frames to it, repeat.
    /// The elephant/mice mix that stresses CONGA*-style load balancing.
    HeavyTailed {
        /// Mean flow size in frames (tail extends ~100× beyond).
        mean_frames: u64,
    },
    /// The first `sinks` hosts (in peer-list order) only receive; every
    /// other host aims every frame at a uniform random sink. The
    /// fan-in pattern that stresses the micro-burst detector.
    Incast {
        /// Receive-only hosts (clamped to `1..peers`).
        sinks: usize,
    },
    /// All-to-all shuffle: host `i` walks the peer list round-robin
    /// starting at `i + 1`, like a `MapReduce` shuffle stage.
    Shuffle,
    /// One-to-many fan-out: the first host in peer-list order streams to
    /// every other host round-robin; everyone else only receives. The
    /// traffic shape of the coordinated video multicast in
    /// `tpp_apps::wan` (no RNG draws — purely positional).
    FanOut,
    /// Cross-site transfers on a [`tpp_netsim::TopologySpec::MultiSite`]
    /// fabric: with site-major hosts split into `sites` equal groups, host
    /// `i` of site `s` targets host `i` of each *remote* site in turn,
    /// cycling through sites round-robin. Every frame crosses a WAN link
    /// (no RNG draws — purely positional).
    InterDcTransfer {
        /// Site count — must divide the host count (as `MultiSite`
        /// guarantees).
        sites: usize,
    },
}

/// Workload knobs.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Frames sent per timer tick.
    pub frames_per_tick: usize,
    /// Timer cadence.
    pub tick_ns: Time,
    /// UDP payload bytes (pre-TPP).
    pub payload: usize,
    /// Every `tpp_every`-th frame carries a transparent TPP (0 = never).
    pub tpp_every: usize,
    /// Stop generating at this simulation time (sinks keep counting).
    pub stop_at: Time,
    /// Base RNG seed (combined with the host's node id).
    pub seed: u64,
    /// Destination-selection pattern.
    pub pattern: TrafficPattern,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            frames_per_tick: 4,
            tick_ns: 10_000,
            payload: 256,
            tpp_every: 4,
            stop_at: Time::MAX,
            seed: 1,
            pattern: TrafficPattern::Uniform,
        }
    }
}

/// The per-host generator/sink. Install one on every host, sharing the
/// `delivered` counter to observe aggregate progress.
pub struct TrafficGen {
    cfg: TrafficConfig,
    /// Node ids of all hosts in the topology (potential destinations).
    peers: Arc<Vec<u32>>,
    rng: Option<StdRng>,
    tpp: Tpp,
    sent: u64,
    /// This host's position in `peers` (set in `start`).
    my_index: usize,
    /// Current heavy-tailed flow: destination and frames remaining.
    flow_dst: u32,
    flow_left: u64,
    /// Round-robin offset for [`TrafficPattern::Shuffle`].
    rr: usize,
    /// Frames delivered to *this and every sibling* generator.
    pub delivered: Arc<AtomicU64>,
}

impl TrafficGen {
    pub fn new(cfg: TrafficConfig, peers: Arc<Vec<u32>>, delivered: Arc<AtomicU64>) -> Self {
        // The §2.1 visibility program: per-hop switch id, port, and queue
        // occupancy — its result words depend on queue state at every hop,
        // which makes the trace digest sensitive to any ordering slip.
        let tpp = TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("PacketMetadata:OutputPort")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(6)
            .build()
            .unwrap();
        TrafficGen {
            cfg,
            peers,
            rng: None,
            tpp,
            sent: 0,
            my_index: 0,
            flow_dst: 0,
            flow_left: 0,
            rr: 0,
            delivered,
        }
    }

    /// Pareto(shape 1.5) flow size with the given mean, clamped to
    /// `[1, 100 * mean]` so one draw can't outlive a whole run.
    fn pareto_frames(rng: &mut StdRng, mean_frames: u64) -> u64 {
        // mean = shape * scale / (shape - 1) = 3 * scale for shape 1.5.
        let scale = mean_frames as f64 / 3.0;
        let u = (1.0 - rng.random::<f64>()).max(1e-9);
        let size = scale / u.powf(1.0 / 1.5);
        (size.ceil() as u64).clamp(1, mean_frames.saturating_mul(100).max(1))
    }

    /// Next destination under the configured pattern. Must be called only
    /// from sending hosts (Incast sinks never reach here).
    fn next_dst(&mut self, node: u32) -> u32 {
        let rng = self.rng.as_mut().unwrap();
        match self.cfg.pattern {
            TrafficPattern::Uniform => {
                let i = rng.random_range(0..self.peers.len());
                if self.peers[i] == node {
                    self.peers[(i + 1) % self.peers.len()]
                } else {
                    self.peers[i]
                }
            }
            TrafficPattern::HeavyTailed { mean_frames } => {
                if self.flow_left == 0 {
                    let i = rng.random_range(0..self.peers.len());
                    self.flow_dst = if self.peers[i] == node {
                        self.peers[(i + 1) % self.peers.len()]
                    } else {
                        self.peers[i]
                    };
                    self.flow_left = Self::pareto_frames(rng, mean_frames);
                }
                self.flow_left -= 1;
                self.flow_dst
            }
            TrafficPattern::Incast { sinks } => {
                let n = sinks.clamp(1, self.peers.len() - 1);
                self.peers[rng.random_range(0..n)]
            }
            TrafficPattern::Shuffle => {
                let len = self.peers.len();
                let mut dst = self.peers[(self.my_index + 1 + self.rr) % len];
                self.rr = (self.rr + 1) % len;
                if dst == node {
                    dst = self.peers[(self.my_index + 1 + self.rr) % len];
                    self.rr = (self.rr + 1) % len;
                }
                dst
            }
            TrafficPattern::FanOut => {
                // Only peer 0 sends (passive hosts never reach here):
                // round-robin over everyone else.
                let len = self.peers.len();
                let dst = self.peers[1 + self.rr % (len - 1)];
                self.rr = (self.rr + 1) % (len - 1);
                dst
            }
            TrafficPattern::InterDcTransfer { sites } => {
                let sites = sites.clamp(2, self.peers.len());
                let per_site = (self.peers.len() / sites).max(1);
                let (my_site, slot) = (self.my_index / per_site, self.my_index % per_site);
                // Cycle over the remote sites only: the whole point is
                // that every frame crosses a WAN link.
                let target_site = (my_site + 1 + self.rr % (sites - 1)) % sites;
                self.rr = (self.rr + 1) % (sites - 1);
                self.peers[(target_site * per_site + slot) % self.peers.len()]
            }
        }
    }

    /// Hosts that never send under the configured pattern: the first
    /// `sinks` peers of [`TrafficPattern::Incast`], everyone but peer 0
    /// under [`TrafficPattern::FanOut`].
    fn is_passive(&self) -> bool {
        match self.cfg.pattern {
            TrafficPattern::Incast { sinks } => {
                self.my_index < sinks.clamp(1, self.peers.len() - 1)
            }
            TrafficPattern::FanOut => self.my_index != 0,
            _ => false,
        }
    }

    fn build_frame(&mut self, src_ip: Ipv4Address, src_mac: EthernetAddress, dst: u32) -> Vec<u8> {
        let dst_ip = Ipv4Address::from_host_id(dst);
        let u = udp::Repr { src_port: 5001, dst_port: 5001, payload_len: self.cfg.payload };
        let udp_b = u.encapsulate(src_ip, dst_ip, &vec![0u8; self.cfg.payload]);
        let ip = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_b.len(),
        };
        let plain = EthernetRepr {
            dst: EthernetAddress::from_node_id(dst),
            src: src_mac,
            ethertype: ethernet::ethertype::IPV4,
        }
        .encapsulate(&ip.encapsulate(&udp_b));
        self.sent += 1;
        if self.cfg.tpp_every > 0 && self.sent.is_multiple_of(self.cfg.tpp_every as u64) {
            insert_transparent(&plain, &self.tpp)
        } else {
            plain
        }
    }
}

impl HostApp for TrafficGen {
    fn start(&mut self, ctx: &mut HostCtx<'_>) {
        self.rng = Some(StdRng::seed_from_u64(self.cfg.seed ^ ((ctx.node.0 as u64) << 20)));
        self.my_index =
            self.peers.iter().position(|&p| p == ctx.node.0).expect("host is in the peer list");
        if self.is_passive() {
            return; // receive-only: no timer, no RNG draws
        }
        // Stagger first ticks across hosts to avoid a thundering herd.
        let jitter = self.rng.as_mut().unwrap().random_range(0..self.cfg.tick_ns);
        ctx.set_timer(jitter, 0);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
        if ctx.now >= self.cfg.stop_at {
            return;
        }
        for _ in 0..self.cfg.frames_per_tick {
            let dst = self.next_dst(ctx.node.0);
            let frame = self.build_frame(ctx.ip, ctx.mac, dst);
            ctx.send(frame);
        }
        ctx.set_timer(self.cfg.tick_ns, 0);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        ctx.recycle(frame);
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Install [`TrafficGen`]s on every host of a built topology; returns the
/// shared delivered-frames counter.
pub fn install_traffic(
    net: &mut tpp_netsim::Network,
    hosts: &[tpp_netsim::NodeId],
    cfg: &TrafficConfig,
) -> Arc<AtomicU64> {
    let peers = Arc::new(hosts.iter().map(|h| h.0).collect::<Vec<_>>());
    let delivered = Arc::new(AtomicU64::new(0));
    for &h in hosts {
        net.set_app(h, Box::new(TrafficGen::new(cfg.clone(), peers.clone(), delivered.clone())));
    }
    delivered
}
