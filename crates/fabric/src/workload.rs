//! A deterministic, `Send` traffic workload for scale runs and
//! differential tests: every host streams UDP frames (a fraction carrying
//! transparent TPPs) to pseudo-randomly chosen peers on a fixed timer
//! cadence. All randomness comes from a per-host stream seeded by the
//! host's node id, so behavior is identical no matter which shard — or
//! how many shards — the host lands on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tpp_core::asm::TppBuilder;
use tpp_core::wire::{
    ethernet, insert_transparent, ipv4, udp, EthernetAddress, EthernetRepr, Ipv4Address, Tpp,
};
use tpp_netsim::{HostApp, HostCtx, Time};

/// Workload knobs.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Frames sent per timer tick.
    pub frames_per_tick: usize,
    /// Timer cadence.
    pub tick_ns: Time,
    /// UDP payload bytes (pre-TPP).
    pub payload: usize,
    /// Every `tpp_every`-th frame carries a transparent TPP (0 = never).
    pub tpp_every: usize,
    /// Stop generating at this simulation time (sinks keep counting).
    pub stop_at: Time,
    /// Base RNG seed (combined with the host's node id).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            frames_per_tick: 4,
            tick_ns: 10_000,
            payload: 256,
            tpp_every: 4,
            stop_at: Time::MAX,
            seed: 1,
        }
    }
}

/// The per-host generator/sink. Install one on every host, sharing the
/// `delivered` counter to observe aggregate progress.
pub struct TrafficGen {
    cfg: TrafficConfig,
    /// Node ids of all hosts in the topology (potential destinations).
    peers: Arc<Vec<u32>>,
    rng: Option<StdRng>,
    tpp: Tpp,
    sent: u64,
    /// Frames delivered to *this and every sibling* generator.
    pub delivered: Arc<AtomicU64>,
}

impl TrafficGen {
    pub fn new(cfg: TrafficConfig, peers: Arc<Vec<u32>>, delivered: Arc<AtomicU64>) -> Self {
        // The §2.1 visibility program: per-hop switch id, port, and queue
        // occupancy — its result words depend on queue state at every hop,
        // which makes the trace digest sensitive to any ordering slip.
        let tpp = TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("PacketMetadata:OutputPort")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(6)
            .build()
            .unwrap();
        TrafficGen { cfg, peers, rng: None, tpp, sent: 0, delivered }
    }

    fn build_frame(&mut self, src_ip: Ipv4Address, src_mac: EthernetAddress, dst: u32) -> Vec<u8> {
        let dst_ip = Ipv4Address::from_host_id(dst);
        let u = udp::Repr { src_port: 5001, dst_port: 5001, payload_len: self.cfg.payload };
        let udp_b = u.encapsulate(src_ip, dst_ip, &vec![0u8; self.cfg.payload]);
        let ip = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_b.len(),
        };
        let plain = EthernetRepr {
            dst: EthernetAddress::from_node_id(dst),
            src: src_mac,
            ethertype: ethernet::ethertype::IPV4,
        }
        .encapsulate(&ip.encapsulate(&udp_b));
        self.sent += 1;
        if self.cfg.tpp_every > 0 && self.sent.is_multiple_of(self.cfg.tpp_every as u64) {
            insert_transparent(&plain, &self.tpp)
        } else {
            plain
        }
    }
}

impl HostApp for TrafficGen {
    fn start(&mut self, ctx: &mut HostCtx<'_>) {
        self.rng = Some(StdRng::seed_from_u64(self.cfg.seed ^ ((ctx.node.0 as u64) << 20)));
        // Stagger first ticks across hosts to avoid a thundering herd.
        let jitter = self.rng.as_mut().unwrap().random_range(0..self.cfg.tick_ns);
        ctx.set_timer(jitter, 0);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
        if ctx.now >= self.cfg.stop_at {
            return;
        }
        for _ in 0..self.cfg.frames_per_tick {
            let dst = {
                let rng = self.rng.as_mut().unwrap();
                let i = rng.random_range(0..self.peers.len());
                if self.peers[i] == ctx.node.0 {
                    self.peers[(i + 1) % self.peers.len()]
                } else {
                    self.peers[i]
                }
            };
            let frame = self.build_frame(ctx.ip, ctx.mac, dst);
            ctx.send(frame);
        }
        ctx.set_timer(self.cfg.tick_ns, 0);
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        ctx.recycle(frame);
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Install [`TrafficGen`]s on every host of a built topology; returns the
/// shared delivered-frames counter.
pub fn install_traffic(
    net: &mut tpp_netsim::Network,
    hosts: &[tpp_netsim::NodeId],
    cfg: &TrafficConfig,
) -> Arc<AtomicU64> {
    let peers = Arc::new(hosts.iter().map(|h| h.0).collect::<Vec<_>>());
    let delivered = Arc::new(AtomicU64::new(0));
    for &h in hosts {
        net.set_app(h, Box::new(TrafficGen::new(cfg.clone(), peers.clone(), delivered.clone())));
    }
    delivered
}
