//! Topology partitioning: assign every node of a built [`Network`] to one
//! of `n_shards` shards.
//!
//! Constraints and goals, in order:
//!
//! 1. **Zero-delay links never cross shards.** The conservative runtime's
//!    lookahead is the minimum cross-shard propagation delay; a zero-delay
//!    link would collapse the epoch window to nothing. A union-find pass
//!    glues such endpoints into one component unconditionally.
//! 2. **Locality (optional).** Hosts generate and sink most frames at
//!    their edge switch; co-locating a host with its switch keeps that
//!    traffic off the cross-shard channels. And when the topology mixes
//!    link-delay scales — a multi-site fabric with ~µs intra-site links
//!    and ~ms WAN links — the low-delay mesh is glued together so only
//!    the high-delay links remain as cut candidates: cutting at WAN
//!    links makes the conservative lookahead the WAN delay, orders of
//!    magnitude more simulation per synchronization barrier.
//! 3. **Balance.** Components are bin-packed onto shards greedily by
//!    weight (switches cost more to simulate than hosts).

use tpp_netsim::{Network, NodeId, ReconfigAction, Time};

/// How nodes are grouped before bin-packing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Hosts are glued to their first switch neighbor, so host↔edge
    /// traffic stays shard-local. The right default for fabrics with many
    /// switches (leaf-spine, fat-tree).
    Locality,
    /// Only the mandatory zero-delay gluing; remaining components spread
    /// round-robin. Forces cross-shard traffic even on degenerate
    /// topologies (a star's hub and leaves land on different shards) —
    /// useful for stress-testing the runtime.
    RoundRobin,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Compute a shard assignment (`assignment[node] in 0..n_shards`) for a
/// built, not-yet-running network.
pub fn partition(net: &Network, n_shards: usize, strategy: PartitionStrategy) -> Vec<usize> {
    let n = net.node_count();
    assert!(n_shards >= 1, "need at least one shard");
    let mut uf = UnionFind::new(n);

    // 1. Mandatory: zero-delay links are always co-sharded. The iterator
    //    accessor walks the link layer without materializing a Vec of every
    //    directed link (k=64 fat-trees have hundreds of thousands).
    for (a, _pa, b, _pb, spec) in net.links_iter() {
        if spec.delay_ns == 0 {
            uf.union(a.0 as usize, b.0 as usize);
        }
    }

    // 2. Locality: hosts follow their first switch neighbor, and when the
    //    delay distribution is clearly two-scale, the low-delay mesh is
    //    glued so only the high-delay (WAN-class) links can be cut. The
    //    spread factor keeps uniform-delay fabrics (every link within 16×
    //    of the max) partitioning exactly as before.
    if strategy == PartitionStrategy::Locality {
        for h in net.host_ids() {
            if let Some((_, peer)) = net.neighbors_iter(h).next() {
                uf.union(h.0 as usize, peer.0 as usize);
            }
        }
        const DELAY_SPREAD: Time = 16;
        let max_delay = net.links_iter().map(|(_, _, _, _, spec)| spec.delay_ns).max().unwrap_or(0);
        for (a, _pa, b, _pb, spec) in net.links_iter() {
            if spec.delay_ns.saturating_mul(DELAY_SPREAD) <= max_delay {
                uf.union(a.0 as usize, b.0 as usize);
            }
        }
    }

    // Gather components in deterministic (min node id) order.
    let mut comp_of = vec![usize::MAX; n];
    let mut comps: Vec<(Vec<usize>, u64)> = Vec::new(); // (members, weight)
    for i in 0..n {
        let root = uf.find(i);
        if comp_of[root] == usize::MAX {
            comp_of[root] = comps.len();
            comps.push((Vec::new(), 0));
        }
        let c = comp_of[root];
        comps[c].0.push(i);
        // Switches carry queues, tables, and TPP execution; weigh them
        // heavier than hosts when balancing.
        comps[c].1 += if net.is_switch(NodeId(i as u32)) { 4 } else { 1 };
    }

    let mut assignment = vec![0usize; n];
    match strategy {
        PartitionStrategy::RoundRobin => {
            for (i, (members, _)) in comps.iter().enumerate() {
                for &m in members {
                    assignment[m] = i % n_shards;
                }
            }
        }
        PartitionStrategy::Locality => {
            // Greedy bin-packing: heaviest component to the lightest shard.
            let mut order: Vec<usize> = (0..comps.len()).collect();
            order.sort_by_key(|&c| (std::cmp::Reverse(comps[c].1), comps[c].0[0]));
            let mut load = vec![0u64; n_shards];
            for c in order {
                let shard = (0..n_shards).min_by_key(|&s| (load[s], s)).unwrap();
                load[shard] += comps[c].1;
                for &m in &comps[c].0 {
                    assignment[m] = shard;
                }
            }
        }
    }
    assignment
}

/// The conservative lookahead implied by an assignment: the minimum
/// propagation delay over links whose endpoints live on different shards.
/// `None` when nothing crosses (a single shard, or disconnected shards) —
/// the runtime then needs no synchronization at all.
///
/// The network's reconfiguration plan is folded in up front: a scheduled
/// [`ReconfigAction::LinkDegrade`] that will lower a cross-shard delay
/// mid-run would otherwise let a frame arrive inside an epoch window the
/// runtime already considered settled. Taking the minimum over current
/// *and* planned delays keeps the window conservative for the whole run.
pub fn lookahead(net: &Network, assignment: &[usize]) -> Option<Time> {
    let crosses = |a: NodeId, b: NodeId| assignment[a.0 as usize] != assignment[b.0 as usize];
    let current = net
        .links_iter()
        .filter(|&(a, _, b, _, _)| crosses(a, b))
        .map(|(_, _, _, _, spec)| spec.delay_ns);
    let planned = net.reconfig_plan().iter().filter_map(|(_, action)| match *action {
        ReconfigAction::LinkDegrade { node, port, delay_ns, .. } => {
            let peer = net.neighbors_iter(node).find(|&(p, _)| p == port).map(|(_, n)| n)?;
            crosses(node, peer).then_some(delay_ns)
        }
        _ => None,
    });
    current.chain(planned).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpp_netsim::TopologySpec;

    #[test]
    fn zero_delay_links_are_co_sharded() {
        // A dumbbell with a zero-delay trunk: both switches (and, with
        // RoundRobin, only what the trunk forces) must share a shard.
        let t = TopologySpec::Dumbbell { per_side: 2 }
            .builder()
            .link_mbps(100)
            .host_mbps(100)
            .delay_ns(0)
            .seed(1)
            .build();
        let a = partition(&t.net, 4, PartitionStrategy::RoundRobin);
        assert_eq!(a[t.switches[0].0 as usize], a[t.switches[1].0 as usize]);
        // With every link at zero delay there is exactly one component.
        assert!(lookahead(&t.net, &a).is_none() || lookahead(&t.net, &a) > Some(0));
    }

    #[test]
    fn locality_keeps_hosts_with_their_edge_switch() {
        let t =
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(1).build();
        let a = partition(&t.net, 4, PartitionStrategy::Locality);
        for &h in &t.hosts {
            let (_, edge) = t.net.neighbors(h)[0];
            assert_eq!(a[h.0 as usize], a[edge.0 as usize], "host follows its edge switch");
        }
        // All four shards get work.
        let mut used: Vec<usize> = a.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 4);
        // Cross-shard links exist and carry the uniform 1000ns delay.
        assert_eq!(lookahead(&t.net, &a), Some(1000));
    }

    #[test]
    fn round_robin_splits_a_star() {
        let t =
            TopologySpec::Star { hosts: 6 }.builder().host_mbps(100).delay_ns(500).seed(1).build();
        let a = partition(&t.net, 2, PartitionStrategy::RoundRobin);
        let mut used: Vec<usize> = a.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 2, "star must actually split");
        assert_eq!(lookahead(&t.net, &a), Some(500));
    }

    #[test]
    fn lookahead_folds_planned_link_degrades() {
        let mut t =
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(1).build();
        let a = partition(&t.net, 4, PartitionStrategy::Locality);
        assert_eq!(lookahead(&t.net, &a), Some(1000));
        // Schedule a mid-run degrade of a cross-shard link to 400ns: the
        // lookahead must shrink to it *before* the run starts.
        let (node, port) = t
            .net
            .links_iter()
            .find(|&(x, _, y, _, _)| a[x.0 as usize] != a[y.0 as usize])
            .map(|(x, px, _, _, _)| (x, px))
            .unwrap();
        t.net.schedule_reconfig(
            1_000_000,
            ReconfigAction::LinkDegrade { node, port, rate_mbps: 100, delay_ns: 400 },
        );
        assert_eq!(lookahead(&t.net, &a), Some(400));
        // A degrade on a shard-local link leaves the lookahead alone.
        let mut t2 =
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(1).build();
        let (h, hp) = t2
            .net
            .links_iter()
            .find(|&(x, _, y, _, _)| a[x.0 as usize] == a[y.0 as usize])
            .map(|(x, px, _, _, _)| (x, px))
            .unwrap();
        t2.net.schedule_reconfig(
            1_000_000,
            ReconfigAction::LinkDegrade { node: h, port: hp, rate_mbps: 100, delay_ns: 1 },
        );
        assert_eq!(lookahead(&t2.net, &a), Some(1000));
    }

    #[test]
    fn locality_glues_low_delay_meshes_on_two_scale_fabrics() {
        // Two sites at 1 µs intra / 250 µs WAN: each site must collapse
        // into one component, so the only cross-shard links are WAN links.
        let t = TopologySpec::MultiSite {
            sites: 2,
            site_k: 4,
            wan_delay_ns: 250_000,
            wan_delay_step_ns: 0,
            wan_mbps: 400,
            wan_site_mbps: Vec::new(),
            wan_queue_bytes: 0,
        }
        .builder()
        .link_mbps(1000)
        .delay_ns(1000)
        .seed(1)
        .build();
        let a = partition(&t.net, 2, PartitionStrategy::Locality);
        for (x, _, y, _, spec) in t.net.links_iter() {
            if a[x.0 as usize] != a[y.0 as usize] {
                assert_eq!(spec.delay_ns, 250_000, "only WAN links may cross shards");
            }
        }
        assert_eq!(lookahead(&t.net, &a), Some(250_000));
        // Both shards still get a whole site's worth of work.
        let mut used: Vec<usize> = a.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn balance_is_reasonable_on_fat_tree() {
        let t =
            TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(1).build();
        let a = partition(&t.net, 4, PartitionStrategy::Locality);
        let mut weights = vec![0u64; 4];
        for (i, &s) in a.iter().enumerate() {
            weights[s] += if t.net.is_switch(tpp_netsim::NodeId(i as u32)) { 4 } else { 1 };
        }
        let (min, max) = (*weights.iter().min().unwrap(), *weights.iter().max().unwrap());
        assert!(max <= 2 * min, "shard weights unbalanced: {weights:?}");
    }
}
