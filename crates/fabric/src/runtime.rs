//! The sharded runtime: conservative lookahead epochs over shard kernels.
//!
//! A shard kernel is not a private engine: it is the same layered
//! `tpp-netsim` core — timing-wheel `Scheduler`, `LinkFabric`, `NodeStore`
//! — driven through the same batched `Network` coordinator, just with
//! remote markers in the node layer and the full port table in the link
//! layer. Each epoch simply calls the kernel's `run_until` (same-timestamp
//! batch delivery included) and exchanges the link layer's boundary frames
//! at the barrier.
//!
//! Both executors — thread-per-shard and sequential — run the *same*
//! epoch/exchange schedule and therefore produce bit-identical results;
//! the sequential path exists for single-core machines (no barrier or
//! context-switch overhead, but still the smaller per-shard event wheels
//! and working sets) and for debugging.

use std::sync::{Barrier, Mutex};

use tpp_netsim::{NetStats, Network, NodeId, RemoteFrame, Time};

use crate::partition::{lookahead, partition, PartitionStrategy};

/// How epochs are driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Threads when the machine has ≥ 2 cores, sequential otherwise.
    Auto,
    /// One OS thread per shard, synchronized by a barrier per epoch.
    Threaded,
    /// All shards driven round-robin by the calling thread.
    Sequential,
}

/// A partitioned simulation: shard kernels plus the synchronization plan.
pub struct Fabric {
    shards: Vec<Network>,
    assignment: Vec<usize>,
    /// Minimum cross-shard link delay; `Time::MAX` when nothing crosses.
    lookahead: Time,
    /// Last barrier-synchronized time (`None` before the first window).
    synced: Option<Time>,
    mode: ExecMode,
}

impl Fabric {
    /// Partition a freshly built network into `n_shards` kernels.
    ///
    /// The network must not have started running (see
    /// [`Network::split`]); set applications and link faults first.
    pub fn new(net: Network, n_shards: usize, strategy: PartitionStrategy) -> Fabric {
        let assignment = partition(&net, n_shards, strategy);
        Self::from_assignment(net, assignment, n_shards)
    }

    /// Partition with an explicit, caller-computed assignment.
    pub fn from_assignment(net: Network, assignment: Vec<usize>, n_shards: usize) -> Fabric {
        let la = lookahead(&net, &assignment).unwrap_or(Time::MAX);
        assert!(
            la > 0,
            "zero-delay links may not cross shards (the partitioner never does this; \
             explicit assignments must respect it too)"
        );
        let shards = net.split(&assignment, n_shards);
        Fabric { shards, assignment, lookahead: la, synced: None, mode: ExecMode::Auto }
    }

    /// Select the executor (default [`ExecMode::Auto`]).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative epoch length (min cross-shard delay), or
    /// `Time::MAX` when the shards are independent.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// The shard that owns `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.0 as usize]
    }

    /// The shard kernels (read-only; handy for per-switch inspection).
    pub fn shards(&self) -> &[Network] {
        &self.shards
    }

    /// Total events pending across every shard's scheduler layer.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(Network::pending_events).sum()
    }

    /// Read-only access to the kernel owning `node`.
    pub fn shard_for(&self, node: NodeId) -> &Network {
        &self.shards[self.shard_of(node)]
    }

    /// Downcast a host's application on its owning shard.
    pub fn app_mut<T: 'static>(&mut self, node: NodeId) -> &mut T {
        let s = self.shard_of(node);
        self.shards[s].app_mut(node)
    }

    /// Merged statistics across shards. `trace` folds commutatively, so
    /// the merged [`NetStats::digest`] is comparable with a
    /// single-threaded run of the same scenario and seed.
    pub fn stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for s in &self.shards {
            out.merge(&s.stats);
        }
        out
    }

    /// The fabric-wide clock: the barrier time every shard has reached.
    pub fn now(&self) -> Time {
        self.synced.unwrap_or(0)
    }

    /// Advance every shard to `until`, exchanging cross-shard frames at
    /// conservative epoch boundaries. Times the fabric has already reached
    /// are a no-op — the clock never moves backwards.
    pub fn run_until(&mut self, until: Time) {
        if self.synced.is_some_and(|t| until <= t) {
            return;
        }
        if self.shards.len() <= 1 || self.lookahead == Time::MAX {
            // No synchronization needed: shards share no links.
            for s in &mut self.shards {
                s.run_until(until);
            }
            self.synced = Some(self.synced.unwrap_or(0).max(until));
            return;
        }
        let threaded = match self.mode {
            ExecMode::Threaded => true,
            ExecMode::Sequential => false,
            ExecMode::Auto => {
                std::thread::available_parallelism().map(|p| p.get() >= 2).unwrap_or(false)
            }
        };
        if threaded {
            self.run_epochs_threaded(until);
        } else {
            self.run_epochs_sequential(until);
        }
        self.synced = Some(self.synced.unwrap_or(0).max(until));
    }

    /// Run for `dur` more nanoseconds, measured from the *barrier* time
    /// ([`Fabric::now`]) — not from the last processed event's timestamp
    /// the way `Network::run_for` measures. The two therefore cover
    /// different horizons for the same `dur`; drive differential
    /// comparisons with `run_until` and absolute times.
    pub fn run_for(&mut self, dur: Time) {
        let until = self.now() + dur;
        self.run_until(until);
    }

    /// The epoch schedule: after a barrier at `synced`, every event a shard
    /// processes in `(synced, synced + L]` produces cross-shard arrivals
    /// strictly later than `synced + L`, so windows of length `L` are safe.
    /// Before the first barrier events at t = 0 are still pending, so the
    /// first window must end at `L - 1`.
    fn next_target(synced: Option<Time>, la: Time, until: Time) -> Time {
        match synced {
            None => (la - 1).min(until),
            Some(t) => t.saturating_add(la).min(until),
        }
    }

    /// Route one epoch's outbox frames to per-shard batches, sort each
    /// batch into its deterministic injection order, and inject.
    fn exchange(shards: &mut [Network], assignment: &[usize]) {
        let n = shards.len();
        let mut batches: Vec<Vec<RemoteFrame>> = (0..n).map(|_| Vec::new()).collect();
        for s in shards.iter_mut() {
            for f in s.take_outbox() {
                batches[assignment[f.node.0 as usize]].push(f);
            }
        }
        for (s, mut batch) in batches.into_iter().enumerate() {
            batch.sort_by_key(|f| (f.at, f.node.0, f.port, f.seq));
            for f in batch {
                shards[s].inject_remote(f);
            }
        }
    }

    fn run_epochs_sequential(&mut self, until: Time) {
        let la = self.lookahead;
        let mut synced = self.synced;
        loop {
            let target = Self::next_target(synced, la, until);
            for s in &mut self.shards {
                s.run_until(target);
            }
            Self::exchange(&mut self.shards, &self.assignment);
            synced = Some(target);
            if target >= until {
                break;
            }
        }
        self.synced = synced;
    }

    fn run_epochs_threaded(&mut self, until: Time) {
        let n = self.shards.len();
        let la = self.lookahead;
        let start_synced = self.synced;
        let barrier = Barrier::new(n);
        let inboxes: Vec<Mutex<Vec<RemoteFrame>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let assignment = &self.assignment;
        std::thread::scope(|scope| {
            for (i, net) in self.shards.iter_mut().enumerate() {
                let barrier = &barrier;
                let inboxes = &inboxes;
                scope.spawn(move || {
                    let mut synced = start_synced;
                    loop {
                        let target = Self::next_target(synced, la, until);
                        net.run_until(target);
                        // Route this window's boundary frames. Grouping by
                        // destination shard first means each inbox is
                        // locked once per window; the stable sort keeps
                        // per-link transmit order intact.
                        let mut out = net.take_outbox();
                        out.sort_by_key(|f| assignment[f.node.0 as usize]);
                        let mut it = out.into_iter().peekable();
                        while let Some(first) = it.peek() {
                            let dst = assignment[first.node.0 as usize];
                            let mut lock = inboxes[dst].lock().unwrap();
                            while let Some(f) = it.peek() {
                                if assignment[f.node.0 as usize] != dst {
                                    break;
                                }
                                lock.push(it.next().unwrap());
                            }
                        }
                        // Everyone has routed this window's frames.
                        barrier.wait();
                        // Inject whatever has been routed to us so far.
                        // (A fast neighbor may already have pushed frames
                        // from its *next* window; their arrival times are
                        // beyond our next target, so early injection is
                        // harmless.)
                        let mut incoming = std::mem::take(&mut *inboxes[i].lock().unwrap());
                        incoming.sort_by_key(|f| (f.at, f.node.0, f.port, f.seq));
                        for f in incoming {
                            net.inject_remote(f);
                        }
                        synced = Some(target);
                        if target >= until {
                            break;
                        }
                    }
                });
            }
        });
    }
}
