//! Static analysis of TPPs (paper §3.5, §4.1, §4.3).
//!
//! TPPs are "relatively amenable to static analysis, particularly since a
//! TPP contains at most five instructions" (§4.3). This module provides:
//!
//! * the access set of a program (which switch addresses it reads/writes),
//!   used by TPP-CP to enforce per-application memory segments;
//! * write detection, used by the hypervisor-style policy that drops any
//!   TPP with write instructions;
//! * data-hazard detection (write-after-write / read-after-write on the same
//!   switch address), which out-of-order stage execution requires end-hosts
//!   to avoid (§3.5);
//! * the PUSH/POP → LOAD/STORE serialization pass of §3.5, which converts
//!   stack operations to absolute-offset accesses so they can execute out of
//!   order;
//! * packet-memory bounds checking.

use crate::addr::{is_architecturally_writable, Address};
use crate::isa::{Instruction, Opcode, PacketOperands};
use crate::wire::tpp::{AddrMode, Tpp};

/// How an instruction accesses a switch address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    Read,
    Write,
    /// CSTORE: read-modify-write.
    ReadWrite,
}

impl Access {
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// The switch-memory access performed by one instruction.
pub fn instruction_access(ins: &Instruction) -> (Address, Access) {
    let access = match ins.opcode {
        Opcode::Load | Opcode::Push | Opcode::Cexec => Access::Read,
        Opcode::Store | Opcode::Pop => Access::Write,
        Opcode::Cstore => Access::ReadWrite,
    };
    (ins.addr, access)
}

/// The full access set of a program, in program order.
pub fn access_set(instrs: &[Instruction]) -> Vec<(Address, Access)> {
    instrs.iter().map(instruction_access).collect()
}

/// Does the program write to switch memory at all? (The §4.3 hypervisor
/// check: "drop any TPPs with write instructions".)
pub fn writes_switch_memory(instrs: &[Instruction]) -> bool {
    instrs.iter().any(|i| i.opcode.writes_switch_memory())
}

/// An address interval `[start, end]` with a permission, forming the
/// GDT-like memory access-control table of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    pub start: Address,
    pub end: Address,
    pub allow_write: bool,
}

impl Segment {
    pub fn read_only(start: Address, end: Address) -> Self {
        Segment { start, end, allow_write: false }
    }
    pub fn read_write(start: Address, end: Address) -> Self {
        Segment { start, end, allow_write: true }
    }
    pub fn contains(&self, a: Address) -> bool {
        self.start <= a && a <= self.end
    }
}

/// A policy violation discovered by [`check_segments`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub instr_index: usize,
    pub addr: Address,
    pub access: Access,
    pub reason: ViolationReason,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationReason {
    /// No segment grants any access to this address.
    OutsideSegments,
    /// A segment covers the address but does not permit writing.
    WriteNotPermitted,
    /// The address is architecturally read-only yet the program writes it.
    ArchitecturallyReadOnly,
}

/// Check every access in the program against the permitted `segments`
/// (§4.1: "TPPs are statically analyzed, to see if it accesses memories
/// outside the permitted address range; if so, the API call returns a
/// failure and the TPP is never installed").
pub fn check_segments(instrs: &[Instruction], segments: &[Segment]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, ins) in instrs.iter().enumerate() {
        let (addr, access) = instruction_access(ins);
        let covering: Vec<&Segment> = segments.iter().filter(|s| s.contains(addr)).collect();
        if covering.is_empty() {
            out.push(Violation {
                instr_index: idx,
                addr,
                access,
                reason: ViolationReason::OutsideSegments,
            });
            continue;
        }
        if access.is_write() {
            if !is_architecturally_writable(addr) {
                out.push(Violation {
                    instr_index: idx,
                    addr,
                    access,
                    reason: ViolationReason::ArchitecturallyReadOnly,
                });
            } else if !covering.iter().any(|s| s.allow_write) {
                out.push(Violation {
                    instr_index: idx,
                    addr,
                    access,
                    reason: ViolationReason::WriteNotPermitted,
                });
            }
        }
    }
    out
}

/// Data hazards on *switch* addresses that make out-of-order execution
/// unsafe (§3.5: end-hosts must "ensure there are no write-after-write, or
/// read-after-write conflicts").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hazard {
    WriteAfterWrite { first: usize, second: usize, addr: Address },
    ReadAfterWrite { write: usize, read: usize, addr: Address },
}

/// Detect WAW/RAW hazards between instructions at different program points
/// touching the same switch address.
pub fn find_hazards(instrs: &[Instruction]) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for i in 0..instrs.len() {
        for j in i + 1..instrs.len() {
            let (ai, acci) = instruction_access(&instrs[i]);
            let (aj, accj) = instruction_access(&instrs[j]);
            if ai != aj {
                continue;
            }
            match (acci.is_write(), accj.is_write()) {
                (true, true) => {
                    hazards.push(Hazard::WriteAfterWrite { first: i, second: j, addr: ai });
                }
                (true, false) => {
                    hazards.push(Hazard::ReadAfterWrite { write: i, read: j, addr: ai });
                }
                _ => {}
            }
        }
    }
    hazards
}

/// Errors from the PUSH/POP serialization pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerializeError {
    /// An absolute word offset exceeded the 8-bit operand encoding.
    OffsetTooLarge(usize),
    /// POP with nothing on the (statically tracked) stack.
    StackUnderflow(usize),
}

/// The §3.5 pass: convert PUSH/POP instructions into hop-addressed
/// LOAD/STOREs with *absolute* word offsets (valid for one hop with
/// `per_hop_len == 0`), so all instructions can execute out of order.
///
/// The paper's example:
///
/// ```text
/// PUSH [PacketMetadata:OutputPort]      LOAD  [..OutputPort], [Packet:Hop[0]]
/// PUSH [PacketMetadata:InputPort]   =>  LOAD  [..InputPort],  [Packet:Hop[1]]
/// PUSH [Stage1:Reg1]                    LOAD  [Stage1:Reg1],  [Packet:Hop[2]]
/// POP  [Stage3:Reg3]                    STORE [Stage3:Reg3],  [Packet:Hop[2]]
/// ```
pub fn serialize_pushes(
    instrs: &[Instruction],
    start_sp: u8,
) -> Result<Vec<Instruction>, SerializeError> {
    let mut sp = start_sp as usize;
    let mut out = Vec::with_capacity(instrs.len());
    for (idx, ins) in instrs.iter().enumerate() {
        match ins.opcode {
            Opcode::Push => {
                if sp > u8::MAX as usize {
                    return Err(SerializeError::OffsetTooLarge(idx));
                }
                out.push(Instruction::load(ins.addr, sp as u8));
                sp += 1;
            }
            Opcode::Pop => {
                if sp == 0 {
                    return Err(SerializeError::StackUnderflow(idx));
                }
                sp -= 1;
                out.push(Instruction::store(ins.addr, sp as u8));
            }
            _ => out.push(*ins),
        }
    }
    Ok(out)
}

/// Validate that every packet-memory access in the program stays within the
/// preallocated memory for the declared hop budget.
pub fn check_memory_bounds(tpp: &Tpp, max_hops: usize) -> bool {
    let words = tpp.memory_words();
    let phw = tpp.per_hop_words();
    let mut pushes_per_hop = 0usize;
    for ins in &tpp.instrs {
        match ins.packet_operands() {
            PacketOperands::Stack => pushes_per_hop += 1,
            PacketOperands::One { off, .. } => {
                let max_idx =
                    if phw > 0 { (max_hops - 1) * phw + off as usize } else { off as usize };
                if max_idx >= words {
                    return false;
                }
            }
            PacketOperands::Two { a, b, .. } => {
                for off in [a, b] {
                    let max_idx =
                        if phw > 0 { (max_hops - 1) * phw + off as usize } else { off as usize };
                    if max_idx >= words {
                        return false;
                    }
                }
            }
        }
    }
    // Stack usage: SP advances by at most pushes_per_hop per hop.
    if pushes_per_hop > 0 {
        let needed = tpp.sp as usize + pushes_per_hop * max_hops;
        if needed > words {
            return false;
        }
    }
    if tpp.mode == AddrMode::Hop && phw > 0 && max_hops * phw > words {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;
    use crate::asm::{assemble, TppBuilder};
    use crate::exec::{execute, ExecOptions, MapBus};

    fn a(m: &str) -> Address {
        resolve_mnemonic(m).unwrap()
    }

    #[test]
    fn access_set_and_write_detection() {
        let t = assemble(
            "
            PUSH [Switch:SwitchID]
            STORE [Link:AppSpecific_0], [Packet:Hop[0]]
            ",
        )
        .unwrap();
        let set = access_set(&t.instrs);
        assert_eq!(set[0], (a("Switch:SwitchID"), Access::Read));
        assert_eq!(set[1], (a("Link:AppSpecific_0"), Access::Write));
        assert!(writes_switch_memory(&t.instrs));

        let ro = assemble("PUSH [Switch:SwitchID]").unwrap();
        assert!(!writes_switch_memory(&ro.instrs));
    }

    #[test]
    fn segment_checks() {
        let app0 = a("Link:AppSpecific_0");
        let app1 = a("Link:AppSpecific_1");
        let segments = [
            Segment::read_only(a("Switch:SwitchID"), a("Switch:SwitchID")),
            Segment::read_write(app0, app1),
        ];
        // Within segments: OK.
        let t = assemble(
            "
            PUSH [Switch:SwitchID]
            STORE [Link:AppSpecific_1], [Packet:Hop[0]]
            ",
        )
        .unwrap();
        assert!(check_segments(&t.instrs, &segments).is_empty());

        // Read outside all segments.
        let t2 = assemble("PUSH [Link:TX-Utilization]").unwrap();
        let v = check_segments(&t2.instrs, &segments);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].reason, ViolationReason::OutsideSegments);

        // Write into a read-only segment.
        let seg_ro = [Segment::read_only(app0, app1)];
        let t3 = assemble("STORE [Link:AppSpecific_0], [Packet:Hop[0]]").unwrap();
        let v = check_segments(&t3.instrs, &seg_ro);
        assert_eq!(v[0].reason, ViolationReason::WriteNotPermitted);

        // Write to an architecturally read-only counter.
        let seg_all = [Segment::read_write(Address::new(0), Address::new(0xFFFF))];
        let t4 = assemble("STORE [Link:RX-Bytes], [Packet:Hop[0]]").unwrap();
        let v = check_segments(&t4.instrs, &seg_all);
        assert_eq!(v[0].reason, ViolationReason::ArchitecturallyReadOnly);
    }

    #[test]
    fn hazard_detection() {
        // RAW: write then read of the same register.
        let instrs = [Instruction::store(a("Stage1:Reg0"), 0), Instruction::push(a("Stage1:Reg0"))];
        let h = find_hazards(&instrs);
        assert_eq!(h, vec![Hazard::ReadAfterWrite { write: 0, read: 1, addr: a("Stage1:Reg0") }]);

        // WAW.
        let instrs =
            [Instruction::store(a("Stage1:Reg0"), 0), Instruction::store(a("Stage1:Reg0"), 1)];
        assert!(matches!(find_hazards(&instrs)[0], Hazard::WriteAfterWrite { .. }));

        // Distinct addresses: no hazard.
        let instrs = [Instruction::store(a("Stage1:Reg0"), 0), Instruction::push(a("Stage1:Reg1"))];
        assert!(find_hazards(&instrs).is_empty());
    }

    #[test]
    fn serialize_pushes_matches_paper_example() {
        let prog = [
            Instruction::push(a("PacketMetadata:OutputPort")),
            Instruction::push(a("PacketMetadata:InputPort")),
            Instruction::push(a("Stage1:Reg1")),
            Instruction::pop(a("Stage3:Reg3")),
        ];
        let ser = serialize_pushes(&prog, 0).unwrap();
        assert_eq!(
            ser,
            vec![
                Instruction::load(a("PacketMetadata:OutputPort"), 0),
                Instruction::load(a("PacketMetadata:InputPort"), 1),
                Instruction::load(a("Stage1:Reg1"), 2),
                Instruction::store(a("Stage3:Reg3"), 2),
            ]
        );
    }

    #[test]
    fn serialized_program_is_observationally_equivalent() {
        // Execute the original and serialized programs against identical
        // buses; packet memory and switch state must match.
        let out_port = a("PacketMetadata:OutputPort");
        let in_port = a("PacketMetadata:InputPort");
        let r1 = a("Stage1:Reg1");
        let r3 = a("Stage3:Reg3");
        let entries = [(out_port, 7), (in_port, 3), (r1, 0xAA), (r3, 0)];

        let original = TppBuilder::stack_mode()
            .push(out_port)
            .push(in_port)
            .push(r1)
            .pop(r3)
            .memory_words(8)
            .build()
            .unwrap();
        let mut t1 = original.clone();
        let mut bus1 = MapBus::with(&entries);
        execute(&mut t1, &mut bus1, &ExecOptions::default());

        let mut t2 = original.clone();
        t2.instrs = serialize_pushes(&original.instrs, 0).unwrap();
        t2.per_hop_len = 0; // absolute offsets
        let mut bus2 = MapBus::with(&entries);
        execute(&mut t2, &mut bus2, &ExecOptions::default());

        assert_eq!(t1.memory, t2.memory);
        assert_eq!(bus1.mem, bus2.mem);
        assert_eq!(bus1.get(r3), Some(0xAA));
    }

    #[test]
    fn serialize_underflow_detected() {
        let prog = [Instruction::pop(a("Stage1:Reg0"))];
        assert_eq!(serialize_pushes(&prog, 0), Err(SerializeError::StackUnderflow(0)));
        // With a nonzero starting SP it's fine.
        assert!(serialize_pushes(&prog, 1).is_ok());
    }

    #[test]
    fn memory_bounds() {
        // 3 pushes per hop, 5 hops => needs 15 words.
        let t = TppBuilder::stack_mode()
            .push(a("Switch:SwitchID"))
            .push(a("PacketMetadata:OutputPort"))
            .push(a("Queue:QueueOccupancy"))
            .memory_words(15)
            .build()
            .unwrap();
        assert!(check_memory_bounds(&t, 5));
        assert!(!check_memory_bounds(&t, 6));

        // Hop mode: per-hop window of 3 words, 4 hops => 12 words.
        let t = TppBuilder::hop_mode(3)
            .load(a("Switch:SwitchID"), 0)
            .load(a("Link:QueueSize"), 2)
            .hops(4)
            .build()
            .unwrap();
        assert!(check_memory_bounds(&t, 4));
        assert!(!check_memory_bounds(&t, 5));

        // Offset beyond window with hop budget.
        let t = TppBuilder::hop_mode(2).load(a("Switch:SwitchID"), 5).hops(4).build().unwrap();
        assert!(!check_memory_bounds(&t, 4));
    }
}
