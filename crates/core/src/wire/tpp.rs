//! The TPP section format (paper §3.4, Figure 7b).
//!
//! A TPP section is: a 12-byte header, up to [`MAX_INSTRUCTIONS`] 4-byte
//! instructions, and preallocated packet memory. It appears either directly
//! after an Ethernet header with ethertype 0x6666 (*transparent* mode,
//! encapsulating the original packet), or as the payload of a UDP datagram
//! to port 0x6666 (*standalone* mode).
//!
//! Header layout (12 bytes):
//!
//! ```text
//! byte 0      version(4) | mode(1) | reflect(1) | wrote(1) | reserved(1)
//! byte 1      instruction count (each 4 bytes)
//! byte 2      packet-memory length in bytes
//! byte 3      hop number (incremented by each switch after execution)
//! byte 4      stack pointer (in words; used by PUSH/POP)
//! byte 5      per-hop memory length in bytes (hop addressing, §3.3.2)
//! bytes 6-7   checksum (internet checksum over the whole section)
//! bytes 8-9   encapsulated ethertype (0 = none)
//! bytes 10-11 TPP application ID
//! ```
//!
//! The packet memory is preallocated by the end-host; the TPP never grows or
//! shrinks inside the network (Figure 1a).

use super::checksum;
use crate::isa::{self, Instruction, INSTR_BYTES, MAX_INSTRUCTIONS};
use core::fmt;

/// TPP wire-format version implemented by this crate.
pub const VERSION: u8 = 1;

/// TPP header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Maximum packet-memory size: the largest word-aligned value representable
/// in the one-byte header field (Figure 7b allows 40–200 bytes; we cap at
/// the encoding limit).
pub const MAX_MEMORY_BYTES: usize = 252;

/// How many hops of `per_hop_bytes` each fit in the wire memory budget
/// ([`MAX_MEMORY_BYTES`]) — the typed replacement for ad-hoc `.min(252)`
/// sizing arithmetic. Zero-byte layouts report the word capacity.
pub const fn max_hops(per_hop_bytes: usize) -> usize {
    match MAX_MEMORY_BYTES.checked_div(per_hop_bytes) {
        Some(n) => n,
        None => MAX_MEMORY_BYTES / 4,
    }
}

/// Memory addressing modes (Figure 7b field 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AddrMode {
    /// PUSH/POP against the stack pointer.
    #[default]
    Stack,
    /// `base:offset` hop addressing: word at `hop * per_hop_words + offset`.
    Hop,
}

/// Errors from parsing a TPP section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TppError {
    Truncated,
    BadVersion(u8),
    BadChecksum,
    BadInstruction(u8),
    /// Packet memory length is not word-aligned.
    UnalignedMemory(u8),
}

impl fmt::Display for TppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TppError::Truncated => write!(f, "TPP section truncated"),
            TppError::BadVersion(v) => write!(f, "unsupported TPP version {v}"),
            TppError::BadChecksum => write!(f, "TPP checksum mismatch"),
            TppError::BadInstruction(op) => write!(f, "unknown opcode {op:#04x}"),
            TppError::UnalignedMemory(l) => write!(f, "packet memory length {l} not word-aligned"),
        }
    }
}

impl std::error::Error for TppError {}

/// An owned, decoded TPP: header fields, instructions, and packet memory.
///
/// This is the object the TCPU executes against and the end-host stack
/// manipulates. [`Tpp::serialize`] and [`Tpp::parse`] convert to/from the
/// wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tpp {
    pub mode: AddrMode,
    /// Reflect bit: switches send the TPP back to its source (§4.4).
    pub reflect: bool,
    /// Set by any switch that performed a switch-memory write.
    pub wrote: bool,
    /// Hop number; incremented by each switch after executing the TPP.
    pub hop: u8,
    /// Stack pointer in words, advanced by PUSH.
    pub sp: u8,
    /// Per-hop window size in bytes (0 means offsets are absolute).
    pub per_hop_len: u8,
    /// Ethertype of the encapsulated payload; 0 when standalone.
    pub encap_proto: u16,
    /// Application ID assigned by the TPP control plane (§4.1).
    pub app_id: u16,
    pub instrs: Vec<Instruction>,
    /// Preallocated packet memory (word-aligned length, max 255 bytes).
    pub memory: Vec<u8>,
}

impl Default for Tpp {
    fn default() -> Self {
        Tpp {
            mode: AddrMode::Stack,
            reflect: false,
            wrote: false,
            hop: 0,
            sp: 0,
            per_hop_len: 0,
            encap_proto: 0,
            app_id: 0,
            instrs: Vec::new(),
            memory: Vec::new(),
        }
    }
}

impl Tpp {
    /// Total serialized length of the section (excluding any encapsulated
    /// payload).
    pub fn section_len(&self) -> usize {
        HEADER_LEN + self.instrs.len() * INSTR_BYTES + self.memory.len()
    }

    /// Number of words of packet memory.
    pub fn memory_words(&self) -> usize {
        self.memory.len() / 4
    }

    /// Per-hop window size in words.
    pub fn per_hop_words(&self) -> usize {
        (self.per_hop_len / 4) as usize
    }

    /// Read packet-memory word `idx` (word-granular indexing).
    pub fn read_word(&self, idx: usize) -> Option<u32> {
        let b = self.memory.get(idx * 4..idx * 4 + 4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Write packet-memory word `idx`. Returns `None` (and leaves memory
    /// untouched) when out of bounds.
    pub fn write_word(&mut self, idx: usize, value: u32) -> Option<()> {
        let b = self.memory.get_mut(idx * 4..idx * 4 + 4)?;
        b.copy_from_slice(&value.to_be_bytes());
        Some(())
    }

    /// Resolve a hop-relative word offset to an absolute word index for the
    /// *current* hop.
    pub fn hop_word_index(&self, offset: u8) -> usize {
        self.hop as usize * self.per_hop_words() + offset as usize
    }

    /// Read the word at hop-relative `offset` for the current hop.
    pub fn read_hop_word(&self, offset: u8) -> Option<u32> {
        self.read_word(self.hop_word_index(offset))
    }

    /// Write the word at hop-relative `offset` for the current hop.
    pub fn write_hop_word(&mut self, offset: u8, value: u32) -> Option<()> {
        self.write_word(self.hop_word_index(offset), value)
    }

    /// All words currently in memory (for result extraction at end-hosts).
    pub fn words(&self) -> Vec<u32> {
        self.iter_words().collect()
    }

    /// Iterate the packet-memory words without allocating.
    pub fn iter_words(&self) -> impl Iterator<Item = u32> + '_ {
        self.memory.chunks_exact(4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// The values collected for hop `h` as a word slice view.
    pub fn hop_words(&self, h: u8) -> Vec<u32> {
        self.iter_hop_words(h).collect()
    }

    /// Iterate the per-hop window of hop `h` without allocating. Empty when
    /// hop addressing is off; truncated at the end of memory.
    pub fn iter_hop_words(&self, h: u8) -> impl Iterator<Item = u32> + '_ {
        let phw = self.per_hop_words();
        let start = (h as usize * phw * 4).min(self.memory.len());
        let end = (start + phw * 4).min(self.memory.len());
        self.memory[start..end]
            .chunks_exact(4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Serialize to wire bytes, computing the checksum (Figure 7b field 6).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.section_len()];
        self.emit(&mut out);
        out
    }

    /// Emit into a preallocated buffer of at least [`Tpp::section_len`] bytes.
    pub fn emit(&self, buf: &mut [u8]) {
        let n = self.section_len();
        assert!(buf.len() >= n, "buffer too small for TPP section");
        let mode_bit = match self.mode {
            AddrMode::Stack => 0,
            AddrMode::Hop => 1,
        };
        buf[0] = (VERSION << 4)
            | (mode_bit << 3)
            | ((self.reflect as u8) << 2)
            | ((self.wrote as u8) << 1);
        buf[1] = self.instrs.len() as u8;
        buf[2] = self.memory.len() as u8;
        buf[3] = self.hop;
        buf[4] = self.sp;
        buf[5] = self.per_hop_len;
        buf[6] = 0;
        buf[7] = 0;
        buf[8..10].copy_from_slice(&self.encap_proto.to_be_bytes());
        buf[10..12].copy_from_slice(&self.app_id.to_be_bytes());
        let mut off = HEADER_LEN;
        for i in &self.instrs {
            buf[off..off + INSTR_BYTES].copy_from_slice(&i.encode());
            off += INSTR_BYTES;
        }
        buf[off..off + self.memory.len()].copy_from_slice(&self.memory);
        let c = checksum::checksum(&buf[..n]);
        buf[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Parse a TPP section from the front of `bytes`, verifying the
    /// checksum. Returns the TPP and the number of bytes consumed; any
    /// remaining bytes are the encapsulated payload.
    pub fn parse(bytes: &[u8]) -> Result<(Tpp, usize), TppError> {
        if bytes.len() < HEADER_LEN {
            return Err(TppError::Truncated);
        }
        let version = bytes[0] >> 4;
        if version != VERSION {
            return Err(TppError::BadVersion(version));
        }
        let mode = if bytes[0] & 0x08 != 0 { AddrMode::Hop } else { AddrMode::Stack };
        let reflect = bytes[0] & 0x04 != 0;
        let wrote = bytes[0] & 0x02 != 0;
        let n_instr = bytes[1] as usize;
        let mem_len = bytes[2] as usize;
        if !mem_len.is_multiple_of(4) {
            return Err(TppError::UnalignedMemory(bytes[2]));
        }
        let total = HEADER_LEN + n_instr * INSTR_BYTES + mem_len;
        if bytes.len() < total {
            return Err(TppError::Truncated);
        }
        if !checksum::verify(&bytes[..total]) {
            return Err(TppError::BadChecksum);
        }
        let instrs = isa::decode_program(&bytes[HEADER_LEN..HEADER_LEN + n_instr * INSTR_BYTES])
            .map_err(|e| match e {
                isa::ProgramError::BadOpcode { opcode, .. } => TppError::BadInstruction(opcode),
                // Unreachable: the slice length is n_instr * INSTR_BYTES.
                isa::ProgramError::TrailingBytes => TppError::Truncated,
            })?;
        let memory = bytes[total - mem_len..total].to_vec();
        Ok((
            Tpp {
                mode,
                reflect,
                wrote,
                hop: bytes[3],
                sp: bytes[4],
                per_hop_len: bytes[5],
                encap_proto: u16::from_be_bytes([bytes[8], bytes[9]]),
                app_id: u16::from_be_bytes([bytes[10], bytes[11]]),
                instrs,
                memory,
            },
            total,
        ))
    }

    /// Whether the program respects the architectural instruction budget.
    pub fn within_instruction_budget(&self) -> bool {
        self.instrs.len() <= MAX_INSTRUCTIONS
    }

    /// Whether every hop up to `n_hops` fits in the preallocated memory.
    pub fn fits_hops(&self, n_hops: usize) -> bool {
        self.per_hop_words() == 0 || n_hops * self.per_hop_len as usize <= self.memory.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;

    fn sample() -> Tpp {
        Tpp {
            mode: AddrMode::Hop,
            reflect: true,
            wrote: false,
            hop: 2,
            sp: 0,
            per_hop_len: 12,
            encap_proto: 0x0800,
            app_id: 0xBEEF,
            instrs: vec![
                Instruction::push(resolve_mnemonic("Switch:SwitchID").unwrap()),
                Instruction::load(resolve_mnemonic("Queue:QueueOccupancy").unwrap(), 1),
                Instruction::cstore(resolve_mnemonic("Link:AppSpecific_0").unwrap(), 0, 1),
            ],
            memory: vec![0u8; 60],
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let t = sample();
        let bytes = t.serialize();
        assert_eq!(bytes.len(), t.section_len());
        let (back, consumed) = Tpp::parse(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, t);
    }

    #[test]
    fn section_len_matches_paper_overheads() {
        // §2.1: 3 instructions + 5 hops x 6B... our words are 4B so 3 stats
        // x 4B x 5 hops = 60B memory; header 12B + instrs 12B = 84B total.
        let mut t = sample();
        t.memory = vec![0; 60];
        assert_eq!(t.section_len(), 12 + 12 + 60);
    }

    #[test]
    fn checksum_detects_corruption() {
        let t = sample();
        let bytes = t.serialize();
        for byte in [0usize, 3, HEADER_LEN, bytes.len() - 1] {
            let mut m = bytes.clone();
            m[byte] ^= 0x10;
            match Tpp::parse(&m) {
                Err(_) => {}
                Ok(_) => panic!("corruption at byte {byte} undetected"),
            }
        }
        // Untouched still parses.
        assert!(Tpp::parse(&bytes).is_ok());
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let bytes = t.serialize();
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            assert_eq!(Tpp::parse(&bytes[..cut]), Err(TppError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_payload_not_consumed() {
        let t = sample();
        let mut bytes = t.serialize();
        let section = bytes.len();
        bytes.extend_from_slice(b"inner ip packet");
        let (_, consumed) = Tpp::parse(&bytes).unwrap();
        assert_eq!(consumed, section);
    }

    #[test]
    fn word_accessors() {
        let mut t = sample();
        assert_eq!(t.memory_words(), 15);
        assert_eq!(t.per_hop_words(), 3);
        t.write_word(0, 0xDEAD_BEEF).unwrap();
        assert_eq!(t.read_word(0), Some(0xDEAD_BEEF));
        assert_eq!(t.read_word(15), None);
        assert_eq!(t.write_word(15, 1), None);
        // Hop addressing: hop=2, offset 1 -> word 7.
        t.write_hop_word(1, 77).unwrap();
        assert_eq!(t.read_word(7), Some(77));
        assert_eq!(t.hop_words(2), vec![0, 77, 0]);
        // The alloc-free iterators agree with the Vec-returning accessors.
        assert_eq!(t.iter_words().collect::<Vec<_>>(), t.words());
        assert_eq!(t.iter_hop_words(2).collect::<Vec<_>>(), t.hop_words(2));
        assert_eq!(t.iter_hop_words(200).count(), 0); // window past the end
    }

    #[test]
    fn fits_hops() {
        let t = sample(); // 60B memory, 12B/hop
        assert!(t.fits_hops(5));
        assert!(!t.fits_hops(6));
    }

    #[test]
    fn bad_version_rejected() {
        let t = sample();
        let mut bytes = t.serialize();
        bytes[0] = (2 << 4) | (bytes[0] & 0x0F);
        // Fix checksum so we specifically hit the version check.
        bytes[6] = 0;
        bytes[7] = 0;
        let c = checksum::checksum(&bytes);
        bytes[6..8].copy_from_slice(&c.to_be_bytes());
        assert_eq!(Tpp::parse(&bytes), Err(TppError::BadVersion(2)));
    }

    #[test]
    fn unaligned_memory_rejected() {
        let t = sample();
        let mut bytes = t.serialize();
        bytes[2] = 13;
        assert!(matches!(
            Tpp::parse(&bytes),
            Err(TppError::UnalignedMemory(13) | TppError::Truncated | TppError::BadChecksum)
        ));
    }

    #[test]
    fn budget_check() {
        let mut t = sample();
        assert!(t.within_instruction_budget());
        let i = t.instrs[0];
        t.instrs = vec![i; 6];
        assert!(!t.within_instruction_budget());
    }
}
