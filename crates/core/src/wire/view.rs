//! Borrowed views over a TPP section in wire form — the zero-allocation
//! fast path.
//!
//! # The two-representation design
//!
//! The crate keeps **two** representations of a TPP:
//!
//! * [`Tpp`] — the *owned* form: header fields, a
//!   `Vec<Instruction>` and a `Vec<u8>` of packet memory. This is the
//!   end-host and control-plane representation: builders, the assembler,
//!   static analysis and application-level result extraction all operate on
//!   it, and it remains the reference semantics that differential tests
//!   execute against.
//! * [`TppView`] / [`TppViewMut`] — *borrowed* views directly over the wire
//!   bytes of a frame. A view is validated once ([`TppView::parse`]): shape,
//!   version, word alignment, checksum, and every opcode. After that, header
//!   fields are read straight out of the buffer and instructions are decoded
//!   lazily, four bytes at a time, with no heap allocation anywhere.
//!
//! Switches forward millions of packets and touch only a handful of words
//! per TPP, so the forwarding path uses [`TppViewMut`] to execute programs
//! *in place* in the received frame (see
//! [`execute_in_place`](crate::exec::execute_in_place)): packet-memory
//! words, the SP/hop/flag bytes — and the section checksum is maintained
//! **incrementally** per RFC 1624 ([`checksum::update`]) instead of being
//! recomputed over the whole section. Every mutator on [`TppViewMut`]
//! preserves the checksum invariant, so the section is valid wire format
//! after every single write.
//!
//! One deliberate asymmetry: a parse→execute→re-serialize round trip through
//! the owned [`Tpp`] zeroes the reserved bit of byte 0, while the
//! in-place path preserves unknown bits it never touches. Sections produced
//! by [`Tpp::serialize`](super::Tpp::serialize) always carry a zero reserved
//! bit, so the two paths are byte-identical for every frame this stack
//! builds (property-tested in `tests/proptests.rs`).

use super::checksum;
use super::tpp::{AddrMode, Tpp, TppError, HEADER_LEN, VERSION};
use crate::isa::{self, Instruction, INSTR_BYTES};

/// Validated shape of a section: instruction count, memory length, total
/// byte length.
#[derive(Clone, Copy, Debug)]
struct Shape {
    n_instr: usize,
    mem_len: usize,
    total: usize,
}

impl Shape {
    /// Re-derive the shape from the header of already-validated bytes.
    fn of_trusted(bytes: &[u8]) -> Shape {
        let n_instr = bytes[1] as usize;
        let mem_len = bytes[2] as usize;
        Shape { n_instr, mem_len, total: HEADER_LEN + n_instr * INSTR_BYTES + mem_len }
    }
}

/// Run the full §3.4 validation a switch performs once per packet: bounds,
/// version, memory alignment, checksum, opcodes.
fn validate(bytes: &[u8]) -> Result<Shape, TppError> {
    if bytes.len() < HEADER_LEN {
        return Err(TppError::Truncated);
    }
    let version = bytes[0] >> 4;
    if version != VERSION {
        return Err(TppError::BadVersion(version));
    }
    let n_instr = bytes[1] as usize;
    let mem_len = bytes[2] as usize;
    if !mem_len.is_multiple_of(4) {
        return Err(TppError::UnalignedMemory(bytes[2]));
    }
    let total = HEADER_LEN + n_instr * INSTR_BYTES + mem_len;
    if bytes.len() < total {
        return Err(TppError::Truncated);
    }
    if !checksum::verify(&bytes[..total]) {
        return Err(TppError::BadChecksum);
    }
    isa::validate_program(&bytes[HEADER_LEN..HEADER_LEN + n_instr * INSTR_BYTES]).map_err(|e| {
        match e {
            isa::ProgramError::BadOpcode { opcode, .. } => TppError::BadInstruction(opcode),
            // Unreachable: the slice length is n_instr * INSTR_BYTES.
            isa::ProgramError::TrailingBytes => TppError::Truncated,
        }
    })?;
    Ok(Shape { n_instr, mem_len, total })
}

macro_rules! view_accessors {
    () => {
        /// Instruction count carried in the header.
        pub fn n_instr(&self) -> usize {
            self.shape.n_instr
        }

        /// Packet-memory length in bytes.
        pub fn mem_len(&self) -> usize {
            self.shape.mem_len
        }

        /// Total serialized length of the section.
        pub fn section_len(&self) -> usize {
            self.shape.total
        }

        /// Memory addressing mode (Figure 7b field 3).
        pub fn mode(&self) -> AddrMode {
            if self.bytes[0] & 0x08 != 0 {
                AddrMode::Hop
            } else {
                AddrMode::Stack
            }
        }

        /// Reflect bit (§4.4).
        pub fn reflect(&self) -> bool {
            self.bytes[0] & 0x04 != 0
        }

        /// Wrote bit: some switch performed a switch-memory write.
        pub fn wrote(&self) -> bool {
            self.bytes[0] & 0x02 != 0
        }

        /// Hop number.
        pub fn hop(&self) -> u8 {
            self.bytes[3]
        }

        /// Stack pointer, in words.
        pub fn sp(&self) -> u8 {
            self.bytes[4]
        }

        /// Per-hop window size in bytes.
        pub fn per_hop_len(&self) -> u8 {
            self.bytes[5]
        }

        /// Per-hop window size in words.
        pub fn per_hop_words(&self) -> usize {
            (self.bytes[5] / 4) as usize
        }

        /// Ethertype of the encapsulated payload; 0 when standalone.
        pub fn encap_proto(&self) -> u16 {
            u16::from_be_bytes([self.bytes[8], self.bytes[9]])
        }

        /// TPP application ID.
        pub fn app_id(&self) -> u16 {
            u16::from_be_bytes([self.bytes[10], self.bytes[11]])
        }

        /// Number of words of packet memory.
        pub fn memory_words(&self) -> usize {
            self.shape.mem_len / 4
        }

        /// Decode instruction `i` (validated at parse; decoding cannot fail).
        pub fn instr(&self, i: usize) -> Instruction {
            debug_assert!(i < self.shape.n_instr);
            let off = HEADER_LEN + i * INSTR_BYTES;
            Instruction::decode([
                self.bytes[off],
                self.bytes[off + 1],
                self.bytes[off + 2],
                self.bytes[off + 3],
            ])
            .expect("opcodes validated at parse")
        }

        /// Iterate the program without allocating.
        pub fn instrs(&self) -> impl Iterator<Item = Instruction> + '_ {
            (0..self.shape.n_instr).map(move |i| self.instr(i))
        }

        /// Byte offset of packet-memory word `idx` within the section.
        fn word_off(&self, idx: usize) -> usize {
            HEADER_LEN + self.shape.n_instr * INSTR_BYTES + idx * 4
        }

        /// Read packet-memory word `idx`. `None` when out of bounds.
        pub fn read_word(&self, idx: usize) -> Option<u32> {
            if idx >= self.memory_words() {
                return None;
            }
            let o = self.word_off(idx);
            Some(u32::from_be_bytes([
                self.bytes[o],
                self.bytes[o + 1],
                self.bytes[o + 2],
                self.bytes[o + 3],
            ]))
        }

        /// Read packet-memory word `idx` without the bounds check. For
        /// callers holding a [`Verified`](crate::verify::Verified) proof
        /// that the index is in bounds; panics (via slice indexing) on a
        /// caller bug.
        #[inline]
        pub fn read_word_trusted(&self, idx: usize) -> u32 {
            debug_assert!(idx < self.memory_words(), "verified word index out of bounds");
            let o = self.word_off(idx);
            u32::from_be_bytes([
                self.bytes[o],
                self.bytes[o + 1],
                self.bytes[o + 2],
                self.bytes[o + 3],
            ])
        }

        /// Absolute word index of hop-relative `offset` for the current hop.
        pub fn hop_word_index(&self, offset: u8) -> usize {
            self.hop() as usize * self.per_hop_words() + offset as usize
        }

        /// Read the word at hop-relative `offset` without the bounds check
        /// (see [`Self::read_word_trusted`]).
        #[inline]
        pub fn read_hop_word_trusted(&self, offset: u8) -> u32 {
            self.read_word_trusted(self.hop_word_index(offset))
        }

        /// Read the word at hop-relative `offset` for the current hop.
        pub fn read_hop_word(&self, offset: u8) -> Option<u32> {
            self.read_word(self.hop_word_index(offset))
        }

        /// The raw section bytes (exactly [`Self::section_len`] long).
        pub fn as_bytes(&self) -> &[u8] {
            &self.bytes
        }

        /// The packet-memory bytes.
        pub fn memory(&self) -> &[u8] {
            &self.bytes[self.word_off(0)..self.shape.total]
        }

        /// Materialize the owned control-plane representation. Allocates;
        /// not for the forwarding path.
        pub fn to_tpp(&self) -> Tpp {
            Tpp {
                mode: self.mode(),
                reflect: self.reflect(),
                wrote: self.wrote(),
                hop: self.hop(),
                sp: self.sp(),
                per_hop_len: self.per_hop_len(),
                encap_proto: self.encap_proto(),
                app_id: self.app_id(),
                instrs: self.instrs().collect(),
                memory: self.memory().to_vec(),
            }
        }
    };
}

/// A read-only, validated view of a TPP section in wire form.
#[derive(Clone, Copy, Debug)]
pub struct TppView<'a> {
    bytes: &'a [u8],
    shape: Shape,
}

impl<'a> TppView<'a> {
    /// Validate a TPP section at the front of `bytes` (checksum and opcodes
    /// included). Returns the view and the number of bytes it covers; any
    /// remaining bytes are the encapsulated payload.
    pub fn parse(bytes: &'a [u8]) -> Result<(TppView<'a>, usize), TppError> {
        let shape = validate(bytes)?;
        Ok((TppView { bytes: &bytes[..shape.total], shape }, shape.total))
    }

    view_accessors!();
}

/// A mutable, validated view of a TPP section in wire form.
///
/// Every mutator maintains the section checksum incrementally
/// ([`checksum::update`]), so the buffer holds a valid section after each
/// write — no re-serialization step exists on this path.
#[derive(Debug)]
pub struct TppViewMut<'a> {
    bytes: &'a mut [u8],
    shape: Shape,
}

impl<'a> TppViewMut<'a> {
    /// Validate a TPP section at the front of `bytes`; see
    /// [`TppView::parse`].
    pub fn parse(bytes: &'a mut [u8]) -> Result<(TppViewMut<'a>, usize), TppError> {
        let shape = validate(bytes)?;
        let total = shape.total;
        Ok((TppViewMut { bytes: &mut bytes[..total], shape }, total))
    }

    /// Re-open a section that was already validated by [`TppViewMut::parse`]
    /// (or [`TppView::parse`]) and has only been mutated through a view
    /// since. Skips the O(section) checksum/opcode validation; the caller
    /// guarantees the bytes still start with that validated section.
    pub fn from_validated(bytes: &'a mut [u8]) -> TppViewMut<'a> {
        let shape = Shape::of_trusted(bytes);
        debug_assert!(bytes.len() >= shape.total, "trusted TPP section truncated");
        debug_assert!(checksum::verify(&bytes[..shape.total]), "trusted TPP checksum broken");
        let total = shape.total;
        TppViewMut { bytes: &mut bytes[..total], shape }
    }

    view_accessors!();

    /// Downgrade to a read-only view.
    pub fn as_view(&self) -> TppView<'_> {
        TppView { bytes: self.bytes, shape: self.shape }
    }

    /// Replace the 16-bit group at even offset `off` and fold the change
    /// into the checksum field (bytes 6-7).
    fn upd16(&mut self, off: usize, new: [u8; 2]) {
        debug_assert!(off.is_multiple_of(2) && off != 6);
        let old = [self.bytes[off], self.bytes[off + 1]];
        if old == new {
            return;
        }
        self.bytes[off] = new[0];
        self.bytes[off + 1] = new[1];
        let c = u16::from_be_bytes([self.bytes[6], self.bytes[7]]);
        let c = checksum::update(c, u16::from_be_bytes(old), u16::from_be_bytes(new));
        self.bytes[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Set the hop counter.
    pub fn set_hop(&mut self, hop: u8) {
        self.upd16(2, [self.bytes[2], hop]);
    }

    /// Set the stack pointer.
    pub fn set_sp(&mut self, sp: u8) {
        self.upd16(4, [sp, self.bytes[5]]);
    }

    /// Set the wrote flag (bit 1 of byte 0).
    pub fn set_wrote(&mut self, wrote: bool) {
        let b0 = if wrote { self.bytes[0] | 0x02 } else { self.bytes[0] & !0x02 };
        self.upd16(0, [b0, self.bytes[1]]);
    }

    /// Write packet-memory word `idx`. Returns `None` (buffer untouched)
    /// when out of bounds.
    pub fn write_word(&mut self, idx: usize, value: u32) -> Option<()> {
        if idx >= self.memory_words() {
            return None;
        }
        let o = self.word_off(idx);
        let b = value.to_be_bytes();
        self.upd16(o, [b[0], b[1]]);
        self.upd16(o + 2, [b[2], b[3]]);
        Some(())
    }

    /// Write the word at hop-relative `offset` for the current hop.
    pub fn write_hop_word(&mut self, offset: u8, value: u32) -> Option<()> {
        self.write_word(self.hop_word_index(offset), value)
    }

    /// Write packet-memory word `idx` without the bounds check. For callers
    /// holding a [`Verified`](crate::verify::Verified) proof that the index
    /// is in bounds; panics (via slice indexing) on a caller bug. Maintains
    /// the incremental checksum like [`Self::write_word`].
    #[inline]
    pub fn write_word_trusted(&mut self, idx: usize, value: u32) {
        debug_assert!(idx < self.memory_words(), "verified word index out of bounds");
        let o = self.word_off(idx);
        let b = value.to_be_bytes();
        self.upd16(o, [b[0], b[1]]);
        self.upd16(o + 2, [b[2], b[3]]);
    }

    /// Write the word at hop-relative `offset` without the bounds check
    /// (see [`Self::write_word_trusted`]).
    #[inline]
    pub fn write_hop_word_trusted(&mut self, offset: u8, value: u32) {
        self.write_word_trusted(self.hop_word_index(offset), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;
    use crate::wire::checksum;

    fn sample() -> Tpp {
        Tpp {
            mode: AddrMode::Hop,
            reflect: true,
            wrote: false,
            hop: 2,
            sp: 1,
            per_hop_len: 12,
            encap_proto: 0x0800,
            app_id: 0xBEEF,
            instrs: vec![
                Instruction::push(resolve_mnemonic("Switch:SwitchID").unwrap()),
                Instruction::load(resolve_mnemonic("Queue:QueueOccupancy").unwrap(), 1),
                Instruction::cstore(resolve_mnemonic("Link:AppSpecific_0").unwrap(), 0, 1),
            ],
            memory: vec![0u8; 60],
        }
    }

    #[test]
    fn view_matches_owned_parse() {
        let t = sample();
        let mut bytes = t.serialize();
        bytes.extend_from_slice(b"inner payload");
        let (view, consumed) = TppView::parse(&bytes).unwrap();
        assert_eq!(consumed, t.section_len());
        assert_eq!(view.mode(), t.mode);
        assert_eq!(view.reflect(), t.reflect);
        assert_eq!(view.wrote(), t.wrote);
        assert_eq!(view.hop(), t.hop);
        assert_eq!(view.sp(), t.sp);
        assert_eq!(view.per_hop_len(), t.per_hop_len);
        assert_eq!(view.encap_proto(), t.encap_proto);
        assert_eq!(view.app_id(), t.app_id);
        assert_eq!(view.n_instr(), t.instrs.len());
        assert_eq!(view.instrs().collect::<Vec<_>>(), t.instrs);
        assert_eq!(view.memory(), &t.memory[..]);
        assert_eq!(view.to_tpp(), t);
    }

    #[test]
    fn view_rejects_what_parse_rejects() {
        let t = sample();
        let bytes = t.serialize();
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            assert_eq!(TppView::parse(&bytes[..cut]).unwrap_err(), TppError::Truncated);
        }
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN] ^= 0xFF;
        assert!(TppView::parse(&corrupt).is_err());
        // Errors match the owned parser on the same inputs.
        for byte in [0usize, 1, 2, HEADER_LEN, bytes.len() - 1] {
            let mut m = bytes.clone();
            m[byte] ^= 0x11;
            assert_eq!(TppView::parse(&m).err(), Tpp::parse(&m).err(), "byte {byte}");
        }
    }

    #[test]
    fn mutators_keep_checksum_valid_and_match_reserialize() {
        let t = sample();
        let mut bytes = t.serialize();
        {
            let (mut v, _) = TppViewMut::parse(&mut bytes).unwrap();
            v.set_hop(3);
            v.set_sp(4);
            v.set_wrote(true);
            v.write_word(0, 0xDEAD_BEEF).unwrap();
            v.write_hop_word(1, 77).unwrap();
            assert_eq!(v.write_word(15, 1), None);
        }
        assert!(checksum::verify(&bytes));
        // The same mutations through the owned representation re-serialize
        // to identical bytes.
        let mut owned = t.clone();
        owned.hop = 3;
        owned.sp = 4;
        owned.wrote = true;
        owned.write_word(0, 0xDEAD_BEEF).unwrap();
        owned.write_hop_word(1, 77).unwrap();
        assert_eq!(bytes, owned.serialize());
        // And the view parses back to the mutated owned form.
        let (view, _) = TppView::parse(&bytes).unwrap();
        assert_eq!(view.to_tpp(), owned);
    }

    #[test]
    fn incremental_checksum_survives_many_writes() {
        let t = sample();
        let mut bytes = t.serialize();
        let (mut v, _) = TppViewMut::parse(&mut bytes).unwrap();
        let words = v.memory_words();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..words * 8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.write_word(i % words, (x >> 32) as u32).unwrap();
            v.set_hop((x >> 16) as u8);
            v.set_sp((x >> 8) as u8);
        }
        assert!(checksum::verify(v.as_bytes()));
        // Identical to a from-scratch re-serialization of the same state.
        let owned = v.as_view().to_tpp();
        assert_eq!(v.as_bytes(), &owned.serialize()[..]);
    }

    #[test]
    fn from_validated_reopens_section() {
        let t = sample();
        let mut bytes = t.serialize();
        let total = {
            let (mut v, total) = TppViewMut::parse(&mut bytes).unwrap();
            v.write_word(1, 42).unwrap();
            total
        };
        let v = TppViewMut::from_validated(&mut bytes);
        assert_eq!(v.section_len(), total);
        assert_eq!(v.read_word(1), Some(42));
    }
}
