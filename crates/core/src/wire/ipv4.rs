//! IPv4 packet format (no options, no fragmentation — datacenter MTUs make
//! fragmentation unnecessary, and §3.3 requires TPPs to fit in one MTU).

use super::checksum;
use core::fmt;

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);

    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// Deterministic address for simulated host `id`: `10.x.y.z`.
    pub fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        Ipv4Address([10, b[1], b[2], b[3]])
    }

    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    pub fn from_u32(v: u32) -> Self {
        Ipv4Address(v.to_be_bytes())
    }
}

impl fmt::Debug for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers used by the stack.
pub mod protocol {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// Header length (we never emit options).
pub const HEADER_LEN: usize = 20;

/// Typed view over an IPv4 packet.
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    pub fn new_checked(buffer: T) -> Option<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return None;
        }
        let p = Packet { buffer };
        if p.version() != 4 || p.header_len() < HEADER_LEN || p.header_len() > len {
            return None;
        }
        if (p.total_len() as usize) < p.header_len() || p.total_len() as usize > len {
            return None;
        }
        Some(p)
    }

    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    pub fn into_inner(self) -> T {
        self.buffer
    }

    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[0] & 0x0F) as usize) * 4
    }
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[1]
    }
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }
    pub fn src(&self) -> Ipv4Address {
        let b = self.buffer.as_ref();
        Ipv4Address(b[12..16].try_into().unwrap())
    }
    pub fn dst(&self) -> Ipv4Address {
        let b = self.buffer.as_ref();
        Ipv4Address(b[16..20].try_into().unwrap())
    }
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..self.header_len()])
    }
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let tl = self.total_len() as usize;
        &self.buffer.as_ref()[hl..tl]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    pub fn set_version_and_len(&mut self) {
        self.buffer.as_mut()[0] = 0x45;
    }
    pub fn set_dscp_ecn(&mut self, v: u8) {
        self.buffer.as_mut()[1] = v;
    }
    pub fn set_total_len(&mut self, v: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }
    pub fn set_ident(&mut self, v: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&v.to_be_bytes());
    }
    pub fn set_flags_frag(&mut self, v: u16) {
        self.buffer.as_mut()[6..8].copy_from_slice(&v.to_be_bytes());
    }
    pub fn set_ttl(&mut self, v: u8) {
        self.buffer.as_mut()[8] = v;
    }
    pub fn set_protocol(&mut self, v: u8) {
        self.buffer.as_mut()[9] = v;
    }
    pub fn set_src(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }
    pub fn set_dst(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[10..12].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[10..12].copy_from_slice(&c.to_be_bytes());
    }
    /// Decrement TTL and incrementally fix the checksum.
    pub fn decrement_ttl(&mut self) {
        let ttl = self.ttl();
        self.buffer.as_mut()[8] = ttl.saturating_sub(1);
        self.fill_checksum();
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let tl = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..tl]
    }
}

/// High-level IPv4 header representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repr {
    pub src: Ipv4Address,
    pub dst: Ipv4Address,
    pub protocol: u8,
    pub ttl: u8,
    pub payload_len: usize,
}

impl Repr {
    pub fn parse<T: AsRef<[u8]>>(p: &Packet<T>) -> Option<Repr> {
        if !p.verify_checksum() {
            return None;
        }
        Some(Repr {
            src: p.src(),
            dst: p.dst(),
            protocol: p.protocol(),
            ttl: p.ttl(),
            payload_len: p.total_len() as usize - p.header_len(),
        })
    }

    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, p: &mut Packet<T>) {
        p.set_version_and_len();
        p.set_dscp_ecn(0);
        p.set_total_len((HEADER_LEN + self.payload_len) as u16);
        p.set_ident(0);
        p.set_flags_frag(0x4000); // don't fragment
        p.set_ttl(self.ttl);
        p.set_protocol(self.protocol);
        p.set_src(self.src);
        p.set_dst(self.dst);
        p.fill_checksum();
    }

    /// Build a full packet: header + payload.
    pub fn encapsulate(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len(), self.payload_len);
        let mut buf = vec![0u8; self.buffer_len()];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        self.emit(&mut p);
        p.payload_mut().copy_from_slice(payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Repr {
        Repr {
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 2),
            protocol: protocol::UDP,
            ttl: 64,
            payload_len: 5,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample_repr();
        let bytes = repr.encapsulate(b"abcde");
        let p = Packet::new_checked(&bytes[..]).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(Repr::parse(&p).unwrap(), repr);
        assert_eq!(p.payload(), b"abcde");
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut bytes = sample_repr().encapsulate(b"abcde");
        bytes[12] ^= 0xFF; // flip a source-address bit pattern
        let p = Packet::new_checked(&bytes[..]).unwrap();
        assert!(!p.verify_checksum());
        assert!(Repr::parse(&p).is_none());
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut bytes = sample_repr().encapsulate(b"abcde");
        {
            let mut p = Packet::new_unchecked(&mut bytes[..]);
            p.decrement_ttl();
        }
        let p = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(p.ttl(), 63);
        assert!(p.verify_checksum());
    }

    #[test]
    fn malformed_rejected() {
        assert!(Packet::new_checked(&[0u8; 10][..]).is_none());
        let mut bytes = sample_repr().encapsulate(b"abcde");
        bytes[0] = 0x65; // version 6
        assert!(Packet::new_checked(&bytes[..]).is_none());
        let mut bytes2 = sample_repr().encapsulate(b"abcde");
        bytes2[2..4].copy_from_slice(&1000u16.to_be_bytes()); // total_len > buffer
        assert!(Packet::new_checked(&bytes2[..]).is_none());
    }

    #[test]
    fn host_id_addresses() {
        let a = Ipv4Address::from_host_id(1);
        assert_eq!(format!("{a}"), "10.0.0.1");
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
    }

    #[test]
    fn payload_slice_respects_total_len() {
        // Buffer longer than total_len (e.g. Ethernet padding) must be ignored.
        let repr = sample_repr();
        let mut bytes = repr.encapsulate(b"abcde");
        bytes.extend_from_slice(&[0u8; 7]); // padding
        let p = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(p.payload(), b"abcde");
    }
}
