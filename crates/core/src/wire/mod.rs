//! Wire formats: Ethernet, IPv4, UDP, and the TPP section, plus the parse
//! graph of Figure 7a that locates a TPP inside a frame.

pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tpp;
pub mod udp;
pub mod view;

pub use ethernet::{EthernetAddress, Frame as EthernetFrame, Repr as EthernetRepr};
pub use ipv4::{Ipv4Address, Packet as Ipv4Packet, Repr as Ipv4Repr};
pub use tpp::{max_hops, AddrMode, Tpp, TppError, MAX_MEMORY_BYTES};
pub use udp::{Datagram as UdpDatagram, Repr as UdpRepr, TPP_PORT};
pub use view::{TppView, TppViewMut};

/// Where (if anywhere) a TPP section lives inside an Ethernet frame
/// (Figure 7a parse graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TppLocation {
    /// Ethertype 0x6666: TPP section directly follows the Ethernet header,
    /// encapsulating the original packet (piggy-backed mode).
    Transparent {
        /// Byte offset of the TPP section within the frame.
        section: usize,
    },
    /// A normal UDP packet to port 0x6666 carrying the TPP as its payload.
    Standalone {
        section: usize,
        /// Byte offset of the IPv4 header (for echoing back to the source).
        ip: usize,
        /// Byte offset of the UDP header.
        udp: usize,
    },
    /// Not a TPP packet.
    None,
}

/// Walk the Figure 7a parse graph: `ethernet -> tpp` (transparent) or
/// `ethernet -> ipv4 -> udp(dport=0x6666) -> tpp` (standalone).
pub fn locate_tpp(frame: &[u8]) -> TppLocation {
    let Some(eth) = ethernet::Frame::new_checked(frame) else {
        return TppLocation::None;
    };
    match eth.ethertype() {
        ethernet::ethertype::TPP => TppLocation::Transparent { section: ethernet::HEADER_LEN },
        ethernet::ethertype::IPV4 => {
            let ip_off = ethernet::HEADER_LEN;
            let Some(ip) = ipv4::Packet::new_checked(eth.payload()) else {
                return TppLocation::None;
            };
            if ip.protocol() != ipv4::protocol::UDP {
                return TppLocation::None;
            }
            let udp_off = ip_off + ip.header_len();
            let Some(u) = udp::Datagram::new_checked(ip.payload()) else {
                return TppLocation::None;
            };
            if u.dst_port() != TPP_PORT {
                return TppLocation::None;
            }
            TppLocation::Standalone { section: udp_off + udp::HEADER_LEN, ip: ip_off, udp: udp_off }
        }
        _ => TppLocation::None,
    }
}

/// Parse the TPP out of a frame, if present and well-formed.
pub fn extract_tpp(frame: &[u8]) -> Option<(TppLocation, Tpp)> {
    match locate_tpp(frame) {
        TppLocation::None => None,
        loc @ (TppLocation::Transparent { section } | TppLocation::Standalone { section, .. }) => {
            let (tpp, _) = Tpp::parse(&frame[section..]).ok()?;
            Some((loc, tpp))
        }
    }
}

/// Piggy-back `tpp` onto an existing Ethernet frame (transparent mode): the
/// outer ethertype becomes 0x6666 and the original ethertype moves into the
/// TPP's `encap_proto` field. The original L3+ payload follows the section.
pub fn insert_transparent(frame: &[u8], tpp: &Tpp) -> Vec<u8> {
    let eth = ethernet::Frame::new_unchecked(frame);
    let mut t = tpp.clone();
    t.encap_proto = eth.ethertype();
    let section = t.serialize();
    let mut out = Vec::with_capacity(frame.len() + section.len());
    out.extend_from_slice(&frame[..12]); // dst + src
    out.extend_from_slice(&ethernet::ethertype::TPP.to_be_bytes());
    out.extend_from_slice(&section);
    out.extend_from_slice(eth.payload());
    out
}

/// Rebuild the inner frame of a transparent-mode packet: the original MAC
/// pair, the restored (encapsulated) ethertype, and the payload that
/// follows the TPP section. `section`/`consumed` come from [`locate_tpp`]
/// and a successful section parse of the same frame.
pub fn restore_inner_frame(
    frame: &[u8],
    section: usize,
    consumed: usize,
    encap_proto: u16,
) -> Vec<u8> {
    let mut inner = Vec::with_capacity(frame.len() - consumed);
    inner.extend_from_slice(&frame[..section - 2]); // dst + src MACs
    inner.extend_from_slice(&encap_proto.to_be_bytes());
    inner.extend_from_slice(&frame[section + consumed..]);
    inner
}

/// Remove a transparent-mode TPP from a frame, restoring the original
/// ethertype. Returns the TPP and the restored inner frame.
pub fn strip_transparent(frame: &[u8]) -> Option<(Tpp, Vec<u8>)> {
    let TppLocation::Transparent { section } = locate_tpp(frame) else {
        return None;
    };
    let (tpp, consumed) = Tpp::parse(&frame[section..]).ok()?;
    let inner = restore_inner_frame(frame, section, consumed, tpp.encap_proto);
    Some((tpp, inner))
}

/// Rewrite the TPP section of a frame in place with an updated TPP of the
/// same shape (same instruction count and memory length). This is what a
/// switch does after executing a TPP. Returns `None` on shape mismatch.
pub fn replace_tpp(frame: &mut [u8], loc: TppLocation, tpp: &Tpp) -> Option<()> {
    let section = match loc {
        TppLocation::Transparent { section } | TppLocation::Standalone { section, .. } => section,
        TppLocation::None => return None,
    };
    let len = tpp.section_len();
    if frame.len() < section + len {
        return None;
    }
    tpp.emit(&mut frame[section..section + len]);
    Some(())
}

/// Build a standalone TPP packet: Ethernet/IPv4/UDP(dport 0x6666)/TPP.
#[allow(clippy::too_many_arguments)]
pub fn build_standalone(
    src_mac: EthernetAddress,
    dst_mac: EthernetAddress,
    src_ip: Ipv4Address,
    dst_ip: Ipv4Address,
    src_port: u16,
    tpp: &Tpp,
) -> Vec<u8> {
    let section = tpp.serialize();
    let udp_repr = udp::Repr { src_port, dst_port: TPP_PORT, payload_len: section.len() };
    let udp_bytes = udp_repr.encapsulate(src_ip, dst_ip, &section);
    let ip_repr = ipv4::Repr {
        src: src_ip,
        dst: dst_ip,
        protocol: ipv4::protocol::UDP,
        ttl: 64,
        payload_len: udp_bytes.len(),
    };
    let ip_bytes = ip_repr.encapsulate(&udp_bytes);
    let eth_repr =
        EthernetRepr { dst: dst_mac, src: src_mac, ethertype: ethernet::ethertype::IPV4 };
    eth_repr.encapsulate(&ip_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;
    use crate::isa::Instruction;

    fn mac(i: u32) -> EthernetAddress {
        EthernetAddress::from_node_id(i)
    }

    fn sample_tpp() -> Tpp {
        Tpp {
            mode: AddrMode::Hop,
            per_hop_len: 8,
            memory: vec![0; 40],
            instrs: vec![
                Instruction::push(resolve_mnemonic("Switch:SwitchID").unwrap()),
                Instruction::push(resolve_mnemonic("Queue:QueueOccupancy").unwrap()),
            ],
            ..Tpp::default()
        }
    }

    fn plain_udp_frame(dst_port: u16) -> Vec<u8> {
        let src_ip = Ipv4Address::new(10, 0, 0, 1);
        let dst_ip = Ipv4Address::new(10, 0, 0, 2);
        let u = udp::Repr { src_port: 1234, dst_port, payload_len: 3 };
        let udp_bytes = u.encapsulate(src_ip, dst_ip, b"abc");
        let ip = ipv4::Repr {
            src: src_ip,
            dst: dst_ip,
            protocol: ipv4::protocol::UDP,
            ttl: 64,
            payload_len: udp_bytes.len(),
        };
        let ip_bytes = ip.encapsulate(&udp_bytes);
        EthernetRepr { dst: mac(2), src: mac(1), ethertype: ethernet::ethertype::IPV4 }
            .encapsulate(&ip_bytes)
    }

    #[test]
    fn standalone_parse_graph() {
        let tpp = sample_tpp();
        let frame = build_standalone(
            mac(1),
            mac(2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            5000,
            &tpp,
        );
        match locate_tpp(&frame) {
            TppLocation::Standalone { section, ip, udp } => {
                assert_eq!(ip, 14);
                assert_eq!(udp, 34);
                assert_eq!(section, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        let (_, parsed) = extract_tpp(&frame).unwrap();
        assert_eq!(parsed, tpp);
    }

    #[test]
    fn non_tpp_udp_not_matched() {
        let frame = plain_udp_frame(5353);
        assert_eq!(locate_tpp(&frame), TppLocation::None);
    }

    #[test]
    fn transparent_insert_strip_roundtrip() {
        let inner = plain_udp_frame(5353);
        let tpp = sample_tpp();
        let outer = insert_transparent(&inner, &tpp);
        assert_eq!(outer.len(), inner.len() + tpp.section_len());
        match locate_tpp(&outer) {
            TppLocation::Transparent { section } => assert_eq!(section, 14),
            other => panic!("unexpected {other:?}"),
        }
        let (stripped, restored) = strip_transparent(&outer).unwrap();
        assert_eq!(restored, inner);
        assert_eq!(stripped.encap_proto, ethernet::ethertype::IPV4);
        assert_eq!(stripped.instrs, tpp.instrs);
    }

    #[test]
    fn replace_tpp_in_place() {
        let tpp = sample_tpp();
        let mut frame = build_standalone(
            mac(1),
            mac(2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            5000,
            &tpp,
        );
        let loc = locate_tpp(&frame);
        let mut executed = tpp.clone();
        executed.hop = 3;
        executed.write_word(0, 0x1234_5678).unwrap();
        replace_tpp(&mut frame, loc, &executed).unwrap();
        let (_, back) = extract_tpp(&frame).unwrap();
        assert_eq!(back.hop, 3);
        assert_eq!(back.read_word(0), Some(0x1234_5678));
    }

    #[test]
    fn corrupted_tpp_not_extracted() {
        let tpp = sample_tpp();
        let inner = plain_udp_frame(80);
        let mut outer = insert_transparent(&inner, &tpp);
        outer[20] ^= 0xFF; // corrupt inside the TPP section
        assert!(extract_tpp(&outer).is_none());
        // but it's still recognized as a (damaged) TPP location
        assert!(matches!(locate_tpp(&outer), TppLocation::Transparent { .. }));
    }

    #[test]
    fn short_frames_safe() {
        assert_eq!(locate_tpp(&[]), TppLocation::None);
        assert_eq!(locate_tpp(&[0u8; 13]), TppLocation::None);
        assert!(extract_tpp(&[0u8; 14]).is_none());
    }
}
