//! UDP datagram format. A TPP in standalone mode lives in a UDP datagram
//! with destination port 0x6666 (Figure 7a).

use super::checksum;
use super::ipv4::Ipv4Address;

/// The UDP port usurped by TPP-enabled routers (Figure 7a).
pub const TPP_PORT: u16 = 0x6666;

pub const HEADER_LEN: usize = 8;

/// Typed view over a UDP datagram.
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    pub fn new_checked(buffer: T) -> Option<Datagram<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return None;
        }
        let d = Datagram { buffer };
        let l = d.len() as usize;
        if l < HEADER_LEN || l > len {
            return None;
        }
        Some(d)
    }

    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    pub fn into_inner(self) -> T {
        self.buffer
    }

    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }
    pub fn len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verify the UDP checksum given the IPv4 pseudo-header. A zero checksum
    /// field means "not computed" and always verifies (RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let data = &self.buffer.as_ref()[..self.len() as usize];
        let ph = checksum::pseudo_header_sum(src.0, dst.0, super::ipv4::protocol::UDP, self.len());
        checksum::combine(&[ph, checksum::sum(data)]) == 0xFFFF
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    pub fn set_src_port(&mut self, v: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&v.to_be_bytes());
    }
    pub fn set_dst_port(&mut self, v: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }
    pub fn set_len(&mut self, v: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&v.to_be_bytes());
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let l = self.len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..l]
    }
    pub fn fill_checksum(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.buffer.as_mut()[6..8].copy_from_slice(&[0, 0]);
        let len = self.len();
        let data = &self.buffer.as_ref()[..len as usize];
        let ph = checksum::pseudo_header_sum(src.0, dst.0, super::ipv4::protocol::UDP, len);
        let mut c = !checksum::combine(&[ph, checksum::sum(data)]);
        if c == 0 {
            c = 0xFFFF; // RFC 768: transmitted as all-ones if computed as zero
        }
        self.buffer.as_mut()[6..8].copy_from_slice(&c.to_be_bytes());
    }
}

/// High-level UDP header representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repr {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload_len: usize,
}

impl Repr {
    pub fn parse<T: AsRef<[u8]>>(d: &Datagram<T>) -> Repr {
        Repr {
            src_port: d.src_port(),
            dst_port: d.dst_port(),
            payload_len: d.len() as usize - HEADER_LEN,
        }
    }

    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Build a full datagram with checksum over the pseudo-header.
    pub fn encapsulate(&self, src: Ipv4Address, dst: Ipv4Address, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len(), self.payload_len);
        let mut buf = vec![0u8; self.buffer_len()];
        let mut d = Datagram::new_unchecked(&mut buf[..]);
        d.set_src_port(self.src_port);
        d.set_dst_port(self.dst_port);
        d.set_len((HEADER_LEN + payload.len()) as u16);
        d.payload_mut().copy_from_slice(payload);
        d.fill_checksum(src, dst);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Address, Ipv4Address) {
        (Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
    }

    #[test]
    fn roundtrip_with_checksum() {
        let (src, dst) = addrs();
        let repr = Repr { src_port: 5555, dst_port: TPP_PORT, payload_len: 4 };
        let bytes = repr.encapsulate(src, dst, b"abcd");
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&d), repr);
        assert!(d.verify_checksum(src, dst));
        assert_eq!(d.payload(), b"abcd");
    }

    #[test]
    fn corruption_detected() {
        let (src, dst) = addrs();
        let repr = Repr { src_port: 1, dst_port: 2, payload_len: 4 };
        let mut bytes = repr.encapsulate(src, dst, b"abcd");
        bytes[9] ^= 0x40;
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert!(!d.verify_checksum(src, dst));
        // Wrong pseudo-header (different dst) must also fail.
        let bytes2 = repr.encapsulate(src, dst, b"abcd");
        let d2 = Datagram::new_checked(&bytes2[..]).unwrap();
        assert!(!d2.verify_checksum(src, Ipv4Address::new(10, 0, 0, 3)));
    }

    #[test]
    fn zero_checksum_accepted() {
        let (src, dst) = addrs();
        let repr = Repr { src_port: 1, dst_port: 2, payload_len: 0 };
        let mut bytes = repr.encapsulate(src, dst, b"");
        bytes[6] = 0;
        bytes[7] = 0;
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert!(d.verify_checksum(src, dst));
    }

    #[test]
    fn length_validation() {
        assert!(Datagram::new_checked(&[0u8; 7][..]).is_none());
        let mut hdr = [0u8; 8];
        hdr[4..6].copy_from_slice(&20u16.to_be_bytes()); // len > buffer
        assert!(Datagram::new_checked(&hdr[..]).is_none());
        let mut hdr2 = [0u8; 8];
        hdr2[4..6].copy_from_slice(&4u16.to_be_bytes()); // len < header
        assert!(Datagram::new_checked(&hdr2[..]).is_none());
    }
}
