//! Internet (RFC 1071) ones'-complement checksum, used by IPv4, UDP, and the
//! TPP section (Figure 7b field 6).

/// Ones'-complement sum of `data`, folded to 16 bits.
pub fn sum(data: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Compute the checksum field value for `data` (with its checksum field
/// zeroed): the ones' complement of the ones'-complement sum.
pub fn checksum(data: &[u8]) -> u16 {
    !sum(data)
}

/// Combine partial [`sum`]s (e.g. pseudo-header + payload).
pub fn combine(parts: &[u16]) -> u16 {
    let mut acc: u32 = 0;
    for p in parts {
        acc += u32::from(*p);
    }
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Verify data whose checksum field is *included* in `data`: the sum must be
/// 0xFFFF.
pub fn verify(data: &[u8]) -> bool {
    sum(data) == 0xFFFF
}

/// RFC 1624 (eqn. 3) incremental update: the new checksum field value after
/// the 16-bit word `old` (at any even offset outside the checksum field)
/// is replaced by `new`.
///
/// Matches a full [`checksum`] recomputation byte-for-byte as long as the
/// covered data is not all-zero — true for every TPP section, whose first
/// byte always carries a non-zero version nibble. (Both the stored field
/// `!S` and the folded sum land in `1..=0xFFFF`, where each residue class
/// mod 0xFFFF has exactly one representative, so the incremental and the
/// recomputed value cannot disagree on the ones'-complement ±0 encoding.)
pub fn update(check: u16, old: u16, new: u16) -> u16 {
    let mut acc = u32::from(!check) + u32::from(!old) + u32::from(new);
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// IPv4 pseudo-header sum for UDP/TCP checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u16 {
    combine(&[
        u16::from_be_bytes([src[0], src[1]]),
        u16::from_be_bytes([src[2], src[3]]),
        u16::from_be_bytes([dst[0], dst[1]]),
        u16::from_be_bytes([dst[2], dst[3]]),
        u16::from(protocol),
        length,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(sum(&data), 0xddf2);
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length() {
        let data = [0xab];
        assert_eq!(sum(&data), 0xab00);
    }

    #[test]
    fn verify_self() {
        let mut data = vec![0x12, 0x34, 0x56, 0x78, 0x00, 0x00, 0x9a];
        let c = checksum(&data);
        data[4..6].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn combine_folds_carries() {
        assert_eq!(combine(&[0xFFFF, 0x0001]), 0x0001);
        assert_eq!(combine(&[0x8000, 0x8000]), 0x0001);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(sum(&[]), 0);
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        // Exhaustive-ish sweep: mutate one 16-bit word of a non-zero buffer
        // and compare the RFC 1624 update against a full recomputation.
        let mut data = vec![0x10, 0x23, 0xab, 0xcd, 0x00, 0x00, 0x55, 0xaa, 0xff, 0xff];
        for off in [0usize, 2, 6, 8] {
            for new in [0x0000u16, 0x0001, 0x7fff, 0x8000, 0xfffe, 0xffff] {
                let old_check = checksum(&data);
                let old = u16::from_be_bytes([data[off], data[off + 1]]);
                data[off..off + 2].copy_from_slice(&new.to_be_bytes());
                let recomputed = checksum(&data);
                assert_eq!(
                    update(old_check, old, new),
                    recomputed,
                    "off {off} old {old:#06x} new {new:#06x}"
                );
            }
        }
    }

    #[test]
    fn incremental_update_noop_is_identity() {
        let data = [0x12, 0x34, 0x56, 0x78];
        let c = checksum(&data);
        assert_eq!(update(c, 0x5678, 0x5678), c);
    }
}
