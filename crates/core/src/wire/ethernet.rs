//! Ethernet II framing.

use core::fmt;

/// A MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xFF; 6]);

    /// Deterministic locally-administered address for a simulated node.
    pub fn from_node_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        EthernetAddress([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Debug for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// `EtherType` values understood by the parse graph (Figure 7a).
pub mod ethertype {
    /// A TPP in transparent (piggy-backed) mode.
    pub const TPP: u16 = 0x6666;
    pub const IPV4: u16 = 0x0800;
    pub const ARP: u16 = 0x0806;
}

/// Ethernet II header length.
pub const HEADER_LEN: usize = 14;

/// A typed view over an Ethernet II frame.
///
/// Follows the smoltcp convention: `Frame<&[u8]>` for read access,
/// `Frame<&mut [u8]>` for in-place rewriting.
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer, checking the minimum length.
    pub fn new_checked(buffer: T) -> Option<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return None;
        }
        Some(Frame { buffer })
    }

    /// Wrap without checking (caller guarantees length).
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    pub fn into_inner(self) -> T {
        self.buffer
    }

    pub fn dst(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress(b[0..6].try_into().unwrap())
    }

    pub fn src(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress(b[6..12].try_into().unwrap())
    }

    pub fn ethertype(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]])
    }

    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    pub fn set_dst(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }
    pub fn set_src(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }
    pub fn set_ethertype(&mut self, ty: u16) {
        self.buffer.as_mut()[12..14].copy_from_slice(&ty.to_be_bytes());
    }
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// High-level representation of an Ethernet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repr {
    pub dst: EthernetAddress,
    pub src: EthernetAddress,
    pub ethertype: u16,
}

impl Repr {
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Repr {
        Repr { dst: frame.dst(), src: frame.src(), ethertype: frame.ethertype() }
    }

    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_dst(self.dst);
        frame.set_src(self.src);
        frame.set_ethertype(self.ethertype);
    }

    /// Build a full frame: header + payload.
    pub fn encapsulate(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let mut frame = Frame::new_unchecked(&mut buf[..]);
        self.emit(&mut frame);
        frame.payload_mut().copy_from_slice(payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = Repr {
            dst: EthernetAddress([1, 2, 3, 4, 5, 6]),
            src: EthernetAddress::from_node_id(42),
            ethertype: ethertype::TPP,
        };
        let frame_bytes = repr.encapsulate(b"hello");
        let frame = Frame::new_checked(&frame_bytes[..]).unwrap();
        assert_eq!(Repr::parse(&frame), repr);
        assert_eq!(frame.payload(), b"hello");
    }

    #[test]
    fn too_short_rejected() {
        assert!(Frame::new_checked(&[0u8; 13][..]).is_none());
        assert!(Frame::new_checked(&[0u8; 14][..]).is_some());
    }

    #[test]
    fn address_properties() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        let a = EthernetAddress::from_node_id(7);
        assert!(!a.is_broadcast());
        assert!(!a.is_multicast());
        assert_eq!(format!("{a}"), "02:00:00:00:00:07");
    }

    #[test]
    fn node_ids_unique() {
        let a = EthernetAddress::from_node_id(1);
        let b = EthernetAddress::from_node_id(256);
        assert_ne!(a, b);
    }
}
