//! Schema-driven probe programs and typed per-hop decoding.
//!
//! The paper's pitch is that end-host *software* defines what to measure
//! and the dataplane merely executes five instructions (§2, §4). A
//! [`Probe`] is that definition made first-class: an ordered list of named
//! fields bound to memory-mapped statistics, which
//!
//! * **compiles** ([`Probe::compile`]) to a validated [`Tpp`] — program plus
//!   packet-memory layout — through the existing [`TppBuilder`], with
//!   capacity checked against the wire constants
//!   ([`MAX_MEMORY_BYTES`],
//!   [`max_hops`]) instead of ad-hoc arithmetic; and
//! * **decodes** ([`Probe::records`]) a completed TPP (owned [`Tpp`] or
//!   borrowed [`TppView`]) into an iterator of per-hop records with field
//!   access by name or index — no hand-indexed `memory[4 * i..]` slicing.
//!
//! Collect fields compile to `PUSH` (one word per field per hop, stack
//! discipline); write fields (`store`/`cstore`/`cexec`) compile to
//! hop-window-addressed instructions whose operand words are filled in with
//! [`Probe::set_args`]. The two families cannot be mixed in one probe: a
//! probe either *collects* state or *updates* it, mirroring how every
//! application in the paper is structured.
//!
//! ```
//! use tpp_core::probe::Probe;
//!
//! // The §2.1 micro-burst probe: three statistics per hop.
//! let probe = Probe::stack("microburst")
//!     .field("switch", "Switch:SwitchID")
//!     .field("port", "PacketMetadata:OutputPort")
//!     .field("q", "Queue:QueueOccupancyPkts")
//!     .hops(8);
//! let tpp = probe.compile().unwrap();
//! assert_eq!(tpp.instrs.len(), 3);
//! assert_eq!(tpp.memory.len(), 8 * 3 * 4);
//!
//! // After the network executed it, read it back typed:
//! let mut done = tpp;
//! done.hop = 1;
//! done.sp = 3; // one hop pushed 3 words
//! done.write_word(0, 4).unwrap();
//! done.write_word(1, 2).unwrap();
//! done.write_word(2, 17).unwrap();
//! let rec = probe.records(&done).next().unwrap();
//! assert_eq!(rec.get("switch"), Some(4));
//! assert_eq!(rec.get("q"), Some(17));
//! ```

use crate::addr::{resolve_mnemonic, Address};
use crate::asm::{AsmError, TppBuilder};
use crate::isa::MAX_INSTRUCTIONS;
use crate::wire::tpp::HEADER_LEN;
use crate::wire::{max_hops, AddrMode, Tpp, TppView, MAX_MEMORY_BYTES};
use core::fmt;

/// Errors from compiling or using a [`Probe`] schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeError {
    /// `(field name, resolution error)` — the mnemonic did not resolve.
    BadAddress(String, String),
    NoFields,
    TooManyFields(usize),
    DuplicateField(String),
    /// Collect fields cannot be mixed with store/cstore/cexec fields.
    MixedKinds,
    /// Write fields require hop addressing (`Probe::hop`).
    WritesNeedHopMode,
    /// A cstore/cexec operand slot fell outside the 4-bit operand encoding.
    OperandOutOfRange(String),
    /// The requested hop count does not fit in the wire memory budget.
    TooManyHops {
        requested: usize,
        max: usize,
    },
    /// `pad_section_to` target smaller than header + program + one word.
    SectionTooSmall(usize),
    UnknownField(String),
    /// `(field name, expected slots, provided values)`.
    WrongArity(String, usize, usize),
    /// An underlying assembler/builder error (should be pre-empted by the
    /// checks above; kept for totality).
    Asm(String),
    /// The compiled program was rejected by the static verifier
    /// ([`crate::verify::verify`]); carries the deny-class diagnostics.
    Verify(Vec<crate::verify::Diagnostic>),
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::BadAddress(name, e) => write!(f, "field {name}: {e}"),
            ProbeError::NoFields => write!(f, "probe has no fields"),
            ProbeError::TooManyFields(n) => {
                write!(f, "{n} fields exceed the {MAX_INSTRUCTIONS}-instruction budget")
            }
            ProbeError::DuplicateField(n) => write!(f, "duplicate field {n}"),
            ProbeError::MixedKinds => {
                write!(f, "collect fields cannot be mixed with write fields")
            }
            ProbeError::WritesNeedHopMode => {
                write!(f, "store/cstore/cexec fields require Probe::hop")
            }
            ProbeError::OperandOutOfRange(n) => {
                write!(f, "field {n}: operand slot exceeds the 4-bit encoding")
            }
            ProbeError::TooManyHops { requested, max } => {
                write!(f, "{requested} hops exceed the {max}-hop wire capacity")
            }
            ProbeError::SectionTooSmall(n) => write!(f, "{n}-byte section cannot hold the probe"),
            ProbeError::UnknownField(n) => write!(f, "no field named {n}"),
            ProbeError::WrongArity(n, want, got) => {
                write!(f, "field {n} takes {want} value(s), got {got}")
            }
            ProbeError::Asm(e) => write!(f, "assembly failed: {e}"),
            ProbeError::Verify(diags) => {
                write!(f, "verifier rejected the probe: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ProbeError {}

/// How a field participates in the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// `PUSH [addr]` — one collected word per hop.
    Collect,
    /// `STORE [addr], [Packet:Hop[off]]` — one argument word per hop.
    Store,
    /// `CSTORE [addr], [Packet:Hop[off]], [Packet:Hop[off+1]]` — two
    /// argument words per hop (expected, new); the observed old value is
    /// written back into the first slot (§3.3.3).
    CStore,
    /// `CEXEC [addr], [Packet:Hop[off]], [Packet:Hop[off+1]]` — two
    /// argument words per hop (mask, value) gating later instructions.
    CExec,
}

impl FieldKind {
    /// Packet-memory words this field occupies per hop.
    pub fn slots(self) -> usize {
        match self {
            FieldKind::Collect | FieldKind::Store => 1,
            FieldKind::CStore | FieldKind::CExec => 2,
        }
    }
}

/// One named, typed field of a probe schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub addr: Address,
    pub kind: FieldKind,
    /// First word offset of this field within the per-hop window.
    pub offset: usize,
}

/// Parse a `[Namespace:Statistic]`, `Namespace:Statistic`, or `[0x....]`
/// address spec.
fn parse_spec(spec: &str) -> Result<Address, String> {
    let inner = spec.strip_prefix('[').and_then(|s| s.strip_suffix(']')).unwrap_or(spec);
    if let Some(hex) = inner.strip_prefix("0x").or_else(|| inner.strip_prefix("0X")) {
        return u16::from_str_radix(hex, 16)
            .map(Address::new)
            .map_err(|_| format!("bad hex address {inner}"));
    }
    resolve_mnemonic(inner).map_err(|e| e.to_string())
}

/// A typed probe schema: what to measure (or update), per hop, by name.
///
/// See the [module docs](self) for the collect flavour. A write probe — the
/// paper's §2.2 RCP* versioned rate update — looks like this:
///
/// ```
/// use tpp_core::probe::Probe;
///
/// let update = Probe::hop("rcp-update")
///     .cstore("version", "Link:AppSpecific_0") // (expected, new) per hop
///     .store("rate", "Link:AppSpecific_1"); //    (kb/s) per hop
/// let mut tpp = update.compile_hops(2).unwrap();
/// update.set_args(&mut tpp, 0, "version", &[10, 11]).unwrap();
/// update.set_args(&mut tpp, 0, "rate", &[5000]).unwrap();
/// assert_eq!(tpp.per_hop_len, 12); // 3 words per hop
/// assert_eq!(tpp.read_word(2), Some(5000));
/// ```
#[derive(Clone, Debug)]
pub struct Probe {
    name: String,
    mode: AddrMode,
    app_id: u16,
    reflect: bool,
    hops: usize,
    pad_to: Option<usize>,
    fields: Vec<Field>,
    words_per_hop: usize,
    err: Option<ProbeError>,
}

impl Probe {
    fn new(name: &str, mode: AddrMode) -> Probe {
        Probe {
            name: name.to_string(),
            mode,
            app_id: 0,
            reflect: false,
            hops: 8,
            pad_to: None,
            fields: Vec::new(),
            words_per_hop: 0,
            err: None,
        }
    }

    /// A stack-addressed probe (collect fields compile to `PUSH`).
    pub fn stack(name: &str) -> Probe {
        Probe::new(name, AddrMode::Stack)
    }

    /// A hop-addressed probe: the wire header carries the per-hop window
    /// size, and write fields address words within the current hop's window.
    pub fn hop(name: &str) -> Probe {
        Probe::new(name, AddrMode::Hop)
    }

    fn add_field(mut self, name: &str, spec: &str, kind: FieldKind) -> Self {
        if self.err.is_some() {
            return self;
        }
        if self.fields.iter().any(|f| f.name == name) {
            self.err = Some(ProbeError::DuplicateField(name.to_string()));
            return self;
        }
        match parse_spec(spec) {
            Ok(addr) => {
                let offset = self.words_per_hop;
                self.words_per_hop += kind.slots();
                self.fields.push(Field { name: name.to_string(), addr, kind, offset });
            }
            Err(e) => self.err = Some(ProbeError::BadAddress(name.to_string(), e)),
        }
        self
    }

    /// Add a collect field: one word of `spec` per hop.
    #[must_use]
    pub fn field(self, name: &str, spec: &str) -> Self {
        self.add_field(name, spec, FieldKind::Collect)
    }

    /// Add a `STORE` field: writes one argument word per hop to `spec`.
    #[must_use]
    pub fn store(self, name: &str, spec: &str) -> Self {
        self.add_field(name, spec, FieldKind::Store)
    }

    /// Add a `CSTORE` field: versioned compare-and-swap against `spec`.
    #[must_use]
    pub fn cstore(self, name: &str, spec: &str) -> Self {
        self.add_field(name, spec, FieldKind::CStore)
    }

    /// Add a `CEXEC` field: gate subsequent instructions on `spec`.
    #[must_use]
    pub fn cexec(self, name: &str, spec: &str) -> Self {
        self.add_field(name, spec, FieldKind::CExec)
    }

    /// TPP application ID stamped into compiled programs (§4.1).
    #[must_use]
    pub fn app_id(mut self, id: u16) -> Self {
        self.app_id = id;
        self
    }

    /// Set the reflect bit: switches send the TPP straight back (§4.4).
    #[must_use]
    pub fn reflect(mut self) -> Self {
        self.reflect = true;
        self
    }

    /// Preallocate memory for `n` hops (default 8). Compilation fails when
    /// `n` exceeds [`Probe::max_hops`].
    #[must_use]
    pub fn hops(mut self, n: usize) -> Self {
        self.hops = n;
        self
    }

    /// Like [`Probe::hops`], but clamped to the wire capacity — the typed
    /// replacement for ad-hoc `.min(252)` memory arithmetic.
    #[must_use]
    pub fn hops_capped(self, n: usize) -> Self {
        let max = self.max_hops();
        self.hops(n.min(max))
    }

    /// Pad packet memory so the wire section is `bytes` long (overrides
    /// [`Probe::hops`]); used by the §6.2 overhead experiments.
    ///
    /// The section is exactly `bytes` when the target is word-aligned and
    /// within the wire budget; otherwise the memory rounds *down* to the
    /// next word boundary and clamps at [`MAX_MEMORY_BYTES`]. Targets too
    /// small to hold the header, program, and one memory word fail
    /// compilation with [`ProbeError::SectionTooSmall`].
    #[must_use]
    pub fn pad_section_to(mut self, bytes: usize) -> Self {
        self.pad_to = Some(bytes);
        self
    }

    /// The schema's name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Packet-memory words each hop occupies.
    pub fn words_per_hop(&self) -> usize {
        self.words_per_hop
    }

    /// Most hops this schema can record within the wire memory budget
    /// ([`MAX_MEMORY_BYTES`]).
    pub fn max_hops(&self) -> usize {
        max_hops(self.words_per_hop * 4)
    }

    /// The schema's fields, in declaration (= layout) order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Resolve a field name to its declaration index — hoist this out of
    /// per-hop decode loops and read via [`HopRecord::at`] when decoding
    /// one record per received packet.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    fn field_named(&self, name: &str) -> Result<&Field, ProbeError> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| ProbeError::UnknownField(name.to_string()))
    }

    fn has_collect(&self) -> bool {
        self.fields.iter().any(|f| f.kind == FieldKind::Collect)
    }

    /// Compile to a validated [`Tpp`] sized for [`Probe::hops`] hops.
    pub fn compile(&self) -> Result<Tpp, ProbeError> {
        self.compile_hops(self.hops)
    }

    /// Compile for an explicit hop count (e.g. one slot per pending update).
    pub fn compile_hops(&self, hops: usize) -> Result<Tpp, ProbeError> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        if self.fields.is_empty() {
            return Err(ProbeError::NoFields);
        }
        if self.fields.len() > MAX_INSTRUCTIONS {
            return Err(ProbeError::TooManyFields(self.fields.len()));
        }
        let has_collect = self.has_collect();
        let has_writes = self.fields.iter().any(|f| f.kind != FieldKind::Collect);
        if has_collect && has_writes {
            return Err(ProbeError::MixedKinds);
        }
        if has_writes && self.mode == AddrMode::Stack {
            return Err(ProbeError::WritesNeedHopMode);
        }
        for f in &self.fields {
            if f.kind != FieldKind::Collect && f.offset + f.kind.slots() > 16 {
                return Err(ProbeError::OperandOutOfRange(f.name.clone()));
            }
        }
        if self.pad_to.is_none() && hops > self.max_hops() {
            return Err(ProbeError::TooManyHops { requested: hops, max: self.max_hops() });
        }

        let mut b = match self.mode {
            AddrMode::Stack => TppBuilder::stack_mode(),
            AddrMode::Hop => TppBuilder::hop_mode(self.words_per_hop as u8),
        };
        b = b.app_id(self.app_id);
        if self.reflect {
            b = b.reflect();
        }
        for f in &self.fields {
            let off = f.offset as u8;
            b = match f.kind {
                FieldKind::Collect => b.push(f.addr),
                FieldKind::Store => b.store(f.addr, off),
                FieldKind::CStore => b.cstore(f.addr, off, off + 1),
                FieldKind::CExec => b.cexec(f.addr, off, off + 1),
            };
        }
        b = match self.pad_to {
            Some(bytes) => {
                let overhead = HEADER_LEN + self.fields.len() * crate::isa::INSTR_BYTES;
                if bytes < overhead + 4 {
                    return Err(ProbeError::SectionTooSmall(bytes));
                }
                let mem = ((bytes - overhead) & !3).min(MAX_MEMORY_BYTES);
                b.memory_words(mem / 4)
            }
            None => b.hops(hops),
        };
        let tpp = b.build().map_err(|e: AsmError| ProbeError::Asm(e.to_string()))?;

        // Every compiled probe carries a load-time proof: the abstract
        // interpreter must accept the program for the declared hop budget
        // (or, with `pad_section_to`, for whatever hop count the padded
        // memory supports).
        let opts = crate::verify::VerifyOptions {
            hops: if self.pad_to.is_none() { Some(hops) } else { None },
            segments: None,
        };
        let verdict = crate::verify::verify(&tpp, opts);
        if !verdict.passed() {
            return Err(ProbeError::Verify(verdict.denials().cloned().collect()));
        }
        Ok(tpp)
    }

    /// Fill the argument slot(s) of write field `name` for `hop`.
    /// `values.len()` must equal the field's slot count
    /// ([`FieldKind::slots`]).
    pub fn set_args(
        &self,
        tpp: &mut Tpp,
        hop: usize,
        name: &str,
        values: &[u32],
    ) -> Result<(), ProbeError> {
        let f = self.field_named(name)?;
        if values.len() != f.kind.slots() {
            return Err(ProbeError::WrongArity(name.to_string(), f.kind.slots(), values.len()));
        }
        for (i, &v) in values.iter().enumerate() {
            let idx = hop * self.words_per_hop + f.offset + i;
            tpp.write_word(idx, v).ok_or(ProbeError::TooManyHops {
                requested: hop + 1,
                max: tpp.memory_words() / self.words_per_hop.max(1),
            })?;
        }
        Ok(())
    }

    /// How many hops of `t` actually executed, per this schema's layout:
    /// stack discipline (`sp / words_per_hop`) when the probe collects,
    /// the hop counter otherwise — both capped by memory capacity.
    pub fn executed_hops<T: TppData + ?Sized>(&self, t: &T) -> usize {
        let k = self.words_per_hop.max(1);
        let cap = t.memory_words() / k;
        if self.has_collect() {
            (t.sp() as usize / k).min(cap)
        } else {
            (t.hop() as usize).min(cap)
        }
    }

    /// Iterate the per-hop records of a completed TPP — works on the owned
    /// [`Tpp`] and on a borrowed [`TppView`] alike.
    pub fn records<'a, T: TppData + ?Sized>(&'a self, t: &'a T) -> Records<'a, T> {
        Records { probe: self, tpp: t, hops: self.executed_hops(t), next: 0 }
    }
}

/// Read access to a completed TPP's header and packet memory — implemented
/// by the owned [`Tpp`] and the borrowed [`TppView`].
pub trait TppData {
    fn sp(&self) -> u8;
    fn hop(&self) -> u8;
    fn memory_words(&self) -> usize;
    fn read_word(&self, idx: usize) -> Option<u32>;
}

impl TppData for Tpp {
    fn sp(&self) -> u8 {
        self.sp
    }
    fn hop(&self) -> u8 {
        self.hop
    }
    fn memory_words(&self) -> usize {
        Tpp::memory_words(self)
    }
    fn read_word(&self, idx: usize) -> Option<u32> {
        Tpp::read_word(self, idx)
    }
}

impl TppData for TppView<'_> {
    fn sp(&self) -> u8 {
        TppView::sp(self)
    }
    fn hop(&self) -> u8 {
        TppView::hop(self)
    }
    fn memory_words(&self) -> usize {
        TppView::memory_words(self)
    }
    fn read_word(&self, idx: usize) -> Option<u32> {
        TppView::read_word(self, idx)
    }
}

/// Iterator over the executed hops of a completed TPP (see
/// [`Probe::records`]).
pub struct Records<'a, T: ?Sized> {
    probe: &'a Probe,
    tpp: &'a T,
    hops: usize,
    next: usize,
}

impl<'a, T: TppData + ?Sized> Iterator for Records<'a, T> {
    type Item = HopRecord<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.hops {
            return None;
        }
        let hop = self.next;
        self.next += 1;
        Some(HopRecord { probe: self.probe, tpp: self.tpp, hop })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.hops - self.next;
        (n, Some(n))
    }
}

impl<T: TppData + ?Sized> ExactSizeIterator for Records<'_, T> {}

/// One hop's worth of typed values from a completed TPP.
pub struct HopRecord<'a, T: ?Sized> {
    probe: &'a Probe,
    tpp: &'a T,
    hop: usize,
}

impl<T: TppData + ?Sized> HopRecord<'_, T> {
    /// Index of this hop along the path (0 = first switch).
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// The value of field `name` (its first slot) at this hop.
    pub fn get(&self, name: &str) -> Option<u32> {
        let f = self.probe.field_named(name).ok()?;
        self.word(f.offset)
    }

    /// Slot `slot` of field `name` at this hop (cstore/cexec carry two).
    pub fn get_slot(&self, name: &str, slot: usize) -> Option<u32> {
        let f = self.probe.field_named(name).ok()?;
        if slot >= f.kind.slots() {
            return None;
        }
        self.word(f.offset + slot)
    }

    /// The value of the `idx`-th declared field (its first slot).
    pub fn at(&self, idx: usize) -> Option<u32> {
        let f = self.probe.fields().get(idx)?;
        self.word(f.offset)
    }

    fn word(&self, offset: usize) -> Option<u32> {
        self.tpp.read_word(self.hop * self.probe.words_per_hop() + offset)
    }
}

impl<T: TppData + ?Sized> fmt::Debug for HopRecord<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("HopRecord");
        d.field("hop", &self.hop);
        for field in self.probe.fields() {
            d.field(&field.name, &self.word(field.offset));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::exec::{execute, ExecOptions, MapBus};

    fn microburst() -> Probe {
        Probe::stack("microburst")
            .field("switch", "Switch:SwitchID")
            .field("port", "PacketMetadata:OutputPort")
            .field("q", "Queue:QueueOccupancyPkts")
    }

    #[test]
    fn compiles_identically_to_assembler() {
        let from_probe = microburst().hops(5).compile().unwrap();
        let from_asm = assemble(
            "
            PUSH [Switch:SwitchID]
            PUSH [PacketMetadata:OutputPort]
            PUSH [Queue:QueueOccupancyPkts]
            ",
        )
        .unwrap();
        assert_eq!(from_probe.instrs, from_asm.instrs);
        assert_eq!(from_probe.memory.len(), 5 * 3 * 4);
        // Hop flavour matches the §2.2 collect listing.
        let collect = Probe::hop("rcp-collect")
            .field("switch", "Switch:SwitchID")
            .field("qsize", "Link:QueueSize")
            .field("util", "Link:TX-Utilization")
            .field("version", "Link:AppSpecific_0")
            .field("rate", "Link:AppSpecific_1")
            .hops(5)
            .compile()
            .unwrap();
        assert_eq!(collect.per_hop_len, 20);
        assert_eq!(collect.memory.len(), 100);
        assert_eq!(collect.mode, AddrMode::Hop);
    }

    #[test]
    fn capacity_checks_use_wire_constants() {
        let p = microburst();
        assert_eq!(p.max_hops(), MAX_MEMORY_BYTES / 12);
        assert_eq!(
            p.clone().hops(p.max_hops() + 1).compile(),
            Err(ProbeError::TooManyHops { requested: 22, max: 21 })
        );
        // hops_capped clamps instead.
        let t = p.hops_capped(1000).compile().unwrap();
        assert_eq!(t.memory.len(), 21 * 12);
        assert!(t.memory.len() <= MAX_MEMORY_BYTES);
    }

    #[test]
    fn records_decode_executed_hops() {
        let p = microburst().hops(4);
        let mut t = p.compile().unwrap();
        for hop in 0..3u32 {
            let mut bus = MapBus::with(&[
                (resolve_mnemonic("Switch:SwitchID").unwrap(), 10 + hop),
                (resolve_mnemonic("PacketMetadata:OutputPort").unwrap(), hop),
                (resolve_mnemonic("Queue:QueueOccupancyPkts").unwrap(), 100 + hop),
            ]);
            execute(&mut t, &mut bus, &ExecOptions::default());
        }
        let recs: Vec<_> = p.records(&t).collect();
        assert_eq!(recs.len(), 3);
        for (h, r) in recs.iter().enumerate() {
            assert_eq!(r.hop(), h);
            assert_eq!(r.get("switch"), Some(10 + h as u32));
            assert_eq!(r.at(1), Some(h as u32));
            assert_eq!(r.get("q"), Some(100 + h as u32));
            assert_eq!(r.get("nope"), None);
        }
        // The borrowed view decodes identically.
        let bytes = t.serialize();
        let (view, _) = TppView::parse(&bytes).unwrap();
        let from_view: Vec<Vec<Option<u32>>> =
            p.records(&view).map(|r| vec![r.at(0), r.at(1), r.at(2)]).collect();
        let from_owned: Vec<Vec<Option<u32>>> =
            p.records(&t).map(|r| vec![r.at(0), r.at(1), r.at(2)]).collect();
        assert_eq!(from_view, from_owned);
    }

    #[test]
    fn write_probe_layout_matches_rcp_update() {
        let update = Probe::hop("rcp-update")
            .cstore("version", "Link:AppSpecific_0")
            .store("rate", "Link:AppSpecific_1");
        let mut t = update.compile_hops(2).unwrap();
        let reference = assemble(
            r"
            .mode hop
            .perhop 12
            CSTORE [Link:AppSpecific_0], \
                   [Packet:Hop[0]], [Packet:Hop[1]]
            STORE [Link:AppSpecific_1], [Packet:Hop[2]]
            ",
        )
        .unwrap();
        assert_eq!(t.instrs, reference.instrs);
        assert_eq!(t.per_hop_len, 12);
        assert_eq!(t.memory.len(), 24);

        update.set_args(&mut t, 1, "version", &[7, 8]).unwrap();
        update.set_args(&mut t, 1, "rate", &[5000]).unwrap();
        assert_eq!(t.read_word(3), Some(7));
        assert_eq!(t.read_word(4), Some(8));
        assert_eq!(t.read_word(5), Some(5000));
        assert_eq!(
            update.set_args(&mut t, 0, "version", &[1]),
            Err(ProbeError::WrongArity("version".into(), 2, 1))
        );
        assert_eq!(
            update.set_args(&mut t, 9, "rate", &[1]),
            Err(ProbeError::TooManyHops { requested: 10, max: 2 })
        );
        assert_eq!(
            update.set_args(&mut t, 0, "ghost", &[1]),
            Err(ProbeError::UnknownField("ghost".into()))
        );

        // Decode of a write probe follows the hop counter.
        t.hop = 1;
        let recs: Vec<_> = update.records(&t).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get_slot("version", 1), Some(0));
    }

    #[test]
    fn schema_validation() {
        assert_eq!(Probe::stack("x").compile(), Err(ProbeError::NoFields));
        let mut p = Probe::stack("x");
        for i in 0..6 {
            p = p.field(&format!("f{i}"), "Switch:SwitchID");
        }
        assert_eq!(p.compile(), Err(ProbeError::TooManyFields(6)));
        assert_eq!(
            Probe::stack("x").field("a", "Switch:SwitchID").field("a", "Switch:SwitchID").compile(),
            Err(ProbeError::DuplicateField("a".into()))
        );
        assert!(matches!(
            Probe::stack("x").field("a", "Nope:Nothing").compile(),
            Err(ProbeError::BadAddress(_, _))
        ));
        assert_eq!(
            Probe::hop("x")
                .field("a", "Switch:SwitchID")
                .store("b", "Link:AppSpecific_0")
                .compile(),
            Err(ProbeError::MixedKinds)
        );
        assert_eq!(
            Probe::stack("x").store("b", "Link:AppSpecific_0").compile(),
            Err(ProbeError::WritesNeedHopMode)
        );
        // Raw hex addresses are accepted.
        let t = Probe::stack("x").field("raw", "[0xb000]").compile().unwrap();
        assert_eq!(t.instrs[0].addr, Address::new(0xb000));
    }

    #[test]
    fn pad_section_to_exact_wire_length() {
        let p = Probe::stack("pad")
            .field("a", "Switch:SwitchID")
            .field("b", "Queue:QueueOccupancy")
            .pad_section_to(100);
        let t = p.compile().unwrap();
        assert_eq!(t.section_len(), 100);
        assert_eq!(
            Probe::stack("tiny").field("a", "Switch:SwitchID").pad_section_to(16).compile(),
            Err(ProbeError::SectionTooSmall(16))
        );
    }
}
