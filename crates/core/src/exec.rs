//! TPP execution semantics (paper §3.2, §3.3): the contract between a
//! TPP-capable switch and end-hosts.
//!
//! The interpreter here executes a whole TPP *in program order* against a
//! [`MemoryBus`]. This is the reference semantics; the pipelined switch in
//! `tpp-switch` executes instructions out of order across stages (§3.5) and
//! its tests assert equivalence with this interpreter for hazard-free
//! programs.
//!
//! Key semantics:
//!
//! * Instructions that access unmapped memory are **skipped**, not faulted:
//!   "a TPP fails gracefully" (§3.3).
//! * `CSTORE` is an atomic compare-and-swap that writes the *observed* value
//!   back into packet memory and suppresses subsequent instructions on
//!   failure (§3.3.3).
//! * `CEXEC` suppresses subsequent instructions unless
//!   `(switch_value & mask) == value`.
//! * Writes may be administratively disabled (§4.3); a suppressed write
//!   behaves like a failed condition for `CSTORE` and a skip for others.

use crate::addr::{Address, Word};
use crate::isa::{Instruction, Opcode, MAX_INSTRUCTIONS};
use crate::verify::Verified;
use crate::wire::tpp::Tpp;
use crate::wire::view::{TppView, TppViewMut};

/// Result of a switch-memory write attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    Ok,
    /// No memory at this address (or not at this stage).
    Unmapped,
    /// Address exists but is read-only (architecturally or by policy).
    Denied,
}

/// The TCPU's view of switch memory. Implemented by switches (over their
/// real state) and by test fixtures.
pub trait MemoryBus {
    /// Read a word. `None` when the address is unmapped.
    fn read(&mut self, addr: Address) -> Option<Word>;
    /// Write a word.
    fn write(&mut self, addr: Address, value: Word) -> WriteOutcome;
}

/// A trivial flat-map bus for tests and host-side dry runs.
#[derive(Default, Debug, Clone)]
pub struct MapBus {
    pub mem: std::collections::BTreeMap<u16, Word>,
    /// Addresses that reject writes.
    pub read_only: std::collections::BTreeSet<u16>,
}

impl MapBus {
    pub fn with(entries: &[(Address, Word)]) -> Self {
        let mut b = MapBus::default();
        for (a, v) in entries {
            b.mem.insert(a.raw(), *v);
        }
        b
    }
    pub fn mark_read_only(&mut self, addr: Address) {
        self.read_only.insert(addr.raw());
    }
    pub fn get(&self, addr: Address) -> Option<Word> {
        self.mem.get(&addr.raw()).copied()
    }
}

impl MemoryBus for MapBus {
    fn read(&mut self, addr: Address) -> Option<Word> {
        self.mem.get(&addr.raw()).copied()
    }
    fn write(&mut self, addr: Address, value: Word) -> WriteOutcome {
        if self.read_only.contains(&addr.raw()) {
            return WriteOutcome::Denied;
        }
        match self.mem.get_mut(&addr.raw()) {
            Some(slot) => {
                *slot = value;
                WriteOutcome::Ok
            }
            None => WriteOutcome::Unmapped,
        }
    }
}

/// Per-instruction execution status, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InstrStatus {
    /// Ran to completion (for CSTORE: the swap succeeded).
    Executed,
    /// CSTORE executed but the comparison failed (old value written back).
    CondFailed,
    /// CEXEC executed and its predicate was false.
    PredicateFalse,
    /// Skipped: an operand address was unmapped, packet memory out of
    /// bounds, stack empty/full, or a non-conditional write was denied.
    #[default]
    Skipped,
    /// Not executed because an earlier CSTORE/CEXEC suppressed it.
    Suppressed,
}

/// Options controlling execution at one switch.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Administrative write kill-switch (§4.3). When false, `STORE`, `POP`
    /// and `CSTORE` cannot modify switch memory.
    pub allow_writes: bool,
    /// Architectural instruction budget; longer TPPs are rejected.
    pub max_instructions: usize,
    /// Increment the hop counter after execution (switches do; host-side
    /// dry-runs don't).
    pub increment_hop: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            allow_writes: true,
            max_instructions: crate::isa::MAX_INSTRUCTIONS,
            increment_hop: true,
        }
    }
}

/// Outcome of executing one TPP at one switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// One status per instruction, in program order.
    pub status: Vec<InstrStatus>,
    /// Whether any switch-memory write took effect.
    pub wrote: bool,
    /// TPP was rejected before execution (over budget).
    pub rejected: bool,
}

impl ExecOutcome {
    pub fn executed_count(&self) -> usize {
        self.status.iter().filter(|s| matches!(s, InstrStatus::Executed)).count()
    }
    /// The opcodes that actually touched the datapath, for cost accounting.
    pub fn executed_ops<'a>(
        &'a self,
        instrs: &'a [Instruction],
    ) -> impl Iterator<Item = Opcode> + 'a {
        self.status
            .iter()
            .zip(instrs)
            .filter(|(s, _)| {
                matches!(
                    s,
                    InstrStatus::Executed | InstrStatus::CondFailed | InstrStatus::PredicateFalse
                )
            })
            .map(|(_, i)| i.opcode)
    }
}

/// Execute `tpp` in program order against `bus`.
///
/// Mutates the TPP's packet memory, stack pointer, `wrote` flag and (when
/// `opts.increment_hop`) hop counter — exactly the state a switch forwards
/// to the next hop.
pub fn execute(tpp: &mut Tpp, bus: &mut dyn MemoryBus, opts: &ExecOptions) -> ExecOutcome {
    if tpp.instrs.len() > opts.max_instructions {
        return ExecOutcome { status: Vec::new(), wrote: false, rejected: true };
    }
    let mut status = Vec::with_capacity(tpp.instrs.len());
    let mut wrote = false;
    let mut live = true; // flipped off by failed CSTORE / false CEXEC

    // Iterate by index and copy each (4-byte, `Copy`) instruction out so the
    // interpreter can borrow the TPP mutably without cloning the program.
    for idx in 0..tpp.instrs.len() {
        let ins = tpp.instrs[idx];
        if !live {
            // Stack slots are preassigned at parse time (§3.5 serialization),
            // so a suppressed PUSH/POP still consumes/releases its slot: the
            // SP delta is a parse-time constant, not a runtime outcome.
            match ins.opcode {
                Opcode::Push if (tpp.sp as usize) < tpp.memory_words() => tpp.sp += 1,
                Opcode::Pop if tpp.sp > 0 => tpp.sp -= 1,
                _ => {}
            }
            status.push(InstrStatus::Suppressed);
            continue;
        }
        let st = step(tpp, bus, &ins, opts, &mut wrote, &mut live);
        status.push(st);
    }
    if wrote {
        tpp.wrote = true;
    }
    if opts.increment_hop {
        // Wrapping: the hop counter is a modular path position, which the
        // large-TPP splitting pattern (§4.4) exploits by starting it
        // "before zero" so each split covers a later hop range.
        tpp.hop = tpp.hop.wrapping_add(1);
    }
    ExecOutcome { status, wrote, rejected: false }
}

fn step(
    tpp: &mut Tpp,
    bus: &mut dyn MemoryBus,
    ins: &Instruction,
    opts: &ExecOptions,
    wrote: &mut bool,
    live: &mut bool,
) -> InstrStatus {
    match ins.opcode {
        Opcode::Push => {
            // The slot is preassigned at parse time: SP advances whenever a
            // slot exists, even if the read then fails (leaving a hole).
            let sp = tpp.sp as usize;
            if sp >= tpp.memory_words() {
                return InstrStatus::Skipped; // stack overflow: no side effect
            }
            tpp.sp += 1;
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            tpp.write_word(sp, v).expect("slot bounds checked");
            InstrStatus::Executed
        }
        Opcode::Pop => {
            if tpp.sp == 0 {
                return InstrStatus::Skipped; // stack underflow
            }
            // Like PUSH, the slot is consumed at parse time; a denied write
            // leaves switch memory untouched but still pops.
            tpp.sp -= 1;
            let Some(v) = tpp.read_word(tpp.sp as usize) else {
                return InstrStatus::Skipped;
            };
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Load => {
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            match tpp.write_hop_word(ins.op1, v) {
                Some(()) => InstrStatus::Executed,
                None => InstrStatus::Skipped,
            }
        }
        Opcode::Store => {
            let Some(v) = tpp.read_hop_word(ins.op1) else { return InstrStatus::Skipped };
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Cstore => {
            // CSTORE [X], [Packet:hop[Pre]], [Packet:hop[Post]]  (§3.3.3)
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let (Some(pre), Some(post)) = (tpp.read_hop_word(ins.op1), tpp.read_hop_word(ins.op2))
            else {
                return InstrStatus::Skipped;
            };
            let mut observed = x;
            let mut succeeded = false;
            if x == pre && opts.allow_writes {
                match bus.write(ins.addr, post) {
                    WriteOutcome::Ok => {
                        *wrote = true;
                        succeeded = true;
                        observed = post;
                    }
                    // Write refused: behaves like a failed comparison so the
                    // end-host observes a non-matching value.
                    WriteOutcome::Denied | WriteOutcome::Unmapped => {}
                }
            }
            // Write the observed value back so the end-host can tell.
            let _ = tpp.write_hop_word(ins.op1, observed);
            if succeeded {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::CondFailed
            }
        }
        Opcode::Cexec => {
            // CEXEC [X], [Packet:hop[mask]], [Packet:hop[value]]
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let (Some(mask), Some(value)) =
                (tpp.read_hop_word(ins.op1), tpp.read_hop_word(ins.op2))
            else {
                return InstrStatus::Skipped;
            };
            if x & mask == value {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::PredicateFalse
            }
        }
    }
}

/// A fixed-capacity per-instruction status list, sized by the architectural
/// instruction budget — the allocation-free counterpart of
/// [`ExecOutcome::status`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusVec {
    arr: [InstrStatus; MAX_INSTRUCTIONS],
    len: u8,
}

impl StatusVec {
    /// Append a status. Panics (with an explicit message) beyond the
    /// architectural [`MAX_INSTRUCTIONS`] capacity — a caller bug, since
    /// over-budget programs are rejected before any status is recorded.
    pub fn push(&mut self, s: InstrStatus) {
        assert!(
            (self.len as usize) < MAX_INSTRUCTIONS,
            "StatusVec holds at most MAX_INSTRUCTIONS statuses"
        );
        self.arr[self.len as usize] = s;
        self.len += 1;
    }
    pub fn as_slice(&self) -> &[InstrStatus] {
        &self.arr[..self.len as usize]
    }
    pub fn len(&self) -> usize {
        self.len as usize
    }
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for StatusVec {
    type Target = [InstrStatus];
    fn deref(&self) -> &[InstrStatus] {
        self.as_slice()
    }
}

/// Outcome of [`execute_in_place`]; same shape as [`ExecOutcome`] without
/// the heap-backed status vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InPlaceOutcome {
    /// One status per instruction, in program order.
    pub status: StatusVec,
    /// Whether any switch-memory write took effect.
    pub wrote: bool,
    /// TPP was rejected before execution (over budget).
    pub rejected: bool,
}

impl InPlaceOutcome {
    pub fn executed_count(&self) -> usize {
        self.status.iter().filter(|s| matches!(s, InstrStatus::Executed)).count()
    }
}

/// Execute a TPP **in place over its wire bytes** — the zero-allocation
/// fast path a switch runs per packet.
///
/// Observationally equivalent to [`execute`] on the parsed section
/// (property-tested in `tests/proptests.rs`): packet-memory words, the
/// SP/hop/flag bytes and the section checksum end up byte-identical to a
/// parse → [`execute`] → re-serialize round trip, and the per-instruction
/// statuses and bus side effects match. The only intentional difference is
/// capacity: this path enforces the architectural [`MAX_INSTRUCTIONS`]
/// budget even if `opts.max_instructions` was configured above it.
pub fn execute_in_place(
    view: &mut TppViewMut<'_>,
    bus: &mut dyn MemoryBus,
    opts: &ExecOptions,
) -> InPlaceOutcome {
    let n = view.n_instr();
    if n > opts.max_instructions || n > MAX_INSTRUCTIONS {
        return InPlaceOutcome { status: StatusVec::default(), wrote: false, rejected: true };
    }
    let mut status = StatusVec::default();
    let mut wrote = false;
    let mut live = true;

    for idx in 0..n {
        let ins = view.instr(idx);
        if !live {
            // A suppressed PUSH/POP still consumes/releases its parse-time
            // stack slot (see `execute`).
            match ins.opcode {
                Opcode::Push if (view.sp() as usize) < view.memory_words() => {
                    let sp = view.sp();
                    view.set_sp(sp + 1);
                }
                Opcode::Pop if view.sp() > 0 => {
                    let sp = view.sp();
                    view.set_sp(sp - 1);
                }
                _ => {}
            }
            status.push(InstrStatus::Suppressed);
            continue;
        }
        let st = step_in_place(view, bus, &ins, opts, &mut wrote, &mut live);
        status.push(st);
    }
    if wrote {
        view.set_wrote(true);
    }
    if opts.increment_hop {
        let hop = view.hop();
        view.set_hop(hop.wrapping_add(1));
    }
    InPlaceOutcome { status, wrote, rejected: false }
}

/// Execute a **verified** TPP in place, skipping the per-instruction
/// packet-memory bounds checks the [`Verified`] token proves redundant.
///
/// The token is the proof object [`verify`](crate::verify::verify) returns
/// for a passing program: within its hop/SP window, no PUSH can overflow, no
/// POP can underflow, and no hop-addressed access can leave packet memory —
/// so this path replaces every `Option`-returning word access with a direct
/// one and drops the stack-limit branches. One `covers` check per packet
/// replaces them all; a packet outside the verified window (e.g. past the
/// proven hop range) falls back to the fully checked [`execute_in_place`].
///
/// Bus semantics are unchanged: unmapped operands still skip gracefully and
/// the administrative write switch still applies — the proof is about
/// *packet memory*, not the switch's address map. Observational equivalence
/// with [`execute_in_place`] for verified programs is property-tested in
/// `tests/verify_soundness.rs`.
pub fn execute_in_place_verified(
    view: &mut TppViewMut<'_>,
    bus: &mut dyn MemoryBus,
    opts: &ExecOptions,
    token: &Verified,
) -> InPlaceOutcome {
    if !token.covers(view.hop(), view.sp()) {
        return execute_in_place(view, bus, opts);
    }
    let n = view.n_instr();
    if n > opts.max_instructions || n > MAX_INSTRUCTIONS {
        return InPlaceOutcome { status: StatusVec::default(), wrote: false, rejected: true };
    }
    let mut status = StatusVec::default();
    let mut wrote = false;
    let mut live = true;

    for idx in 0..n {
        let ins = view.instr(idx);
        if !live {
            // Suppressed PUSH/POP still moves the parse-time SP; the token
            // proves the clamp conditions can never trigger.
            match ins.opcode {
                Opcode::Push => {
                    let sp = view.sp();
                    view.set_sp(sp + 1);
                }
                Opcode::Pop => {
                    let sp = view.sp();
                    view.set_sp(sp - 1);
                }
                _ => {}
            }
            status.push(InstrStatus::Suppressed);
            continue;
        }
        let st = step_in_place_trusted(view, bus, &ins, opts, &mut wrote, &mut live);
        status.push(st);
    }
    if wrote {
        view.set_wrote(true);
    }
    if opts.increment_hop {
        let hop = view.hop();
        view.set_hop(hop.wrapping_add(1));
    }
    InPlaceOutcome { status, wrote, rejected: false }
}

/// [`step_in_place`] minus the packet-memory bounds checks — every word
/// access here is covered by the caller's [`Verified`] token.
fn step_in_place_trusted(
    view: &mut TppViewMut<'_>,
    bus: &mut dyn MemoryBus,
    ins: &Instruction,
    opts: &ExecOptions,
    wrote: &mut bool,
    live: &mut bool,
) -> InstrStatus {
    match ins.opcode {
        Opcode::Push => {
            let sp = view.sp() as usize;
            view.set_sp(sp as u8 + 1);
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            view.write_word_trusted(sp, v);
            InstrStatus::Executed
        }
        Opcode::Pop => {
            let sp = view.sp() - 1;
            view.set_sp(sp);
            let v = view.read_word_trusted(sp as usize);
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Load => {
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            view.write_hop_word_trusted(ins.op1, v);
            InstrStatus::Executed
        }
        Opcode::Store => {
            let v = view.read_hop_word_trusted(ins.op1);
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Cstore => {
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let pre = view.read_hop_word_trusted(ins.op1);
            let post = view.read_hop_word_trusted(ins.op2);
            let mut observed = x;
            let mut succeeded = false;
            if x == pre && opts.allow_writes {
                match bus.write(ins.addr, post) {
                    WriteOutcome::Ok => {
                        *wrote = true;
                        succeeded = true;
                        observed = post;
                    }
                    WriteOutcome::Denied | WriteOutcome::Unmapped => {}
                }
            }
            view.write_hop_word_trusted(ins.op1, observed);
            if succeeded {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::CondFailed
            }
        }
        Opcode::Cexec => {
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let mask = view.read_hop_word_trusted(ins.op1);
            let value = view.read_hop_word_trusted(ins.op2);
            if x & mask == value {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::PredicateFalse
            }
        }
    }
}

fn step_in_place(
    view: &mut TppViewMut<'_>,
    bus: &mut dyn MemoryBus,
    ins: &Instruction,
    opts: &ExecOptions,
    wrote: &mut bool,
    live: &mut bool,
) -> InstrStatus {
    match ins.opcode {
        Opcode::Push => {
            let sp = view.sp() as usize;
            if sp >= view.memory_words() {
                return InstrStatus::Skipped; // stack overflow: no side effect
            }
            view.set_sp(sp as u8 + 1);
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            view.write_word(sp, v).expect("slot bounds checked");
            InstrStatus::Executed
        }
        Opcode::Pop => {
            if view.sp() == 0 {
                return InstrStatus::Skipped; // stack underflow
            }
            let sp = view.sp() - 1;
            view.set_sp(sp);
            let Some(v) = view.read_word(sp as usize) else {
                return InstrStatus::Skipped;
            };
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Load => {
            let Some(v) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            match view.write_hop_word(ins.op1, v) {
                Some(()) => InstrStatus::Executed,
                None => InstrStatus::Skipped,
            }
        }
        Opcode::Store => {
            let Some(v) = view.read_hop_word(ins.op1) else { return InstrStatus::Skipped };
            if !opts.allow_writes {
                return InstrStatus::Skipped;
            }
            match bus.write(ins.addr, v) {
                WriteOutcome::Ok => {
                    *wrote = true;
                    InstrStatus::Executed
                }
                _ => InstrStatus::Skipped,
            }
        }
        Opcode::Cstore => {
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let (Some(pre), Some(post)) =
                (view.read_hop_word(ins.op1), view.read_hop_word(ins.op2))
            else {
                return InstrStatus::Skipped;
            };
            let mut observed = x;
            let mut succeeded = false;
            if x == pre && opts.allow_writes {
                match bus.write(ins.addr, post) {
                    WriteOutcome::Ok => {
                        *wrote = true;
                        succeeded = true;
                        observed = post;
                    }
                    WriteOutcome::Denied | WriteOutcome::Unmapped => {}
                }
            }
            let _ = view.write_hop_word(ins.op1, observed);
            if succeeded {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::CondFailed
            }
        }
        Opcode::Cexec => {
            let Some(x) = bus.read(ins.addr) else { return InstrStatus::Skipped };
            let (Some(mask), Some(value)) =
                (view.read_hop_word(ins.op1), view.read_hop_word(ins.op2))
            else {
                return InstrStatus::Skipped;
            };
            if x & mask == value {
                InstrStatus::Executed
            } else {
                *live = false;
                InstrStatus::PredicateFalse
            }
        }
    }
}

/// A TPP program decoded **once** and reusable across every frame that
/// carries the same instruction words — the planning half of batch TCPU
/// execution.
///
/// Probe flows send the *same* program on every packet, so the per-frame
/// instruction decode, the budget check, and (when attached) the PR 9
/// static-verifier proof are all redundant after the first frame. A
/// `PlanTemplate` pays them at plan time: [`PlanTemplate::execute_one`]
/// then steps straight over the pre-decoded instruction array, choosing the
/// unchecked trusted path per frame when the carried [`Verified`] token
/// covers that frame's hop/SP window.
///
/// Both consumers of the in-place interpreter share this entry point: the
/// switch's plan cache (which keys cached `TppRun`s on the same instruction
/// bytes) and [`execute_batch`], the core-level batch loop.
#[derive(Clone, Copy, Debug)]
pub struct PlanTemplate {
    n_instr: u8,
    instrs: [Instruction; MAX_INSTRUCTIONS],
    rejected: bool,
    token: Option<Verified>,
}

impl PlanTemplate {
    /// Decode the program of a validated view. The template bakes in the
    /// budget verdict (`opts.max_instructions` and the architectural
    /// [`MAX_INSTRUCTIONS`] cap), so reuse it only under the same options —
    /// exactly what a per-switch plan cache guarantees.
    pub fn decode(view: &TppView<'_>, opts: &ExecOptions) -> PlanTemplate {
        let n = view.n_instr();
        let rejected = n > opts.max_instructions || n > MAX_INSTRUCTIONS;
        let filler = Instruction::load(Address::new(0), 0);
        let mut t =
            PlanTemplate { n_instr: 0, instrs: [filler; MAX_INSTRUCTIONS], rejected, token: None };
        if !rejected {
            t.n_instr = n as u8;
            for idx in 0..n {
                t.instrs[idx] = view.instr(idx);
            }
        }
        t
    }

    /// Attach a static-verifier token so cache hits can take the unchecked
    /// fast path (see [`execute_in_place_verified`]). The token must have
    /// been issued for this exact program.
    #[must_use]
    pub fn with_token(mut self, token: Verified) -> Self {
        self.token = Some(token);
        self
    }

    /// The decoded program (empty for rejected templates).
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs[..self.n_instr as usize]
    }

    pub fn rejected(&self) -> bool {
        self.rejected
    }

    pub fn token(&self) -> Option<&Verified> {
        self.token.as_ref()
    }

    /// Execute one frame's **pre-validated** TPP section against `bus`.
    ///
    /// Equivalent to [`execute_in_place`] (or, when the carried token
    /// covers this frame's hop/SP, [`execute_in_place_verified`]) on the
    /// same bytes — the caller promises the section was validated by
    /// [`TppView::parse`] and carries exactly this template's instruction
    /// words. Batch-invariant work (decode, budget check, token identity)
    /// is already done; only the per-frame word loop runs here.
    pub fn execute_one(
        &self,
        view: &mut TppViewMut<'_>,
        bus: &mut dyn MemoryBus,
        opts: &ExecOptions,
    ) -> InPlaceOutcome {
        if self.rejected {
            return InPlaceOutcome { status: StatusVec::default(), wrote: false, rejected: true };
        }
        let trusted = self.token.is_some_and(|t| t.covers(view.hop(), view.sp()));
        let mut status = StatusVec::default();
        let mut wrote = false;
        let mut live = true;

        for ins in self.instrs() {
            if !live {
                // A suppressed PUSH/POP still moves the parse-time SP; on
                // the trusted path the token proves the clamps can't fire.
                match ins.opcode {
                    Opcode::Push if trusted || (view.sp() as usize) < view.memory_words() => {
                        let sp = view.sp();
                        view.set_sp(sp + 1);
                    }
                    Opcode::Pop if trusted || view.sp() > 0 => {
                        let sp = view.sp();
                        view.set_sp(sp - 1);
                    }
                    _ => {}
                }
                status.push(InstrStatus::Suppressed);
                continue;
            }
            let st = if trusted {
                step_in_place_trusted(view, bus, ins, opts, &mut wrote, &mut live)
            } else {
                step_in_place(view, bus, ins, opts, &mut wrote, &mut live)
            };
            status.push(st);
        }
        if wrote {
            view.set_wrote(true);
        }
        if opts.increment_hop {
            let hop = view.hop();
            view.set_hop(hop.wrapping_add(1));
        }
        InPlaceOutcome { status, wrote, rejected: false }
    }
}

/// Execute one decoded [`PlanTemplate`] over a whole batch of frames,
/// appending one [`InPlaceOutcome`] per frame (in order) to `out`.
///
/// Every section must be a **pre-validated** TPP section carrying exactly
/// the template's instruction words — the batch-invariant decode and proof
/// are paid once, and the per-frame loop is a straight word-op pass over
/// the fixed 4-byte layout. Frames execute strictly in order: bus writes
/// made by frame *i* are visible to frame *i+1*, exactly as if each frame
/// had been executed singly.
pub fn execute_batch<'a, I>(
    template: &PlanTemplate,
    sections: I,
    bus: &mut dyn MemoryBus,
    opts: &ExecOptions,
    out: &mut Vec<InPlaceOutcome>,
) where
    I: IntoIterator<Item = &'a mut [u8]>,
{
    for bytes in sections {
        let mut view = TppViewMut::from_validated(bytes);
        out.push(template.execute_one(&mut view, bus, opts));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;
    use crate::wire::tpp::AddrMode;

    fn a(m: &str) -> Address {
        resolve_mnemonic(m).unwrap()
    }

    fn stack_tpp(instrs: Vec<Instruction>, mem_bytes: usize) -> Tpp {
        Tpp { instrs, memory: vec![0; mem_bytes], ..Tpp::default() }
    }

    fn hop_tpp(instrs: Vec<Instruction>, per_hop: u8, hops: usize) -> Tpp {
        Tpp {
            mode: AddrMode::Hop,
            per_hop_len: per_hop,
            instrs,
            memory: vec![0; per_hop as usize * hops],
            ..Tpp::default()
        }
    }

    #[test]
    fn push_collects_across_hops() {
        // The Figure 1a walk-through: PUSH [QSize] at three hops.
        let qsize = a("Queue:QueueOccupancy");
        let mut tpp = stack_tpp(vec![Instruction::push(qsize)], 12);
        for (hop, depth) in [(0u8, 0u32), (1, 0xa0), (2, 0x1234)] {
            assert_eq!(tpp.hop, hop);
            let mut bus = MapBus::with(&[(qsize, depth)]);
            let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
            assert_eq!(out.status, vec![InstrStatus::Executed]);
        }
        assert_eq!(tpp.sp, 3);
        assert_eq!(tpp.words(), vec![0, 0xa0, 0x1234]);
    }

    #[test]
    fn push_overflow_is_graceful() {
        let qsize = a("Queue:QueueOccupancy");
        let mut tpp = stack_tpp(vec![Instruction::push(qsize)], 4);
        let mut bus = MapBus::with(&[(qsize, 7)]);
        assert_eq!(
            execute(&mut tpp, &mut bus, &ExecOptions::default()).status,
            vec![InstrStatus::Executed]
        );
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Skipped]);
        assert_eq!(tpp.sp, 1); // unchanged
    }

    #[test]
    fn pop_writes_switch_memory() {
        let reg = a("Stage1:Reg0");
        let qsize = a("Queue:QueueOccupancy");
        let mut tpp = stack_tpp(vec![Instruction::push(qsize), Instruction::pop(reg)], 8);
        let mut bus = MapBus::with(&[(qsize, 42), (reg, 0)]);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Executed, InstrStatus::Executed]);
        assert!(out.wrote);
        assert_eq!(bus.get(reg), Some(42));
        assert_eq!(tpp.sp, 0);
        assert!(tpp.wrote);
    }

    #[test]
    fn pop_empty_stack_skips() {
        let reg = a("Stage1:Reg0");
        let mut tpp = stack_tpp(vec![Instruction::pop(reg)], 8);
        let mut bus = MapBus::with(&[(reg, 5)]);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Skipped]);
        assert_eq!(bus.get(reg), Some(5));
    }

    #[test]
    fn load_hop_addressing() {
        // LOAD [Switch:SwitchID], [Packet:hop[1]] across two hops with
        // 16-byte windows: values land at words 1 and 5.
        let sid = a("Switch:SwitchID");
        let mut tpp = hop_tpp(vec![Instruction::load(sid, 1)], 16, 2);
        let mut bus = MapBus::with(&[(sid, 0xAA)]);
        execute(&mut tpp, &mut bus, &ExecOptions::default());
        let mut bus2 = MapBus::with(&[(sid, 0xBB)]);
        execute(&mut tpp, &mut bus2, &ExecOptions::default());
        assert_eq!(tpp.read_word(1), Some(0xAA));
        assert_eq!(tpp.read_word(5), Some(0xBB));
    }

    #[test]
    fn unmapped_read_skips_gracefully() {
        let sid = a("Switch:SwitchID");
        let mut tpp = stack_tpp(vec![Instruction::push(sid), Instruction::push(sid)], 8);
        let mut bus = MapBus::default(); // nothing mapped
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Skipped, InstrStatus::Skipped]);
        assert!(!out.wrote);
    }

    #[test]
    fn cstore_success_and_failure() {
        // The RCP* update TPP (§2.2): version-checked write.
        let v_addr = a("Link:AppSpecific_0");
        let r_addr = a("Link:AppSpecific_1");
        let mut tpp =
            hop_tpp(vec![Instruction::cstore(v_addr, 0, 1), Instruction::store(r_addr, 2)], 12, 2);
        // Hop 0 memory: [V, V+1, R_new]
        tpp.write_word(0, 10).unwrap();
        tpp.write_word(1, 11).unwrap();
        tpp.write_word(2, 5000).unwrap();
        // Hop 1 memory: stale version (switch has 20, packet says 19).
        tpp.write_word(3, 19).unwrap();
        tpp.write_word(4, 20).unwrap();
        tpp.write_word(5, 6000).unwrap();

        // Hop 0: version matches -> swap succeeds, rate stored.
        let mut bus = MapBus::with(&[(v_addr, 10), (r_addr, 0)]);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Executed, InstrStatus::Executed]);
        assert_eq!(bus.get(v_addr), Some(11));
        assert_eq!(bus.get(r_addr), Some(5000));
        assert_eq!(tpp.read_word(0), Some(11)); // observed value written back

        // Hop 1: version mismatch -> swap fails, STORE suppressed.
        let mut bus = MapBus::with(&[(v_addr, 20), (r_addr, 0)]);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::CondFailed, InstrStatus::Suppressed]);
        assert_eq!(bus.get(v_addr), Some(20)); // untouched
        assert_eq!(bus.get(r_addr), Some(0)); // untouched
        assert_eq!(tpp.read_word(3), Some(20)); // observed value tells the host
    }

    #[test]
    fn cexec_gates_subsequent_instructions() {
        // Targeted execution (§4.4): run only on switch 7.
        let sid = a("Switch:SwitchID");
        let qsize = a("Queue:QueueOccupancy");
        let mk = || {
            let mut t = hop_tpp(
                vec![Instruction::cexec(sid, 0, 1), Instruction::push(qsize)],
                0, // absolute offsets
                0,
            );
            t.memory = vec![0; 16];
            t.write_word(0, 0xFFFF_FFFF).unwrap(); // mask
            t.write_word(1, 7).unwrap(); // value: switch id 7
            t.sp = 2;
            t
        };
        // On switch 7: predicate true, PUSH runs.
        let mut t = mk();
        let mut bus = MapBus::with(&[(sid, 7), (qsize, 99)]);
        let out = execute(&mut t, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Executed, InstrStatus::Executed]);
        assert_eq!(t.read_word(2), Some(99));
        // On switch 8: predicate false, PUSH suppressed.
        let mut t = mk();
        let mut bus = MapBus::with(&[(sid, 8), (qsize, 99)]);
        let out = execute(&mut t, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::PredicateFalse, InstrStatus::Suppressed]);
        assert_eq!(t.read_word(2), Some(0));
        // The suppressed PUSH still consumed its parse-time slot.
        assert_eq!(t.sp, 3);
    }

    #[test]
    fn writes_can_be_disabled() {
        let reg = a("Stage1:Reg0");
        let mut tpp = hop_tpp(vec![Instruction::store(reg, 0)], 4, 1);
        tpp.write_word(0, 123).unwrap();
        let mut bus = MapBus::with(&[(reg, 0)]);
        let opts = ExecOptions { allow_writes: false, ..ExecOptions::default() };
        let out = execute(&mut tpp, &mut bus, &opts);
        assert_eq!(out.status, vec![InstrStatus::Skipped]);
        assert_eq!(bus.get(reg), Some(0));
        assert!(!tpp.wrote);
    }

    #[test]
    fn cstore_with_writes_disabled_fails_visibly() {
        let reg = a("Link:AppSpecific_0");
        let mut tpp = hop_tpp(vec![Instruction::cstore(reg, 0, 1)], 8, 1);
        tpp.write_word(0, 10).unwrap();
        tpp.write_word(1, 11).unwrap();
        let mut bus = MapBus::with(&[(reg, 10)]);
        let opts = ExecOptions { allow_writes: false, ..ExecOptions::default() };
        let out = execute(&mut tpp, &mut bus, &opts);
        assert_eq!(out.status, vec![InstrStatus::CondFailed]);
        assert_eq!(bus.get(reg), Some(10));
        // Observed value still written back so the host learns the state.
        assert_eq!(tpp.read_word(0), Some(10));
    }

    #[test]
    fn read_only_memory_denies_store() {
        let counter = a("Link:RX-Bytes");
        let mut tpp = hop_tpp(vec![Instruction::store(counter, 0)], 4, 1);
        let mut bus = MapBus::with(&[(counter, 555)]);
        bus.mark_read_only(counter);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(out.status, vec![InstrStatus::Skipped]);
        assert_eq!(bus.get(counter), Some(555));
    }

    #[test]
    fn over_budget_rejected() {
        let sid = a("Switch:SwitchID");
        let mut tpp = stack_tpp(vec![Instruction::push(sid); 6], 64);
        let mut bus = MapBus::with(&[(sid, 1)]);
        let out = execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert!(out.rejected);
        assert_eq!(tpp.sp, 0);
        assert_eq!(tpp.hop, 0); // hop not incremented on reject
    }

    #[test]
    fn hop_increments_after_execution() {
        let sid = a("Switch:SwitchID");
        let mut tpp = stack_tpp(vec![Instruction::push(sid)], 8);
        let mut bus = MapBus::with(&[(sid, 1)]);
        execute(&mut tpp, &mut bus, &ExecOptions::default());
        assert_eq!(tpp.hop, 1);
        let opts = ExecOptions { increment_hop: false, ..ExecOptions::default() };
        execute(&mut tpp, &mut bus, &opts);
        assert_eq!(tpp.hop, 1);
    }

    /// Run both interpreters on the same TPP/bus and require byte-identical
    /// frames and matching outcomes.
    fn assert_paths_agree(tpp: &Tpp, bus: &MapBus, opts: &ExecOptions) {
        let bytes = tpp.serialize();

        let mut ref_tpp = tpp.clone();
        let mut ref_bus = bus.clone();
        let ref_out = execute(&mut ref_tpp, &mut ref_bus, opts);
        let ref_bytes = ref_tpp.serialize();

        let mut wire = bytes.clone();
        let mut fast_bus = bus.clone();
        let (mut view, _) = TppViewMut::parse(&mut wire).unwrap();
        let fast_out = execute_in_place(&mut view, &mut fast_bus, opts);

        if ref_out.rejected {
            assert!(fast_out.rejected);
            assert_eq!(wire, bytes, "rejected TPP must be untouched");
        } else {
            assert_eq!(wire, ref_bytes, "in-place bytes != reference re-serialization");
        }
        assert_eq!(fast_out.status.as_slice(), &ref_out.status[..]);
        assert_eq!(fast_out.wrote, ref_out.wrote);
        assert_eq!(fast_bus.mem, ref_bus.mem);
    }

    #[test]
    fn in_place_matches_reference_on_core_scenarios() {
        let qsize = a("Queue:QueueOccupancy");
        let reg = a("Link:AppSpecific_0");
        let sid = a("Switch:SwitchID");

        // PUSH/POP with a mapped bus.
        let tpp = stack_tpp(vec![Instruction::push(qsize), Instruction::pop(reg)], 8);
        assert_paths_agree(&tpp, &MapBus::with(&[(qsize, 42), (reg, 0)]), &ExecOptions::default());

        // CSTORE failure suppressing a STORE, hop addressing.
        let mut tpp =
            hop_tpp(vec![Instruction::cstore(reg, 0, 1), Instruction::store(reg, 2)], 12, 2);
        tpp.write_word(0, 19).unwrap();
        tpp.write_word(1, 20).unwrap();
        tpp.write_word(2, 6000).unwrap();
        assert_paths_agree(&tpp, &MapBus::with(&[(reg, 77)]), &ExecOptions::default());

        // Unmapped reads skip; writes disabled; no hop increment.
        let tpp = stack_tpp(vec![Instruction::push(sid), Instruction::store(reg, 0)], 8);
        let opts =
            ExecOptions { allow_writes: false, increment_hop: false, ..ExecOptions::default() };
        assert_paths_agree(&tpp, &MapBus::default(), &opts);

        // Over budget: rejected, bytes untouched.
        let tpp = stack_tpp(vec![Instruction::push(sid); 6], 64);
        assert_paths_agree(&tpp, &MapBus::with(&[(sid, 1)]), &ExecOptions::default());
    }

    #[test]
    fn verified_path_matches_checked_path_within_token_window() {
        let qsize = a("Queue:QueueOccupancy");
        let sid = a("Switch:SwitchID");
        // 2 pushes per hop into 8 words: the token covers hops 0..4.
        let tpp = stack_tpp(vec![Instruction::push(sid), Instruction::push(qsize)], 32);
        let verdict = crate::verify::verify(&tpp, crate::verify::VerifyOptions::default());
        let token = verdict.token().expect("clean collect probe earns a token");

        let opts = ExecOptions::default();
        let mut frame_a = tpp.serialize();
        let mut frame_b = frame_a.clone();
        let mut bus_a = MapBus::with(&[(sid, 7), (qsize, 99)]);
        let mut bus_b = MapBus::with(&[(sid, 7), (qsize, 99)]);
        for _ in 0..4 {
            let (mut va, _) = TppViewMut::parse(&mut frame_a).unwrap();
            let out_a = execute_in_place(&mut va, &mut bus_a, &opts);
            let (mut vb, _) = TppViewMut::parse(&mut frame_b).unwrap();
            let out_b = execute_in_place_verified(&mut vb, &mut bus_b, &opts, &token);
            assert_eq!(out_a.status.as_slice(), out_b.status.as_slice());
            assert_eq!(out_a.wrote, out_b.wrote);
        }
        assert_eq!(frame_a, frame_b, "trusted path diverged from checked path");
    }

    #[test]
    fn verified_path_falls_back_outside_token_window() {
        let sid = a("Switch:SwitchID");
        // One push into one word: token covers exactly hop 0.
        let tpp = stack_tpp(vec![Instruction::push(sid)], 4);
        let verdict = crate::verify::verify(&tpp, crate::verify::VerifyOptions::default());
        let token = verdict.token().unwrap();
        assert!(token.covers(0, 0));
        assert!(!token.covers(1, 1));

        let mut frame = tpp.serialize();
        let mut bus = MapBus::with(&[(sid, 5)]);
        let opts = ExecOptions::default();
        // Hop 0: trusted. Hop 1: outside the window — must fall back to the
        // checked interpreter and skip the overflowing push gracefully.
        for expect in [InstrStatus::Executed, InstrStatus::Skipped] {
            let (mut view, _) = TppViewMut::parse(&mut frame).unwrap();
            let out = execute_in_place_verified(&mut view, &mut bus, &opts, &token);
            assert_eq!(out.status.as_slice(), &[expect]);
        }
        let (t, _) = crate::wire::Tpp::parse(&frame).unwrap();
        assert_eq!(t.read_word(0), Some(5));
        assert_eq!(t.hop, 2);
        assert_eq!(t.sp, 1, "overflowing push skips with no SP side effect");
    }

    /// A template executed per frame must be byte- and status-identical to
    /// the per-frame interpreters it replaces (checked without a token,
    /// verified with one).
    #[test]
    fn plan_template_matches_per_frame_interpreters() {
        let qsize = a("Queue:QueueOccupancy");
        let reg = a("Link:AppSpecific_0");
        let sid = a("Switch:SwitchID");
        let mut cstore =
            hop_tpp(vec![Instruction::cstore(reg, 0, 1), Instruction::store(reg, 2)], 12, 2);
        cstore.write_word(0, 19).unwrap();
        cstore.write_word(1, 20).unwrap();
        cstore.write_word(2, 6000).unwrap();
        let cases = [
            stack_tpp(vec![Instruction::push(qsize), Instruction::pop(reg)], 8),
            cstore,
            stack_tpp(vec![Instruction::push(sid); 6], 64), // over budget
        ];
        let opts = ExecOptions::default();
        for tpp in &cases {
            let bytes = tpp.serialize();
            let mk_bus = || MapBus::with(&[(qsize, 42), (reg, 77), (sid, 7)]);

            let mut ref_frame = bytes.clone();
            let mut ref_bus = mk_bus();
            let (mut rv, _) = TppViewMut::parse(&mut ref_frame).unwrap();
            let ref_out = execute_in_place(&mut rv, &mut ref_bus, &opts);

            let mut t_frame = bytes.clone();
            let mut t_bus = mk_bus();
            let template = {
                let (view, _) = TppView::parse(&t_frame).unwrap();
                PlanTemplate::decode(&view, &opts)
            };
            assert_eq!(template.rejected(), ref_out.rejected);
            let (mut tv, _) = TppViewMut::parse(&mut t_frame).unwrap();
            let t_out = template.execute_one(&mut tv, &mut t_bus, &opts);

            assert_eq!(t_frame, ref_frame, "template bytes != per-frame bytes");
            assert_eq!(t_out.status.as_slice(), ref_out.status.as_slice());
            assert_eq!(t_out.wrote, ref_out.wrote);
            assert_eq!(t_bus.mem, ref_bus.mem);

            // With a token the template must match the verified path.
            let verdict = crate::verify::verify(tpp, crate::verify::VerifyOptions::default());
            let Some(token) = verdict.token() else { continue };
            let mut v_frame = bytes.clone();
            let mut v_bus = mk_bus();
            let (mut vv, _) = TppViewMut::parse(&mut v_frame).unwrap();
            let v_out = execute_in_place_verified(&mut vv, &mut v_bus, &opts, &token);
            let mut tk_frame = bytes.clone();
            let mut tk_bus = mk_bus();
            let tk = template.with_token(token);
            let (mut tkv, _) = TppViewMut::parse(&mut tk_frame).unwrap();
            let tk_out = tk.execute_one(&mut tkv, &mut tk_bus, &opts);
            assert_eq!(tk_frame, v_frame, "tokened template bytes != verified path");
            assert_eq!(tk_out.status.as_slice(), v_out.status.as_slice());
            assert_eq!(tk_bus.mem, v_bus.mem);
        }
    }

    #[test]
    fn execute_batch_runs_frames_in_order() {
        // Each frame CSTOREs version v -> v+1: only strict in-order
        // execution lets every swap succeed.
        let reg = a("Link:AppSpecific_0");
        let mut frames: Vec<Vec<u8>> = (0..4u32)
            .map(|v| {
                let mut t = hop_tpp(vec![Instruction::cstore(reg, 0, 1)], 8, 1);
                t.write_word(0, v).unwrap();
                t.write_word(1, v + 1).unwrap();
                t.serialize()
            })
            .collect();
        let opts = ExecOptions::default();
        let template = {
            let (view, _) = TppView::parse(&frames[0]).unwrap();
            PlanTemplate::decode(&view, &opts)
        };
        let mut bus = MapBus::with(&[(reg, 0)]);
        let mut out = Vec::new();
        execute_batch(
            &template,
            frames.iter_mut().map(Vec::as_mut_slice),
            &mut bus,
            &opts,
            &mut out,
        );
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o.status.as_slice() == [InstrStatus::Executed]));
        assert_eq!(bus.get(reg), Some(4), "4 chained swaps applied in order");
    }
}
