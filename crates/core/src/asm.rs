//! Assembler, disassembler, and builder for the paper's pseudo-assembly
//! (§2): programs like
//!
//! ```text
//! .mode hop
//! .perhop 20
//! .hops 5
//! PUSH [Switch:SwitchID]
//! PUSH [Link:QueueSize]
//! PUSH [Link:RX-Utilization]
//! PUSH [Link:AppSpecific_0]   # Version number
//! PUSH [Link:AppSpecific_1]   # Rfair
//! ```
//!
//! Mnemonic addresses (`[Namespace:Statistic]`) resolve at assembly time —
//! the paper posits these mappings are "known upfront at compile time"
//! (§2). Raw addresses are written `[0xb000]`.

use crate::addr::{resolve_mnemonic, Address};
use crate::isa::{Instruction, Opcode, MAX_INSTRUCTIONS};
use crate::wire::tpp::{AddrMode, Tpp};
use core::fmt;

/// Errors from assembling a TPP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// `(line number, message)`
    Syntax(usize, String),
    TooManyInstructions(usize),
    MemoryTooLarge(usize),
    OperandOutOfRange(usize, String),
    /// The static verifier denied the program
    /// ([`TppBuilder::build_verified`]); one entry per deny-class finding.
    Verify(Vec<crate::verify::Diagnostic>),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax(l, m) => write!(f, "line {l}: {m}"),
            AsmError::TooManyInstructions(n) => {
                write!(f, "{n} instructions exceed the {MAX_INSTRUCTIONS}-instruction budget")
            }
            AsmError::MemoryTooLarge(n) => write!(f, "packet memory {n} bytes exceeds 252"),
            AsmError::OperandOutOfRange(l, m) => write!(f, "line {l}: operand out of range: {m}"),
            AsmError::Verify(diags) => {
                write!(f, "verifier rejected the program: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AsmError {}

pub use crate::wire::tpp::MAX_MEMORY_BYTES;

fn parse_address(tok: &str, line: usize) -> Result<Address, AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError::Syntax(line, format!("expected [..] address, got {tok}")))?;
    if let Some(hex) = inner.strip_prefix("0x").or_else(|| inner.strip_prefix("0X")) {
        let raw = u16::from_str_radix(hex, 16)
            .map_err(|_| AsmError::Syntax(line, format!("bad hex address {inner}")))?;
        return Ok(Address::new(raw));
    }
    resolve_mnemonic(inner).map_err(|e| AsmError::Syntax(line, e.to_string()))
}

fn parse_hop_operand(tok: &str, line: usize) -> Result<u8, AsmError> {
    // [Packet:Hop[3]]  (case-insensitive)
    let lower = tok.to_ascii_lowercase();
    let rest =
        lower.strip_prefix("[packet:hop[").and_then(|s| s.strip_suffix("]]")).ok_or_else(|| {
            AsmError::Syntax(line, format!("expected [Packet:Hop[n]] operand, got {tok}"))
        })?;
    rest.parse::<u8>().map_err(|_| AsmError::OperandOutOfRange(line, tok.to_string()))
}

/// Split an instruction line into comma-separated operand tokens, respecting
/// brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Assemble a text program into a [`Tpp`].
///
/// Directives: `.mode stack|hop`, `.perhop <bytes>`, `.hops <n>`,
/// `.memory <bytes>`, `.appid <n>`, `.reflect`, `.word <idx> <value>`.
/// Comments start with `#` or `//`. A trailing `\` continues the line.
pub fn assemble(src: &str) -> Result<Tpp, AsmError> {
    let mut tpp = Tpp::default();
    let mut hops: Option<usize> = None;
    let mut mem_bytes: Option<usize> = None;
    let mut word_inits: Vec<(usize, u32)> = Vec::new();

    // Join continued lines first, tracking original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let no_comment = raw.split('#').next().unwrap_or("");
        let no_comment = no_comment.split("//").next().unwrap_or("");
        let trimmed = no_comment.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (cont, body) = match trimmed.strip_suffix('\\') {
            Some(b) => (true, b.trim_end().to_string()),
            None => (false, trimmed.to_string()),
        };
        match pending.take() {
            Some((l, mut acc)) => {
                acc.push(' ');
                acc.push_str(&body);
                if cont {
                    pending = Some((l, acc));
                } else {
                    logical.push((l, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((lineno, body));
                } else {
                    logical.push((lineno, body));
                }
            }
        }
    }
    if let Some((l, acc)) = pending {
        logical.push((l, acc));
    }

    for (line, text) in logical {
        let mut parts = text.splitn(2, char::is_whitespace);
        let head = parts.next().unwrap();
        let rest = parts.next().unwrap_or("").trim();
        let head_upper = head.to_ascii_uppercase();
        match head_upper.as_str() {
            ".MODE" => {
                tpp.mode = match rest.to_ascii_lowercase().as_str() {
                    "stack" => AddrMode::Stack,
                    "hop" => AddrMode::Hop,
                    other => return Err(AsmError::Syntax(line, format!("bad mode {other}"))),
                };
            }
            ".PERHOP" => {
                let v: u8 = rest
                    .parse()
                    .map_err(|_| AsmError::Syntax(line, format!("bad perhop {rest}")))?;
                if !v.is_multiple_of(4) {
                    return Err(AsmError::Syntax(line, "perhop must be word-aligned".into()));
                }
                tpp.per_hop_len = v;
            }
            ".HOPS" => {
                hops = Some(
                    rest.parse().map_err(|_| AsmError::Syntax(line, format!("bad hops {rest}")))?,
                );
            }
            ".MEMORY" => {
                let v: usize = rest
                    .parse()
                    .map_err(|_| AsmError::Syntax(line, format!("bad memory {rest}")))?;
                if !v.is_multiple_of(4) {
                    return Err(AsmError::Syntax(line, "memory must be word-aligned".into()));
                }
                mem_bytes = Some(v);
            }
            ".APPID" => {
                tpp.app_id = rest
                    .parse()
                    .map_err(|_| AsmError::Syntax(line, format!("bad appid {rest}")))?;
            }
            ".REFLECT" => tpp.reflect = true,
            ".WORD" => {
                let mut it = rest.split_whitespace();
                let idx: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| AsmError::Syntax(line, "usage: .word <idx> <value>".into()))?;
                let val_str = it
                    .next()
                    .ok_or_else(|| AsmError::Syntax(line, "usage: .word <idx> <value>".into()))?;
                let val: u32 = if let Some(h) = val_str.strip_prefix("0x") {
                    u32::from_str_radix(h, 16)
                        .map_err(|_| AsmError::Syntax(line, format!("bad value {val_str}")))?
                } else {
                    val_str
                        .parse()
                        .map_err(|_| AsmError::Syntax(line, format!("bad value {val_str}")))?
                };
                word_inits.push((idx, val));
            }
            op @ ("LOAD" | "STORE" | "PUSH" | "POP" | "CSTORE" | "CEXEC") => {
                let operands = split_operands(rest);
                let ins = match (op, operands.as_slice()) {
                    ("PUSH", [addr]) => Instruction::push(parse_address(addr, line)?),
                    ("POP", [addr]) => Instruction::pop(parse_address(addr, line)?),
                    ("LOAD", [addr, off]) => {
                        Instruction::load(parse_address(addr, line)?, parse_hop_operand(off, line)?)
                    }
                    ("STORE", [addr, off]) => Instruction::store(
                        parse_address(addr, line)?,
                        parse_hop_operand(off, line)?,
                    ),
                    ("CSTORE", [addr, pre, post]) => {
                        let (pre, post) =
                            (parse_hop_operand(pre, line)?, parse_hop_operand(post, line)?);
                        if pre >= 16 || post >= 16 {
                            return Err(AsmError::OperandOutOfRange(
                                line,
                                "CSTORE operands must be < 16".into(),
                            ));
                        }
                        Instruction::cstore(parse_address(addr, line)?, pre, post)
                    }
                    ("CEXEC", [addr, mask, val]) => {
                        let (m, v) =
                            (parse_hop_operand(mask, line)?, parse_hop_operand(val, line)?);
                        if m >= 16 || v >= 16 {
                            return Err(AsmError::OperandOutOfRange(
                                line,
                                "CEXEC operands must be < 16".into(),
                            ));
                        }
                        Instruction::cexec(parse_address(addr, line)?, m, v)
                    }
                    _ => {
                        return Err(AsmError::Syntax(
                            line,
                            format!("wrong operand count for {op}: {rest}"),
                        ))
                    }
                };
                tpp.instrs.push(ins);
            }
            other => return Err(AsmError::Syntax(line, format!("unknown directive {other}"))),
        }
    }

    if tpp.instrs.len() > MAX_INSTRUCTIONS {
        return Err(AsmError::TooManyInstructions(tpp.instrs.len()));
    }
    let mem = match (mem_bytes, hops) {
        (Some(m), _) => m,
        (None, Some(h)) => h * tpp.per_hop_len as usize,
        // Default: enough stack space for one pushed word per instruction
        // over 8 hops.
        (None, None) => 8 * tpp.instrs.len() * 4,
    };
    if mem > MAX_MEMORY_BYTES {
        return Err(AsmError::MemoryTooLarge(mem));
    }
    tpp.memory = vec![0; mem];
    for (idx, val) in word_inits {
        if tpp.write_word(idx, val).is_none() {
            return Err(AsmError::OperandOutOfRange(0, format!(".word index {idx}")));
        }
    }
    Ok(tpp)
}

/// Disassemble a TPP back to text (inverse of [`assemble`] up to formatting).
pub fn disassemble(tpp: &Tpp) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        ".mode {}\n",
        match tpp.mode {
            AddrMode::Stack => "stack",
            AddrMode::Hop => "hop",
        }
    ));
    if tpp.per_hop_len > 0 {
        out.push_str(&format!(".perhop {}\n", tpp.per_hop_len));
    }
    out.push_str(&format!(".memory {}\n", tpp.memory.len()));
    if tpp.app_id != 0 {
        out.push_str(&format!(".appid {}\n", tpp.app_id));
    }
    if tpp.reflect {
        out.push_str(".reflect\n");
    }
    for (i, w) in tpp.words().iter().enumerate() {
        if *w != 0 {
            out.push_str(&format!(".word {i} {w:#x}\n"));
        }
    }
    for ins in &tpp.instrs {
        out.push_str(&format!("{ins}\n"));
    }
    out
}

/// Fluent builder used by applications to construct TPPs programmatically.
///
/// ```
/// use tpp_core::asm::TppBuilder;
/// let tpp = TppBuilder::hop_mode(3)
///     .push_m("Switch:SwitchID").unwrap()
///     .push_m("Link:QueueSize").unwrap()
///     .push_m("Link:RX-Utilization").unwrap()
///     .hops(5)
///     .build()
///     .unwrap();
/// assert_eq!(tpp.instrs.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TppBuilder {
    tpp: Tpp,
    hops: Option<usize>,
    explicit_memory: Option<usize>,
    pending_words: Vec<(usize, u32)>,
}

impl TppBuilder {
    /// Stack-mode builder (PUSH/POP programs).
    #[must_use]
    pub fn stack_mode() -> Self {
        TppBuilder::default()
    }

    /// Hop-mode builder with a `per_hop_words`-word window per hop.
    #[must_use]
    pub fn hop_mode(per_hop_words: u8) -> Self {
        let mut b = TppBuilder::default();
        b.tpp.mode = AddrMode::Hop;
        b.tpp.per_hop_len = per_hop_words * 4;
        b
    }

    #[must_use]
    pub fn app_id(mut self, id: u16) -> Self {
        self.tpp.app_id = id;
        self
    }

    #[must_use]
    pub fn reflect(mut self) -> Self {
        self.tpp.reflect = true;
        self
    }

    /// Preallocate memory for `n` hops (hop mode) or `n` pushed words
    /// (stack mode).
    #[must_use]
    pub fn hops(mut self, n: usize) -> Self {
        self.hops = Some(n);
        self
    }

    #[must_use]
    pub fn memory_words(mut self, n: usize) -> Self {
        self.explicit_memory = Some(n * 4);
        self
    }

    #[must_use]
    pub fn instr(mut self, ins: Instruction) -> Self {
        self.tpp.instrs.push(ins);
        self
    }

    #[must_use]
    pub fn push(self, addr: Address) -> Self {
        self.instr(Instruction::push(addr))
    }
    #[must_use]
    pub fn pop(self, addr: Address) -> Self {
        self.instr(Instruction::pop(addr))
    }
    #[must_use]
    pub fn load(self, addr: Address, off: u8) -> Self {
        self.instr(Instruction::load(addr, off))
    }
    #[must_use]
    pub fn store(self, addr: Address, off: u8) -> Self {
        self.instr(Instruction::store(addr, off))
    }
    #[must_use]
    pub fn cstore(self, addr: Address, pre: u8, post: u8) -> Self {
        self.instr(Instruction::cstore(addr, pre, post))
    }
    #[must_use]
    pub fn cexec(self, addr: Address, mask: u8, value: u8) -> Self {
        self.instr(Instruction::cexec(addr, mask, value))
    }

    /// Mnemonic variants; errors surface at [`TppBuilder::build`].
    pub fn push_m(self, m: &str) -> Result<Self, AsmError> {
        let a = resolve_mnemonic(m).map_err(|e| AsmError::Syntax(0, e.to_string()))?;
        Ok(self.push(a))
    }
    pub fn load_m(self, m: &str, off: u8) -> Result<Self, AsmError> {
        let a = resolve_mnemonic(m).map_err(|e| AsmError::Syntax(0, e.to_string()))?;
        Ok(self.load(a, off))
    }
    pub fn store_m(self, m: &str, off: u8) -> Result<Self, AsmError> {
        let a = resolve_mnemonic(m).map_err(|e| AsmError::Syntax(0, e.to_string()))?;
        Ok(self.store(a, off))
    }
    pub fn cstore_m(self, m: &str, pre: u8, post: u8) -> Result<Self, AsmError> {
        let a = resolve_mnemonic(m).map_err(|e| AsmError::Syntax(0, e.to_string()))?;
        Ok(self.cstore(a, pre, post))
    }
    pub fn cexec_m(self, m: &str, mask: u8, value: u8) -> Result<Self, AsmError> {
        let a = resolve_mnemonic(m).map_err(|e| AsmError::Syntax(0, e.to_string()))?;
        Ok(self.cexec(a, mask, value))
    }

    /// Initialize packet-memory word `idx` (applied at build).
    #[must_use]
    pub fn init_word(mut self, idx: usize, value: u32) -> Self {
        // Deferred: memory is sized at build time; stash as instructions in
        // error-free form by growing a pending list.
        self.pending_words.push((idx, value));
        self
    }

    pub fn build(mut self) -> Result<Tpp, AsmError> {
        if self.tpp.instrs.len() > MAX_INSTRUCTIONS {
            return Err(AsmError::TooManyInstructions(self.tpp.instrs.len()));
        }
        let mem = if let Some(m) = self.explicit_memory {
            m
        } else {
            match (self.tpp.mode, self.hops) {
                (AddrMode::Hop, Some(h)) => h * self.tpp.per_hop_len as usize,
                (AddrMode::Stack, Some(h)) => h * self.tpp.instrs.len() * 4,
                _ => 8 * self.tpp.instrs.len().max(1) * 4,
            }
        };
        if mem > MAX_MEMORY_BYTES {
            return Err(AsmError::MemoryTooLarge(mem));
        }
        self.tpp.memory = vec![0; mem];
        for (idx, val) in std::mem::take(&mut self.pending_words) {
            if self.tpp.write_word(idx, val).is_none() {
                return Err(AsmError::OperandOutOfRange(0, format!("init word {idx}")));
            }
        }
        // Validate nibble operands.
        for ins in &self.tpp.instrs {
            if matches!(ins.opcode, Opcode::Cstore | Opcode::Cexec)
                && (ins.op1 >= 16 || ins.op2 >= 16)
            {
                return Err(AsmError::OperandOutOfRange(
                    0,
                    format!("{} packet operands must be < 16", ins.opcode.mnemonic()),
                ));
            }
        }
        Ok(self.tpp)
    }

    /// [`Self::build`], then prove the program safe with the
    /// abstract-interpretation verifier ([`crate::verify::verify`]) over the
    /// declared hop budget (or the derived maximum when none was declared).
    /// Returns the TPP together with the [`Verified`](crate::verify::Verified)
    /// token that unlocks the unchecked execution fast path. Deny-class
    /// findings become [`AsmError::Verify`]; lint-class findings do not fail
    /// the build (run `tpp-lint` to see them).
    pub fn build_verified(self) -> Result<(Tpp, crate::verify::Verified), AsmError> {
        let hops = self.hops;
        let tpp = self.build()?;
        let verdict =
            crate::verify::verify(&tpp, crate::verify::VerifyOptions { hops, segments: None });
        match verdict.token() {
            Some(token) => Ok((tpp, token)),
            None => Err(AsmError::Verify(verdict.denials().cloned().collect())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Opcode;

    #[test]
    fn assemble_microburst_tpp() {
        // §2.1: switch id, port, queue size per hop.
        let src = "
            PUSH [Switch:SwitchID]
            PUSH [PacketMetadata:OutputPort]
            PUSH [Queue:QueueOccupancy]
        ";
        let t = assemble(src).unwrap();
        assert_eq!(t.instrs.len(), 3);
        assert_eq!(t.instrs[0].opcode, Opcode::Push);
        assert!(t.memory.len() >= 3 * 4 * 5); // room for 5 hops
    }

    #[test]
    fn assemble_rcp_collect_tpp() {
        let src = "
            .mode hop
            .perhop 20
            .hops 5
            PUSH [Switch:SwitchID]
            PUSH [Link:QueueSize]
            PUSH [Link:RX-Utilization]
            PUSH [Link:AppSpecific_0] # Version number
            PUSH [Link:AppSpecific_1] # Rfair
        ";
        let t = assemble(src).unwrap();
        assert_eq!(t.instrs.len(), 5);
        assert_eq!(t.memory.len(), 100);
        assert_eq!(t.per_hop_len, 20);
        assert_eq!(t.mode, AddrMode::Hop);
    }

    #[test]
    fn assemble_rcp_update_with_continuation() {
        // The paper's Phase-3 TPP with a line continuation.
        let src = r"
            .mode hop
            .perhop 12
            .hops 2
            CSTORE [Link:AppSpecific_0], \
                   [Packet:Hop[0]], [Packet:Hop[1]]
            STORE [Link:AppSpecific_1], [Packet:Hop[2]]
            .word 0 10
            .word 1 11
            .word 2 5000
        ";
        let t = assemble(src).unwrap();
        assert_eq!(t.instrs.len(), 2);
        assert_eq!(t.instrs[0].opcode, Opcode::Cstore);
        assert_eq!(t.read_word(2), Some(5000));
    }

    #[test]
    fn assemble_raw_hex_address() {
        let t = assemble("PUSH [0xb000]").unwrap();
        assert_eq!(t.instrs[0].addr, Address::new(0xb000));
    }

    #[test]
    fn syntax_errors_reported_with_line() {
        match assemble("PUSH [Nope:Nothing]") {
            Err(AsmError::Syntax(1, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
        match assemble("\nFROB [Switch:SwitchID]") {
            Err(AsmError::Syntax(2, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(assemble("LOAD [Switch:SwitchID]").is_err()); // missing operand
        assert!(assemble("CSTORE [Link:AppSpecific_0], [Packet:Hop[16]], [Packet:Hop[0]]").is_err());
    }

    #[test]
    fn budget_enforced() {
        let src = "
            PUSH [Switch:SwitchID]
            PUSH [Switch:SwitchID]
            PUSH [Switch:SwitchID]
            PUSH [Switch:SwitchID]
            PUSH [Switch:SwitchID]
            PUSH [Switch:SwitchID]
        ";
        assert_eq!(assemble(src), Err(AsmError::TooManyInstructions(6)));
    }

    #[test]
    fn disassemble_roundtrip() {
        let src = "
            .mode hop
            .perhop 12
            .hops 3
            .appid 9
            LOAD [Switch:SwitchID], [Packet:Hop[0]]
            CSTORE [Link:AppSpecific_0], [Packet:Hop[1]], [Packet:Hop[2]]
        ";
        let t = assemble(src).unwrap();
        let text = disassemble(&t);
        let t2 = assemble(&text).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn builder_matches_assembler() {
        let from_asm = assemble(
            "
            .mode hop
            .perhop 12
            .hops 5
            PUSH [Switch:SwitchID]
            PUSH [PacketMetadata:OutputPort]
            PUSH [Queue:QueueOccupancy]
            ",
        )
        .unwrap();
        let from_builder = TppBuilder::hop_mode(3)
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("PacketMetadata:OutputPort")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(5)
            .build()
            .unwrap();
        assert_eq!(from_asm, from_builder);
    }

    #[test]
    fn builder_validates() {
        let b = TppBuilder::stack_mode();
        let mut b2 = b;
        for _ in 0..6 {
            b2 = b2.push_m("Switch:SwitchID").unwrap();
        }
        assert!(matches!(b2.build(), Err(AsmError::TooManyInstructions(6))));

        assert!(matches!(
            TppBuilder::hop_mode(4).hops(20).push_m("Switch:SwitchID").unwrap().build(),
            Err(AsmError::MemoryTooLarge(_))
        ));
    }

    #[test]
    fn build_verified_returns_token_for_safe_programs() {
        let (tpp, token) = TppBuilder::stack_mode()
            .push_m("Switch:SwitchID")
            .unwrap()
            .push_m("Queue:QueueOccupancy")
            .unwrap()
            .hops(4)
            .build_verified()
            .unwrap();
        assert_eq!(tpp.memory_words(), 8);
        assert!(token.covers(0, 0));
        assert!(token.covers(3, 6));
        assert!(!token.covers(4, 8)); // fifth hop would overflow
    }

    #[test]
    fn build_verified_rejects_unsafe_programs() {
        // A hop-window overrun `build()` happily assembles.
        let err = TppBuilder::hop_mode(2)
            .load_m("Switch:SwitchID", 5)
            .unwrap()
            .hops(2)
            .build_verified()
            .unwrap_err();
        match err {
            AsmError::Verify(ref diags) => {
                assert!(!diags.is_empty());
                let msg = err.to_string();
                assert!(msg.contains("verifier rejected"), "{msg}");
            }
            other => panic!("expected AsmError::Verify, got {other:?}"),
        }
    }

    #[test]
    fn builder_init_words() {
        let t = TppBuilder::hop_mode(3)
            .cstore_m("Link:AppSpecific_0", 0, 1)
            .unwrap()
            .init_word(0, 42)
            .init_word(1, 43)
            .hops(2)
            .build()
            .unwrap();
        assert_eq!(t.read_word(0), Some(42));
        assert_eq!(t.read_word(1), Some(43));
    }
}
