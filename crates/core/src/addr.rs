//! The TPP unified, memory-mapped address space (paper §3.3.1, Tables 2, 6, 7, 8).
//!
//! Every statistic a TPP can touch is a 32-bit word behind a 16-bit virtual
//! address. Addresses are *segmented* into namespaces. Two kinds of segments
//! exist:
//!
//! * **Global segments** name a concrete resource (`Link$3`, `Stage1`, ...).
//! * **Per-packet segments** are indirections resolved against the packet
//!   being forwarded (`[Link:...]` is *this packet's output link*,
//!   `[Queue:...]` is *this packet's output queue*, `[FlowEntry$i:...]` is
//!   the entry this packet matched at stage `i`). This is what gives TPPs a
//!   packet-consistent view of state (§3.2).
//!
//! Layout (16-bit virtual addresses, word-granular):
//!
//! ```text
//! 0x0000..=0x00FF   Switch        per-ASIC globals
//! 0x0100..=0x01FF   PacketMetadata per-packet metadata (Tables 7, 8)
//! 0x0200..=0x02FF   Link          current output link (same layout as Link$i)
//! 0x0300..=0x03FF   Queue         current output queue (same layout as Queue$i$j)
//! 0x0400..=0x04FF   FlowEntry$s   matched entry at stage s (16 stages x 16 words)
//! 0x1000..=0x1FFF   Stage$s       per-stage SRAM + flow-table stats (16 x 256)
//! 0x2000..=0x5FFF   Link$p        per-port stats blocks (64 x 256)
//! 0x6000..=0x6FFF   Queue$p$q     per-queue stats (64 ports x 8 queues x 8)
//! ```
//!
//! Wide (64-bit) counters are exposed as `_LO`/`_HI` word pairs, mirroring how
//! real ASICs expose wide counters over a narrow MMIO bus.

use core::fmt;

/// A 32-bit word, the unit of every TPP memory transfer.
pub type Word = u32;

/// A 16-bit virtual address into the unified switch address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub u16);

impl Address {
    pub const fn new(raw: u16) -> Self {
        Address(raw)
    }
    pub const fn raw(self) -> u16 {
        self.0
    }
    /// The namespace this address belongs to, if any.
    pub fn namespace(self) -> Option<Namespace> {
        Namespace::of(self)
    }
    /// Offset of this address within its namespace block.
    pub fn offset(self) -> u16 {
        match Namespace::of(self) {
            Some(ns) => self.0 - ns.base().0,
            None => self.0,
        }
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({:#06x})", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match mnemonic_of(*self) {
            Some(m) => write!(f, "[{m}]"),
            None => write!(f, "[{:#06x}]", self.0),
        }
    }
}

/// Segment bases and sizes.
pub mod layout {
    pub const SWITCH_BASE: u16 = 0x0000;
    pub const SWITCH_SIZE: u16 = 0x0100;
    pub const PKT_META_BASE: u16 = 0x0100;
    pub const PKT_META_SIZE: u16 = 0x0100;
    pub const CUR_LINK_BASE: u16 = 0x0200;
    pub const CUR_LINK_SIZE: u16 = 0x0100;
    pub const CUR_QUEUE_BASE: u16 = 0x0300;
    pub const CUR_QUEUE_SIZE: u16 = 0x0100;
    pub const FLOW_ENTRY_BASE: u16 = 0x0400;
    pub const FLOW_ENTRY_STRIDE: u16 = 0x10;
    pub const MAX_STAGES: u16 = 16;
    pub const STAGE_BASE: u16 = 0x1000;
    pub const STAGE_STRIDE: u16 = 0x100;
    pub const LINK_BASE: u16 = 0x2000;
    pub const LINK_STRIDE: u16 = 0x100;
    pub const MAX_PORTS: u16 = 64;
    pub const QUEUE_BASE: u16 = 0x6000;
    pub const QUEUE_PORT_STRIDE: u16 = 0x40;
    pub const QUEUE_STRIDE: u16 = 0x8;
    pub const QUEUES_PER_PORT: u16 = 8;
}

/// Word offsets inside the `Switch` namespace (Table 6, "Per ASIC").
pub mod switch_ns {
    pub const SWITCH_ID: u16 = 0x00;
    /// Global forwarding-state generation number; bumped on every rule update.
    pub const VERSION: u16 = 0x01;
    pub const UPTIME_CYCLES_LO: u16 = 0x02;
    pub const UPTIME_CYCLES_HI: u16 = 0x03;
    pub const CLOCK_FREQ_HZ: u16 = 0x04;
    pub const VENDOR_ID: u16 = 0x05;
    pub const NUM_PORTS: u16 = 0x06;
    pub const NUM_STAGES: u16 = 0x07;
    pub const TIME_NS_LO: u16 = 0x08;
    pub const TIME_NS_HI: u16 = 0x09;
    /// Number of TPPs executed by this switch (visibility into visibility).
    pub const TPP_EXECUTED_LO: u16 = 0x0A;
    pub const TPP_EXECUTED_HI: u16 = 0x0B;
    /// TPPs dropped for checksum / malformed / policy reasons.
    pub const TPP_REJECTED: u16 = 0x0C;
}

/// Word offsets inside the `PacketMetadata` namespace (Tables 7, 8).
pub mod meta_ns {
    pub const INPUT_PORT: u16 = 0x00;
    /// Read-write: a TPP may rewrite the output port (fast reroute, §2.6).
    pub const OUTPUT_PORT: u16 = 0x01;
    pub const OUTPUT_QUEUE: u16 = 0x02;
    pub const MATCHED_ENTRY_ID: u16 = 0x03;
    pub const PKT_LEN: u16 = 0x04;
    pub const HOP_COUNT: u16 = 0x05;
    /// The ECMP hash value used to pick among multipath routes.
    pub const PATH_HASH: u16 = 0x06;
    /// Queue depth snapshots taken when this packet was enqueued: the
    /// packet-consistent view of the congestion it experienced.
    pub const ENQ_QDEPTH_BYTES: u16 = 0x07;
    pub const ENQ_QDEPTH_PKTS: u16 = 0x08;
    /// Egress-only: nanoseconds this packet waited in the output queue.
    pub const QUEUE_WAIT_NS: u16 = 0x09;
    pub const INGRESS_TSTAMP_NS_LO: u16 = 0x0A;
    pub const INGRESS_TSTAMP_NS_HI: u16 = 0x0B;
}

/// Word offsets inside a `Link` block (Table 6, "Per Port"). The same layout
/// serves both the per-packet `[Link:...]` segment and global `[Link$p:...]`.
pub mod link_ns {
    pub const LINK_ID: u16 = 0x00;
    pub const SPEED_MBPS: u16 = 0x01;
    /// Bit 0: up. Other bits reserved for maintenance states.
    pub const STATUS: u16 = 0x02;
    /// Total bytes/packets currently queued on this port (all queues).
    pub const QUEUED_BYTES: u16 = 0x03;
    pub const QUEUED_PKTS: u16 = 0x04;
    pub const TX_BYTES_LO: u16 = 0x05;
    pub const TX_BYTES_HI: u16 = 0x06;
    pub const TX_PKTS_LO: u16 = 0x07;
    pub const TX_PKTS_HI: u16 = 0x08;
    pub const RX_BYTES_LO: u16 = 0x09;
    pub const RX_BYTES_HI: u16 = 0x0A;
    pub const RX_PKTS_LO: u16 = 0x0B;
    pub const RX_PKTS_HI: u16 = 0x0C;
    pub const DROP_BYTES_LO: u16 = 0x0D;
    pub const DROP_BYTES_HI: u16 = 0x0E;
    pub const DROP_PKTS_LO: u16 = 0x0F;
    pub const DROP_PKTS_HI: u16 = 0x10;
    pub const ERR_PKTS: u16 = 0x11;
    /// EWMA link utilization in basis points (0..=10000), refreshed every
    /// utilization interval (1 ms by default, §2.2).
    pub const TX_UTIL_BPS: u16 = 0x12;
    pub const RX_UTIL_BPS: u16 = 0x13;
    /// First of 32 application-specific read-write registers (§2.2 uses two
    /// of these per link to store the RCP fair-share rate and its version).
    pub const APP_BASE: u16 = 0x80;
    pub const APP_COUNT: u16 = 32;
}

/// Word offsets inside a `Queue` block (Table 6, "Per Queue").
pub mod queue_ns {
    pub const BYTES: u16 = 0x0;
    pub const PKTS: u16 = 0x1;
    pub const DROP_PKTS: u16 = 0x2;
    pub const DROP_BYTES: u16 = 0x3;
    pub const TX_PKTS: u16 = 0x4;
    pub const TX_BYTES: u16 = 0x5;
    /// Scheduler weight (DRR quantum); read-write.
    pub const SCHED_WEIGHT: u16 = 0x6;
    /// Drop-tail limit in bytes; read-write (admin).
    pub const LIMIT_BYTES: u16 = 0x7;
}

/// Word offsets inside a `FlowEntry$s` block (Table 6, "Per Flow Entry"):
/// statistics of the entry *this packet* matched at stage `s`.
pub mod flow_entry_ns {
    pub const ENTRY_ID: u16 = 0x0;
    pub const INSERT_CLOCK_LO: u16 = 0x1;
    pub const INSERT_CLOCK_HI: u16 = 0x2;
    pub const MATCH_PKTS_LO: u16 = 0x3;
    pub const MATCH_PKTS_HI: u16 = 0x4;
    pub const MATCH_BYTES_LO: u16 = 0x5;
    pub const MATCH_BYTES_HI: u16 = 0x6;
}

/// Word offsets inside a `Stage$s` block (Table 6, "Per Flow Table"). Offsets
/// `0x00..=0xBF` are general-purpose SRAM words; the tail holds flow-table
/// statistics.
pub mod stage_ns {
    /// Number of general-purpose SRAM words available to applications.
    pub const SRAM_WORDS: u16 = 0xC0;
    pub const VERSION: u16 = 0xC0;
    pub const REFCOUNT: u16 = 0xC1;
    pub const LOOKUP_PKTS_LO: u16 = 0xC2;
    pub const LOOKUP_PKTS_HI: u16 = 0xC3;
    pub const LOOKUP_BYTES_LO: u16 = 0xC4;
    pub const LOOKUP_BYTES_HI: u16 = 0xC5;
    pub const MATCH_PKTS_LO: u16 = 0xC6;
    pub const MATCH_PKTS_HI: u16 = 0xC7;
    pub const MATCH_BYTES_LO: u16 = 0xC8;
    pub const MATCH_BYTES_HI: u16 = 0xC9;
}

/// The namespaces of the unified address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// Per-ASIC globals.
    Switch,
    /// Per-packet metadata.
    PacketMetadata,
    /// This packet's output link (per-packet indirection).
    CurrentLink,
    /// This packet's output queue (per-packet indirection).
    CurrentQueue,
    /// The flow entry this packet matched at a stage (per-packet indirection).
    FlowEntry(u8),
    /// A match-action stage's SRAM and flow-table stats.
    Stage(u8),
    /// A concrete port's stats block.
    Link(u8),
    /// A concrete queue's stats block `(port, queue)`.
    Queue(u8, u8),
}

impl Namespace {
    /// Classify a raw address.
    pub fn of(addr: Address) -> Option<Namespace> {
        use layout::*;
        let a = addr.0;
        match a {
            _ if a < PKT_META_BASE => Some(Namespace::Switch),
            _ if a < CUR_LINK_BASE => Some(Namespace::PacketMetadata),
            _ if a < CUR_QUEUE_BASE => Some(Namespace::CurrentLink),
            _ if a < FLOW_ENTRY_BASE => Some(Namespace::CurrentQueue),
            _ if a < FLOW_ENTRY_BASE + MAX_STAGES * FLOW_ENTRY_STRIDE => {
                Some(Namespace::FlowEntry(((a - FLOW_ENTRY_BASE) / FLOW_ENTRY_STRIDE) as u8))
            }
            _ if (STAGE_BASE..STAGE_BASE + MAX_STAGES * STAGE_STRIDE).contains(&a) => {
                Some(Namespace::Stage(((a - STAGE_BASE) / STAGE_STRIDE) as u8))
            }
            _ if (LINK_BASE..LINK_BASE + MAX_PORTS * LINK_STRIDE).contains(&a) => {
                Some(Namespace::Link(((a - LINK_BASE) / LINK_STRIDE) as u8))
            }
            _ if (QUEUE_BASE..QUEUE_BASE + MAX_PORTS * QUEUE_PORT_STRIDE).contains(&a) => {
                let off = a - QUEUE_BASE;
                Some(Namespace::Queue(
                    (off / QUEUE_PORT_STRIDE) as u8,
                    ((off % QUEUE_PORT_STRIDE) / QUEUE_STRIDE) as u8,
                ))
            }
            _ => None,
        }
    }

    /// Base address of this namespace block.
    pub fn base(self) -> Address {
        use layout::*;
        let raw = match self {
            Namespace::Switch => SWITCH_BASE,
            Namespace::PacketMetadata => PKT_META_BASE,
            Namespace::CurrentLink => CUR_LINK_BASE,
            Namespace::CurrentQueue => CUR_QUEUE_BASE,
            Namespace::FlowEntry(s) => FLOW_ENTRY_BASE + s as u16 * FLOW_ENTRY_STRIDE,
            Namespace::Stage(s) => STAGE_BASE + s as u16 * STAGE_STRIDE,
            Namespace::Link(p) => LINK_BASE + p as u16 * LINK_STRIDE,
            Namespace::Queue(p, q) => {
                QUEUE_BASE + p as u16 * QUEUE_PORT_STRIDE + q as u16 * QUEUE_STRIDE
            }
        };
        Address(raw)
    }

    /// Address of `offset` within this namespace.
    pub fn at(self, offset: u16) -> Address {
        Address(self.base().0 + offset)
    }

    /// Whether addresses in this namespace resolve against the packet being
    /// forwarded rather than a fixed resource.
    pub fn is_per_packet(self) -> bool {
        matches!(
            self,
            Namespace::PacketMetadata
                | Namespace::CurrentLink
                | Namespace::CurrentQueue
                | Namespace::FlowEntry(_)
        )
    }
}

/// Architectural writability of an address: `true` if the location is
/// read-write *by design* (Table 2 notes some statistics are read-only while
/// others can be modified). Switches may further restrict writes
/// administratively (§4.3); that check lives in the switch, not here.
pub fn is_architecturally_writable(addr: Address) -> bool {
    match Namespace::of(addr) {
        Some(Namespace::Switch) => false,
        Some(Namespace::PacketMetadata) => {
            matches!(addr.offset(), meta_ns::OUTPUT_PORT | meta_ns::OUTPUT_QUEUE)
        }
        Some(Namespace::CurrentLink) | Some(Namespace::Link(_)) => {
            let off = addr.offset();
            (link_ns::APP_BASE..link_ns::APP_BASE + link_ns::APP_COUNT).contains(&off)
        }
        Some(Namespace::CurrentQueue) | Some(Namespace::Queue(_, _)) => {
            matches!(addr.offset(), queue_ns::SCHED_WEIGHT | queue_ns::LIMIT_BYTES)
        }
        Some(Namespace::FlowEntry(_)) => false,
        Some(Namespace::Stage(_)) => addr.offset() < stage_ns::SRAM_WORDS,
        None => false,
    }
}

/// Errors raised when resolving human-readable mnemonics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrError {
    /// Mnemonic did not match `Namespace:Statistic` or was unknown.
    UnknownMnemonic(String),
    /// Instance index (port, stage, queue) out of range.
    IndexOutOfRange(String),
}

impl fmt::Display for AddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrError::UnknownMnemonic(s) => write!(f, "unknown mnemonic: {s}"),
            AddrError::IndexOutOfRange(s) => write!(f, "index out of range: {s}"),
        }
    }
}

impl std::error::Error for AddrError {}

fn switch_stat(stat: &str) -> Option<u16> {
    Some(match stat {
        "SwitchID" | "ID" => switch_ns::SWITCH_ID,
        "Version" | "VersionNumber" => switch_ns::VERSION,
        "Uptime" | "UptimeCycles" => switch_ns::UPTIME_CYCLES_LO,
        "UptimeHi" => switch_ns::UPTIME_CYCLES_HI,
        "ClockFreq" => switch_ns::CLOCK_FREQ_HZ,
        "VendorID" => switch_ns::VENDOR_ID,
        "NumPorts" => switch_ns::NUM_PORTS,
        "NumStages" => switch_ns::NUM_STAGES,
        "TimeNs" => switch_ns::TIME_NS_LO,
        "TimeNsHi" => switch_ns::TIME_NS_HI,
        "TppExecuted" => switch_ns::TPP_EXECUTED_LO,
        "TppRejected" => switch_ns::TPP_REJECTED,
        _ => return None,
    })
}

fn meta_stat(stat: &str) -> Option<u16> {
    Some(match stat {
        "InputPort" => meta_ns::INPUT_PORT,
        "OutputPort" => meta_ns::OUTPUT_PORT,
        "OutputQueue" => meta_ns::OUTPUT_QUEUE,
        "MatchedEntryID" => meta_ns::MATCHED_ENTRY_ID,
        "PktLen" | "PacketLength" => meta_ns::PKT_LEN,
        "HopCount" => meta_ns::HOP_COUNT,
        "PathHash" => meta_ns::PATH_HASH,
        "EnqQueueBytes" => meta_ns::ENQ_QDEPTH_BYTES,
        "EnqQueuePkts" => meta_ns::ENQ_QDEPTH_PKTS,
        "QueueWaitNs" => meta_ns::QUEUE_WAIT_NS,
        "IngressTimestamp" => meta_ns::INGRESS_TSTAMP_NS_LO,
        "IngressTimestampHi" => meta_ns::INGRESS_TSTAMP_NS_HI,
        _ => return None,
    })
}

fn link_stat(stat: &str) -> Option<u16> {
    if let Some(n) = stat.strip_prefix("AppSpecific_") {
        let i: u16 = n.parse().ok()?;
        if i < link_ns::APP_COUNT {
            return Some(link_ns::APP_BASE + i);
        }
        return None;
    }
    Some(match stat {
        "ID" | "LinkID" => link_ns::LINK_ID,
        "Speed" | "SpeedMbps" => link_ns::SPEED_MBPS,
        "Status" => link_ns::STATUS,
        "QueueSize" | "QueuedBytes" => link_ns::QUEUED_BYTES,
        "QueuedPkts" | "QueueSizePkts" => link_ns::QUEUED_PKTS,
        "TX-Bytes" => link_ns::TX_BYTES_LO,
        "TX-BytesHi" => link_ns::TX_BYTES_HI,
        "TX-Pkts" => link_ns::TX_PKTS_LO,
        "RX-Bytes" => link_ns::RX_BYTES_LO,
        "RX-BytesHi" => link_ns::RX_BYTES_HI,
        "RX-Pkts" => link_ns::RX_PKTS_LO,
        "Drop-Bytes" => link_ns::DROP_BYTES_LO,
        "Drop-Pkts" => link_ns::DROP_PKTS_LO,
        "Err-Pkts" => link_ns::ERR_PKTS,
        "TX-Utilization" => link_ns::TX_UTIL_BPS,
        "RX-Utilization" => link_ns::RX_UTIL_BPS,
        _ => return None,
    })
}

fn queue_stat(stat: &str) -> Option<u16> {
    Some(match stat {
        "QueueOccupancy" | "Bytes" => queue_ns::BYTES,
        "QueueOccupancyPkts" | "Pkts" => queue_ns::PKTS,
        "Drop-Pkts" => queue_ns::DROP_PKTS,
        "Drop-Bytes" => queue_ns::DROP_BYTES,
        "TX-Pkts" => queue_ns::TX_PKTS,
        "TX-Bytes" => queue_ns::TX_BYTES,
        "SchedWeight" => queue_ns::SCHED_WEIGHT,
        "LimitBytes" => queue_ns::LIMIT_BYTES,
        _ => return None,
    })
}

fn flow_entry_stat(stat: &str) -> Option<u16> {
    Some(match stat {
        "EntryID" => flow_entry_ns::ENTRY_ID,
        "InsertClock" => flow_entry_ns::INSERT_CLOCK_LO,
        "MatchPkts" => flow_entry_ns::MATCH_PKTS_LO,
        "MatchBytes" => flow_entry_ns::MATCH_BYTES_LO,
        _ => return None,
    })
}

fn stage_stat(stat: &str) -> Option<u16> {
    if let Some(n) = stat.strip_prefix("Reg") {
        let i: u16 = n.parse().ok()?;
        if i < stage_ns::SRAM_WORDS {
            return Some(i);
        }
        return None;
    }
    Some(match stat {
        "Version" => stage_ns::VERSION,
        "RefCount" => stage_ns::REFCOUNT,
        "LookupPkts" => stage_ns::LOOKUP_PKTS_LO,
        "LookupBytes" => stage_ns::LOOKUP_BYTES_LO,
        "MatchPkts" => stage_ns::MATCH_PKTS_LO,
        "MatchBytes" => stage_ns::MATCH_BYTES_LO,
        _ => return None,
    })
}

/// Resolve a human-readable mnemonic like `Switch:SwitchID`,
/// `Link:TX-Utilization`, `Link$3:RX-Bytes`, `Queue:QueueOccupancy`,
/// `Stage1:Reg5`, or `PacketMetadata:OutputPort` to a virtual address
/// (without the surrounding brackets).
pub fn resolve_mnemonic(m: &str) -> Result<Address, AddrError> {
    let unknown = || AddrError::UnknownMnemonic(m.to_string());
    let (ns, stat) = m.split_once(':').ok_or_else(unknown)?;
    let (ns, stat) = (ns.trim(), stat.trim());

    // `Name$i` / `Name$i$j` instance syntax.
    let mut parts = ns.split('$');
    let ns_name = parts.next().ok_or_else(unknown)?;
    let idx1: Option<u16> = match parts.next() {
        Some(s) => Some(s.parse().map_err(|_| AddrError::IndexOutOfRange(m.to_string()))?),
        None => None,
    };
    let idx2: Option<u16> = match parts.next() {
        Some(s) => Some(s.parse().map_err(|_| AddrError::IndexOutOfRange(m.to_string()))?),
        None => None,
    };

    // `StageN` compact syntax ("Stage1:Reg5").
    let (ns_name, idx1) = if let Some(num) = ns_name.strip_prefix("Stage").filter(|s| !s.is_empty())
    {
        let i: u16 = num.parse().map_err(|_| AddrError::UnknownMnemonic(m.to_string()))?;
        ("Stage", Some(i))
    } else {
        (ns_name, idx1)
    };

    let out_of_range = || AddrError::IndexOutOfRange(m.to_string());
    match (ns_name, idx1, idx2) {
        ("Switch", None, None) => {
            switch_stat(stat).map(|o| Namespace::Switch.at(o)).ok_or_else(unknown)
        }
        ("PacketMetadata", None, None) => {
            meta_stat(stat).map(|o| Namespace::PacketMetadata.at(o)).ok_or_else(unknown)
        }
        ("Link", None, None) => {
            link_stat(stat).map(|o| Namespace::CurrentLink.at(o)).ok_or_else(unknown)
        }
        ("Link", Some(p), None) => {
            if p >= layout::MAX_PORTS {
                return Err(out_of_range());
            }
            link_stat(stat).map(|o| Namespace::Link(p as u8).at(o)).ok_or_else(unknown)
        }
        ("Queue", None, None) => {
            queue_stat(stat).map(|o| Namespace::CurrentQueue.at(o)).ok_or_else(unknown)
        }
        ("Queue", Some(p), Some(q)) => {
            if p >= layout::MAX_PORTS || q >= layout::QUEUES_PER_PORT {
                return Err(out_of_range());
            }
            queue_stat(stat).map(|o| Namespace::Queue(p as u8, q as u8).at(o)).ok_or_else(unknown)
        }
        ("FlowEntry", Some(s), None) => {
            if s >= layout::MAX_STAGES {
                return Err(out_of_range());
            }
            flow_entry_stat(stat).map(|o| Namespace::FlowEntry(s as u8).at(o)).ok_or_else(unknown)
        }
        ("Stage", Some(s), None) => {
            if s >= layout::MAX_STAGES {
                return Err(out_of_range());
            }
            stage_stat(stat).map(|o| Namespace::Stage(s as u8).at(o)).ok_or_else(unknown)
        }
        _ => Err(unknown()),
    }
}

/// Best-effort inverse of [`resolve_mnemonic`], used by the disassembler and
/// `Display for Address`.
pub fn mnemonic_of(addr: Address) -> Option<String> {
    let ns = Namespace::of(addr)?;
    let off = addr.offset();
    let stat = match ns {
        Namespace::Switch => match off {
            x if x == switch_ns::SWITCH_ID => "SwitchID".into(),
            x if x == switch_ns::VERSION => "Version".into(),
            x if x == switch_ns::UPTIME_CYCLES_LO => "Uptime".into(),
            x if x == switch_ns::UPTIME_CYCLES_HI => "UptimeHi".into(),
            x if x == switch_ns::CLOCK_FREQ_HZ => "ClockFreq".into(),
            x if x == switch_ns::VENDOR_ID => "VendorID".into(),
            x if x == switch_ns::NUM_PORTS => "NumPorts".into(),
            x if x == switch_ns::NUM_STAGES => "NumStages".into(),
            x if x == switch_ns::TIME_NS_LO => "TimeNs".into(),
            x if x == switch_ns::TIME_NS_HI => "TimeNsHi".into(),
            x if x == switch_ns::TPP_EXECUTED_LO => "TppExecuted".into(),
            x if x == switch_ns::TPP_REJECTED => "TppRejected".into(),
            _ => return None,
        },
        Namespace::PacketMetadata => match off {
            x if x == meta_ns::INPUT_PORT => "InputPort".into(),
            x if x == meta_ns::OUTPUT_PORT => "OutputPort".into(),
            x if x == meta_ns::OUTPUT_QUEUE => "OutputQueue".into(),
            x if x == meta_ns::MATCHED_ENTRY_ID => "MatchedEntryID".into(),
            x if x == meta_ns::PKT_LEN => "PktLen".into(),
            x if x == meta_ns::HOP_COUNT => "HopCount".into(),
            x if x == meta_ns::PATH_HASH => "PathHash".into(),
            x if x == meta_ns::ENQ_QDEPTH_BYTES => "EnqQueueBytes".into(),
            x if x == meta_ns::ENQ_QDEPTH_PKTS => "EnqQueuePkts".into(),
            x if x == meta_ns::QUEUE_WAIT_NS => "QueueWaitNs".into(),
            x if x == meta_ns::INGRESS_TSTAMP_NS_LO => "IngressTimestamp".into(),
            x if x == meta_ns::INGRESS_TSTAMP_NS_HI => "IngressTimestampHi".into(),
            _ => return None,
        },
        Namespace::CurrentLink | Namespace::Link(_) => link_stat_name(off)?,
        Namespace::CurrentQueue | Namespace::Queue(_, _) => match off {
            x if x == queue_ns::BYTES => "QueueOccupancy".into(),
            x if x == queue_ns::PKTS => "QueueOccupancyPkts".into(),
            x if x == queue_ns::DROP_PKTS => "Drop-Pkts".into(),
            x if x == queue_ns::DROP_BYTES => "Drop-Bytes".into(),
            x if x == queue_ns::TX_PKTS => "TX-Pkts".into(),
            x if x == queue_ns::TX_BYTES => "TX-Bytes".into(),
            x if x == queue_ns::SCHED_WEIGHT => "SchedWeight".into(),
            x if x == queue_ns::LIMIT_BYTES => "LimitBytes".into(),
            _ => return None,
        },
        Namespace::FlowEntry(_) => match off {
            x if x == flow_entry_ns::ENTRY_ID => "EntryID".into(),
            x if x == flow_entry_ns::INSERT_CLOCK_LO => "InsertClock".into(),
            x if x == flow_entry_ns::MATCH_PKTS_LO => "MatchPkts".into(),
            x if x == flow_entry_ns::MATCH_BYTES_LO => "MatchBytes".into(),
            _ => return None,
        },
        Namespace::Stage(_) => {
            if off < stage_ns::SRAM_WORDS {
                format!("Reg{off}")
            } else {
                match off {
                    x if x == stage_ns::VERSION => "Version".into(),
                    x if x == stage_ns::REFCOUNT => "RefCount".into(),
                    x if x == stage_ns::LOOKUP_PKTS_LO => "LookupPkts".into(),
                    x if x == stage_ns::LOOKUP_BYTES_LO => "LookupBytes".into(),
                    x if x == stage_ns::MATCH_PKTS_LO => "MatchPkts".into(),
                    x if x == stage_ns::MATCH_BYTES_LO => "MatchBytes".into(),
                    _ => return None,
                }
            }
        }
    };
    let prefix = match ns {
        Namespace::Switch => "Switch".to_string(),
        Namespace::PacketMetadata => "PacketMetadata".to_string(),
        Namespace::CurrentLink => "Link".to_string(),
        Namespace::CurrentQueue => "Queue".to_string(),
        Namespace::FlowEntry(s) => format!("FlowEntry${s}"),
        Namespace::Stage(s) => format!("Stage{s}"),
        Namespace::Link(p) => format!("Link${p}"),
        Namespace::Queue(p, q) => format!("Queue${p}${q}"),
    };
    Some(format!("{prefix}:{stat}"))
}

fn link_stat_name(off: u16) -> Option<String> {
    if (link_ns::APP_BASE..link_ns::APP_BASE + link_ns::APP_COUNT).contains(&off) {
        return Some(format!("AppSpecific_{}", off - link_ns::APP_BASE));
    }
    Some(
        match off {
            x if x == link_ns::LINK_ID => "ID",
            x if x == link_ns::SPEED_MBPS => "Speed",
            x if x == link_ns::STATUS => "Status",
            x if x == link_ns::QUEUED_BYTES => "QueueSize",
            x if x == link_ns::QUEUED_PKTS => "QueuedPkts",
            x if x == link_ns::TX_BYTES_LO => "TX-Bytes",
            x if x == link_ns::TX_BYTES_HI => "TX-BytesHi",
            x if x == link_ns::TX_PKTS_LO => "TX-Pkts",
            x if x == link_ns::RX_BYTES_LO => "RX-Bytes",
            x if x == link_ns::RX_BYTES_HI => "RX-BytesHi",
            x if x == link_ns::RX_PKTS_LO => "RX-Pkts",
            x if x == link_ns::DROP_BYTES_LO => "Drop-Bytes",
            x if x == link_ns::DROP_PKTS_LO => "Drop-Pkts",
            x if x == link_ns::ERR_PKTS => "Err-Pkts",
            x if x == link_ns::TX_UTIL_BPS => "TX-Utilization",
            x if x == link_ns::RX_UTIL_BPS => "RX-Utilization",
            _ => return None,
        }
        .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_classification_roundtrip() {
        let cases = [
            (Namespace::Switch, 0x12),
            (Namespace::PacketMetadata, 0x01),
            (Namespace::CurrentLink, 0x12),
            (Namespace::CurrentQueue, 0x3),
            (Namespace::FlowEntry(3), 0x2),
            (Namespace::Stage(7), 0x55),
            (Namespace::Link(63), 0xFF),
            (Namespace::Queue(63, 7), 0x7),
        ];
        for (ns, off) in cases {
            let addr = ns.at(off);
            assert_eq!(Namespace::of(addr), Some(ns), "addr {addr:?}");
            assert_eq!(addr.offset(), off);
        }
    }

    #[test]
    fn unmapped_addresses_have_no_namespace() {
        assert_eq!(Namespace::of(Address(0x0800)), None);
        assert_eq!(Namespace::of(Address(0x7000)), None);
        assert_eq!(Namespace::of(Address(0xFFFF)), None);
    }

    #[test]
    fn paper_mnemonics_resolve() {
        // Every mnemonic used in a TPP listing in the paper must resolve.
        let paper = [
            "Switch:SwitchID",
            "Switch:ID",
            "Link:QueueSize",
            "Link:RX-Utilization",
            "Link:TX-Utilization",
            "Link:TX-Bytes",
            "Link:RX-Bytes",
            "Link:AppSpecific_0",
            "Link:AppSpecific_1",
            "Link:ID",
            "Queue:QueueOccupancy",
            "PacketMetadata:MatchedEntryID",
            "PacketMetadata:InputPort",
            "PacketMetadata:OutputPort",
            "Switch:VendorID",
            "Switch:Version",
            "Stage1:Reg1",
            "Stage3:Reg3",
        ];
        for m in paper {
            resolve_mnemonic(m).unwrap_or_else(|e| panic!("{m}: {e}"));
        }
    }

    #[test]
    fn mnemonic_roundtrip() {
        let names = [
            "Switch:SwitchID",
            "PacketMetadata:OutputPort",
            "Link:TX-Utilization",
            "Link$5:RX-Bytes",
            "Link:AppSpecific_7",
            "Queue:QueueOccupancy",
            "Queue$2$3:Drop-Pkts",
            "Stage2:Reg9",
            "Stage2:Version",
            "FlowEntry$1:MatchPkts",
        ];
        for name in names {
            let addr = resolve_mnemonic(name).unwrap();
            let back = mnemonic_of(addr).unwrap();
            let addr2 = resolve_mnemonic(&back).unwrap();
            assert_eq!(addr, addr2, "{name} -> {back}");
        }
    }

    #[test]
    fn unknown_mnemonics_rejected() {
        assert!(resolve_mnemonic("Bogus:Thing").is_err());
        assert!(resolve_mnemonic("Switch:NoSuchStat").is_err());
        assert!(resolve_mnemonic("SwitchID").is_err()); // missing namespace
        assert!(resolve_mnemonic("Link$64:ID").is_err()); // port out of range
        assert!(resolve_mnemonic("Stage16:Reg0").is_err()); // stage out of range
        assert!(resolve_mnemonic("Queue$1$8:Bytes").is_err()); // queue out of range
        assert!(resolve_mnemonic("Link:AppSpecific_32").is_err()); // app reg range
    }

    #[test]
    fn writability_matches_table2() {
        // Read-only examples from Table 2.
        assert!(!is_architecturally_writable(
            resolve_mnemonic("PacketMetadata:MatchedEntryID").unwrap()
        ));
        assert!(!is_architecturally_writable(resolve_mnemonic("Link:RX-Bytes").unwrap()));
        assert!(!is_architecturally_writable(resolve_mnemonic("Switch:SwitchID").unwrap()));
        // Modifiable examples from Table 2 / §2.2.
        assert!(is_architecturally_writable(
            resolve_mnemonic("PacketMetadata:OutputPort").unwrap()
        ));
        assert!(is_architecturally_writable(resolve_mnemonic("Link:AppSpecific_0").unwrap()));
        assert!(is_architecturally_writable(resolve_mnemonic("Stage1:Reg0").unwrap()));
        // Flow-table stats are never writable.
        assert!(!is_architecturally_writable(resolve_mnemonic("Stage1:Version").unwrap()));
    }

    #[test]
    fn display_uses_mnemonics() {
        let a = resolve_mnemonic("Queue:QueueOccupancy").unwrap();
        assert_eq!(format!("{a}"), "[Queue:QueueOccupancy]");
        let unmapped = Address(0x0900);
        assert_eq!(format!("{unmapped}"), "[0x0900]");
    }
}
