//! Abstract-interpretation verifier for TPP programs (paper §3.5, §4.1,
//! §4.3).
//!
//! TPPs are "relatively amenable to static analysis, particularly since a
//! TPP contains at most five instructions" (§4.3): the ASIC and TPP-CP are
//! supposed to *reject* unsafe programs up front, not catch them mid-flight.
//! This module is that rejection step, in the eBPF mold — prove a program
//! safe once at load time, then run it on an unchecked fast path.
//!
//! [`verify`] symbolically executes the ≤5-instruction body across an
//! abstract hop range, tracking:
//!
//! * the **stack pointer** and **packet-memory footprint** per hop —
//!   PUSH/POP evolution and hop-window offsets against the preallocated
//!   memory, the declared hop budget, and [`MAX_MEMORY_BYTES`];
//! * **switch addresses** per instruction, checked against granted
//!   [`Segment`] tables and architectural writability;
//! * **CEXEC/CSTORE gating** — which suffix of the program is conditional
//!   and what switch state it may touch ([`Gate`]);
//! * **uninitialized packet-memory reads** (stack mode: a read of a word
//!   neither below the initial SP nor written by an earlier instruction) and
//!   **dead stores** (a packet word overwritten in the same hop before
//!   anything read it);
//! * **WAW/RAW hazards** on switch addresses, which out-of-order stage
//!   execution makes unsafe (§3.5).
//!
//! The result is a [`Verdict`]: a list of typed [`Diagnostic`]s split into
//! deny-class errors and lint-class warnings, each carrying the instruction
//! index and reason. A verdict with no denials yields a [`Verified`] token —
//! the proof object that [`execute_in_place_verified`] accepts to skip
//! per-instruction bounds checks on the hot path.
//!
//! # Initialization convention
//!
//! The verifier sees a compiled program, not the live packet, so it adopts
//! the conventions the probe layer compiles to: in **hop mode** the whole
//! packet memory is host-initialized (per-hop windows are argument slots the
//! end-host fills, as the RCP*/WAN write probes do); in **stack mode** only
//! the words below the initial SP are host-initialized (the prefill pattern
//! targeted CEXEC programs use) — everything above is the collection area
//! and reading it before writing it is a deny-class
//! [`DiagKind::UninitializedRead`].
//!
//! The verifier proves *memory* safety, not bus liveness: an operand address
//! may still be unmapped at some switch, and the runtime skips such
//! instructions gracefully (§3.3). Those skips are environment-dependent and
//! outside the proof.
//!
//! [`execute_in_place_verified`]: crate::exec::execute_in_place_verified

use crate::addr::{is_architecturally_writable, Address};
use crate::analysis::{
    check_segments, find_hazards, instruction_access, Access, Hazard, Segment, Violation,
    ViolationReason,
};
use crate::isa::{Instruction, Opcode, PacketOperands, MAX_INSTRUCTIONS};
use crate::wire::tpp::{AddrMode, Tpp, MAX_MEMORY_BYTES};
use core::fmt;

/// Diagnostic class: does this finding reject the program or merely warn?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The program is unsafe or ill-formed and must not be installed.
    Deny,
    /// The program is safe but suspicious (hazard, dead store, …).
    Lint,
}

/// What the verifier found, with enough structure for callers to react
/// programmatically (every variant also renders via `Display`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagKind {
    /// More instructions than the architectural [`MAX_INSTRUCTIONS`] budget.
    OverBudget { n_instr: usize },
    /// Packet memory exceeds [`MAX_MEMORY_BYTES`].
    MemoryTooLarge { bytes: usize },
    /// Packet-memory length is not word-aligned.
    UnalignedMemory { bytes: usize },
    /// A CSTORE/CEXEC operand does not fit the 4-bit wire encoding.
    BadOperand { op1: u8, op2: u8 },
    /// The declared hop budget does not fit the preallocated memory.
    OverCapacity { hops: usize, needed_bytes: usize, have_bytes: usize },
    /// A PUSH would run past the end of packet memory within the hop range.
    StackOverflow { hop: u8, sp: u8, words: usize },
    /// A POP would run off the bottom of the stack within the hop range.
    StackUnderflow { hop: u8 },
    /// A hop-addressed access lands outside packet memory.
    OutOfBounds { hop: u8, word: usize, words: usize },
    /// A read of a packet word that nothing initialized (see module docs).
    UninitializedRead { hop: u8, word: usize },
    /// A switch access outside the granted segments, a write into a
    /// read-only segment, or a write to architecturally read-only state.
    Policy(Violation),
    /// A packet word overwritten in the same hop before anything read it.
    DeadStore { word: usize, overwritten_by: usize },
    /// A WAW/RAW conflict on a switch address (§3.5: unsafe out of order).
    Hazard(Hazard),
    /// A trailing CSTORE/CEXEC gates no subsequent instruction.
    UselessConditional,
}

impl DiagKind {
    /// Deny-class kinds reject the program; lint-class kinds only warn.
    pub fn severity(&self) -> Severity {
        match self {
            DiagKind::DeadStore { .. } | DiagKind::Hazard(_) | DiagKind::UselessConditional => {
                Severity::Lint
            }
            _ => Severity::Deny,
        }
    }

    /// Stable short code, rustc-style (`E…` deny, `W…` lint).
    pub fn code(&self) -> &'static str {
        match self {
            DiagKind::OverBudget { .. } => "E-BUDGET",
            DiagKind::MemoryTooLarge { .. } => "E-MEM-SIZE",
            DiagKind::UnalignedMemory { .. } => "E-MEM-ALIGN",
            DiagKind::BadOperand { .. } => "E-OPERAND",
            DiagKind::OverCapacity { .. } => "E-CAPACITY",
            DiagKind::StackOverflow { .. } => "E-STACK-OVF",
            DiagKind::StackUnderflow { .. } => "E-STACK-UND",
            DiagKind::OutOfBounds { .. } => "E-OOB",
            DiagKind::UninitializedRead { .. } => "E-UNINIT",
            DiagKind::Policy(_) => "E-POLICY",
            DiagKind::DeadStore { .. } => "W-DEAD-STORE",
            DiagKind::Hazard(_) => "W-HAZARD",
            DiagKind::UselessConditional => "W-COND-TAIL",
        }
    }
}

/// One verifier finding: a typed reason plus the instruction it anchors to
/// (`None` for whole-program findings like capacity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: DiagKind,
    /// Program-order instruction index, when the finding is per-instruction.
    pub instr: Option<usize>,
}

impl Diagnostic {
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity() {
            Severity::Deny => "error",
            Severity::Lint => "warning",
        };
        write!(f, "{level}[{}]: ", self.kind.code())?;
        match &self.kind {
            DiagKind::OverBudget { n_instr } => {
                write!(f, "{n_instr} instructions exceed the budget of {MAX_INSTRUCTIONS}")
            }
            DiagKind::MemoryTooLarge { bytes } => {
                write!(f, "packet memory of {bytes} bytes exceeds the {MAX_MEMORY_BYTES}-byte cap")
            }
            DiagKind::UnalignedMemory { bytes } => {
                write!(f, "packet memory of {bytes} bytes is not word-aligned")
            }
            DiagKind::BadOperand { op1, op2 } => {
                write!(f, "conditional operands ({op1}, {op2}) exceed the 4-bit encoding")
            }
            DiagKind::OverCapacity { hops, needed_bytes, have_bytes } => write!(
                f,
                "hop budget {hops} needs {needed_bytes} bytes of packet memory, have {have_bytes}"
            ),
            DiagKind::StackOverflow { hop, sp, words } => {
                write!(f, "PUSH at hop {hop} overflows the stack (SP {sp}, {words} words)")
            }
            DiagKind::StackUnderflow { hop } => {
                write!(f, "POP at hop {hop} underflows the stack")
            }
            DiagKind::OutOfBounds { hop, word, words } => {
                write!(f, "access at hop {hop} hits word {word}, outside the {words}-word memory")
            }
            DiagKind::UninitializedRead { hop, word } => {
                write!(f, "read of uninitialized packet word {word} at hop {hop}")
            }
            DiagKind::Policy(v) => {
                let why = match v.reason {
                    ViolationReason::OutsideSegments => "outside every granted segment",
                    ViolationReason::WriteNotPermitted => "write into a read-only segment",
                    ViolationReason::ArchitecturallyReadOnly => {
                        "write to architecturally read-only state"
                    }
                };
                write!(f, "{:?} of {} is {why}", v.access, v.addr)
            }
            DiagKind::DeadStore { word, overwritten_by } => write!(
                f,
                "packet word {word} is overwritten by instr {overwritten_by} before it is read"
            ),
            DiagKind::Hazard(h) => match h {
                Hazard::WriteAfterWrite { first, second, addr } => write!(
                    f,
                    "write-after-write on {addr} (instrs {first} and {second}) is unsafe out of order"
                ),
                Hazard::ReadAfterWrite { write, read, addr } => write!(
                    f,
                    "read-after-write on {addr} (write {write}, read {read}) is unsafe out of order"
                ),
            },
            DiagKind::UselessConditional => {
                write!(f, "trailing conditional gates no subsequent instruction")
            }
        }
    }
}

/// The conditional structure of a program: the first CSTORE/CEXEC and the
/// switch accesses its gated suffix may perform when the condition holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// Index of the first conditional instruction.
    pub index: usize,
    pub opcode: Opcode,
    /// Switch accesses of the gated suffix, in program order.
    pub suffix: Vec<(Address, Access)>,
}

impl Gate {
    /// Does the gated suffix write switch memory when the condition holds?
    pub fn suffix_writes_switch(&self) -> bool {
        self.suffix.iter().any(|(_, a)| a.is_write())
    }
}

/// Inputs to [`verify`] beyond the program itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyOptions<'a> {
    /// Declared hop budget. `None` derives the largest safe hop count from
    /// the memory layout instead of checking a fixed range.
    pub hops: Option<usize>,
    /// Granted segment table ([`check_segments`]). `None` skips policy
    /// checks (architectural writability is still enforced).
    pub segments: Option<&'a [Segment]>,
}

/// The proof object a passing [`Verdict`] yields: within the covered hop/SP
/// window, no packet-memory bounds check in the program can fail, so
/// [`execute_in_place_verified`](crate::exec::execute_in_place_verified)
/// skips them. Only [`verify`] constructs tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verified {
    hop_start: u8,
    /// Exclusive upper bound on covered hop values (256 = the full counter).
    hop_end: u16,
    sp_min: u8,
    sp_max: u8,
}

impl Verified {
    /// Is a packet at this hop/SP inside the verified window? One branch —
    /// this is the entire per-packet cost of the unchecked path.
    #[inline]
    pub fn covers(&self, hop: u8, sp: u8) -> bool {
        let h = u16::from(hop);
        u16::from(self.hop_start) <= h && h < self.hop_end && self.sp_min <= sp && sp <= self.sp_max
    }

    /// The covered hop values, as a half-open range.
    pub fn hop_range(&self) -> core::ops::Range<u16> {
        u16::from(self.hop_start)..self.hop_end
    }
}

/// The structured result of [`verify`]: every diagnostic, the derived or
/// checked hop coverage, the conditional gate (if any), and — when nothing
/// denies — the [`Verified`] fast-path token.
#[derive(Clone, Debug)]
pub struct Verdict {
    pub diagnostics: Vec<Diagnostic>,
    /// Hops proven safe, starting at the program's current hop counter.
    pub hops_verified: usize,
    /// Conditional gate structure, when the program has one.
    pub gate: Option<Gate>,
    token: Option<Verified>,
}

impl Verdict {
    /// No deny-class diagnostics: the program may be installed.
    pub fn passed(&self) -> bool {
        self.denials().next().is_none()
    }

    /// No diagnostics at all, lints included.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Deny)
    }

    pub fn lints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Lint)
    }

    /// The fast-path proof token; `Some` exactly when [`Self::passed`].
    pub fn token(&self) -> Option<Verified> {
        self.token
    }

    /// Render every diagnostic rustc-style, each anchored to its
    /// disassembled instruction.
    pub fn render(&self, instrs: &[Instruction]) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
            if let Some(i) = d.instr {
                if let Some(ins) = instrs.get(i) {
                    out.push_str(&format!("  --> instr {i}: {ins}\n"));
                }
            }
        }
        out
    }
}

fn low_bits(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Verify a program for a fixed hop budget (`VerifyOptions { hops, .. }`).
pub fn verify_for_hops(tpp: &Tpp, hops: usize) -> Verdict {
    verify(tpp, VerifyOptions { hops: Some(hops), segments: None })
}

/// Run the abstract interpreter. See the module docs for what is checked;
/// see [`Verdict`] for what comes back.
pub fn verify(tpp: &Tpp, opts: VerifyOptions<'_>) -> Verdict {
    let mut diags = Vec::new();
    let words = tpp.memory_words();
    let phw = tpp.per_hop_words();
    let n = tpp.instrs.len();

    // Structural shape first; the interpreter assumes these hold.
    if n > MAX_INSTRUCTIONS {
        diags.push(Diagnostic { kind: DiagKind::OverBudget { n_instr: n }, instr: None });
    }
    if tpp.memory.len() > MAX_MEMORY_BYTES {
        diags.push(Diagnostic {
            kind: DiagKind::MemoryTooLarge { bytes: tpp.memory.len() },
            instr: None,
        });
    }
    if !tpp.memory.len().is_multiple_of(4) {
        diags.push(Diagnostic {
            kind: DiagKind::UnalignedMemory { bytes: tpp.memory.len() },
            instr: None,
        });
    }
    for (i, ins) in tpp.instrs.iter().enumerate() {
        if ins.opcode.is_conditional() && (ins.op1 >= 16 || ins.op2 >= 16) {
            diags.push(Diagnostic {
                kind: DiagKind::BadOperand { op1: ins.op1, op2: ins.op2 },
                instr: Some(i),
            });
        }
    }
    if !diags.is_empty() {
        return Verdict { diagnostics: diags, hops_verified: 0, gate: None, token: None };
    }

    // Conditional gate structure.
    let gate_idx = tpp.instrs.iter().position(|i| i.opcode.is_conditional());
    let gate = gate_idx.map(|index| Gate {
        index,
        opcode: tpp.instrs[index].opcode,
        suffix: tpp.instrs[index + 1..].iter().map(instruction_access).collect(),
    });
    if gate_idx == Some(n.wrapping_sub(1)) && n > 0 {
        diags.push(Diagnostic { kind: DiagKind::UselessConditional, instr: gate_idx });
    }

    // Declared hop budget vs. preallocated memory (hop mode reserves a full
    // window per hop whether or not an instruction touches it).
    if let Some(h) = opts.hops {
        if tpp.mode == AddrMode::Hop && phw > 0 && h * phw > words {
            diags.push(Diagnostic {
                kind: DiagKind::OverCapacity {
                    hops: h,
                    needed_bytes: h * tpp.per_hop_len as usize,
                    have_bytes: tpp.memory.len(),
                },
                instr: None,
            });
        }
    }

    // Switch-address checks: granted segments when provided, architectural
    // writability always.
    if let Some(segments) = opts.segments {
        for v in check_segments(&tpp.instrs, segments) {
            let instr = Some(v.instr_index);
            diags.push(Diagnostic { kind: DiagKind::Policy(v), instr });
        }
    } else {
        for (i, ins) in tpp.instrs.iter().enumerate() {
            let (addr, access) = instruction_access(ins);
            if access.is_write() && !is_architecturally_writable(addr) {
                diags.push(Diagnostic {
                    kind: DiagKind::Policy(Violation {
                        instr_index: i,
                        addr,
                        access,
                        reason: ViolationReason::ArchitecturallyReadOnly,
                    }),
                    instr: Some(i),
                });
            }
        }
    }

    // Out-of-order hazards on switch addresses (lints).
    for h in find_hazards(&tpp.instrs) {
        let instr = match h {
            Hazard::WriteAfterWrite { second, .. } => Some(second),
            Hazard::ReadAfterWrite { read, .. } => Some(read),
        };
        diags.push(Diagnostic { kind: DiagKind::Hazard(h), instr });
    }

    // The hop-range simulation: footprint, SP evolution, initialization.
    let budget = opts.hops;
    let max_sim = budget.unwrap_or(256).min(256);
    // In hop mode every window is a host-filled argument slot; in stack
    // mode only the prefix below the initial SP is host-initialized.
    let mut must_init: u64 =
        if tpp.mode == AddrMode::Hop { u64::MAX } else { low_bits((tpp.sp as usize).min(64)) };
    let mut sp = tpp.sp as usize;
    let mut clean_hops = 0usize;
    // Dedup: the same instruction faults identically every hop.
    let mut reported = [0u8; MAX_INSTRUCTIONS];
    const R_OOB: u8 = 1;
    const R_OVF: u8 = 2;
    const R_UND: u8 = 4;
    const R_UNINIT: u8 = 8;
    const R_DEAD: u8 = 16;

    'hops: for h in 0..max_sim {
        let hop = tpp.hop.wrapping_add(h as u8);
        let mut faulted = false;
        let mut sim_sp = sp;
        let mut hop_init: u64 = 0;
        let mut uncond_writes: u64 = 0;
        let mut last_write_idx = [0usize; 64];
        let mut unread_writes: u64 = 0;

        for (idx, ins) in tpp.instrs.iter().enumerate() {
            // Bounds faults mirror the runtime's graceful skips exactly: in
            // derive mode the first faulting hop ends the verified range; a
            // first-hop or in-budget fault is a denial.
            macro_rules! fault {
                ($bit:expr, $kind:expr) => {{
                    if budget.is_some() || h == 0 {
                        if reported[idx] & $bit == 0 {
                            reported[idx] |= $bit;
                            diags.push(Diagnostic { kind: $kind, instr: Some(idx) });
                        }
                        faulted = true;
                    } else {
                        break 'hops;
                    }
                }};
            }
            let read = |w: usize,
                        idx: usize,
                        diags: &mut Vec<Diagnostic>,
                        reported: &mut [u8; MAX_INSTRUCTIONS],
                        hop_init: &u64,
                        unread_writes: &mut u64| {
                if (must_init | *hop_init) & (1u64 << w) == 0 && reported[idx] & R_UNINIT == 0 {
                    reported[idx] |= R_UNINIT;
                    diags.push(Diagnostic {
                        kind: DiagKind::UninitializedRead { hop, word: w },
                        instr: Some(idx),
                    });
                }
                *unread_writes &= !(1u64 << w);
            };
            let write = |w: usize,
                         idx: usize,
                         diags: &mut Vec<Diagnostic>,
                         reported: &mut [u8; MAX_INSTRUCTIONS],
                         hop_init: &mut u64,
                         uncond_writes: &mut u64,
                         last_write_idx: &mut [usize; 64],
                         unread_writes: &mut u64| {
                if *unread_writes & (1u64 << w) != 0 && reported[last_write_idx[w]] & R_DEAD == 0 {
                    reported[last_write_idx[w]] |= R_DEAD;
                    diags.push(Diagnostic {
                        kind: DiagKind::DeadStore { word: w, overwritten_by: idx },
                        instr: Some(last_write_idx[w]),
                    });
                }
                *unread_writes |= 1u64 << w;
                last_write_idx[w] = idx;
                *hop_init |= 1u64 << w;
                // Writes at or before the first conditional always execute
                // (execution is a prefix of the program), so they carry into
                // later hops; gated writes are may-writes and do not.
                if gate_idx.is_none_or(|g| idx <= g) {
                    *uncond_writes |= 1u64 << w;
                }
            };

            match ins.packet_operands() {
                PacketOperands::Stack => match ins.opcode {
                    Opcode::Push => {
                        if sim_sp >= words {
                            fault!(
                                R_OVF,
                                DiagKind::StackOverflow { hop, sp: sim_sp.min(255) as u8, words }
                            );
                        } else {
                            write(
                                sim_sp,
                                idx,
                                &mut diags,
                                &mut reported,
                                &mut hop_init,
                                &mut uncond_writes,
                                &mut last_write_idx,
                                &mut unread_writes,
                            );
                            sim_sp += 1;
                        }
                    }
                    Opcode::Pop => {
                        if sim_sp == 0 {
                            fault!(R_UND, DiagKind::StackUnderflow { hop });
                        } else if sim_sp > words {
                            // POP still retreats SP on an out-of-bounds read
                            // (the slot is a parse-time constant).
                            sim_sp -= 1;
                            fault!(R_OOB, DiagKind::OutOfBounds { hop, word: sim_sp, words });
                        } else {
                            sim_sp -= 1;
                            read(
                                sim_sp,
                                idx,
                                &mut diags,
                                &mut reported,
                                &hop_init,
                                &mut unread_writes,
                            );
                        }
                    }
                    _ => unreachable!("only PUSH/POP are stack-relative"),
                },
                PacketOperands::One { off, write: is_write } => {
                    let w = hop as usize * phw + off as usize;
                    if w >= words {
                        fault!(R_OOB, DiagKind::OutOfBounds { hop, word: w, words });
                    } else if is_write {
                        write(
                            w,
                            idx,
                            &mut diags,
                            &mut reported,
                            &mut hop_init,
                            &mut uncond_writes,
                            &mut last_write_idx,
                            &mut unread_writes,
                        );
                    } else {
                        read(w, idx, &mut diags, &mut reported, &hop_init, &mut unread_writes);
                    }
                }
                PacketOperands::Two { a, b, writes_a } => {
                    let wa = hop as usize * phw + a as usize;
                    let wb = hop as usize * phw + b as usize;
                    if wa >= words || wb >= words {
                        let word = if wa >= words { wa } else { wb };
                        fault!(R_OOB, DiagKind::OutOfBounds { hop, word, words });
                    } else {
                        read(wa, idx, &mut diags, &mut reported, &hop_init, &mut unread_writes);
                        read(wb, idx, &mut diags, &mut reported, &hop_init, &mut unread_writes);
                        if writes_a {
                            write(
                                wa,
                                idx,
                                &mut diags,
                                &mut reported,
                                &mut hop_init,
                                &mut uncond_writes,
                                &mut last_write_idx,
                                &mut unread_writes,
                            );
                        }
                    }
                }
            }
        }

        must_init |= uncond_writes;
        sp = sim_sp;
        if !faulted {
            clean_hops = h + 1;
        } else if budget.is_none() {
            // First hop already faults: the program can never run.
            break;
        }
    }

    let hops_verified = match budget {
        Some(h) => {
            if diags.iter().any(|d| d.severity() == Severity::Deny) {
                0
            } else {
                h
            }
        }
        None => clean_hops,
    };

    // The proof token: only when nothing denies.
    let token = if diags.iter().all(|d| d.severity() == Severity::Lint) {
        // SP window under which one hop is safe for *any* entry SP: derived
        // from the running PUSH/POP prefix sums (see `covers`).
        let mut run: i64 = 0;
        let mut sp_min_req: i64 = 0;
        let mut sp_max_req: i64 = 255;
        for ins in &tpp.instrs {
            match ins.opcode {
                Opcode::Push => {
                    sp_max_req = sp_max_req.min(words as i64 - 1 - run);
                    run += 1;
                }
                Opcode::Pop => {
                    sp_min_req = sp_min_req.max(1 - run);
                    sp_max_req = sp_max_req.min(words as i64 - run);
                    run -= 1;
                }
                _ => {}
            }
        }
        if sp_max_req < sp_min_req {
            None
        } else {
            let (hop_start, hop_end) = if clean_hops >= 256 {
                // Every hop value the u8 counter can take is covered.
                (0u8, 256u16)
            } else {
                (tpp.hop, (u16::from(tpp.hop)).saturating_add(clean_hops as u16).min(256))
            };
            Some(Verified {
                hop_start,
                hop_end,
                sp_min: sp_min_req.clamp(0, 255) as u8,
                sp_max: sp_max_req.clamp(0, 255) as u8,
            })
        }
    } else {
        None
    };

    Verdict { diagnostics: diags, hops_verified, gate, token }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;
    use crate::asm::TppBuilder;
    use crate::isa::Instruction;

    fn a(m: &str) -> Address {
        resolve_mnemonic(m).unwrap()
    }

    #[test]
    fn clean_collect_probe_verifies_with_token() {
        // The Figure 1a probe: 3 PUSHes, 5 hops => 15 words.
        let t = TppBuilder::stack_mode()
            .push(a("Switch:SwitchID"))
            .push(a("PacketMetadata:OutputPort"))
            .push(a("Queue:QueueOccupancy"))
            .memory_words(15)
            .build()
            .unwrap();
        let v = verify(&t, VerifyOptions::default());
        assert!(v.is_clean(), "{:?}", v.diagnostics);
        assert_eq!(v.hops_verified, 5);
        let tok = v.token().unwrap();
        assert!(tok.covers(0, 0));
        assert!(tok.covers(4, 12));
        assert!(!tok.covers(5, 15)); // sixth hop would overflow
                                     // Explicit over-budget request: denied with a typed diagnostic.
        let v6 = verify_for_hops(&t, 6);
        assert!(!v6.passed());
        assert!(matches!(v6.denials().next().unwrap().kind, DiagKind::StackOverflow { .. }));
    }

    #[test]
    fn out_of_bounds_hop_window_denied() {
        // Window of 2 words but an offset of 5.
        let t = TppBuilder::hop_mode(2).load(a("Switch:SwitchID"), 5).hops(4).build().unwrap();
        let v = verify_for_hops(&t, 4);
        assert!(!v.passed());
        let d = v.denials().next().unwrap();
        assert_eq!(d.instr, Some(0));
        assert!(matches!(d.kind, DiagKind::OutOfBounds { .. }));
    }

    #[test]
    fn over_capacity_hop_budget_denied() {
        let t = TppBuilder::hop_mode(3).load(a("Switch:SwitchID"), 0).hops(4).build().unwrap();
        assert!(verify_for_hops(&t, 4).passed());
        let v = verify_for_hops(&t, 5);
        assert!(v.denials().any(|d| matches!(d.kind, DiagKind::OverCapacity { .. })));
    }

    #[test]
    fn uninitialized_read_denied_in_stack_mode() {
        // CEXEC reads words 0/1 (mask/value) with SP 0 and no prior writes.
        let mut t = TppBuilder::stack_mode()
            .cexec(a("Switch:SwitchID"), 0, 1)
            .push(a("Queue:QueueOccupancy"))
            .memory_words(8)
            .build()
            .unwrap();
        let v = verify(&t, VerifyOptions::default());
        assert!(v.denials().any(|d| matches!(d.kind, DiagKind::UninitializedRead { .. })));
        // The prefill pattern (SP above the operand words) is clean.
        t.sp = 2;
        assert!(verify(&t, VerifyOptions::default()).passed());
    }

    #[test]
    fn policy_violations_denied_against_segments() {
        let app0 = a("Link:AppSpecific_0");
        let segments = [Segment::read_only(a("Switch:SwitchID"), a("Switch:SwitchID"))];
        let t = TppBuilder::hop_mode(1).store(app0, 0).hops(1).build().unwrap();
        let v = verify(&t, VerifyOptions { hops: Some(1), segments: Some(&segments) });
        assert!(!v.passed());
        assert!(v.denials().any(|d| matches!(
            d.kind,
            DiagKind::Policy(Violation { reason: ViolationReason::OutsideSegments, .. })
        )));
    }

    #[test]
    fn architectural_writability_enforced_without_segments() {
        let t = TppBuilder::hop_mode(1).store(a("Link:RX-Bytes"), 0).hops(1).build().unwrap();
        let v = verify_for_hops(&t, 1);
        assert!(v.denials().any(|d| matches!(
            d.kind,
            DiagKind::Policy(Violation { reason: ViolationReason::ArchitecturallyReadOnly, .. })
        )));
    }

    #[test]
    fn stack_underflow_denied() {
        let t = Tpp {
            instrs: vec![Instruction::pop(a("Link:AppSpecific_0"))],
            memory: vec![0; 8],
            ..Tpp::default()
        };
        let v = verify_for_hops(&t, 1);
        assert!(v.denials().any(|d| matches!(d.kind, DiagKind::StackUnderflow { .. })));
    }

    #[test]
    fn dead_store_and_hazard_lints_do_not_deny() {
        // Two LOADs to the same word in one hop: the first is dead; both
        // touch the same switch address: a RAW hazard... actually two reads
        // of the same address carry no hazard, so use distinct addresses.
        let t = TppBuilder::hop_mode(2)
            .load(a("Switch:SwitchID"), 0)
            .load(a("Queue:QueueOccupancy"), 0)
            .hops(2)
            .build()
            .unwrap();
        let v = verify_for_hops(&t, 2);
        assert!(v.passed());
        assert!(v.lints().any(|d| matches!(d.kind, DiagKind::DeadStore { .. })));
        assert!(v.token().is_some());
    }

    #[test]
    fn hazard_lint_reported() {
        let t = Tpp {
            instrs: vec![
                Instruction::store(a("Stage1:Reg0"), 0),
                Instruction::push(a("Stage1:Reg0")),
            ],
            memory: vec![0; 16],
            per_hop_len: 4,
            mode: AddrMode::Hop,
            ..Tpp::default()
        };
        let v = verify_for_hops(&t, 1);
        assert!(v.lints().any(|d| matches!(d.kind, DiagKind::Hazard(_))));
    }

    #[test]
    fn gate_structure_reported() {
        let t = TppBuilder::hop_mode(3)
            .cstore(a("Link:AppSpecific_0"), 0, 1)
            .store(a("Link:AppSpecific_1"), 2)
            .hops(2)
            .build()
            .unwrap();
        let v = verify_for_hops(&t, 2);
        assert!(v.passed(), "{:?}", v.diagnostics);
        let gate = v.gate.unwrap();
        assert_eq!(gate.index, 0);
        assert_eq!(gate.opcode, Opcode::Cstore);
        assert!(gate.suffix_writes_switch());
    }

    #[test]
    fn trailing_conditional_lint() {
        let mut t = TppBuilder::stack_mode()
            .push(a("Switch:SwitchID"))
            .cexec(a("Switch:SwitchID"), 0, 1)
            .memory_words(8)
            .build()
            .unwrap();
        t.sp = 2; // prefill mask/value... operands read words 0/1
        let v = verify(&t, VerifyOptions::default());
        assert!(v.lints().any(|d| d.kind == DiagKind::UselessConditional));
    }

    #[test]
    fn over_budget_and_oversized_memory_denied() {
        let t = Tpp {
            instrs: vec![Instruction::push(a("Switch:SwitchID")); 6],
            memory: vec![0; 8],
            ..Tpp::default()
        };
        let v = verify(&t, VerifyOptions::default());
        assert!(v.denials().any(|d| matches!(d.kind, DiagKind::OverBudget { .. })));

        let t = Tpp { instrs: vec![], memory: vec![0; 256], ..Tpp::default() };
        let v = verify(&t, VerifyOptions::default());
        assert!(v.denials().any(|d| matches!(d.kind, DiagKind::MemoryTooLarge { .. })));
    }

    #[test]
    fn derived_hops_match_stack_capacity() {
        // One PUSH per hop into 8 words: exactly 8 hops derivable.
        let t =
            TppBuilder::stack_mode().push(a("Switch:SwitchID")).memory_words(8).build().unwrap();
        let v = verify(&t, VerifyOptions::default());
        assert_eq!(v.hops_verified, 8);
    }

    #[test]
    fn render_is_rustc_style() {
        let t = TppBuilder::hop_mode(2).load(a("Switch:SwitchID"), 5).hops(2).build().unwrap();
        let v = verify_for_hops(&t, 2);
        let rendered = v.render(&t.instrs);
        assert!(rendered.contains("error[E-OOB]"), "{rendered}");
        assert!(rendered.contains("--> instr 0: LOAD [Switch:SwitchID]"), "{rendered}");
    }
}
