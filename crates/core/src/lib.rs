//! # tpp-core — Tiny Packet Programs
//!
//! The core of the TPP interface from *"Millions of Little Minions: Using
//! Packets for Low Latency Network Programming and Visibility"* (SIGCOMM
//! 2014): end-hosts embed ≤5-instruction programs in packet headers;
//! switches execute them in-band at line rate against a memory-mapped view
//! of switch state; end-hosts do all complex computation on the results.
//!
//! This crate defines the *contract* between end-hosts and switches:
//!
//! * [`addr`] — the unified, memory-mapped address space (Tables 2, 6–8):
//!   per-switch, per-port, per-queue and per-packet statistics behind
//!   16-bit virtual addresses, with human-readable mnemonics like
//!   `[Queue:QueueOccupancy]`.
//! * [`isa`] — the six-instruction ISA (Table 1): `LOAD`, `STORE`, `PUSH`,
//!   `POP`, `CSTORE`, `CEXEC`, each encoding to 4 bytes.
//! * [`wire`] — Ethernet/IPv4/UDP framing and the TPP section format
//!   (Figure 7), including the parse graph for transparent (ethertype
//!   0x6666) and standalone (UDP port 0x6666) modes.
//! * [`asm`] — assembler/disassembler for the paper's pseudo-assembly and a
//!   fluent [`asm::TppBuilder`].
//! * [`probe`] — the typed application layer: [`probe::Probe`] schemas that
//!   compile to validated programs + memory layouts and decode completed
//!   TPPs into per-hop records by field name.
//! * [`exec`] — reference execution semantics (§3.2–3.3): graceful failure,
//!   `CSTORE` compare-and-swap with observed-value write-back, `CEXEC`
//!   gating, administrative write-disable.
//! * [`analysis`] — static analysis (§3.5, §4.3): access sets, segment
//!   (GDT-like) permission checks, hazard detection, and the PUSH→LOAD
//!   serialization pass.
//! * [`mod@verify`] — the abstract-interpretation verifier: prove a program's
//!   packet-memory and permission safety once at load time
//!   ([`verify::Verdict`]), then run the unchecked fast path with the
//!   resulting [`verify::Verified`] token
//!   ([`exec::execute_in_place_verified`]).
//!
//! ## Quickstart
//!
//! ```
//! use tpp_core::asm::assemble;
//! use tpp_core::exec::{execute, ExecOptions, MapBus};
//! use tpp_core::addr::resolve_mnemonic;
//!
//! // The §2.1 micro-burst detection TPP.
//! let mut tpp = assemble(
//!     "PUSH [Switch:SwitchID]
//!      PUSH [PacketMetadata:OutputPort]
//!      PUSH [Queue:QueueOccupancy]",
//! ).unwrap();
//!
//! // A (mock) switch executes it...
//! let mut bus = MapBus::with(&[
//!     (resolve_mnemonic("Switch:SwitchID").unwrap(), 4),
//!     (resolve_mnemonic("PacketMetadata:OutputPort").unwrap(), 2),
//!     (resolve_mnemonic("Queue:QueueOccupancy").unwrap(), 17),
//! ]);
//! execute(&mut tpp, &mut bus, &ExecOptions::default());
//!
//! // ...and the end-host reads the snapshot out of the packet.
//! assert_eq!(&tpp.words()[..3], &[4, 2, 17]);
//! assert_eq!(tpp.hop, 1);
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod analysis;
pub mod asm;
pub mod exec;
pub mod isa;
pub mod probe;
pub mod verify;
pub mod wire;

pub use addr::{Address, Namespace, Word};
pub use asm::{assemble, disassemble, TppBuilder};
pub use exec::{
    execute, execute_in_place, execute_in_place_verified, ExecOptions, ExecOutcome, InPlaceOutcome,
    MemoryBus, StatusVec, WriteOutcome,
};
pub use isa::{Instruction, Opcode};
pub use probe::{HopRecord, Probe, ProbeError, Records, TppData};
pub use verify::{verify, Diagnostic, Severity, Verdict, Verified, VerifyOptions};
pub use wire::{max_hops, Tpp, TppError, TppView, TppViewMut, MAX_MEMORY_BYTES};
