//! The TPP instruction set (paper Table 1, §3.3).
//!
//! Each instruction encodes to exactly 4 bytes:
//!
//! ```text
//!  byte 0   byte 1..2    byte 3
//! +--------+------------+---------+
//! | opcode | address    | operand |
//! +--------+------------+---------+
//! ```
//!
//! * `address` is a 16-bit virtual address into the switch address space
//!   (big-endian on the wire).
//! * `operand` names packet-memory word offsets. For `LOAD`/`STORE` it is a
//!   single word offset within the current hop's window (hop addressing,
//!   §3.3.2). For `CSTORE`/`CEXEC`, which take *two* packet operands, the
//!   byte is split into two nibbles: high nibble = first operand offset, low
//!   nibble = second. `PUSH`/`POP` ignore it (they use the stack pointer).
//!
//! Five instructions at 4 bytes each give the 20-byte instruction budget of
//! Figure 7b.

use crate::addr::Address;
use core::fmt;

/// Maximum number of instructions a TPP may carry (§1: "at most 5
/// instructions"). Restricting TPP length is the key to executing within a
/// fraction of a packet's transmission time (§1.2).
pub const MAX_INSTRUCTIONS: usize = 5;

/// Encoded size of one instruction in bytes.
pub const INSTR_BYTES: usize = 4;

/// Opcodes (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Copy a switch word into hop-addressed packet memory.
    Load = 0x01,
    /// Copy a hop-addressed packet word into switch memory.
    Store = 0x02,
    /// Copy a switch word onto the packet stack (advances SP).
    Push = 0x03,
    /// Pop the top of the packet stack into switch memory (retreats SP).
    Pop = 0x04,
    /// Conditional store: compare-and-swap, gating subsequent instructions.
    Cstore = 0x05,
    /// Conditional execute: gate subsequent instructions on a masked compare.
    Cexec = 0x06,
}

impl Opcode {
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::Load,
            0x02 => Opcode::Store,
            0x03 => Opcode::Push,
            0x04 => Opcode::Pop,
            0x05 => Opcode::Cstore,
            0x06 => Opcode::Cexec,
            _ => return None,
        })
    }

    /// Whether this opcode writes to *switch* memory.
    pub fn writes_switch_memory(self) -> bool {
        matches!(self, Opcode::Store | Opcode::Pop | Opcode::Cstore)
    }

    /// Whether this opcode writes to *packet* memory.
    pub fn writes_packet_memory(self) -> bool {
        // CSTORE writes the observed old value back into the packet (§3.3.3).
        matches!(self, Opcode::Load | Opcode::Push | Opcode::Cstore)
    }

    /// Whether this opcode can suppress execution of subsequent instructions.
    pub fn is_conditional(self) -> bool {
        matches!(self, Opcode::Cstore | Opcode::Cexec)
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Load => "LOAD",
            Opcode::Store => "STORE",
            Opcode::Push => "PUSH",
            Opcode::Pop => "POP",
            Opcode::Cstore => "CSTORE",
            Opcode::Cexec => "CEXEC",
        }
    }
}

/// A decoded TPP instruction.
///
/// `op1`/`op2` are per-hop packet-memory *word* offsets; their meaning
/// depends on the opcode (see [`Opcode`] and the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    pub opcode: Opcode,
    pub addr: Address,
    pub op1: u8,
    pub op2: u8,
}

impl Instruction {
    /// `LOAD [addr], [Packet:hop[off]]`
    pub fn load(addr: Address, off: u8) -> Self {
        Instruction { opcode: Opcode::Load, addr, op1: off, op2: 0 }
    }
    /// `STORE [addr], [Packet:hop[off]]`
    pub fn store(addr: Address, off: u8) -> Self {
        Instruction { opcode: Opcode::Store, addr, op1: off, op2: 0 }
    }
    /// `PUSH [addr]`
    pub fn push(addr: Address) -> Self {
        Instruction { opcode: Opcode::Push, addr, op1: 0, op2: 0 }
    }
    /// `POP [addr]`
    pub fn pop(addr: Address) -> Self {
        Instruction { opcode: Opcode::Pop, addr, op1: 0, op2: 0 }
    }
    /// `CSTORE [addr], [Packet:hop[pre]], [Packet:hop[post]]`
    pub fn cstore(addr: Address, pre: u8, post: u8) -> Self {
        Instruction { opcode: Opcode::Cstore, addr, op1: pre, op2: post }
    }
    /// `CEXEC [addr], [Packet:hop[mask]], [Packet:hop[value]]`
    pub fn cexec(addr: Address, mask: u8, value: u8) -> Self {
        Instruction { opcode: Opcode::Cexec, addr, op1: mask, op2: value }
    }

    /// Encode to the 4-byte wire form.
    pub fn encode(self) -> [u8; INSTR_BYTES] {
        let operand = match self.opcode {
            Opcode::Cstore | Opcode::Cexec => {
                debug_assert!(self.op1 < 16 && self.op2 < 16);
                (self.op1 << 4) | (self.op2 & 0x0F)
            }
            _ => self.op1,
        };
        let a = self.addr.raw().to_be_bytes();
        [self.opcode as u8, a[0], a[1], operand]
    }

    /// Decode from the 4-byte wire form. Returns `None` on unknown opcodes.
    pub fn decode(bytes: [u8; INSTR_BYTES]) -> Option<Instruction> {
        let opcode = Opcode::from_u8(bytes[0])?;
        let addr = Address::new(u16::from_be_bytes([bytes[1], bytes[2]]));
        let (op1, op2) = match opcode {
            Opcode::Cstore | Opcode::Cexec => (bytes[3] >> 4, bytes[3] & 0x0F),
            _ => (bytes[3], 0),
        };
        Some(Instruction { opcode, addr, op1, op2 })
    }

    /// Packet-memory word offsets (within the hop window) this instruction
    /// reads or writes, paired with whether the access is a write.
    pub fn packet_operands(&self) -> PacketOperands {
        match self.opcode {
            Opcode::Load => PacketOperands::One { off: self.op1, write: true },
            Opcode::Store => PacketOperands::One { off: self.op1, write: false },
            Opcode::Push | Opcode::Pop => PacketOperands::Stack,
            // CSTORE reads both, and writes the observed value back to op1.
            Opcode::Cstore => PacketOperands::Two { a: self.op1, b: self.op2, writes_a: true },
            Opcode::Cexec => PacketOperands::Two { a: self.op1, b: self.op2, writes_a: false },
        }
    }
}

/// Summary of how an instruction touches packet memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketOperands {
    /// Stack-pointer relative (PUSH/POP).
    Stack,
    /// One hop-relative word offset.
    One { off: u8, write: bool },
    /// Two hop-relative word offsets.
    Two { a: u8, b: u8, writes_a: bool },
}

impl fmt::Debug for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opcode {
            Opcode::Push | Opcode::Pop => write!(f, "{} {}", self.opcode.mnemonic(), self.addr),
            Opcode::Load | Opcode::Store => {
                write!(f, "{} {}, [Packet:Hop[{}]]", self.opcode.mnemonic(), self.addr, self.op1)
            }
            Opcode::Cstore | Opcode::Cexec => write!(
                f,
                "{} {}, [Packet:Hop[{}]], [Packet:Hop[{}]]",
                self.opcode.mnemonic(),
                self.addr,
                self.op1,
                self.op2
            ),
        }
    }
}

/// Encode a program (instruction slice) to bytes.
pub fn encode_program(instrs: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instrs.len() * INSTR_BYTES);
    for i in instrs {
        out.extend_from_slice(&i.encode());
    }
    out
}

/// Why a program failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The byte length is not a multiple of [`INSTR_BYTES`].
    TrailingBytes,
    /// The first unknown opcode encountered, in program order, with the
    /// byte offset it was found at.
    BadOpcode { opcode: u8, offset: usize },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TrailingBytes => {
                write!(f, "program length is not a multiple of {INSTR_BYTES} bytes")
            }
            ProgramError::BadOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#04x} at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Decode a program from bytes. Fails on trailing bytes or unknown opcodes,
/// reporting the offending opcode and its byte offset directly.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Instruction>, ProgramError> {
    if !bytes.len().is_multiple_of(INSTR_BYTES) {
        return Err(ProgramError::TrailingBytes);
    }
    bytes
        .chunks_exact(INSTR_BYTES)
        .enumerate()
        .map(|(i, c)| {
            Instruction::decode([c[0], c[1], c[2], c[3]])
                .ok_or(ProgramError::BadOpcode { opcode: c[0], offset: i * INSTR_BYTES })
        })
        .collect()
}

/// Validate the program bytes without building a `Vec` (the fast-path
/// counterpart of [`decode_program`], used by the borrowed TPP view).
pub fn validate_program(bytes: &[u8]) -> Result<(), ProgramError> {
    if !bytes.len().is_multiple_of(INSTR_BYTES) {
        return Err(ProgramError::TrailingBytes);
    }
    for (i, c) in bytes.chunks_exact(INSTR_BYTES).enumerate() {
        if Opcode::from_u8(c[0]).is_none() {
            return Err(ProgramError::BadOpcode { opcode: c[0], offset: i * INSTR_BYTES });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::resolve_mnemonic;

    fn qsize() -> Address {
        resolve_mnemonic("Queue:QueueOccupancy").unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_all_opcodes() {
        let a = qsize();
        let instrs = [
            Instruction::load(a, 3),
            Instruction::store(a, 255),
            Instruction::push(a),
            Instruction::pop(a),
            Instruction::cstore(a, 1, 2),
            Instruction::cexec(a, 15, 0),
        ];
        for i in instrs {
            let bytes = i.encode();
            let back = Instruction::decode(bytes).unwrap();
            assert_eq!(i, back, "{i}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Instruction::decode([0x00, 0, 0, 0]).is_none());
        assert!(Instruction::decode([0x07, 0, 0, 0]).is_none());
        assert!(Instruction::decode([0xFF, 1, 2, 3]).is_none());
    }

    #[test]
    fn instruction_is_four_bytes() {
        assert_eq!(Instruction::push(qsize()).encode().len(), 4);
        // 5 instructions -> 20 bytes, the Figure 7b budget.
        let p = vec![Instruction::push(qsize()); MAX_INSTRUCTIONS];
        assert_eq!(encode_program(&p).len(), 20);
    }

    #[test]
    fn program_roundtrip_and_trailing_bytes() {
        let p = vec![Instruction::push(qsize()), Instruction::cstore(qsize(), 0, 1)];
        let bytes = encode_program(&p);
        assert_eq!(decode_program(&bytes).unwrap(), p);
        assert_eq!(validate_program(&bytes), Ok(()));
        let mut trailing = bytes.clone();
        trailing.push(0x01);
        assert_eq!(decode_program(&trailing), Err(ProgramError::TrailingBytes));
        assert_eq!(validate_program(&trailing), Err(ProgramError::TrailingBytes));
    }

    #[test]
    fn bad_opcode_reported_with_offset() {
        let mut bytes = encode_program(&[Instruction::push(qsize()), Instruction::pop(qsize())]);
        bytes[4] = 0x7F; // corrupt the second opcode
        let err = ProgramError::BadOpcode { opcode: 0x7F, offset: 4 };
        assert_eq!(decode_program(&bytes), Err(err));
        assert_eq!(validate_program(&bytes), Err(err));
        assert_eq!(err.to_string(), "unknown opcode 0x7f at byte offset 4");
    }

    #[test]
    fn write_classification() {
        assert!(Opcode::Store.writes_switch_memory());
        assert!(Opcode::Pop.writes_switch_memory());
        assert!(Opcode::Cstore.writes_switch_memory());
        assert!(!Opcode::Load.writes_switch_memory());
        assert!(!Opcode::Push.writes_switch_memory());
        assert!(!Opcode::Cexec.writes_switch_memory());
        assert!(Opcode::Cstore.writes_packet_memory());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let i = Instruction::push(qsize());
        assert_eq!(format!("{i}"), "PUSH [Queue:QueueOccupancy]");
        let l = Instruction::load(resolve_mnemonic("Switch:SwitchID").unwrap(), 1);
        assert_eq!(format!("{l}"), "LOAD [Switch:SwitchID], [Packet:Hop[1]]");
    }
}
