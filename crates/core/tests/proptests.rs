//! Property-based tests of the TPP core invariants.

use proptest::prelude::*;

use tpp_core::addr::{resolve_mnemonic, Address};
use tpp_core::analysis::{find_hazards, serialize_pushes};
use tpp_core::asm::{assemble, disassemble};
use tpp_core::exec::{execute, execute_in_place, ExecOptions, InstrStatus, MapBus};
use tpp_core::isa::{decode_program, encode_program, Instruction, Opcode};
use tpp_core::wire::{checksum, AddrMode, Tpp, TppView, TppViewMut};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Load),
        Just(Opcode::Store),
        Just(Opcode::Push),
        Just(Opcode::Pop),
        Just(Opcode::Cstore),
        Just(Opcode::Cexec),
    ]
}

prop_compose! {
    fn arb_instruction()(
        opcode in arb_opcode(),
        addr in any::<u16>(),
        op1 in any::<u8>(),
        op2 in 0u8..16,
    ) -> Instruction {
        // Canonical form: only CSTORE/CEXEC carry two (nibble) operands;
        // the second operand byte is otherwise unused on the wire.
        let (op1, op2) = if opcode.is_conditional() { (op1 % 16, op2) } else { (op1, 0) };
        Instruction { opcode, addr: Address::new(addr), op1, op2 }
    }
}

prop_compose! {
    fn arb_tpp()(
        instrs in prop::collection::vec(arb_instruction(), 0..=5),
        mem_words in 0usize..=63,
        mode in prop_oneof![Just(AddrMode::Stack), Just(AddrMode::Hop)],
        hop in any::<u8>(),
        sp in any::<u8>(),
        per_hop_words in 0u8..=8,
        reflect in any::<bool>(),
        app_id in any::<u16>(),
        mem_seed in any::<u64>(),
        wrote in any::<bool>(),
    ) -> Tpp {
        let mut memory = vec![0u8; mem_words * 4];
        let mut x = mem_seed;
        for b in memory.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        Tpp {
            mode,
            reflect,
            wrote,
            hop,
            sp,
            per_hop_len: per_hop_words * 4,
            encap_proto: 0x0800,
            app_id,
            instrs,
            memory,
        }
    }
}

proptest! {
    /// Wire round-trip: serialize(parse(x)) == x for every well-formed TPP.
    #[test]
    fn tpp_wire_roundtrip(tpp in arb_tpp()) {
        let bytes = tpp.serialize();
        let (parsed, consumed) = Tpp::parse(&bytes).expect("self-serialized TPP parses");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(parsed, tpp);
    }

    /// Any single-bit flip in the section is caught by the checksum.
    #[test]
    fn tpp_checksum_catches_bit_flips(tpp in arb_tpp(), byte_sel in any::<prop::sample::Index>(), bit in 0u8..8) {
        let bytes = tpp.serialize();
        let idx = byte_sel.index(bytes.len());
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        // Either a parse error, or (for flips inside length fields) a
        // different shape — never a silent identical parse.
        match Tpp::parse(&corrupted) {
            Err(_) => {}
            Ok((t, _)) => prop_assert_ne!(t, tpp, "flip at byte {} bit {} undetected", idx, bit),
        }
    }

    /// `assemble ∘ disassemble` is the identity on every assembly-
    /// representable TPP (and the textual form is a fixed point): what the
    /// assembler accepts, the disassembler round-trips losslessly.
    #[test]
    fn asm_roundtrip_fixed_point(tpp in arb_tpp()) {
        // Restrict to the assembly-representable subset: execution state
        // (hop/sp/wrote) and the encapsulation ethertype have no
        // directives, and PUSH/POP take no textual operand (their encoded
        // operand byte is semantically ignored).
        let mut t = tpp;
        t.hop = 0;
        t.sp = 0;
        t.wrote = false;
        t.encap_proto = 0;
        for ins in &mut t.instrs {
            if matches!(ins.opcode, Opcode::Push | Opcode::Pop) {
                ins.op1 = 0;
            }
        }
        let text = disassemble(&t);
        let back = assemble(&text).expect("disassembly reassembles");
        prop_assert_eq!(&back, &t, "{}", text);
        prop_assert_eq!(disassemble(&back), text);
    }

    /// Instruction encode/decode is bijective over valid instructions.
    #[test]
    fn instruction_roundtrip(instrs in prop::collection::vec(arb_instruction(), 0..=16)) {
        let bytes = encode_program(&instrs);
        prop_assert_eq!(decode_program(&bytes), Ok(instrs));
    }

    /// The internet checksum verifies after being embedded, for any data.
    #[test]
    fn checksum_self_verifies(mut data in prop::collection::vec(any::<u8>(), 2..256)) {
        data[0] = 0;
        data[1] = 0;
        let c = checksum::checksum(&data);
        data[0..2].copy_from_slice(&c.to_be_bytes());
        prop_assert!(checksum::verify(&data));
    }

    /// Execution never panics, never grows/shrinks packet memory, and only
    /// moves SP within bounds — for arbitrary programs against an arbitrary
    /// bus (graceful failure, §3.3).
    #[test]
    fn execution_is_total_and_memory_safe(tpp in arb_tpp(), mapped in any::<bool>()) {
        let mut t = tpp.clone();
        let mut bus = MapBus::default();
        if mapped {
            for ins in &t.instrs {
                bus.mem.insert(ins.addr.raw(), 0xAB);
            }
        }
        let out = execute(&mut t, &mut bus, &ExecOptions::default());
        prop_assert_eq!(t.memory.len(), tpp.memory.len(), "memory never grows/shrinks");
        prop_assert!(out.rejected || out.status.len() == t.instrs.len());
        // SP stays within the word count whenever it was in bounds before.
        if (tpp.sp as usize) <= tpp.memory_words() {
            prop_assert!((t.sp as usize) <= t.memory_words().max(tpp.sp as usize));
        }
        // And the serialized result still parses.
        let bytes = t.serialize();
        prop_assert!(Tpp::parse(&bytes).is_ok());
    }

    /// The §3.5 serialization is observationally equivalent to stack
    /// execution for hazard-free programs whose reads all succeed.
    #[test]
    fn push_serialization_equivalence(
        n_push in 1usize..=4,
        pops in 0usize..=1,
    ) {
        let stats = ["Switch:SwitchID", "PacketMetadata:InputPort", "Switch:Version", "Switch:NumPorts"];
        let mut instrs: Vec<Instruction> = (0..n_push)
            .map(|i| Instruction::push(resolve_mnemonic(stats[i % stats.len()]).unwrap()))
            .collect();
        for _ in 0..pops {
            instrs.push(Instruction::pop(resolve_mnemonic("Stage1:Reg0").unwrap()));
        }
        if !find_hazards(&instrs).is_empty() {
            return Ok(()); // §3.5 precondition
        }
        let entries: Vec<(Address, u32)> = stats
            .iter()
            .enumerate()
            .map(|(i, s)| (resolve_mnemonic(s).unwrap(), 100 + i as u32))
            .chain([(resolve_mnemonic("Stage1:Reg0").unwrap(), 0)])
            .collect();

        let mk = |instrs: Vec<Instruction>| Tpp {
            instrs,
            memory: vec![0; 16 * 4],
            ..Tpp::default()
        };
        let mut stack_t = mk(instrs.clone());
        let mut bus1 = MapBus::with(&entries);
        let out1 = execute(&mut stack_t, &mut bus1, &ExecOptions::default());
        prop_assert!(out1.status.iter().all(|s| *s == InstrStatus::Executed));

        let serialized = serialize_pushes(&instrs, 0).unwrap();
        let mut ser_t = mk(serialized);
        ser_t.per_hop_len = 0; // absolute offsets
        let mut bus2 = MapBus::with(&entries);
        execute(&mut ser_t, &mut bus2, &ExecOptions::default());

        prop_assert_eq!(stack_t.memory, ser_t.memory);
        prop_assert_eq!(bus1.mem, bus2.mem);
    }

    /// CSTORE is atomic: under any interleaving of two racing writers with
    /// the same expected value, exactly one succeeds.
    #[test]
    fn cstore_mutual_exclusion(expected in any::<u32>(), new_a in any::<u32>(), new_b in any::<u32>()) {
        prop_assume!(new_a != expected && new_b != expected);
        let addr = resolve_mnemonic("Link$0:AppSpecific_0").unwrap();
        let mk = |newval: u32| {
            let mut t = Tpp {
                mode: AddrMode::Hop,
                per_hop_len: 8,
                instrs: vec![Instruction::cstore(addr, 0, 1)],
                memory: vec![0; 8],
                ..Tpp::default()
            };
            t.write_word(0, expected).unwrap();
            t.write_word(1, newval).unwrap();
            t
        };
        let mut bus = MapBus::with(&[(addr, expected)]);
        let mut a = mk(new_a);
        let mut b = mk(new_b);
        let oa = execute(&mut a, &mut bus, &ExecOptions::default());
        let ob = execute(&mut b, &mut bus, &ExecOptions::default());
        prop_assert!(oa.wrote);
        // B succeeds only if A's write restored the expected value.
        if new_a == expected {
            prop_assert!(ob.wrote);
        } else {
            prop_assert!(!ob.wrote);
            // ...and B observed A's value.
            prop_assert_eq!(b.read_word(0), Some(new_a));
        }
    }

    /// Mnemonic resolution and pretty-printing are mutually consistent for
    /// every address that has a name.
    #[test]
    fn mnemonic_display_roundtrip(raw in any::<u16>()) {
        let addr = Address::new(raw);
        if let Some(name) = tpp_core::addr::mnemonic_of(addr) {
            let back = resolve_mnemonic(&name).unwrap();
            // Per-packet and explicit-instance namespaces share stat names;
            // resolution must land on an address with the same offset and
            // namespace class.
            prop_assert_eq!(back, addr, "{}", name);
        }
    }

    /// The hop counter wraps modulo 256 and increments exactly once per
    /// execution.
    #[test]
    fn hop_counter_increments(tpp in arb_tpp()) {
        prop_assume!(tpp.instrs.len() <= 5);
        let mut t = tpp.clone();
        let mut bus = MapBus::default();
        execute(&mut t, &mut bus, &ExecOptions::default());
        prop_assert_eq!(t.hop, tpp.hop.wrapping_add(1));
    }

    /// The borrowed view decodes exactly what the owned parser decodes, and
    /// both reject exactly the same corrupted inputs.
    #[test]
    fn view_parse_matches_owned_parse(tpp in arb_tpp(), flip in any::<u16>(), bit in 0u8..8) {
        let mut bytes = tpp.serialize();
        bytes.extend_from_slice(b"encapsulated payload");
        {
            let (view, consumed) = TppView::parse(&bytes).expect("self-serialized TPP parses");
            prop_assert_eq!(consumed, tpp.section_len());
            prop_assert_eq!(view.to_tpp(), tpp.clone());
        }
        let idx = flip as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        let owned = Tpp::parse(&bytes);
        let viewed = TppView::parse(&bytes);
        match (owned, viewed) {
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "flip at byte {}", idx),
            (Ok((t, ca)), Ok((v, cb))) => {
                prop_assert_eq!(ca, cb);
                prop_assert_eq!(v.to_tpp(), t);
            }
            (a, b) => prop_assert!(false, "parse divergence at byte {}: {:?} vs {:?}", idx, a.map(|x| x.1), b.map(|x| x.1)),
        }
    }

    /// §3.3 differential suite: for arbitrary valid sections, bus states and
    /// execution options, `execute_in_place` over the wire bytes produces a
    /// frame byte-identical to parse → `execute` → re-serialize — checksum
    /// and graceful-failure semantics included — with matching statuses and
    /// switch-memory side effects.
    #[test]
    fn in_place_execution_matches_reference(
        tpp in arb_tpp(),
        mapped_mask in any::<u8>(),
        ro_mask in any::<u8>(),
        value_seed in any::<u64>(),
        allow_writes in any::<bool>(),
        increment_hop in any::<bool>(),
        max_instructions in 0usize..=5,
    ) {
        // Bus: per distinct instruction address, mapped/read-only by mask
        // bit, with a pseudo-random value.
        let mut bus = MapBus::default();
        let mut x = value_seed;
        for (i, ins) in tpp.instrs.iter().enumerate() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if mapped_mask & (1 << i) != 0 {
                bus.mem.insert(ins.addr.raw(), (x >> 32) as u32);
            }
            if ro_mask & (1 << i) != 0 {
                bus.mark_read_only(ins.addr);
            }
        }
        let opts = ExecOptions { allow_writes, increment_hop, max_instructions };

        // Frame = section + trailing encapsulated payload.
        let section_len = tpp.section_len();
        let mut frame = tpp.serialize();
        frame.extend_from_slice(b"inner packet bytes");

        // Path A: parse -> reference execute -> re-serialize into the frame.
        let mut frame_a = frame.clone();
        let mut bus_a = bus.clone();
        let (mut ref_tpp, consumed) = Tpp::parse(&frame_a).expect("valid section");
        prop_assert_eq!(consumed, section_len);
        let out_a = execute(&mut ref_tpp, &mut bus_a, &opts);
        if !out_a.rejected {
            ref_tpp.emit(&mut frame_a[..section_len]);
        }

        // Path B: execute in place over the wire bytes.
        let mut frame_b = frame.clone();
        let mut bus_b = bus.clone();
        let (mut view, consumed) = TppViewMut::parse(&mut frame_b).expect("valid section");
        prop_assert_eq!(consumed, section_len);
        let out_b = execute_in_place(&mut view, &mut bus_b, &opts);

        prop_assert_eq!(out_a.rejected, out_b.rejected);
        prop_assert_eq!(&out_a.status[..], out_b.status.as_slice());
        prop_assert_eq!(out_a.wrote, out_b.wrote);
        prop_assert_eq!(frame_a, frame_b, "frames diverged (incl. checksum)");
        prop_assert_eq!(bus_a.mem, bus_b.mem, "switch-memory side effects diverged");
    }
}
