//! Differential soundness suite for the static verifier.
//!
//! The verifier's contract is eBPF-shaped: a program it accepts for `h`
//! hops must execute those hops with **zero** packet-memory bounds faults
//! and zero permission faults — so the switch may run the unchecked fast
//! path. These tests pit [`verify`] against the reference interpreter on
//! random programs, memory layouts and hop counts:
//!
//! * accepted ⇒ no runtime `Skipped` on a fully-mapped bus (soundness);
//! * any runtime fault ⇒ the verifier rejected (the contrapositive,
//!   stated directly over the fault trace);
//! * [`execute_in_place_verified`] is observationally equivalent to
//!   [`execute_in_place`] whenever a token exists, for arbitrary
//!   (partially mapped, partially read-only) buses.

use proptest::prelude::*;

use tpp_core::addr::{is_architecturally_writable, resolve_mnemonic, Address};
use tpp_core::exec::{
    execute_in_place, execute_in_place_verified, ExecOptions, InstrStatus, MapBus,
};
use tpp_core::isa::{Instruction, Opcode};
use tpp_core::verify::{verify, verify_for_hops, VerifyOptions};
use tpp_core::wire::{AddrMode, Tpp, TppViewMut};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Load),
        Just(Opcode::Store),
        Just(Opcode::Push),
        Just(Opcode::Pop),
        Just(Opcode::Cstore),
        Just(Opcode::Cexec),
    ]
}

prop_compose! {
    /// Mostly well-known (readable and writable) addresses, with a tail of
    /// fully random ones — so a useful fraction of generated programs earn
    /// a token while plenty still exercise the deny paths.
    fn arb_addr()(raw in any::<u16>(), pick in 0u8..6) -> Address {
        match pick {
            0 => resolve_mnemonic("Link$0:AppSpecific_0").unwrap(),
            1 => resolve_mnemonic("Stage1:Reg0").unwrap(),
            2 => resolve_mnemonic("Switch:SwitchID").unwrap(),
            3 => resolve_mnemonic("Queue:QueueOccupancy").unwrap(),
            4 => resolve_mnemonic("PacketMetadata:InputPort").unwrap(),
            _ => Address::new(raw),
        }
    }
}

prop_compose! {
    fn arb_instruction()(
        opcode in arb_opcode(),
        addr in arb_addr(),
        // Small operand offsets keep a useful fraction of programs in
        // bounds; the verifier sees plenty of out-of-range ones too.
        op1 in 0u8..16,
        op2 in 0u8..16,
    ) -> Instruction {
        let (op1, op2) = if opcode.is_conditional() { (op1, op2) } else { (op1, 0) };
        Instruction { opcode, addr, op1, op2 }
    }
}

prop_compose! {
    fn arb_tpp()(
        instrs in prop::collection::vec(arb_instruction(), 0..=5),
        mem_words in 0usize..=63,
        mode in prop_oneof![Just(AddrMode::Stack), Just(AddrMode::Hop)],
        hop_small in 0u8..4,
        hop_any in any::<u8>(),
        use_small_hop in any::<bool>(),
        sp in 0u8..=64,
        per_hop_words in 0u8..=8,
    ) -> Tpp {
        Tpp {
            mode,
            // Mostly early hops (where hop windows fit in memory), with a
            // tail of arbitrary counters for the wraparound paths.
            hop: if use_small_hop { hop_small } else { hop_any },
            sp,
            per_hop_len: per_hop_words * 4,
            encap_proto: 0x0800,
            instrs,
            memory: vec![0u8; mem_words * 4],
            ..Tpp::default()
        }
    }
}

/// A bus that faithfully models the architecture's permission surface:
/// every address an instruction touches is mapped, but architecturally
/// read-only addresses reject writes — exactly the faults the verifier's
/// standalone writability check must rule out.
fn full_bus(tpp: &Tpp) -> MapBus {
    let mut bus = MapBus::default();
    for ins in &tpp.instrs {
        bus.mem.insert(ins.addr.raw(), 0x5EED_0000 | u32::from(ins.addr.raw()));
        if !is_architecturally_writable(ins.addr) {
            bus.mark_read_only(ins.addr);
        }
    }
    bus
}

fn clone_bus(bus: &MapBus) -> MapBus {
    MapBus { mem: bus.mem.clone(), read_only: bus.read_only.clone() }
}

proptest! {
    /// Soundness: a program the verifier accepts for `hops` hops executes
    /// all of them with zero `Skipped` statuses — no stack overflow or
    /// underflow, no hop-window overrun, no forbidden write — on a bus
    /// that maps every touched address and enforces architectural
    /// writability.
    #[test]
    fn accepted_programs_never_fault_at_runtime(tpp in arb_tpp(), hops in 1usize..=8) {
        let verdict = verify_for_hops(&tpp, hops);
        let Some(token) = verdict.token() else { return Ok(()) };
        prop_assert!(token.covers(tpp.hop, tpp.sp), "token must cover the entry state");

        let mut bus = full_bus(&tpp);
        let opts =
            ExecOptions { allow_writes: true, increment_hop: true, ..ExecOptions::default() };
        let mut frame = tpp.serialize();
        for h in 0..hops {
            let (mut view, _) = TppViewMut::parse(&mut frame).expect("serialized TPP parses");
            let out = execute_in_place(&mut view, &mut bus, &opts);
            prop_assert!(!out.rejected, "verified program rejected at hop {}", h);
            for (i, st) in out.status.as_slice().iter().enumerate() {
                prop_assert_ne!(
                    *st,
                    InstrStatus::Skipped,
                    "hop {}: instr {} faulted on a verifier-accepted program",
                    h,
                    i
                );
            }
        }
    }

    /// The contrapositive, asserted from the runtime side: whenever the
    /// reference interpreter records a bounds/permission fault (`Skipped`)
    /// within the first `hops` hops, the verifier must have withheld the
    /// token for that budget.
    #[test]
    fn runtime_fault_implies_verifier_rejection(tpp in arb_tpp(), hops in 1usize..=8) {
        let mut bus = full_bus(&tpp);
        let opts =
            ExecOptions { allow_writes: true, increment_hop: true, ..ExecOptions::default() };
        let mut frame = tpp.serialize();
        let mut faulted = false;
        for _ in 0..hops {
            let (mut view, _) = TppViewMut::parse(&mut frame).expect("serialized TPP parses");
            let out = execute_in_place(&mut view, &mut bus, &opts);
            faulted |= out.status.as_slice().contains(&InstrStatus::Skipped);
        }
        if faulted {
            prop_assert!(
                verify_for_hops(&tpp, hops).token().is_none(),
                "runtime faulted but the verifier issued a token"
            );
        }
    }

    /// The unchecked fast path is observationally equivalent to the checked
    /// interpreter whenever a token exists — same frames (checksum
    /// included), same statuses, same switch-memory side effects — even on
    /// arbitrary partially-mapped / read-only buses and across hops the
    /// token does not cover (where it must fall back).
    #[test]
    fn verified_path_matches_checked_path(
        tpp in arb_tpp(),
        mapped_mask in any::<u8>(),
        ro_mask in any::<u8>(),
        value_seed in any::<u64>(),
        allow_writes in any::<bool>(),
        hops in 1usize..=6,
    ) {
        let verdict = verify(&tpp, VerifyOptions::default());
        let Some(token) = verdict.token() else { return Ok(()) };

        let mut bus = MapBus::default();
        let mut x = value_seed;
        for (i, ins) in tpp.instrs.iter().enumerate() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if mapped_mask & (1 << i) != 0 {
                bus.mem.insert(ins.addr.raw(), (x >> 32) as u32);
            }
            if ro_mask & (1 << i) != 0 {
                bus.mark_read_only(ins.addr);
            }
        }
        let opts =
            ExecOptions { allow_writes, increment_hop: true, ..ExecOptions::default() };

        let mut frame_a = tpp.serialize();
        let mut frame_b = frame_a.clone();
        let mut bus_a = clone_bus(&bus);
        let mut bus_b = bus;
        for h in 0..hops {
            let (mut va, _) = TppViewMut::parse(&mut frame_a).expect("checked frame parses");
            let out_a = execute_in_place(&mut va, &mut bus_a, &opts);
            let (mut vb, _) = TppViewMut::parse(&mut frame_b).expect("verified frame parses");
            let out_b = execute_in_place_verified(&mut vb, &mut bus_b, &opts, &token);
            prop_assert_eq!(out_a.rejected, out_b.rejected, "hop {}", h);
            prop_assert_eq!(out_a.wrote, out_b.wrote, "hop {}", h);
            prop_assert_eq!(out_a.status.as_slice(), out_b.status.as_slice(), "hop {}", h);
        }
        prop_assert_eq!(frame_a, frame_b, "frames diverged (incl. checksum)");
        prop_assert_eq!(bus_a.mem, bus_b.mem, "switch-memory side effects diverged");
    }
}
