//! Route-installation property test: after `install_routes`, every
//! ordered pair of hosts can exchange a frame — all-pairs, exhaustively,
//! over the multipath topologies (ECMP groups included), with per-host
//! delivery counts proving frames land at the *intended* host only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tpp_core::wire::{ethernet, ipv4, udp, EthernetAddress, EthernetRepr, Ipv4Address};
use tpp_netsim::{HostApp, HostCtx, NodeId, Topology, TopologySpec, MILLIS};

/// Sends one frame to every other host at start; counts frames received.
struct AllPairsApp {
    peers: Arc<Vec<u32>>,
    received: Arc<Vec<AtomicUsize>>,
    my_index: usize,
}

impl HostApp for AllPairsApp {
    fn start(&mut self, ctx: &mut HostCtx<'_>) {
        for (i, &dst) in self.peers.iter().enumerate() {
            if i == self.my_index {
                continue;
            }
            let dst_ip = Ipv4Address::from_host_id(dst);
            // Vary the source port so ECMP groups spread the pairs over
            // every member path.
            let u = udp::Repr {
                src_port: 1000 + self.my_index as u16,
                dst_port: 2000 + i as u16,
                payload_len: 16,
            };
            let udp_b = u.encapsulate(ctx.ip, dst_ip, &[0u8; 16]);
            let ip = ipv4::Repr {
                src: ctx.ip,
                dst: dst_ip,
                protocol: ipv4::protocol::UDP,
                ttl: 64,
                payload_len: udp_b.len(),
            };
            let frame = EthernetRepr {
                dst: EthernetAddress::from_node_id(dst),
                src: ctx.mac,
                ethertype: ethernet::ethertype::IPV4,
            }
            .encapsulate(&ip.encapsulate(&udp_b));
            ctx.send(frame);
        }
    }

    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
        // The intended destination is us: routes must never misdeliver.
        let eth = tpp_core::wire::EthernetFrame::new_checked(&frame[..]).expect("parseable");
        let ip = tpp_core::wire::Ipv4Packet::new_checked(eth.payload()).expect("ipv4");
        assert_eq!(
            ip.dst(),
            Ipv4Address::from_host_id(self.peers[self.my_index]),
            "frame for {:?} delivered to host index {}",
            ip.dst(),
            self.my_index
        );
        self.received[self.my_index].fetch_add(1, Ordering::Relaxed);
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn assert_all_pairs_deliver(mut t: Topology, label: &str) {
    let hosts = t.hosts.clone();
    let n = hosts.len();
    let peers = Arc::new(hosts.iter().map(|h| h.0).collect::<Vec<_>>());
    let received: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
    for (i, &h) in hosts.iter().enumerate() {
        t.net.set_app(
            h,
            Box::new(AllPairsApp { peers: peers.clone(), received: received.clone(), my_index: i }),
        );
    }
    t.net.run_until(2000 * MILLIS);
    for (i, c) in received.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            n - 1,
            "{label}: host {i} ({:?}) expected {} frames",
            NodeId(peers[i]),
            n - 1
        );
    }
    // Conservation: every sent frame was delivered exactly once.
    let total: usize = received.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(total, n * (n - 1), "{label}: total deliveries");
}

#[test]
fn all_pairs_reach_on_fat_tree_4() {
    // 16 hosts, 240 ordered pairs, ECMP at edge and aggregation layers.
    assert_all_pairs_deliver(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(1).build(),
        "fat-tree k=4",
    );
}

#[test]
fn all_pairs_reach_on_leaf_spine() {
    // 12 hosts over 4 leaves x 2 spines: every leaf pair has a 2-way group.
    assert_all_pairs_deliver(
        TopologySpec::LeafSpine { leaves: 4, spines: 2, hosts_per_leaf: 3 }
            .builder()
            .link_mbps(1000)
            .host_mbps(1000)
            .delay_ns(1000)
            .seed(2)
            .build(),
        "leaf-spine",
    );
}

#[test]
fn all_pairs_reach_on_fat_tree_4_alternate_seed() {
    // A different seed shifts ECMP hashes onto different group members;
    // delivery must be invariant.
    assert_all_pairs_deliver(
        TopologySpec::FatTree { k: 4 }.builder().link_mbps(1000).delay_ns(1000).seed(99).build(),
        "fat-tree k=4 seed 99",
    );
}

#[test]
fn all_pairs_reach_on_jellyfish() {
    // 20 hosts on a random-regular graph: routes come from plain BFS, so
    // delivery exercises whatever diameters the matching produced.
    assert_all_pairs_deliver(
        TopologySpec::Jellyfish { switches: 10, degree: 4, hosts_per_switch: 2 }
            .builder()
            .link_mbps(1000)
            .delay_ns(1000)
            .seed(7)
            .build(),
        "jellyfish 10x4",
    );
}

#[test]
fn all_pairs_reach_on_oversubscribed_fat_tree() {
    // Slower core uplinks change timing but must not change reachability.
    assert_all_pairs_deliver(
        TopologySpec::OversubFatTree { k: 4, oversub: 4 }
            .builder()
            .link_mbps(1000)
            .delay_ns(1000)
            .seed(3)
            .build(),
        "oversub fat-tree k=4",
    );
}
