//! Property tests for the declarative topology builder: every graph the
//! randomized families produce must be connected, and shortest-path route
//! installation must give every switch a next hop toward every host —
//! the static precondition behind the all-pairs delivery tests in
//! `reachability.rs`.

use proptest::prelude::*;
use tpp_netsim::{NodeId, Topology, TopologySpec};

/// BFS over the physical links from node 0: every node reachable.
fn connected(t: &Topology) -> bool {
    let n = t.net.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = vec![NodeId(0)];
    seen[0] = true;
    while let Some(u) = queue.pop() {
        for (_port, peer) in t.net.neighbors_iter(u) {
            if !seen[peer.0 as usize] {
                seen[peer.0 as usize] = true;
                queue.push(peer);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Every switch holds a /32 route for every host address.
fn routes_complete(t: &Topology) -> bool {
    t.switches.iter().all(|&s| {
        let sw = t.net.switch(s);
        t.hosts.iter().all(|&h| {
            let ip = t.net.host(h).ip;
            sw.table.entries().iter().any(|e| e.prefix == (ip, 32))
        })
    })
}

proptest! {
    #[test]
    fn jellyfish_graphs_connect_and_route(
        switches in 3usize..14,
        degree_raw in 2usize..8,
        hosts_per_switch in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let degree = degree_raw.min(switches - 1);
        let t = TopologySpec::Jellyfish { switches, degree, hosts_per_switch }
            .builder()
            .seed(seed)
            .build();
        prop_assert_eq!(t.switches.len(), switches);
        prop_assert_eq!(t.hosts.len(), switches * hosts_per_switch);
        prop_assert!(connected(&t), "jellyfish {switches}x{degree} seed {seed} disconnected");
        prop_assert!(routes_complete(&t), "jellyfish {switches}x{degree} seed {seed} missing routes");
    }

    #[test]
    fn oversubscribed_fat_trees_connect_and_route(
        k_half in 1usize..3,
        oversub in 1u64..9,
        seed in 0u64..100,
    ) {
        let k = 2 * (k_half + 1); // k in {4, 6}
        let t = TopologySpec::OversubFatTree { k, oversub }.builder().seed(seed).build();
        prop_assert_eq!(t.hosts.len(), k * k * k / 4);
        prop_assert!(connected(&t));
        prop_assert!(routes_complete(&t));
    }

    #[test]
    fn asymmetric_fat_trees_connect_and_route(seed in 0u64..200) {
        let t = TopologySpec::AsymFatTree { k: 4 }.builder().seed(seed).build();
        prop_assert!(connected(&t));
        prop_assert!(routes_complete(&t));
    }
}

#[test]
fn edge_list_import_connects_and_routes() {
    let t = tpp_netsim::scenario::abilene(2).builder().build();
    assert!(connected(&t));
    assert!(routes_complete(&t));
}
