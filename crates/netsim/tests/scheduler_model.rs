//! Property tests: the timing-wheel [`Scheduler`] against its executable
//! specification, the pre-wheel [`HeapQueue`].
//!
//! Both structures are driven with identical arbitrary schedules — delays
//! clustered around every wheel-level boundary (0/1, 63/64, 4095/4096,
//! 262143/262144, and past the 64^6 overflow horizon) plus
//! millisecond-scale horizons (1ms and the 64^4 boundary, the WAN event
//! mix that exercises multi-level cascades and the clustered-slot
//! wholesale move), arbitrary order keys, interleaved single pops and
//! whole-timestamp batch drains — and must agree on every pop, every
//! peek, and every length along the way.
//! Same-timestamp keyed ordering is the load-bearing property: the sharded
//! fabric replays tie-breaks from keys alone, so a wheel that reordered a
//! single equal-time pair would silently break digest determinism.
//!
//! Every property runs at three spill thresholds — 0 (pure wheel), 16 (the
//! heap backend spills into the wheel mid-schedule), and the default — so
//! the hybrid's backend switch is exercised under the same arbitrary
//! schedules as the wheel itself.

use proptest::prelude::*;
use tpp_netsim::engine::{HeapQueue, Scheduler};

prop_compose! {
    /// One operation: `(kind, delay, key)`. Kinds 0-1 schedule (weighting
    /// the mix toward insertion), 2 pops, 3 batch-drains.
    fn arb_op()(
        kind in 0u8..4,
        delay_class in 0usize..12,
        fine in 0u64..128,
        key in 0u64..4,
    ) -> (u8, u64, u64) {
        const BASES: [u64; 12] = [
            0, 0, 1, 63, 64, 4095, 4096, 262_143, 262_144,
            1_000_000,   // 1 ms — a WAN-delay event among ns events
            16_777_216,  // 64^4: the level boundary ms horizons cascade through
            1 << 36,
        ];
        (kind, BASES[delay_class].saturating_add(fine), key)
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_reference(ops in prop::collection::vec(arb_op(), 1..300)) {
        for threshold in [0, 16, usize::MAX] {
        let mut wheel = Scheduler::with_spill_threshold(threshold);
        let mut heap = HeapQueue::new();
        let mut next_id = 0u64;
        let mut batch: Vec<(u64, u64)> = Vec::new();
        for &(kind, delay, key) in &ops {
            match kind {
                0 | 1 => {
                    let at = heap.now() + delay;
                    wheel.schedule_keyed(at, key, next_id);
                    heap.schedule_keyed(at, key, next_id);
                    next_id += 1;
                }
                2 => prop_assert_eq!(wheel.pop(), heap.pop()),
                _ => {
                    batch.clear();
                    match wheel.pop_batch(&mut batch) {
                        None => prop_assert_eq!(heap.pop(), None),
                        Some(tb) => {
                            for &(_key, id) in &batch {
                                let (ht, hv) = heap.pop().expect("heap holds the batch too");
                                prop_assert_eq!(ht, tb, "batch event at the batch timestamp");
                                prop_assert_eq!(hv, id, "batch preserves (key, seq) pop order");
                            }
                            prop_assert!(
                                heap.peek_time() != Some(tb),
                                "pop_batch must drain the whole timestamp"
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek must be exact");
            prop_assert_eq!(wheel.now(), heap.now());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.now(), heap.now());
        prop_assert!(wheel.is_empty());
        }
    }

    /// Scheduling *at the current timestamp* while that timestamp's batch
    /// is partially drained must merge by key exactly like the heap.
    #[test]
    fn same_timestamp_merge_matches_heap(
        keys in prop::collection::vec(0u64..6, 2..40),
        late_keys in prop::collection::vec(0u64..6, 1..20),
    ) {
        for threshold in [0, 16, usize::MAX] {
        let mut wheel = Scheduler::with_spill_threshold(threshold);
        let mut heap = HeapQueue::new();
        for (i, &k) in keys.iter().enumerate() {
            wheel.schedule_keyed(50, k, i as u64);
            heap.schedule_keyed(50, k, i as u64);
        }
        // Pop one to stage the timestamp, then rain more events onto it.
        prop_assert_eq!(wheel.pop(), heap.pop());
        for (i, &k) in late_keys.iter().enumerate() {
            let id = 1000 + i as u64;
            wheel.schedule_keyed(50, k, id);
            heap.schedule_keyed(50, k, id);
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        }
    }
}
