//! The [`Topology`] type and shortest-path (ECMP) route installation.
//!
//! Topology *construction* lives in [`crate::scenario`]: declare a
//! [`crate::scenario::TopologySpec`], tune rates/delay/seed on a
//! [`crate::scenario::TopologyBuilder`], and
//! `build()`. Route installation is BFS per host: where multiple
//! equal-cost next hops exist, an ECMP group is installed, exactly like
//! the multipath group tables of §2.4.

use std::collections::VecDeque;

use crate::net::{Network, NodeId};
use tpp_switch::Action;

/// A dense map keyed by `NodeId.0` (node ids are compact, assigned from 0
/// upward by the builders), replacing the tree/hash maps that used to sit
/// on the route-installation path: on a k=8 fat-tree, route setup performs
/// hundreds of thousands of distance lookups, and an indexed `Vec` beats a
/// `BTreeMap` walk on every one of them.
#[derive(Clone, Debug)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> NodeMap<T> {
    /// An empty map sized for `n_nodes` node ids.
    pub fn new(n_nodes: usize) -> Self {
        NodeMap { slots: (0..n_nodes).map(|_| None).collect() }
    }

    pub fn insert(&mut self, node: NodeId, value: T) {
        self.slots[node.0 as usize] = Some(value);
    }

    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.slots.get(node.0 as usize).and_then(|s| s.as_ref())
    }

    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// `(node, value)` pairs in ascending node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (NodeId(i as u32), v)))
    }
}

/// A built topology: the network plus the roles of its nodes.
pub struct Topology {
    pub net: Network,
    pub hosts: Vec<NodeId>,
    pub switches: Vec<NodeId>,
}

impl Topology {
    /// Install shortest-path routes for every host on every switch,
    /// creating ECMP groups where several next hops tie.
    pub fn install_routes(&mut self) {
        install_shortest_path_routes(&mut self.net, &self.hosts, &self.switches);
    }
}

/// BFS distances from `start` over the whole node graph, as a dense
/// node-indexed map (`None` = unreachable).
fn bfs_dist(net: &Network, start: NodeId) -> NodeMap<u32> {
    let mut dist = NodeMap::new(net.node_count());
    dist.insert(start, 0);
    let mut q = VecDeque::new();
    q.push_back(start);
    while let Some(n) = q.pop_front() {
        let d = *dist.get(n).unwrap();
        // `neighbors_iter`: route installation runs a BFS per host — on a
        // k=8 fat-tree that is hundreds of thousands of adjacency visits,
        // and the iterator form performs them without a `Vec` per node.
        for (_, peer) in net.neighbors_iter(n) {
            if !dist.contains(peer) {
                dist.insert(peer, d + 1);
                // Hosts are leaves: record their distance, never route
                // *through* them.
                if net.is_switch(peer) {
                    q.push_back(peer);
                }
            }
        }
    }
    dist
}

/// Install shortest-path host routes with ECMP groups on ties.
pub fn install_shortest_path_routes(net: &mut Network, hosts: &[NodeId], switches: &[NodeId]) {
    for &h in hosts {
        let dist = bfs_dist(net, h);
        let ip = net.host(h).ip;
        for &s in switches {
            let Some(&ds) = dist.get(s) else { continue };
            // Next hops: neighbors strictly closer to the host.
            let mut ports: Vec<u8> = net
                .neighbors_iter(s)
                .filter(|(_, peer)| dist.get(*peer).is_some_and(|&dp| dp + 1 == ds))
                .map(|(p, _)| p)
                .collect();
            ports.sort_unstable();
            let action = match ports.as_slice() {
                [] => continue,
                [p] => Action::Output(*p),
                many => {
                    // Reuse an existing group with the same member set.
                    let key = many.to_vec();
                    let sw = net.switch_mut(s);
                    let gid = find_or_add_group(sw, key);
                    Action::Group(gid)
                }
            };
            net.switch_mut(s).add_host_route(ip, action);
        }
    }
}

fn find_or_add_group(sw: &mut tpp_switch::Switch, ports: Vec<u8>) -> u16 {
    // GroupTable has no lookup-by-members; track via a linear scan of known
    // groups (small tables).
    for gid in 0..u16::MAX {
        match sw.groups.ports(gid) {
            Some(existing) if existing == ports.as_slice() => return gid,
            Some(_) => continue,
            None => break,
        }
    }
    sw.add_group(ports)
}

/// Map from host node id to its index in `hosts` (handy for experiments):
/// a dense [`NodeMap`] keyed by `NodeId.0`, not a tree.
pub fn host_index(t: &Topology) -> NodeMap<usize> {
    let mut idx = NodeMap::new(t.net.node_count());
    for (i, &h) in t.hosts.iter().enumerate() {
        idx.insert(h, i);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MILLIS;
    use crate::net::{HostApp, HostCtx};
    use crate::scenario::{TopologyBuilder, TopologySpec};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use tpp_core::wire::{ethernet, ipv4, udp, EthernetAddress, EthernetRepr, Ipv4Address};

    struct Pinger {
        dst: NodeId,
        sport: u16,
        n: usize,
        got: Arc<AtomicUsize>,
    }
    impl HostApp for Pinger {
        fn start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..self.n {
                let dst_ip = Ipv4Address::from_host_id(self.dst.0);
                let u = udp::Repr { src_port: self.sport + i as u16, dst_port: 7, payload_len: 10 };
                let udp_b = u.encapsulate(ctx.ip, dst_ip, &[0; 10]);
                let ip = ipv4::Repr {
                    src: ctx.ip,
                    dst: dst_ip,
                    protocol: ipv4::protocol::UDP,
                    ttl: 64,
                    payload_len: udp_b.len(),
                };
                let f = EthernetRepr {
                    dst: EthernetAddress::from_node_id(self.dst.0),
                    src: ctx.mac,
                    ethertype: ethernet::ethertype::IPV4,
                }
                .encapsulate(&ip.encapsulate(&udp_b));
                ctx.send(f);
            }
        }
        fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: Vec<u8>) {
            self.got.fetch_add(1, Ordering::Relaxed);
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn assert_all_pairs_connectivity(mut t: Topology, label: &str) {
        let hosts = t.hosts.clone();
        let counters: Vec<Arc<AtomicUsize>> =
            hosts.iter().map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            // Each host pings its "next" host.
            let dst = hosts[(i + 1) % hosts.len()];
            let dst_idx = hosts.iter().position(|&x| x == dst).unwrap();
            t.net.set_app(
                h,
                Box::new(Pinger {
                    dst,
                    sport: 1000 + i as u16,
                    n: 1,
                    got: counters[dst_idx].clone(),
                }),
            );
        }
        t.net.run_until(500 * MILLIS);
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "{label}: host {i} did not receive its ping");
        }
    }

    fn fat_tree4() -> Topology {
        TopologyBuilder::new(TopologySpec::FatTree { k: 4 }).build()
    }

    #[test]
    fn star_connectivity() {
        let t = TopologyBuilder::new(TopologySpec::Star { hosts: 4 }).host_mbps(1000).build();
        assert_all_pairs_connectivity(t, "star");
    }

    #[test]
    fn dumbbell_connectivity() {
        let t = TopologyBuilder::new(TopologySpec::Dumbbell { per_side: 3 })
            .link_mbps(100)
            .host_mbps(100)
            .build();
        assert_all_pairs_connectivity(t, "dumbbell");
    }

    #[test]
    fn line_connectivity() {
        let t = TopologyBuilder::new(TopologySpec::Line { switches: 3, hosts_per_switch: 2 })
            .link_mbps(100)
            .build();
        assert_all_pairs_connectivity(t, "line");
    }

    #[test]
    fn leaf_spine_connectivity() {
        let t = TopologyBuilder::new(TopologySpec::LeafSpine {
            leaves: 3,
            spines: 2,
            hosts_per_leaf: 2,
        })
        .link_mbps(100)
        .host_mbps(100)
        .build();
        assert_all_pairs_connectivity(t, "leaf-spine");
    }

    #[test]
    fn fat_tree_structure() {
        let t = fat_tree4();
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.switches.len(), 20); // 4 cores + 8 agg + 8 edge
    }

    #[test]
    fn fat_tree_connectivity() {
        assert_all_pairs_connectivity(fat_tree4(), "fat-tree");
    }

    #[test]
    fn host_index_is_dense_and_complete() {
        let t = fat_tree4();
        let idx = host_index(&t);
        for (i, &h) in t.hosts.iter().enumerate() {
            assert_eq!(idx.get(h), Some(&i));
        }
        for &s in &t.switches {
            assert_eq!(idx.get(s), None, "switches are not hosts");
        }
        assert_eq!(idx.iter().count(), t.hosts.len());
    }

    #[test]
    fn ecmp_groups_installed_in_leaf_spine() {
        let t = TopologyBuilder::new(TopologySpec::LeafSpine {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 1,
        })
        .link_mbps(100)
        .host_mbps(100)
        .delay_ns(0)
        .build();
        // Each leaf should reach the remote host through a 2-way group.
        let leaf0 = t.switches[0];
        let remote_ip = t.net.host(t.hosts[1]).ip;
        let sw = t.net.switch(leaf0);
        let entry = sw
            .table
            .entries()
            .iter()
            .find(|e| e.prefix == (remote_ip, 32))
            .expect("route installed");
        match entry.action {
            Action::Group(g) => {
                assert_eq!(sw.groups.ports(g).unwrap().len(), 2);
            }
            other => panic!("expected ECMP group, got {other:?}"),
        }
    }

    #[test]
    fn fat_tree_cross_pod_uses_multipath() {
        let t = fat_tree4();
        // Edge switch routing to a remote pod must offer 2 uplinks.
        let edge0 = t.switches[4]; // first non-core is agg; layout: 4 cores then pods
        let _ = edge0;
        let remote_host_ip = t.net.host(*t.hosts.last().unwrap()).ip;
        // Find the edge switch of hosts[0].
        let h0 = t.hosts[0];
        let (_, edge) = t.net.neighbors(h0)[0];
        let sw = t.net.switch(edge);
        let entry =
            sw.table.entries().iter().find(|e| e.prefix == (remote_host_ip, 32)).expect("route");
        match entry.action {
            Action::Group(g) => assert_eq!(sw.groups.ports(g).unwrap().len(), 2),
            other => panic!("expected group, got {other:?}"),
        }
    }
}
