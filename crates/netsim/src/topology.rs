//! Topology builders and shortest-path (ECMP) route installation.
//!
//! Each builder wires hosts (initially running `NullApp`) and switches,
//! then installs host routes on every switch via BFS: where multiple
//! equal-cost next hops exist, an ECMP group is installed, exactly like the
//! multipath group tables of §2.4.

use std::collections::VecDeque;

use crate::net::{LinkSpec, Network, NodeId, NullApp};
use tpp_switch::{Action, SwitchConfig};

/// A dense map keyed by `NodeId.0` (node ids are compact, assigned from 0
/// upward by the builders), replacing the tree/hash maps that used to sit
/// on the route-installation path: on a k=8 fat-tree, route setup performs
/// hundreds of thousands of distance lookups, and an indexed `Vec` beats a
/// `BTreeMap` walk on every one of them.
#[derive(Clone, Debug)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
}

impl<T> NodeMap<T> {
    /// An empty map sized for `n_nodes` node ids.
    pub fn new(n_nodes: usize) -> Self {
        NodeMap { slots: (0..n_nodes).map(|_| None).collect() }
    }

    pub fn insert(&mut self, node: NodeId, value: T) {
        self.slots[node.0 as usize] = Some(value);
    }

    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.slots.get(node.0 as usize).and_then(|s| s.as_ref())
    }

    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// `(node, value)` pairs in ascending node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (NodeId(i as u32), v)))
    }
}

/// A built topology: the network plus the roles of its nodes.
pub struct Topology {
    pub net: Network,
    pub hosts: Vec<NodeId>,
    pub switches: Vec<NodeId>,
}

impl Topology {
    /// Install shortest-path routes for every host on every switch,
    /// creating ECMP groups where several next hops tie.
    pub fn install_routes(&mut self) {
        install_shortest_path_routes(&mut self.net, &self.hosts, &self.switches);
    }
}

/// BFS distances from `start` over the whole node graph, as a dense
/// node-indexed map (`None` = unreachable).
fn bfs_dist(net: &Network, start: NodeId) -> NodeMap<u32> {
    let mut dist = NodeMap::new(net.node_count());
    dist.insert(start, 0);
    let mut q = VecDeque::new();
    q.push_back(start);
    while let Some(n) = q.pop_front() {
        let d = *dist.get(n).unwrap();
        // `neighbors_iter`: route installation runs a BFS per host — on a
        // k=8 fat-tree that is hundreds of thousands of adjacency visits,
        // and the iterator form performs them without a `Vec` per node.
        for (_, peer) in net.neighbors_iter(n) {
            if !dist.contains(peer) {
                dist.insert(peer, d + 1);
                // Hosts are leaves: record their distance, never route
                // *through* them.
                if net.is_switch(peer) {
                    q.push_back(peer);
                }
            }
        }
    }
    dist
}

/// Install shortest-path host routes with ECMP groups on ties.
pub fn install_shortest_path_routes(net: &mut Network, hosts: &[NodeId], switches: &[NodeId]) {
    for &h in hosts {
        let dist = bfs_dist(net, h);
        let ip = net.host(h).ip;
        for &s in switches {
            let Some(&ds) = dist.get(s) else { continue };
            // Next hops: neighbors strictly closer to the host.
            let mut ports: Vec<u8> = net
                .neighbors_iter(s)
                .filter(|(_, peer)| dist.get(*peer).is_some_and(|&dp| dp + 1 == ds))
                .map(|(p, _)| p)
                .collect();
            ports.sort_unstable();
            let action = match ports.as_slice() {
                [] => continue,
                [p] => Action::Output(*p),
                many => {
                    // Reuse an existing group with the same member set.
                    let key = many.to_vec();
                    let sw = net.switch_mut(s);
                    let gid = find_or_add_group(sw, key);
                    Action::Group(gid)
                }
            };
            net.switch_mut(s).add_host_route(ip, action);
        }
    }
}

fn find_or_add_group(sw: &mut tpp_switch::Switch, ports: Vec<u8>) -> u16 {
    // GroupTable has no lookup-by-members; track via a linear scan of known
    // groups (small tables).
    for gid in 0..u16::MAX {
        match sw.groups.ports(gid) {
            Some(existing) if existing == ports.as_slice() => return gid,
            Some(_) => continue,
            None => break,
        }
    }
    sw.add_group(ports)
}

/// Default switch config for topology builders.
fn switch_cfg(id: u32, n_ports: usize) -> SwitchConfig {
    SwitchConfig::new(id, n_ports)
}

/// One switch, `n` hosts (a star). Host link rate `host_mbps`.
pub fn star(n: usize, host_mbps: u64, delay_ns: u64, seed: u64) -> Topology {
    let mut net = Network::new(seed);
    let sw = net.add_switch(switch_cfg(1, n));
    let hosts: Vec<NodeId> = (0..n).map(|_| net.add_host(Box::new(NullApp))).collect();
    for &h in &hosts {
        net.connect(sw, h, LinkSpec::new(host_mbps, delay_ns));
    }
    let mut t = Topology { net, hosts, switches: vec![sw] };
    t.install_routes();
    t
}

/// The §2.1 micro-burst topology: two switches joined by a bottleneck, with
/// `per_side` hosts on each (6 hosts total for `per_side = 3`).
pub fn dumbbell(
    per_side: usize,
    host_mbps: u64,
    bottleneck_mbps: u64,
    delay_ns: u64,
    seed: u64,
) -> Topology {
    let mut net = Network::new(seed);
    let s0 = net.add_switch(switch_cfg(1, per_side + 1));
    let s1 = net.add_switch(switch_cfg(2, per_side + 1));
    net.connect(s0, s1, LinkSpec::new(bottleneck_mbps, delay_ns));
    let mut hosts = Vec::new();
    for side in [s0, s1] {
        for _ in 0..per_side {
            let h = net.add_host(Box::new(NullApp));
            net.connect(side, h, LinkSpec::new(host_mbps, delay_ns));
            hosts.push(h);
        }
    }
    let mut t = Topology { net, hosts, switches: vec![s0, s1] };
    t.install_routes();
    t
}

/// A line of `n_switches` switches with `hosts_per_switch` hosts on each —
/// the Figure 2 RCP topology is `line(3, 1)`-like: a flow traversing both
/// inter-switch links shares each with a one-link flow.
pub fn line(
    n_switches: usize,
    hosts_per_switch: usize,
    link_mbps: u64,
    delay_ns: u64,
    seed: u64,
) -> Topology {
    let mut net = Network::new(seed);
    let switches: Vec<NodeId> = (0..n_switches)
        .map(|i| net.add_switch(switch_cfg(i as u32 + 1, hosts_per_switch + 2)))
        .collect();
    for w in switches.windows(2) {
        net.connect(w[0], w[1], LinkSpec::new(link_mbps, delay_ns));
    }
    let mut hosts = Vec::new();
    for &s in &switches {
        for _ in 0..hosts_per_switch {
            let h = net.add_host(Box::new(NullApp));
            net.connect(s, h, LinkSpec::new(link_mbps, delay_ns));
            hosts.push(h);
        }
    }
    let mut t = Topology { net, hosts, switches };
    t.install_routes();
    t
}

/// A leaf-spine fabric (the Figure 4 CONGA topology is
/// `leaf_spine(3, 2, 1, ...)`): every leaf connects to every spine.
/// Returns hosts grouped leaf-major (`hosts[leaf * hosts_per_leaf + i]`).
pub fn leaf_spine(
    n_leaf: usize,
    n_spine: usize,
    hosts_per_leaf: usize,
    fabric_mbps: u64,
    host_mbps: u64,
    delay_ns: u64,
    seed: u64,
) -> Topology {
    let mut net = Network::new(seed);
    let spines: Vec<NodeId> =
        (0..n_spine).map(|i| net.add_switch(switch_cfg(100 + i as u32, n_leaf))).collect();
    let leaves: Vec<NodeId> = (0..n_leaf)
        .map(|i| net.add_switch(switch_cfg(1 + i as u32, n_spine + hosts_per_leaf)))
        .collect();
    for &leaf in &leaves {
        for &spine in &spines {
            net.connect(leaf, spine, LinkSpec::new(fabric_mbps, delay_ns));
        }
    }
    let mut hosts = Vec::new();
    for &leaf in &leaves {
        for _ in 0..hosts_per_leaf {
            let h = net.add_host(Box::new(NullApp));
            net.connect(leaf, h, LinkSpec::new(host_mbps, delay_ns));
            hosts.push(h);
        }
    }
    let mut switches = leaves.clone();
    switches.extend_from_slice(&spines);
    let mut t = Topology { net, hosts, switches };
    t.install_routes();
    t
}

/// A k-ary fat-tree (§2.5 uses k = 64; tests use k = 4): k pods of k/2 edge
/// and k/2 aggregation switches, (k/2)^2 cores, k^3/4 hosts.
pub fn fat_tree(k: usize, link_mbps: u64, delay_ns: u64, seed: u64) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut net = Network::new(seed);

    let cores: Vec<NodeId> =
        (0..half * half).map(|i| net.add_switch(switch_cfg(1000 + i as u32, k))).collect();
    let mut aggs: Vec<Vec<NodeId>> = Vec::new();
    let mut edges: Vec<Vec<NodeId>> = Vec::new();
    for pod in 0..k {
        aggs.push(
            (0..half).map(|i| net.add_switch(switch_cfg((100 + pod * 10 + i) as u32, k))).collect(),
        );
        edges.push(
            (0..half).map(|i| net.add_switch(switch_cfg((500 + pod * 10 + i) as u32, k))).collect(),
        );
    }
    // Core <-> aggregation: core (i, j) connects to aggregation j of each pod.
    for j in 0..half {
        for i in 0..half {
            let core = cores[j * half + i];
            for pod_aggs in &aggs {
                net.connect(pod_aggs[j], core, LinkSpec::new(link_mbps, delay_ns));
            }
        }
    }
    // Aggregation <-> edge within a pod (full bipartite).
    for pod in 0..k {
        for &a in &aggs[pod] {
            for &e in &edges[pod] {
                net.connect(a, e, LinkSpec::new(link_mbps, delay_ns));
            }
        }
    }
    // Hosts on edges.
    let mut hosts = Vec::new();
    for pod_edges in &edges {
        for &e in pod_edges {
            for _ in 0..half {
                let h = net.add_host(Box::new(NullApp));
                net.connect(e, h, LinkSpec::new(link_mbps, delay_ns));
                hosts.push(h);
            }
        }
    }
    let mut switches = cores.clone();
    for pod in 0..k {
        switches.extend_from_slice(&aggs[pod]);
        switches.extend_from_slice(&edges[pod]);
    }
    let mut t = Topology { net, hosts, switches };
    t.install_routes();
    t
}

/// Map from host node id to its index in `hosts` (handy for experiments):
/// a dense [`NodeMap`] keyed by `NodeId.0`, not a tree.
pub fn host_index(t: &Topology) -> NodeMap<usize> {
    let mut idx = NodeMap::new(t.net.node_count());
    for (i, &h) in t.hosts.iter().enumerate() {
        idx.insert(h, i);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MILLIS;
    use crate::net::{HostApp, HostCtx};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use tpp_core::wire::{ethernet, ipv4, udp, EthernetAddress, EthernetRepr, Ipv4Address};

    struct Pinger {
        dst: NodeId,
        sport: u16,
        n: usize,
        got: Arc<AtomicUsize>,
    }
    impl HostApp for Pinger {
        fn start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..self.n {
                let dst_ip = Ipv4Address::from_host_id(self.dst.0);
                let u = udp::Repr { src_port: self.sport + i as u16, dst_port: 7, payload_len: 10 };
                let udp_b = u.encapsulate(ctx.ip, dst_ip, &[0; 10]);
                let ip = ipv4::Repr {
                    src: ctx.ip,
                    dst: dst_ip,
                    protocol: ipv4::protocol::UDP,
                    ttl: 64,
                    payload_len: udp_b.len(),
                };
                let f = EthernetRepr {
                    dst: EthernetAddress::from_node_id(self.dst.0),
                    src: ctx.mac,
                    ethertype: ethernet::ethertype::IPV4,
                }
                .encapsulate(&ip.encapsulate(&udp_b));
                ctx.send(f);
            }
        }
        fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: Vec<u8>) {
            self.got.fetch_add(1, Ordering::Relaxed);
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn assert_all_pairs_connectivity(mut t: Topology, label: &str) {
        let hosts = t.hosts.clone();
        let counters: Vec<Arc<AtomicUsize>> =
            hosts.iter().map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for (i, &h) in hosts.iter().enumerate() {
            // Each host pings its "next" host.
            let dst = hosts[(i + 1) % hosts.len()];
            let dst_idx = hosts.iter().position(|&x| x == dst).unwrap();
            t.net.set_app(
                h,
                Box::new(Pinger {
                    dst,
                    sport: 1000 + i as u16,
                    n: 1,
                    got: counters[dst_idx].clone(),
                }),
            );
        }
        t.net.run_until(500 * MILLIS);
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "{label}: host {i} did not receive its ping");
        }
    }

    #[test]
    fn star_connectivity() {
        assert_all_pairs_connectivity(star(4, 1000, 1000, 1), "star");
    }

    #[test]
    fn dumbbell_connectivity() {
        assert_all_pairs_connectivity(dumbbell(3, 100, 100, 1000, 1), "dumbbell");
    }

    #[test]
    fn line_connectivity() {
        assert_all_pairs_connectivity(line(3, 2, 100, 1000, 1), "line");
    }

    #[test]
    fn leaf_spine_connectivity() {
        assert_all_pairs_connectivity(leaf_spine(3, 2, 2, 100, 100, 1000, 1), "leaf-spine");
    }

    #[test]
    fn fat_tree_structure() {
        let t = fat_tree(4, 1000, 1000, 1);
        assert_eq!(t.hosts.len(), 16);
        assert_eq!(t.switches.len(), 20); // 4 cores + 8 agg + 8 edge
    }

    #[test]
    fn fat_tree_connectivity() {
        assert_all_pairs_connectivity(fat_tree(4, 1000, 1000, 1), "fat-tree");
    }

    #[test]
    fn host_index_is_dense_and_complete() {
        let t = fat_tree(4, 1000, 1000, 1);
        let idx = host_index(&t);
        for (i, &h) in t.hosts.iter().enumerate() {
            assert_eq!(idx.get(h), Some(&i));
        }
        for &s in &t.switches {
            assert_eq!(idx.get(s), None, "switches are not hosts");
        }
        assert_eq!(idx.iter().count(), t.hosts.len());
    }

    #[test]
    fn ecmp_groups_installed_in_leaf_spine() {
        let t = leaf_spine(2, 2, 1, 100, 100, 0, 1);
        // Each leaf should reach the remote host through a 2-way group.
        let leaf0 = t.switches[0];
        let remote_ip = t.net.host(t.hosts[1]).ip;
        let sw = t.net.switch(leaf0);
        let entry = sw
            .table
            .entries()
            .iter()
            .find(|e| e.prefix == (remote_ip, 32))
            .expect("route installed");
        match entry.action {
            Action::Group(g) => {
                assert_eq!(sw.groups.ports(g).unwrap().len(), 2);
            }
            other => panic!("expected ECMP group, got {other:?}"),
        }
    }

    #[test]
    fn fat_tree_cross_pod_uses_multipath() {
        let t = fat_tree(4, 1000, 1000, 1);
        // Edge switch routing to a remote pod must offer 2 uplinks.
        let edge0 = t.switches[4]; // first non-core is agg; layout: 4 cores then pods
        let _ = edge0;
        let remote_host_ip = t.net.host(*t.hosts.last().unwrap()).ip;
        // Find the edge switch of hosts[0].
        let h0 = t.hosts[0];
        let (_, edge) = t.net.neighbors(h0)[0];
        let sw = t.net.switch(edge);
        let entry =
            sw.table.entries().iter().find(|e| e.prefix == (remote_host_ip, 32)).expect("route");
        match entry.action {
            Action::Group(g) => assert_eq!(sw.groups.ports(g).unwrap().len(), 2),
            other => panic!("expected group, got {other:?}"),
        }
    }
}
