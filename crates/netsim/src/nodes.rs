//! The node layer of the simulator: `NodeStore`.
//!
//! One of the three layers the network coordinator composes (see
//! [`crate::net`]): it owns every node slot — local switches, local hosts,
//! and `Remote` markers for nodes that live on another shard of a
//! partitioned run — plus the shared [`FramePool`] that recycles retired
//! frame buffers. The store knows nothing about links or time; the
//! coordinator (and, through it, a `tpp-fabric` shard) drives it.

use tpp_core::wire::{EthernetAddress, Ipv4Address};
use tpp_switch::{Switch, SwitchConfig};

use crate::net::{HostApp, NodeId};

/// Default cap on retained buffers (see [`FramePool::set_high_water`]).
pub const DEFAULT_POOL_HIGH_WATER: usize = 1024;

/// A freelist of retired frame buffers, shared by the whole simulation.
///
/// Every packet is a real `Vec<u8>`; buffers normally move end to end
/// without copying, but they *die* at many points — link-fault drops,
/// switch drops (queue overflow, no route, TTL, malformed), host NIC-limit
/// drops, and application sinks that consume a delivered frame. The pool
/// collects those carcasses and hands them back out via [`FramePool::get`] /
/// [`crate::net::HostCtx::take_buf`] so multi-hop simulations stop
/// round-tripping the allocator for a fresh `Vec<u8>` on every such event.
/// In a sharded run each shard owns its own pool, preserving the
/// zero-allocation steady state without cross-core contention.
///
/// Growth is bounded by a configurable *high-water mark*
/// ([`FramePool::set_high_water`], default [`DEFAULT_POOL_HIGH_WATER`]):
/// buffers returned beyond it free normally, and [`FramePool::shrink_to`]
/// releases retained capacity on demand. Occupancy is surfaced through
/// [`crate::net::NetStats::pool_retained`].
#[derive(Debug)]
pub struct FramePool {
    free: Vec<Vec<u8>>,
    high_water: usize,
    /// Buffers handed back out instead of freshly allocated.
    pub recycled: u64,
    /// `get()` calls that had to allocate because the pool was empty.
    pub misses: u64,
}

impl Default for FramePool {
    fn default() -> Self {
        FramePool { free: Vec::new(), high_water: DEFAULT_POOL_HIGH_WATER, recycled: 0, misses: 0 }
    }
}

impl FramePool {
    /// A cleared buffer, recycled when possible.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                self.recycled += 1;
                b
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a spent buffer to the pool. Beyond the high-water mark the
    /// buffer frees normally instead of being retained.
    pub fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < self.high_water {
            self.free.push(buf);
        }
    }

    /// The retention cap currently in force.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Change the retention cap; a lower cap immediately shrinks the pool
    /// down to it.
    pub fn set_high_water(&mut self, high_water: usize) {
        self.high_water = high_water;
        if self.free.len() > high_water {
            self.shrink_to(high_water);
        }
    }

    /// Free retained buffers down to `target`, releasing their memory.
    pub fn shrink_to(&mut self, target: usize) {
        self.free.truncate(target);
        self.free.shrink_to_fit();
    }

    /// Buffers currently available for reuse.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// A host: one NIC, one application.
pub struct Host {
    pub id: NodeId,
    pub ip: Ipv4Address,
    pub mac: EthernetAddress,
    pub app: Box<dyn HostApp>,
    pub(crate) nic_queue: std::collections::VecDeque<Vec<u8>>,
    pub(crate) nic_queued_bytes: usize,
    /// NIC queue limit; beyond this the host drops locally.
    pub nic_limit_bytes: usize,
    pub tx_frames: u64,
    pub rx_frames: u64,
    pub nic_drops: u64,
    pub(crate) started: bool,
}

/// What occupies a node slot: a local switch, a local host, or a marker
/// that the node lives in another shard of a partitioned run.
pub(crate) enum NodeKind {
    Switch(Box<Switch>),
    Host(Box<Host>),
    Remote,
}

/// Switches, hosts, remote markers, and the frame pool.
#[derive(Default)]
pub struct NodeStore {
    pub(crate) nodes: Vec<NodeKind>,
    /// Freelist of retired frame buffers (see [`FramePool`]).
    pub pool: FramePool,
}

impl NodeStore {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeKind::Switch(Box::new(Switch::new(cfg))));
        id
    }

    pub(crate) fn add_host(&mut self, app: Box<dyn HostApp>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeKind::Host(Box::new(Host {
            id,
            ip: Ipv4Address::from_host_id(id.0),
            mac: EthernetAddress::from_node_id(id.0),
            app,
            nic_queue: std::collections::VecDeque::new(),
            nic_queued_bytes: 0,
            nic_limit_bytes: 1 << 20,
            tx_frames: 0,
            rx_frames: 0,
            nic_drops: 0,
            started: false,
        })));
        id
    }

    pub(crate) fn push_remote(&mut self) {
        self.nodes.push(NodeKind::Remote);
    }

    pub(crate) fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.0 as usize]
    }

    pub(crate) fn kind_mut(&mut self, id: NodeId) -> &mut NodeKind {
        &mut self.nodes[id.0 as usize]
    }

    /// Disjoint borrows of one node slot and the frame pool (hosts hand
    /// consumed buffers back to the pool from inside their callbacks).
    pub(crate) fn kind_and_pool_mut(&mut self, id: NodeId) -> (&mut NodeKind, &mut FramePool) {
        (&mut self.nodes[id.0 as usize], &mut self.pool)
    }

    /// Mutable access to a switch (panics if `id` is not a local switch).
    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        match &mut self.nodes[id.0 as usize] {
            NodeKind::Switch(s) => s,
            _ => panic!("{id:?} is not a local switch"),
        }
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0 as usize] {
            NodeKind::Switch(s) => s,
            _ => panic!("{id:?} is not a local switch"),
        }
    }

    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0 as usize] {
            NodeKind::Host(h) => h,
            _ => panic!("{id:?} is not a local host"),
        }
    }

    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.0 as usize] {
            NodeKind::Host(h) => h,
            _ => panic!("{id:?} is not a local host"),
        }
    }

    pub fn is_switch(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.0 as usize], NodeKind::Switch(_))
    }

    pub fn is_host(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.0 as usize], NodeKind::Host(_))
    }

    /// Whether this store owns `id` (false for `Remote` slots of a
    /// partitioned run).
    pub fn is_local(&self, id: NodeId) -> bool {
        !matches!(self.nodes[id.0 as usize], NodeKind::Remote)
    }

    /// Node ids of local switches, in id order.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, NodeKind::Switch(_)).then_some(NodeId(i as u32)))
    }

    /// Node ids of local hosts, in id order.
    pub fn host_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, NodeKind::Host(_)).then_some(NodeId(i as u32)))
    }

    /// Decompose for [`crate::net::Network::split`].
    pub(crate) fn into_nodes(self) -> Vec<NodeKind> {
        self.nodes
    }
}
