//! The link layer of the simulator: `LinkFabric`.
//!
//! One of the three layers the network coordinator composes (see
//! [`crate::net`]): it owns every full-duplex link's state — peer wiring,
//! rate/delay/fault parameters, transmitter busy flags, per-link fault RNG
//! streams and transmit sequence numbers — plus the per-`(node, port)`
//! *in-flight batches*: frames that have left a transmitter and are
//! propagating toward a receiver. The layer computes serialization and
//! propagation delay and draws fault decisions; it never touches the event
//! queue or the nodes, which is what lets a `tpp-fabric` shard reuse it
//! unchanged: every shard carries the full port table (only the
//! transmitting side of a port ever consumes its RNG stream, so the copies
//! never diverge) while owning only its local nodes.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::engine::Time;
use crate::net::{splitmix64, NodeId};

/// Link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    pub rate_mbps: u64,
    pub delay_ns: u64,
    /// Probability a frame is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_prob: f64,
}

impl LinkSpec {
    pub fn new(rate_mbps: u64, delay_ns: u64) -> Self {
        LinkSpec { rate_mbps, delay_ns, drop_prob: 0.0, corrupt_prob: 0.0 }
    }
}

#[derive(Clone, Debug)]
struct Port {
    peer: (NodeId, u8),
    spec: LinkSpec,
    busy: bool,
    /// Fault-injection stream for this transmitter. Keyed to the link end,
    /// not the network, so draws depend only on the order of frames through
    /// this port — a property sharding preserves.
    rng: StdRng,
    /// Frames handed to this transmitter so far: a per-link total order
    /// carried on cross-shard frames for deterministic replay.
    tx_seq: u64,
}

/// Stream seed for one link transmitter, decorrelated per `(node, port)`.
fn link_stream_seed(seed: u64, node: NodeId, port: u8) -> u64 {
    seed ^ splitmix64(((node.0 as u64) << 8) | port as u64)
}

/// What [`LinkFabric::transmit`] decided for one frame.
pub(crate) struct Transmit {
    /// When the transmitter finishes serializing (and frees up).
    pub tx_done_at: Time,
    /// Receiving `(node, port)`.
    pub peer: (NodeId, u8),
    /// Transmit end plus propagation delay.
    pub arrive_at: Time,
    /// Per-sender-port transmit sequence number.
    pub seq: u64,
    /// Frame lost to the link's drop probability.
    pub dropped: bool,
    /// `(byte index, bit mask)` to flip, when corruption fired.
    pub corrupt: Option<(usize, u8)>,
}

/// Link state, delay computation, and fault streams for the whole topology.
pub struct LinkFabric {
    ports: Vec<Vec<Port>>,
    /// Frames propagating toward `(node, port)`, in arrival order.
    in_flight: Vec<Vec<VecDeque<Vec<u8>>>>,
    seed: u64,
}

impl LinkFabric {
    pub(crate) fn new(seed: u64) -> Self {
        LinkFabric { ports: Vec::new(), in_flight: Vec::new(), seed }
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// Register a new node slot (no links yet).
    pub(crate) fn add_node(&mut self) {
        self.ports.push(Vec::new());
        self.in_flight.push(Vec::new());
    }

    /// Ports wired on `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.ports[node.0 as usize].len()
    }

    /// Connect two nodes full-duplex; ports are auto-assigned and returned.
    pub(crate) fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (u8, u8) {
        let pa = self.ports[a.0 as usize].len() as u8;
        let pb = self.ports[b.0 as usize].len() as u8;
        self.ports[a.0 as usize].push(Port {
            peer: (b, pb),
            spec,
            busy: false,
            rng: StdRng::seed_from_u64(link_stream_seed(self.seed, a, pa)),
            tx_seq: 0,
        });
        self.ports[b.0 as usize].push(Port {
            peer: (a, pa),
            spec,
            busy: false,
            rng: StdRng::seed_from_u64(link_stream_seed(self.seed, b, pb)),
            tx_seq: 0,
        });
        self.in_flight[a.0 as usize].push(VecDeque::new());
        self.in_flight[b.0 as usize].push(VecDeque::new());
        (pa, pb)
    }

    pub(crate) fn is_connected(&self, node: NodeId, port: u8) -> bool {
        self.ports[node.0 as usize].get(port as usize).is_some()
    }

    pub(crate) fn is_busy(&self, node: NodeId, port: u8) -> bool {
        self.ports[node.0 as usize][port as usize].busy
    }

    pub(crate) fn clear_busy(&mut self, node: NodeId, port: u8) {
        self.ports[node.0 as usize][port as usize].busy = false;
    }

    /// The link parameters of `(node, port)`.
    pub fn spec(&self, node: NodeId, port: u8) -> LinkSpec {
        self.ports[node.0 as usize][port as usize].spec
    }

    /// Degrade a link (both directions); returns the peer endpoint so the
    /// coordinator can mirror status into switch memory maps.
    pub(crate) fn set_faults(
        &mut self,
        a: NodeId,
        port_a: u8,
        drop_prob: f64,
        corrupt_prob: f64,
    ) -> (NodeId, u8) {
        let (peer, peer_port) = {
            let p = &mut self.ports[a.0 as usize][port_a as usize];
            p.spec.drop_prob = drop_prob;
            p.spec.corrupt_prob = corrupt_prob;
            p.peer
        };
        let back = &mut self.ports[peer.0 as usize][peer_port as usize];
        back.spec.drop_prob = drop_prob;
        back.spec.corrupt_prob = corrupt_prob;
        (peer, peer_port)
    }

    /// Change the rate/delay of a link (both directions); returns the peer
    /// endpoint so the coordinator can mirror the speed into switch memory
    /// maps. A frame already serializing keeps its scheduled completion;
    /// the new profile applies from the next transmit on.
    pub(crate) fn set_profile(
        &mut self,
        a: NodeId,
        port_a: u8,
        rate_mbps: u64,
        delay_ns: Time,
    ) -> (NodeId, u8) {
        assert!(rate_mbps > 0, "link rate must be positive");
        let (peer, peer_port) = {
            let p = &mut self.ports[a.0 as usize][port_a as usize];
            p.spec.rate_mbps = rate_mbps;
            p.spec.delay_ns = delay_ns;
            p.peer
        };
        let back = &mut self.ports[peer.0 as usize][peer_port as usize];
        back.spec.rate_mbps = rate_mbps;
        back.spec.delay_ns = delay_ns;
        (peer, peer_port)
    }

    /// Commit one frame of `frame_len` bytes to the transmitter at
    /// `(node, port)`: mark it busy, compute serialization and propagation
    /// delay, draw drop/corruption from the port's own fault stream, and
    /// take a transmit sequence number. Fault injection happens "on the
    /// wire": the draw order (drop, then corrupt byte, then corrupt bit)
    /// is part of the deterministic contract.
    pub(crate) fn transmit(
        &mut self,
        now: Time,
        node: NodeId,
        port: u8,
        frame_len: usize,
    ) -> Transmit {
        let p = &mut self.ports[node.0 as usize][port as usize];
        debug_assert!(!p.busy, "transmit on a busy port");
        p.busy = true;
        let spec = p.spec;
        let dropped = spec.drop_prob > 0.0 && p.rng.random::<f64>() < spec.drop_prob;
        let corrupt =
            if !dropped && spec.corrupt_prob > 0.0 && p.rng.random::<f64>() < spec.corrupt_prob {
                Some((p.rng.random_range(0..frame_len), 1u8 << p.rng.random_range(0..8)))
            } else {
                None
            };
        let seq = p.tx_seq;
        p.tx_seq += 1;
        let tx_ns = frame_len as u64 * 8 * 1000 / spec.rate_mbps; // bytes*8 / (Mbps) in ns
        Transmit {
            tx_done_at: now + tx_ns,
            peer: p.peer,
            arrive_at: now + tx_ns + spec.delay_ns,
            seq,
            dropped,
            corrupt,
        }
    }

    /// Hand a frame to the in-flight batch heading for `(node, port)`.
    pub(crate) fn push_in_flight(&mut self, node: NodeId, port: u8, frame: Vec<u8>) {
        self.in_flight[node.0 as usize][port as usize].push_back(frame);
    }

    /// Take the next arrived frame at `(node, port)`, if any.
    pub(crate) fn pop_in_flight(&mut self, node: NodeId, port: u8) -> Option<Vec<u8>> {
        self.in_flight[node.0 as usize][port as usize].pop_front()
    }

    /// Adjacency of a node, allocation-free: `(local port, peer)` per link.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (u8, NodeId)> + '_ {
        self.ports[node.0 as usize].iter().enumerate().map(|(p, port)| (p as u8, port.peer.0))
    }

    /// Every directed link, allocation-free:
    /// `(node, port, peer, peer_port, spec)`.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, u8, NodeId, u8, LinkSpec)> + '_ {
        self.ports.iter().enumerate().flat_map(|(n, ports)| {
            ports.iter().enumerate().map(move |(p, port)| {
                (NodeId(n as u32), p as u8, port.peer.0, port.peer.1, port.spec)
            })
        })
    }

    /// A per-shard copy for [`crate::net::Network::split`]: the full port
    /// table (specs, peers, fault streams) with empty in-flight batches.
    pub(crate) fn split_clone(&self) -> LinkFabric {
        LinkFabric {
            ports: self.ports.clone(),
            in_flight: self
                .ports
                .iter()
                .map(|ps| ps.iter().map(|_| VecDeque::new()).collect())
                .collect(),
            seed: self.seed,
        }
    }
}
