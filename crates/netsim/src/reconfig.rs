//! Runtime reconfiguration: scheduled route and link changes, plus the
//! dependency-ordered update scheduler.
//!
//! A live network is never frozen: routes move, links flap, rates degrade.
//! This module gives the simulator a deterministic way to *create* those
//! conditions so the TPP detection apps (netverify, `NetSight` histories,
//! the transient monitor) have something to police.
//!
//! # Scheduled reconfiguration
//!
//! A [`ReconfigAction`] describes one change; a plan is a list of
//! `(time, action)` pairs installed with
//! [`Network::schedule_reconfig`](crate::Network::schedule_reconfig).
//! Plans are carried as *data* through [`Network::split`](crate::Network::split),
//! so every shard of a partitioned run holds the full plan and applies the
//! slice it owns: route updates fire only on the shard owning the switch,
//! link updates fire on every shard (each shard carries the full port
//! table). Delivery rides the ordinary event queue with a content-derived
//! key, so sharded runs stay digest-equal with the single-threaded one.
//!
//! # Dependency-ordered updates
//!
//! Applying a route change set in an arbitrary order can create transient
//! forwarding loops even when both the old and the new configuration are
//! loop-free (the classic consensus-routing / Snowcap observation).
//! [`order_route_updates`] computes a safe order greedily: an update is
//! applied only when the mixed old/new forwarding graph it produces stays
//! loop-free for its destination. The transient monitor
//! (`tpp_apps::transient`) validates the property end to end: a misordered
//! plan must trip violations, the ordered plan must produce zero.

use std::collections::BTreeMap;

use tpp_core::wire::Ipv4Address;
use tpp_switch::Action;

use crate::engine::Time;
use crate::net::{Network, NodeId};

/// One scheduled change to a running network.
#[derive(Clone, Debug, PartialEq)]
pub enum ReconfigAction {
    /// Insert or replace the `/32` route for `dst` on `switch` (bumps the
    /// flow-table version, so batched-delivery `LookupHint` memoization
    /// self-invalidates).
    RouteSet { switch: NodeId, dst: Ipv4Address, action: Action },
    /// Withdraw the `/32` route for `dst` on `switch`; subsequent packets
    /// blackhole with a `NoRoute` drop.
    RouteWithdraw { switch: NodeId, dst: Ipv4Address },
    /// Take the link at `(node, port)` down (blackhole) or back up, both
    /// directions; link-status memory words on the endpoint switches track
    /// it.
    LinkUp { node: NodeId, port: u8, up: bool },
    /// Change rate/delay of the link at `(node, port)`, both directions.
    /// In a partitioned run, lowering a cross-shard delay is folded into
    /// the fabric's lookahead up front (see `tpp_fabric`), keeping the
    /// conservative epoch windows safe.
    LinkDegrade { node: NodeId, port: u8, rate_mbps: u64, delay_ns: u64 },
    /// Change the drop/corruption fault probabilities of the link at
    /// `(node, port)`, both directions.
    LinkFaults { node: NodeId, port: u8, drop_prob: f64, corrupt_prob: f64 },
}

/// A timed reconfiguration plan.
pub type ReconfigPlan = Vec<(Time, ReconfigAction)>;

/// One pending `/32` route change for the ordered-update scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteUpdate {
    pub switch: NodeId,
    pub dst: Ipv4Address,
    pub action: Action,
}

impl RouteUpdate {
    /// The scheduled-action form of this update.
    pub fn action(&self) -> ReconfigAction {
        ReconfigAction::RouteSet { switch: self.switch, dst: self.dst, action: self.action }
    }
}

/// The switches a forwarding action can hand a packet to next.
fn next_hops(net: &Network, switch: NodeId, action: Action) -> Vec<NodeId> {
    let port_peer = |port: u8| net.neighbors_iter(switch).find(|&(p, _)| p == port).map(|(_, n)| n);
    let peers = match action {
        Action::Output(port) => port_peer(port).into_iter().collect::<Vec<_>>(),
        Action::Group(g) => net
            .switch(switch)
            .groups
            .ports(g)
            .unwrap_or(&[])
            .iter()
            .filter_map(|&p| port_peer(p))
            .collect::<Vec<_>>(),
        Action::Drop => Vec::new(),
    };
    peers.into_iter().filter(|&n| net.is_switch(n)).collect()
}

/// Does the per-destination forwarding graph in `state` contain a cycle
/// reachable from any updated switch? Iterative three-color DFS.
fn has_loop(adj: &BTreeMap<NodeId, Vec<NodeId>>) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<NodeId, Color> = adj.keys().map(|&n| (n, Color::White)).collect();
    for &start in adj.keys() {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack = vec![(start, 0usize)];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                match color.get(&child).copied().unwrap_or(Color::Black) {
                    Color::Gray => return true,
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    false
}

/// Build the per-destination forwarding adjacency implied by the current
/// switch tables, with `overrides` applied on top.
fn forwarding_graph(
    net: &Network,
    dst: Ipv4Address,
    overrides: &BTreeMap<NodeId, Action>,
) -> BTreeMap<NodeId, Vec<NodeId>> {
    let mut adj = BTreeMap::new();
    for s in net.switch_ids() {
        let action = overrides.get(&s).copied().or_else(|| net.switch(s).host_route(dst));
        let hops = match action {
            Some(a) => next_hops(net, s, a),
            None => Vec::new(),
        };
        adj.insert(s, hops);
    }
    adj
}

/// Order a set of `/32` route updates so that no intermediate state has a
/// forwarding loop (Snowcap-style dependency ordering).
///
/// Greedy: repeatedly apply the lowest-id pending update whose resulting
/// mixed old/new graph stays loop-free for its destination. When both the
/// initial and the final configuration are loop-free, a safe per-step
/// order exists for `/32` next-hop updates; if the greedy pass ever finds
/// no safe candidate (e.g. the *final* state itself loops), the remaining
/// updates are appended in switch-id order so the plan still terminates.
///
/// The returned order, spaced out in time and applied through
/// [`Network::schedule_reconfig`](crate::Network::schedule_reconfig), is
/// what the transient monitor validates: zero violations for this order,
/// at least one for a crafted misorder.
pub fn order_route_updates(net: &Network, updates: &[RouteUpdate]) -> Vec<RouteUpdate> {
    // Per-destination groups: loops in /32 forwarding are per-destination,
    // so each group orders independently (deterministically: dst order).
    let mut by_dst: BTreeMap<Ipv4Address, Vec<RouteUpdate>> = BTreeMap::new();
    for u in updates {
        by_dst.entry(u.dst).or_default().push(*u);
    }
    let mut out = Vec::with_capacity(updates.len());
    for (dst, mut group) in by_dst {
        group.sort_by_key(|u| u.switch);
        let mut applied: BTreeMap<NodeId, Action> = BTreeMap::new();
        while !group.is_empty() {
            let pick = group.iter().position(|u| {
                let mut trial = applied.clone();
                trial.insert(u.switch, u.action);
                !has_loop(&forwarding_graph(net, dst, &trial))
            });
            // No single-step-safe candidate: fall back to the first pending
            // update so the plan always terminates.
            let i = pick.unwrap_or(0);
            let u = group.remove(i);
            applied.insert(u.switch, u.action);
            out.push(u);
        }
    }
    out
}

/// Turn an update order into a timed plan: the `k`-th update fires at
/// `start + k * spacing`. Spacing longer than the network's convergence
/// time (propagation plus queueing) keeps each step's transient windows
/// from overlapping.
pub fn plan_route_updates(updates: &[RouteUpdate], start: Time, spacing: Time) -> ReconfigPlan {
    updates.iter().enumerate().map(|(k, u)| (start + k as Time * spacing, u.action())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NullApp;
    use crate::LinkSpec;
    use tpp_switch::SwitchConfig;

    /// Triangle of switches s1-s2-s3 with the destination host on s3 and a
    /// source host on s1. Old routes: s1 -> s2 -> s3. New routes: s1 -> s3
    /// directly, s2 -> s1 (the s2-s3 link is being drained).
    fn triangle() -> (Network, [NodeId; 3], Ipv4Address, [RouteUpdate; 2]) {
        let mut net = Network::new(1);
        let s1 = net.add_switch(SwitchConfig::new(1, 4));
        let s2 = net.add_switch(SwitchConfig::new(2, 4));
        let s3 = net.add_switch(SwitchConfig::new(3, 4));
        let h_src = net.add_host(Box::new(NullApp));
        let h_dst = net.add_host(Box::new(NullApp));
        let spec = LinkSpec::new(1000, 10_000);
        net.connect(s1, s2, spec); // s1 port 0 / s2 port 0
        net.connect(s2, s3, spec); // s2 port 1 / s3 port 0
        net.connect(s1, s3, spec); // s1 port 1 / s3 port 1
        net.connect(s1, h_src, spec); // s1 port 2
        net.connect(s3, h_dst, spec); // s3 port 2
        let dst_ip = net.host(h_dst).ip;
        let src_ip = net.host(h_src).ip;
        net.switch_mut(s1).add_host_route(dst_ip, Action::Output(0)); // via s2
        net.switch_mut(s2).add_host_route(dst_ip, Action::Output(1)); // via s3
        net.switch_mut(s3).add_host_route(dst_ip, Action::Output(2)); // deliver
        net.switch_mut(s1).add_host_route(src_ip, Action::Output(2));
        net.switch_mut(s2).add_host_route(src_ip, Action::Output(0));
        net.switch_mut(s3).add_host_route(src_ip, Action::Output(1));
        let updates = [
            RouteUpdate { switch: s1, dst: dst_ip, action: Action::Output(1) }, // direct
            RouteUpdate { switch: s2, dst: dst_ip, action: Action::Output(0) }, // via s1
        ];
        (net, [s1, s2, s3], dst_ip, updates)
    }

    #[test]
    fn ordered_updates_put_the_dependency_first() {
        let (net, [s1, _, _], _, updates) = triangle();
        // Applying s2 -> s1 before s1 -> s3 creates a transient s1<->s2
        // loop; the safe order applies s1's update first.
        let ordered = order_route_updates(&net, &updates);
        assert_eq!(ordered.len(), 2);
        assert_eq!(ordered[0].switch, s1, "s1's direct route must go first");
        // The reversed order really is unsafe: its first step loops.
        let mut trial = BTreeMap::new();
        trial.insert(updates[1].switch, updates[1].action);
        assert!(has_loop(&forwarding_graph(&net, updates[1].dst, &trial)));
    }

    #[test]
    fn ordering_is_stable_for_already_safe_plans() {
        let (net, [s1, s2, _], dst, _) = triangle();
        // Updates that are individually safe keep switch-id order.
        let updates = [
            RouteUpdate { switch: s2, dst, action: Action::Output(1) }, // no-op re-set
            RouteUpdate { switch: s1, dst, action: Action::Output(1) },
        ];
        let ordered = order_route_updates(&net, &updates);
        assert_eq!(ordered[0].switch, s1);
        assert_eq!(ordered[1].switch, s2);
    }

    #[test]
    fn plan_spaces_updates_out() {
        let (net, _, _, updates) = triangle();
        let ordered = order_route_updates(&net, &updates);
        let plan = plan_route_updates(&ordered, 1_000, 500);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].0, 1_000);
        assert_eq!(plan[1].0, 1_500);
        assert!(matches!(plan[0].1, ReconfigAction::RouteSet { .. }));
    }

    #[test]
    fn group_actions_participate_in_loop_analysis() {
        let (mut net, [s1, _, _], dst, _) = triangle();
        // An ECMP group on s1 spraying over both s2 and s3 is loop-free...
        let g = net.switch_mut(s1).add_group(vec![0, 1]);
        net.switch_mut(s1).add_host_route(dst, Action::Group(g));
        assert!(!has_loop(&forwarding_graph(&net, dst, &BTreeMap::new())));
        // ...but pointing s2 back at s1 while s1 sprays through s2 loops.
        let mut trial = BTreeMap::new();
        trial.insert(NodeId(1), Action::Output(0));
        assert!(has_loop(&forwarding_graph(&net, dst, &trial)));
    }
}
