//! Deterministic discrete-event core: a hierarchical timing-wheel
//! scheduler.
//!
//! # Ordering contract
//!
//! Events at equal timestamps are delivered by ascending *order key*, then
//! by insertion order (a strictly increasing sequence number breaks the
//! remaining ties). Plain [`Scheduler::schedule_at`] uses key 0 for every
//! event, which degenerates to pure insertion-order ties — the classic
//! single-queue behavior. [`Scheduler::schedule_keyed`] lets a simulation
//! attach a *content-derived* key (e.g. packed from node id and port) so
//! that same-timestamp delivery order is a function of the events
//! themselves rather than of when they were inserted. That property is what
//! allows a sharded runtime (`tpp-fabric`) to replay the exact same
//! tie-break decisions as the single-threaded simulator: per-shard queues
//! cannot reproduce global insertion order, but they *can* reproduce keys.
//!
//! # The wheel
//!
//! The scheduler is a hierarchical timing wheel (Varghese & Lauck's "hashed
//! and hierarchical timing wheels", the structure inside every serious
//! timer subsystem) rather than a comparison-based heap:
//!
//! * [`LEVELS`] levels of [`SLOTS`] slots each; level `l` slots are
//!   `64^l` ns wide. Slots are *absolute-digit* aligned: the wheel holds
//!   exactly the deadlines sharing the clock's current `64^6`-era (its
//!   bits above bit 35), so it reaches up to the next era boundary — on
//!   average half of, at most all of, `64^6` ns ≈ 68.7 simulated seconds.
//!   Near a boundary even a deadline 1 ns ahead detours through the
//!   overflow heap; that era partitioning is what keeps wheel and overflow
//!   from ever interleaving. Scheduling is O(1): two shifts and a push.
//! * An event lands at the level of the *highest bit group in which its
//!   deadline differs from the current clock*. As the clock reaches a
//!   non-leaf slot's start time, the slot's events *cascade* down to finer
//!   levels; each event cascades at most `LEVELS - 1` times in its life.
//! * A level-0 slot is exactly 1 ns wide, so every event in it shares one
//!   timestamp. Draining a level-0 slot and sorting it by `(key, seq)`
//!   yields precisely the heap's pop order — and hands the caller the whole
//!   same-timestamp *batch* at once ([`Scheduler::pop_batch`]), which the
//!   network loop turns into batched frame delivery.
//! * Deadlines further out than the wheel span go to a sorted *overflow
//!   heap* and migrate into the wheel when the clock gets close enough.
//!   Because every wheel event shares the clock's high bits and every
//!   overflow event differs in them, the wheel minimum is always earlier
//!   than the overflow minimum — the two structures never interleave.
//!
//! # The hybrid
//!
//! At small queue sizes a plain binary heap beats the wheel: the wheel's
//! per-pop slot scans and cascades cost more than a handful of sift-downs
//! (the `engine_scale` benchmark crossover sits near a couple thousand
//! pending events). [`Scheduler`] therefore starts on an internal
//! `BinaryHeap` backend and *spills* — once, one-way — into the wheel the
//! first time its length crosses [`Scheduler::with_spill_threshold`]'s
//! threshold (default [`SPILL_THRESHOLD`]). Both backends pop in identical
//! `(time, key, seq)` order, so the switch is invisible to callers;
//! threshold 0 forces the wheel from the first event, `usize::MAX` pins the
//! heap forever. The wheel's bucket storage is allocated lazily at the
//! first spill, so a scheduler that never crosses the threshold costs no
//! more to construct than the heap it wraps.
//!
//! The pre-wheel `BinaryHeap` implementation survives as [`HeapQueue`]: it
//! is the reference model the property tests compare the wheel against,
//! and the "legacy" arm of the `engine_scale` benchmark.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation time in nanoseconds.
pub type Time = u64;

pub const MILLIS: Time = 1_000_000;
pub const SECONDS: Time = 1_000_000_000;

/// log2 of the slots per wheel level.
const BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS: usize = 1 << BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels; level `l` covers `64^(l+1)` ns, the whole wheel `64^6` ns.
pub const LEVELS: usize = 6;
/// Default queue length at which the scheduler spills from its small-queue
/// heap backend into the timing wheel (see the module docs).
pub const SPILL_THRESHOLD: usize = 2048;

struct Entry<E> {
    time: Time,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.key, other.seq).cmp(&(self.time, self.key, self.seq))
    }
}

/// `(level, slot)` for a deadline `at`, relative to clock position `now`,
/// or `None` when `at` is beyond the wheel span (overflow).
#[inline]
fn level_slot(now: Time, at: Time) -> Option<(usize, usize)> {
    let masked = at ^ now;
    let level =
        if masked == 0 { 0 } else { (63 - masked.leading_zeros()) as usize / BITS as usize };
    if level >= LEVELS {
        return None;
    }
    Some((level, ((at >> (BITS * level as u32)) & SLOT_MASK) as usize))
}

/// A deterministic event scheduler (see the module docs for the wheel).
pub struct Scheduler<E> {
    /// The clock: the timestamp of the last popped event, and the wheel's
    /// rotation position. Invariant between public calls: `now` never
    /// exceeds the earliest pending deadline.
    now: Time,
    next_seq: u64,
    len: usize,
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<E>>>,
    /// One occupancy bit per slot, per level — O(1) next-slot scans.
    occupied: [u64; LEVELS],
    /// Per-slot minimum `(time, key)` so `peek` is exact without draining.
    slot_min: Vec<(Time, u64)>,
    /// Per-slot maximum timestamp. Together with `slot_min` this detects
    /// *clustered* slots — every entry mapping to one destination slot —
    /// which cascade as a wholesale `Vec` move instead of entry-by-entry
    /// re-insertion. That is the WAN profile: a burst of frames scheduled
    /// milliseconds ahead within a few µs of each other lands thousands
    /// of entries in one coarse slot, and without the move each would pay
    /// a re-bucketing per level on the way down.
    slot_max: Vec<Time>,
    /// Deadlines beyond the wheel span, earliest first.
    overflow: BinaryHeap<Entry<E>>,
    /// The staged batch: every not-yet-popped event of timestamp
    /// `ready_time`, sorted by `(key, seq)`. Late arrivals for the same
    /// timestamp merge in by key, preserving the heap ordering contract.
    ready: VecDeque<Entry<E>>,
    ready_time: Time,
    /// Recycled slot storage: draining a slot parks its `Vec` here, and
    /// both cascade *destinations* and drained slots draw replacements
    /// from the pool. A single spare is not enough once events cluster —
    /// a WAN-delay batch cascading down the levels lands thousands of
    /// entries in one destination slot per level, and without recycled
    /// capacity every transition re-grows that slot from zero (realloc +
    /// memcpy each doubling). Bounded so idle capacity can't accumulate.
    spare_pool: Vec<Vec<Entry<E>>>,
    /// Count of inserts that landed exactly at the current clock value.
    /// Batch consumers snapshot this to learn whether a handler scheduled
    /// new work at the timestamp being drained (the only case where a
    /// mid-batch merge against [`Scheduler::peek_next`] is needed).
    now_inserts: u64,
    /// Small-queue backend: until the first spill, every pending event
    /// (except the staged `ready` batch) lives here and the wheel is empty.
    heap: BinaryHeap<Entry<E>>,
    /// Queue length beyond which the heap backend spills into the wheel.
    spill_threshold: usize,
    /// Latched on the first spill: from then on inserts go to the wheel.
    spilled: bool,
}

/// The name the network loop grew up with; kept as an alias.
pub type EventQueue<E> = Scheduler<E>;

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            now: 0,
            next_seq: 0,
            len: 0,
            // Wheel storage is allocated lazily on the first spill: a
            // scheduler that stays under the threshold never pays for the
            // LEVELS x SLOTS buckets. Safe because every slot access is
            // guarded by an `occupied` bit, and bits are only set by
            // `insert_wheel`, which runs after `spill` has allocated.
            slots: Vec::new(),
            occupied: [0; LEVELS],
            slot_min: Vec::new(),
            slot_max: Vec::new(),
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            ready_time: 0,
            spare_pool: Vec::new(),
            now_inserts: 0,
            heap: BinaryHeap::new(),
            spill_threshold: SPILL_THRESHOLD,
            spilled: false,
        }
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler that spills from the heap backend to the wheel once its
    /// length exceeds `threshold`: 0 forces the wheel from the first event,
    /// `usize::MAX` pins the heap backend forever. [`Scheduler::new`] uses
    /// [`SPILL_THRESHOLD`].
    pub fn with_spill_threshold(threshold: usize) -> Self {
        Scheduler { spill_threshold: threshold, ..Self::default() }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it clamps to now.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        self.schedule_keyed(at, 0, event);
    }

    /// Schedule `event` at `at` with an explicit same-timestamp order key:
    /// ties are broken by `(key, insertion order)`. Keys must be derived
    /// from event *content* if the schedule is to be reproducible across
    /// differently-partitioned runs (see module docs). The time-travel
    /// guard applies: `at < now` panics in debug builds and clamps to `now`
    /// in release builds, so a queue can never silently reorder the past.
    pub fn schedule_keyed(&mut self, at: Time, key: u64, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {} < {}", at, self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if at == self.now {
            self.now_inserts += 1;
        }
        let entry = Entry { time: at, key, seq, event };
        if !self.ready.is_empty() && at == self.ready_time {
            // The batch for this timestamp is already staged: merge by key
            // (every staged entry has a smaller seq, so key alone decides).
            let pos = self.ready.partition_point(|e| (e.key, e.seq) <= (key, seq));
            self.ready.insert(pos, entry);
            return;
        }
        if !self.spilled {
            self.heap.push(entry);
            if self.len > self.spill_threshold {
                self.spill();
            }
            return;
        }
        self.insert_wheel(entry);
    }

    /// One-way switch from the heap backend to the wheel: re-file every
    /// heap entry (arbitrary drain order — the wheel buckets by deadline).
    fn spill(&mut self) {
        self.spilled = true;
        if self.slots.is_empty() {
            self.slots = (0..LEVELS * SLOTS).map(|_| Vec::new()).collect();
            self.slot_min = vec![(Time::MAX, u64::MAX); LEVELS * SLOTS];
            self.slot_max = vec![0; LEVELS * SLOTS];
        }
        for entry in std::mem::take(&mut self.heap) {
            self.insert_wheel(entry);
        }
    }

    /// Schedule `event` after a delay relative to now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pool bound: far above the number of slots live at once on any real
    /// schedule, far below anything that could pin real memory.
    const SPARE_POOL_CAP: usize = 32;

    fn insert_wheel(&mut self, entry: Entry<E>) {
        match level_slot(self.now, entry.time) {
            Some((level, slot)) => {
                let idx = level * SLOTS + slot;
                let min = &mut self.slot_min[idx];
                if (entry.time, entry.key) < *min {
                    *min = (entry.time, entry.key);
                }
                if entry.time > self.slot_max[idx] {
                    self.slot_max[idx] = entry.time;
                }
                let bucket = &mut self.slots[idx];
                if bucket.capacity() == 0 {
                    if let Some(recycled) = self.spare_pool.pop() {
                        *bucket = recycled;
                    }
                }
                bucket.push(entry);
                self.occupied[level] |= 1 << slot;
            }
            None => self.overflow.push(entry),
        }
    }

    /// Park a drained slot's storage for reuse (dropped when full).
    fn recycle(&mut self, mut storage: Vec<Entry<E>>) {
        if self.spare_pool.len() < Self::SPARE_POOL_CAP {
            storage.clear();
            self.spare_pool.push(storage);
        }
    }

    /// First occupied `(level, slot)` in deadline order, or `None` when the
    /// wheel is empty. The lowest occupied level always holds the earliest
    /// deadline: level-`l` events live inside the clock's current level-
    /// `l+1` digit span, while higher-level occupancy sits at later digits.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let pos = (self.now >> (BITS * level as u32)) & SLOT_MASK;
            let bits = self.occupied[level] & (!0u64 << pos);
            if bits != 0 {
                return Some((level, bits.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Make `ready` hold the earliest pending timestamp's full batch.
    /// Returns false when no events remain anywhere.
    fn stage_next(&mut self) -> bool {
        if !self.ready.is_empty() {
            return true;
        }
        // Heap backend: pops already come out in `(time, key, seq)` order,
        // so draining the top timestamp yields the batch pre-sorted.
        if let Some(top) = self.heap.peek() {
            let t = top.time;
            debug_assert!(t >= self.now);
            self.now = t;
            self.ready_time = t;
            while self.heap.peek().is_some_and(|e| e.time == t) {
                let e = self.heap.pop().unwrap();
                self.ready.push_back(e);
            }
            return true;
        }
        loop {
            let Some((level, slot)) = self.next_occupied() else {
                // Wheel empty: pull the overflow prefix that fits into the
                // wheel once the clock jumps to the overflow minimum.
                let Some(min) = self.overflow.peek() else { return false };
                self.now = min.time;
                while let Some(p) = self.overflow.peek() {
                    if level_slot(self.now, p.time).is_none() {
                        break;
                    }
                    let e = self.overflow.pop().unwrap();
                    self.insert_wheel(e);
                }
                continue;
            };
            let shift = BITS * level as u32;
            if level == 0 {
                // 1 ns slots: everything here shares one timestamp.
                let deadline = (self.now & !SLOT_MASK) | slot as u64;
                debug_assert!(deadline >= self.now);
                self.now = deadline;
                let idx = slot; // level 0
                self.occupied[0] &= !(1 << slot);
                self.slot_min[idx] = (Time::MAX, u64::MAX);
                self.slot_max[idx] = 0;
                let mut batch = std::mem::take(&mut self.slots[idx]);
                batch.sort_unstable_by_key(|e| (e.key, e.seq));
                debug_assert!(batch.iter().all(|e| e.time == deadline));
                self.ready.extend(batch.drain(..));
                self.recycle(batch);
                self.ready_time = deadline;
                return true;
            }
            // Cascade: advance the clock to the slot's start (still at or
            // before every pending deadline) and re-insert its events —
            // their top differing digit now sits at a finer level.
            let range_mask = (1u64 << (BITS * (level as u32 + 1))) - 1;
            let deadline = (self.now & !range_mask) | ((slot as u64) << shift);
            debug_assert!(deadline >= self.now);
            self.now = deadline;
            let idx = level * SLOTS + slot;
            self.occupied[level] &= !(1 << slot);
            let lo = self.slot_min[idx];
            let hi = self.slot_max[idx];
            self.slot_min[idx] = (Time::MAX, u64::MAX);
            self.slot_max[idx] = 0;
            // Clustered fast path: when the earliest and latest deadlines
            // in the slot map to the same destination, every entry does —
            // move the storage wholesale (see the `slot_max` field docs).
            if let (Some(dst_lo), Some(dst_hi)) =
                (level_slot(self.now, lo.0), level_slot(self.now, hi))
            {
                if dst_lo == dst_hi {
                    let (l2, s2) = dst_lo;
                    debug_assert!(l2 < level);
                    let dst = l2 * SLOTS + s2;
                    let mut moved = std::mem::take(&mut self.slots[idx]);
                    if self.slots[dst].is_empty() {
                        let old = std::mem::replace(&mut self.slots[dst], moved);
                        self.recycle(old);
                    } else {
                        self.slots[dst].append(&mut moved);
                        self.recycle(moved);
                    }
                    if lo < self.slot_min[dst] {
                        self.slot_min[dst] = lo;
                    }
                    if hi > self.slot_max[dst] {
                        self.slot_max[dst] = hi;
                    }
                    self.occupied[l2] |= 1 << s2;
                    continue;
                }
            }
            // Cascade targets are strictly lower levels, so the drained
            // slot is never pushed to while `cascading` holds its storage.
            let mut cascading = std::mem::take(&mut self.slots[idx]);
            for e in cascading.drain(..) {
                debug_assert!(level_slot(self.now, e.time).is_some_and(|(l, _)| l < level));
                self.insert_wheel(e);
            }
            self.recycle(cascading);
        }
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if !self.stage_next() {
            return None;
        }
        let e = self.ready.pop_front().unwrap();
        self.len -= 1;
        debug_assert_eq!(self.now, e.time);
        Some((e.time, e.event))
    }

    /// Drain the *entire* earliest-timestamp batch — every event sharing
    /// that timestamp, in `(key, seq)` order — into `out` (appended as
    /// `(key, event)` pairs), advancing the clock. Returns the batch
    /// timestamp, or `None` when no events remain.
    ///
    /// Handlers may keep scheduling at the returned timestamp; such events
    /// are *not* part of this batch (they pop on a later call), so a caller
    /// that needs exact heap-equivalent interleaving must merge against
    /// [`Scheduler::peek_next`] while it works through the batch.
    pub fn pop_batch(&mut self, out: &mut Vec<(u64, E)>) -> Option<Time> {
        // Heap-backend fast path: with nothing staged, the top-timestamp
        // run can drain straight into the caller's batch, skipping the
        // `ready` round-trip. Identical to staging then draining — pops
        // come out in `(time, key, seq)` order and `ready` stays empty,
        // so the same-timestamp merge in `schedule_keyed` is inactive
        // either way.
        if self.ready.is_empty() {
            if let Some(top) = self.heap.peek() {
                let t = top.time;
                debug_assert!(t >= self.now);
                self.now = t;
                self.ready_time = t;
                while self.heap.peek().is_some_and(|e| e.time == t) {
                    let e = self.heap.pop().unwrap();
                    self.len -= 1;
                    out.push((e.key, e.event));
                }
                return Some(t);
            }
        }
        if !self.stage_next() {
            return None;
        }
        let t = self.ready_time;
        self.len -= self.ready.len();
        out.extend(self.ready.drain(..).map(|e| (e.key, e.event)));
        Some(t)
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<Time> {
        self.peek_next().map(|(t, _)| t)
    }

    /// Monotone count of inserts that landed exactly at the current clock.
    /// Snapshot before working through a drained batch; if unchanged, no
    /// handler has scheduled at the batch timestamp and no merge check is
    /// needed.
    pub fn now_insert_marks(&self) -> u64 {
        self.now_inserts
    }

    /// `(timestamp, order key)` of the next event without popping. Exact —
    /// per-slot minima make this a scan of at most one candidate slot per
    /// level plus the overflow head, with no cascading.
    pub fn peek_next(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<(Time, u64)> =
            self.ready.front().map(|front| (self.ready_time, front.key));
        for level in 0..LEVELS {
            let pos = (self.now >> (BITS * level as u32)) & SLOT_MASK;
            let bits = self.occupied[level] & (!0u64 << pos);
            if bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                let cand = self.slot_min[level * SLOTS + slot];
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        // Heap-backend candidate: the top minimizes `(time, key, seq)`, so
        // its `(time, key)` is the exact minimum of the backend.
        if let Some(h) = self.heap.peek() {
            let cand = (h.time, h.key);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        if let Some(o) = self.overflow.peek() {
            let cand = (o.time, o.key);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best
    }
}

/// The pre-wheel scheduler: a plain `BinaryHeap` ordered by
/// `(time, key, seq)`. Kept as the executable specification — the property
/// tests drive [`Scheduler`] and `HeapQueue` with identical schedules and
/// demand identical pop sequences — and as the `legacy` arm of the
/// `engine_scale` benchmark.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }
}

impl<E> HeapQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn schedule_at(&mut self, at: Time, event: E) {
        self.schedule_keyed(at, 0, event);
    }

    pub fn schedule_keyed(&mut self, at: Time, key: u64, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {} < {}", at, self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, key, seq, event });
    }

    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.event))
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = Scheduler::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = Scheduler::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = Scheduler::new();
        q.schedule_at(10, ());
        q.schedule_at(10, ());
        q.schedule_at(25, ());
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), 25);
    }

    #[test]
    fn keys_order_same_timestamp_events() {
        let mut q = Scheduler::new();
        q.schedule_keyed(10, 3, "c");
        q.schedule_keyed(10, 1, "a");
        q.schedule_keyed(10, 2, "b");
        q.schedule_keyed(5, 9, "first"); // earlier time wins over any key
        assert_eq!(q.pop(), Some((5, "first")));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = Scheduler::new();
        for i in 0..50 {
            q.schedule_keyed(7, 42, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    /// The time-travel guard: a shard-local queue must never silently
    /// reorder the past. Debug builds panic; release builds clamp to `now`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_into_the_past_panics_in_debug() {
        let mut q = Scheduler::new();
        q.schedule_at(100, "later");
        q.pop(); // now == 100
        q.schedule_at(99, "earlier");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn schedule_into_the_past_clamps_in_release() {
        let mut q = Scheduler::new();
        q.schedule_at(100, "later");
        q.pop(); // now == 100
        q.schedule_at(99, "earlier");
        assert_eq!(q.pop(), Some((100, "earlier")));
    }

    #[test]
    fn schedule_relative() {
        let mut q = Scheduler::new();
        q.schedule_at(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        assert_eq!(q.pop(), Some((150, 2)));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // Beyond the 64^6 ns span: must detour through the overflow heap
        // and still pop in exact order.
        let mut q = Scheduler::with_spill_threshold(0);
        let span = 64u64.pow(6);
        q.schedule_at(3 * span + 7, "far");
        q.schedule_at(5, "near");
        q.schedule_keyed(3 * span + 7, 0, "far2"); // same far timestamp
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((3 * span + 7, "far")));
        assert_eq!(q.pop(), Some((3 * span + 7, "far2")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 3 * span + 7);
    }

    #[test]
    fn cascades_preserve_order_across_level_boundaries() {
        // Straddle several level boundaries (64, 4096, 262144 ns).
        let mut q = Scheduler::with_spill_threshold(0);
        let times = [0u64, 1, 63, 64, 65, 4095, 4096, 4097, 262143, 262144, 1 << 30];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_key_order() {
        let mut q = Scheduler::new();
        q.schedule_keyed(10, 2, "b");
        q.schedule_keyed(10, 1, "a");
        q.schedule_keyed(20, 0, "later");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(10));
        assert_eq!(out, vec![(1, "a"), (2, "b")]);
        assert_eq!(q.now(), 10);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(20));
        assert_eq!(out, vec![(0, "later")]);
        assert_eq!(q.pop_batch(&mut out), None);
    }

    #[test]
    fn late_same_timestamp_arrivals_merge_by_key() {
        // After popping part of a timestamp's batch, a newly scheduled
        // event at that same timestamp with a smaller key must pop before
        // the already-staged larger-key events (heap semantics).
        let mut q = Scheduler::new();
        q.schedule_keyed(10, 2, "b");
        q.schedule_keyed(10, 9, "z");
        assert_eq!(q.pop(), Some((10, "b")));
        q.schedule_keyed(10, 5, "mid");
        assert_eq!(q.peek_next(), Some((10, 5)));
        assert_eq!(q.pop(), Some((10, "mid")));
        assert_eq!(q.pop(), Some((10, "z")));
    }

    #[test]
    fn peek_next_is_exact_for_coarse_slots() {
        // An event parked in a level-2 slot: peek must report its exact
        // timestamp, not the slot boundary.
        let mut q = Scheduler::with_spill_threshold(0);
        q.schedule_keyed(5000 + 4096 * 3, 7, "x");
        assert_eq!(q.peek_next(), Some((5000 + 4096 * 3, 7)));
        assert_eq!(q.peek_time(), Some(5000 + 4096 * 3));
        assert_eq!(q.now(), 0, "peek must not advance the clock");
        assert_eq!(q.pop(), Some((5000 + 4096 * 3, "x")));
    }

    #[test]
    fn len_counts_staged_and_overflow() {
        let mut q = Scheduler::with_spill_threshold(0);
        q.schedule_at(10, 0);
        q.schedule_at(10, 1);
        q.schedule_at(64u64.pow(6) * 2, 2);
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2); // one staged, one overflow
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        // Property-style: pseudo-random schedule offsets never violate
        // monotonicity.
        let mut q = Scheduler::new();
        let mut state = 12345u64;
        q.schedule_at(0, 0u64);
        let mut popped = 0;
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if popped > 1000 {
                break;
            }
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if popped < 500 {
                q.schedule_in(state % 100, popped);
                if state.is_multiple_of(3) {
                    q.schedule_in(0, popped + 1000);
                }
            }
        }
        assert!(popped >= 500);
    }

    /// Exhaustive differential sweep against the heap model on a dense
    /// xorshift schedule mixing delays around every level boundary.
    #[test]
    fn wheel_matches_heap_on_mixed_schedule() {
        let mut wheel = Scheduler::with_spill_threshold(0);
        let mut heap = HeapQueue::new();
        let mut state = 0xDEADBEEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let delays =
            [0u64, 1, 2, 63, 64, 65, 100, 4095, 4096, 5000, 262143, 262144, 1 << 24, 1 << 37];
        for i in 0..200u64 {
            let d = delays[(rng() % delays.len() as u64) as usize];
            let key = rng() % 4;
            wheel.schedule_keyed(d, key, i);
            heap.schedule_keyed(d, key, i);
        }
        let mut n = 0u64;
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h, "divergence after {n} pops");
            if w.is_none() {
                break;
            }
            n += 1;
            // Keep feeding while draining, relative to the advancing clock.
            if n < 400 {
                let d = delays[(rng() % delays.len() as u64) as usize];
                let key = rng() % 4;
                let at = wheel.now() + d;
                wheel.schedule_keyed(at, key, 10_000 + n);
                heap.schedule_keyed(at, key, 10_000 + n);
            }
        }
        assert_eq!(wheel.now(), heap.now());
    }

    /// The default scheduler stays on its heap backend below the spill
    /// threshold, where even era-crossing deadlines need no overflow detour.
    #[test]
    fn heap_backend_handles_far_deadlines_without_spilling() {
        let mut q = Scheduler::new();
        let span = 64u64.pow(6);
        q.schedule_at(3 * span + 7, "far");
        q.schedule_at(5, "near");
        assert_eq!(q.peek_next(), Some((5, 0)));
        assert_eq!(q.pop(), Some((5, "near")));
        assert_eq!(q.pop(), Some((3 * span + 7, "far")));
        assert_eq!(q.pop(), None);
    }

    /// Crossing the spill threshold mid-run must be invisible: a hybrid
    /// with a tiny threshold and the reference heap see identical pops,
    /// peeks, and lengths through the transition.
    #[test]
    fn hybrid_spill_is_invisible_mid_run() {
        let mut q = Scheduler::with_spill_threshold(16);
        let mut heap = HeapQueue::new();
        let mut state = 0xC0FFEEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let delays = [0u64, 1, 63, 64, 100, 4095, 4096, 262_144, 1 << 24, 1 << 37];
        for i in 0..200u64 {
            let d = delays[(rng() % delays.len() as u64) as usize];
            let key = rng() % 4;
            let at = q.now() + d;
            q.schedule_keyed(at, key, i);
            heap.schedule_keyed(at, key, i);
            assert_eq!(q.len(), heap.len());
            assert_eq!(q.peek_time(), heap.peek_time());
            if rng().is_multiple_of(3) {
                assert_eq!(q.pop(), heap.pop());
            }
        }
        loop {
            let (w, h) = (q.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        assert_eq!(q.now(), heap.now());
    }
}
