//! Deterministic discrete-event core: a time-ordered event queue.
//!
//! Events at equal timestamps are delivered in insertion order (a strictly
//! increasing sequence number breaks ties), which makes every simulation in
//! this workspace reproducible bit-for-bit for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type Time = u64;

pub const MILLIS: Time = 1_000_000;
pub const SECONDS: Time = 1_000_000_000;

struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it clamps to now.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {} < {}", at, self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
    }

    /// Schedule `event` after a delay relative to now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_at(10, ());
        q.schedule_at(25, ());
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), 25);
    }

    #[test]
    fn schedule_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        assert_eq!(q.pop(), Some((150, 2)));
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        // Property-style: pseudo-random schedule offsets never violate
        // monotonicity.
        let mut q = EventQueue::new();
        let mut state = 12345u64;
        q.schedule_at(0, 0u64);
        let mut popped = 0;
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if popped > 1000 {
                break;
            }
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if popped < 500 {
                q.schedule_in(state % 100, popped);
                if state.is_multiple_of(3) {
                    q.schedule_in(0, popped + 1000);
                }
            }
        }
        assert!(popped >= 500);
    }
}
