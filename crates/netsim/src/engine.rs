//! Deterministic discrete-event core: a time-ordered event queue.
//!
//! Events at equal timestamps are delivered by ascending *order key*, then
//! by insertion order (a strictly increasing sequence number breaks the
//! remaining ties). Plain [`EventQueue::schedule_at`] uses key 0 for every
//! event, which degenerates to pure insertion-order ties — the classic
//! single-queue behavior. [`EventQueue::schedule_keyed`] lets a simulation
//! attach a *content-derived* key (e.g. packed from node id and port) so
//! that same-timestamp delivery order is a function of the events
//! themselves rather than of when they were inserted. That property is what
//! allows a sharded runtime (`tpp-fabric`) to replay the exact same
//! tie-break decisions as the single-threaded simulator: per-shard queues
//! cannot reproduce global insertion order, but they *can* reproduce keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type Time = u64;

pub const MILLIS: Time = 1_000_000;
pub const SECONDS: Time = 1_000_000_000;

struct Entry<E> {
    time: Time,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.key, other.seq).cmp(&(self.time, self.key, self.seq))
    }
}

/// A deterministic event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics in debug builds; in release it clamps to now.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        self.schedule_keyed(at, 0, event);
    }

    /// Schedule `event` at `at` with an explicit same-timestamp order key:
    /// ties are broken by `(key, insertion order)`. Keys must be derived
    /// from event *content* if the schedule is to be reproducible across
    /// differently-partitioned runs (see module docs). The time-travel
    /// guard applies: `at < now` panics in debug builds and clamps to `now`
    /// in release builds, so a queue can never silently reorder the past.
    pub fn schedule_keyed(&mut self, at: Time, key: u64, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {} < {}", at, self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, key, seq, event });
    }

    /// Schedule `event` after a delay relative to now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.schedule_at(10, ());
        q.schedule_at(25, ());
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), 25);
    }

    #[test]
    fn keys_order_same_timestamp_events() {
        let mut q = EventQueue::new();
        q.schedule_keyed(10, 3, "c");
        q.schedule_keyed(10, 1, "a");
        q.schedule_keyed(10, 2, "b");
        q.schedule_keyed(5, 9, "first"); // earlier time wins over any key
        assert_eq!(q.pop(), Some((5, "first")));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule_keyed(7, 42, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    /// The time-travel guard: a shard-local queue must never silently
    /// reorder the past. Debug builds panic; release builds clamp to `now`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn schedule_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "later");
        q.pop(); // now == 100
        q.schedule_at(99, "earlier");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn schedule_into_the_past_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "later");
        q.pop(); // now == 100
        q.schedule_at(99, "earlier");
        assert_eq!(q.pop(), Some((100, "earlier")));
    }

    #[test]
    fn schedule_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop();
        q.schedule_in(50, 2);
        assert_eq!(q.pop(), Some((150, 2)));
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        // Property-style: pseudo-random schedule offsets never violate
        // monotonicity.
        let mut q = EventQueue::new();
        let mut state = 12345u64;
        q.schedule_at(0, 0u64);
        let mut popped = 0;
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
            if popped > 1000 {
                break;
            }
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if popped < 500 {
                q.schedule_in(state % 100, popped);
                if state.is_multiple_of(3) {
                    q.schedule_in(0, popped + 1000);
                }
            }
        }
        assert!(popped >= 500);
    }
}
