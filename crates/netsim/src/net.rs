//! The simulated network: switches, hosts, links, and the event loop.
//!
//! The model is deliberately explicit (smoltcp-style simplicity):
//!
//! * Every packet is a real Ethernet frame (`Vec<u8>`); switches and hosts
//!   parse and rewrite actual bytes, so the full wire-format code path is
//!   exercised on every hop.
//! * A link connects two `(node, port)` endpoints full-duplex, with a rate
//!   and a propagation delay. A transmitter serializes one frame at a time
//!   at link rate.
//! * Switch queues live inside [`tpp_switch::Switch`] so TPPs observe them;
//!   hosts have a simple NIC queue.
//! * Fault injection per link: random drop and corruption probabilities
//!   (the smoltcp examples' `--drop-chance` / `--corrupt-chance`).
//!
//! # The network as a shard kernel
//!
//! `Network` doubles as the single-shard kernel of the `tpp-fabric`
//! parallel runtime. Three properties make one kernel serve both roles:
//!
//! * **Content-keyed event ordering** — same-timestamp events are ordered
//!   by a key packed from `(kind, node, port/token)`, never by insertion
//!   order, so a per-shard queue breaks ties exactly like the global one.
//! * **Per-link fault streams** — every `(node, port)` transmitter owns an
//!   independent RNG seeded from `(network seed, node, port)`. Drop and
//!   corruption draws depend only on the order of frames through that one
//!   link, which sharding preserves, not on global event interleaving.
//! * **Remote peers** — a node slot can be a `NodeKind::Remote` marker
//!   (see [`Network::split`]). Frames transmitted toward a remote peer are
//!   diverted into an *outbox* of [`RemoteFrame`]s instead of the local
//!   event queue; the fabric routes them to the owning shard, which
//!   re-injects them with [`Network::inject_remote`].

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::engine::{EventQueue, Time, MILLIS};
use tpp_core::wire::{EthernetAddress, Ipv4Address};
use tpp_switch::{ReceiveOutcome, Switch, SwitchConfig};

/// Identifies a node (switch or host) in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// SplitMix64 finalizer: the workspace's standard cheap bit mixer.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice (frame contents feed the trace digest).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A freelist of retired frame buffers, shared by the whole simulation.
///
/// Every packet is a real `Vec<u8>`; buffers normally move end to end
/// without copying, but they *die* at many points — link-fault drops,
/// switch drops (queue overflow, no route, TTL, malformed), host NIC-limit
/// drops, and application sinks that consume a delivered frame. The pool
/// collects those carcasses (bounded) and hands them back out via
/// [`FramePool::get`] / [`HostCtx::take_buf`] so multi-hop simulations stop
/// round-tripping the allocator for a fresh `Vec<u8>` on every such event.
/// In a sharded run each shard owns its own pool, preserving the
/// zero-allocation steady state without cross-core contention.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<Vec<u8>>,
    /// Buffers handed back out instead of freshly allocated.
    pub recycled: u64,
    /// `get()` calls that had to allocate because the pool was empty.
    pub misses: u64,
}

impl FramePool {
    /// Retained buffers are capped; beyond this they free normally.
    const MAX_RETAINED: usize = 1024;

    /// A cleared buffer, recycled when possible.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                self.recycled += 1;
                b
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a spent buffer to the pool.
    pub fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < Self::MAX_RETAINED {
            self.free.push(buf);
        }
    }

    /// Buffers currently available for reuse.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// The interface hosts implement to participate in the simulation.
///
/// Hosts are woken by frame arrivals and timers; they act through
/// [`HostCtx`]. Implementations live in `tpp-endhost` and `tpp-apps`.
/// `Send` is a supertrait so the same application runs unchanged on the
/// single-threaded [`Network`] loop and on a `tpp-fabric` shard thread.
pub trait HostApp: Send {
    /// Called once before the first event is processed.
    fn start(&mut self, _ctx: &mut HostCtx<'_>) {}
    /// A frame arrived at the host NIC.
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: Vec<u8>) {}
    /// A timer set via [`HostCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _token: u64) {}
    /// Escape hatch for experiment drivers to inspect app state after (or
    /// during) a run.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A no-op application (e.g. a pure sink).
pub struct NullApp;
impl HostApp for NullApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// What a host can do when woken.
pub struct HostCtx<'a> {
    pub now: Time,
    pub node: NodeId,
    pub ip: Ipv4Address,
    pub mac: EthernetAddress,
    effects: &'a mut Vec<Effect>,
    pool: &'a mut FramePool,
}

enum Effect {
    Send(Vec<u8>),
    Timer { at: Time, token: u64 },
}

impl HostCtx<'_> {
    /// Queue a frame for transmission on the host NIC.
    pub fn send(&mut self, frame: Vec<u8>) {
        self.effects.push(Effect::Send(frame));
    }
    /// Request a timer callback at `now + delay`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.effects.push(Effect::Timer { at: self.now + delay, token });
    }
    /// Request a timer callback at an absolute time.
    pub fn set_timer_at(&mut self, at: Time, token: u64) {
        self.effects.push(Effect::Timer { at: at.max(self.now), token });
    }
    /// A cleared, possibly recycled buffer for building a frame to
    /// [`send`](HostCtx::send).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.get()
    }
    /// Hand a fully consumed frame back to the simulation's frame pool.
    pub fn recycle(&mut self, frame: Vec<u8>) {
        self.pool.put(frame);
    }
}

/// A host: one NIC, one application.
pub struct Host {
    pub id: NodeId,
    pub ip: Ipv4Address,
    pub mac: EthernetAddress,
    pub app: Box<dyn HostApp>,
    nic_queue: VecDeque<Vec<u8>>,
    nic_queued_bytes: usize,
    /// NIC queue limit; beyond this the host drops locally.
    pub nic_limit_bytes: usize,
    pub tx_frames: u64,
    pub rx_frames: u64,
    pub nic_drops: u64,
    started: bool,
}

/// What occupies a node slot: a local switch, a local host, or a marker
/// that the node lives in another shard of a partitioned run.
enum NodeKind {
    Switch(Box<Switch>),
    Host(Box<Host>),
    Remote,
}

/// Link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    pub rate_mbps: u64,
    pub delay_ns: u64,
    /// Probability a frame is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability one byte of the frame is flipped in flight.
    pub corrupt_prob: f64,
}

impl LinkSpec {
    pub fn new(rate_mbps: u64, delay_ns: u64) -> Self {
        LinkSpec { rate_mbps, delay_ns, drop_prob: 0.0, corrupt_prob: 0.0 }
    }
}

#[derive(Clone, Debug)]
struct Port {
    peer: (NodeId, u8),
    spec: LinkSpec,
    busy: bool,
    /// Fault-injection stream for this transmitter. Keyed to the link end,
    /// not the network, so draws depend only on the order of frames through
    /// this port — a property sharding preserves.
    rng: StdRng,
    /// Frames handed to this transmitter so far: a per-link total order
    /// carried on [`RemoteFrame`]s for deterministic cross-shard replay.
    tx_seq: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Frame fully received at `(node, port)`.
    Arrive {
        node: NodeId,
        port: u8,
    },
    /// Transmitter at `(node, port)` finished serializing a frame.
    TxDone {
        node: NodeId,
        port: u8,
    },
    /// Try to start transmitting on `(node, port)` (pipeline-latency kick).
    Kick {
        node: NodeId,
        port: u8,
    },
    HostTimer {
        node: NodeId,
        token: u64,
    },
    UtilTick,
}

/// Deterministic same-timestamp ordering key (see [`EventQueue`] docs):
/// packed from event content so per-shard queues reproduce the global
/// tie-break order. Layout: `kind:6 | node:32 | sub:26`. Utilization ticks
/// sort first at a boundary, then arrivals, transmit completions, kicks,
/// and host timers.
fn ev_key(ev: &Ev) -> u64 {
    const fn pack(kind: u64, node: u32, sub: u64) -> u64 {
        (kind << 58) | ((node as u64) << 26) | (sub & 0x03FF_FFFF)
    }
    match *ev {
        Ev::UtilTick => 0,
        Ev::Arrive { node, port } => pack(1, node.0, port as u64),
        Ev::TxDone { node, port } => pack(2, node.0, port as u64),
        Ev::Kick { node, port } => pack(3, node.0, port as u64),
        Ev::HostTimer { node, token } => pack(4, node.0, token),
    }
}

/// A frame crossing a shard boundary: transmitted locally, due to arrive at
/// a node owned by another shard. Produced by the kernel into its outbox
/// ([`Network::take_outbox`]); consumed by [`Network::inject_remote`] on
/// the owning shard after the fabric sorts each epoch batch by
/// `(at, node, port, seq)`.
#[derive(Debug)]
pub struct RemoteFrame {
    /// Absolute arrival time (transmit end + propagation delay).
    pub at: Time,
    /// Destination node (owned by another shard).
    pub node: NodeId,
    /// Destination port on that node.
    pub port: u8,
    /// Per-sender-port transmit sequence: total order of frames on the link.
    pub seq: u64,
    pub frame: Vec<u8>,
}

/// Aggregate statistics of a finished run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    pub frames_delivered: u64,
    pub frames_dropped_in_flight: u64,
    pub frames_corrupted: u64,
    pub events_processed: u64,
    /// Order-independent trace accumulator: a wrapping sum of one strong
    /// mix per frame arrival, folding in the arrival time, the receiving
    /// `(node, port)`, and an FNV-1a hash of the full frame bytes. Because
    /// wrapping addition is commutative and associative, shards can fold
    /// arrivals in any interleaving and still merge to the exact value the
    /// single-threaded run produces — while any difference in a timestamp,
    /// a route, or a single payload byte (e.g. a TPP result word) changes
    /// the sum.
    pub trace: u64,
}

impl NetStats {
    /// Fold one frame arrival into the commutative trace. The tag is
    /// mixed through SplitMix64 before combining so every node-id bit is
    /// load-bearing (a plain shift would discard high bits at k=64 scale).
    fn observe_arrival(&mut self, now: Time, node: NodeId, port: u8, frame: &[u8]) {
        let tag = ((node.0 as u64) << 8) | port as u64;
        let h = fnv1a(frame) ^ splitmix64(now ^ splitmix64(tag));
        self.trace = self.trace.wrapping_add(splitmix64(h));
    }

    /// Digest of the run for differential testing: covers delivery, drop,
    /// and corruption counts plus the [`trace`](NetStats::trace)
    /// accumulator. `events_processed` is deliberately excluded — it counts
    /// per-queue bookkeeping (each shard schedules its own utilization
    /// ticks), which differs across partitionings without any difference
    /// in simulated behavior.
    pub fn digest(&self) -> u64 {
        let mut h = 0x9AE1_6A3B_2F90_404Fu64;
        for v in [
            self.frames_delivered,
            self.frames_dropped_in_flight,
            self.frames_corrupted,
            self.trace,
        ] {
            h = splitmix64(h ^ v);
        }
        h
    }

    /// Accumulate another shard's statistics into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.frames_delivered += other.frames_delivered;
        self.frames_dropped_in_flight += other.frames_dropped_in_flight;
        self.frames_corrupted += other.frames_corrupted;
        self.events_processed += other.events_processed;
        self.trace = self.trace.wrapping_add(other.trace);
    }
}

/// Stream seed for one link transmitter, decorrelated per `(node, port)`.
fn link_stream_seed(seed: u64, node: NodeId, port: u8) -> u64 {
    seed ^ splitmix64(((node.0 as u64) << 8) | port as u64)
}

/// The simulated network (equally: one shard kernel of a partitioned run).
pub struct Network {
    queue: EventQueue<Ev>,
    /// Payloads for Arrive events, per `(node, port)` (kept out of `Ev` so
    /// it stays `Copy`); indexed like `ports`.
    in_flight: Vec<Vec<VecDeque<Vec<u8>>>>,
    nodes: Vec<NodeKind>,
    ports: Vec<Vec<Port>>,
    pub stats: NetStats,
    /// Freelist of retired frame buffers (see [`FramePool`]).
    pub pool: FramePool,
    /// Frames destined to nodes owned by other shards (see [`RemoteFrame`]).
    outbox: Vec<RemoteFrame>,
    seed: u64,
    util_interval: Time,
    util_tick_scheduled: bool,
    hosts_started: bool,
}

impl Network {
    pub fn new(seed: u64) -> Self {
        Network {
            queue: EventQueue::new(),
            in_flight: Vec::new(),
            nodes: Vec::new(),
            ports: Vec::new(),
            stats: NetStats::default(),
            pool: FramePool::default(),
            outbox: Vec::new(),
            seed,
            util_interval: MILLIS,
            util_tick_scheduled: false,
            hosts_started: false,
        }
    }

    pub fn now(&self) -> Time {
        self.queue.now()
    }

    fn schedule_ev(&mut self, at: Time, ev: Ev) {
        self.queue.schedule_keyed(at, ev_key(&ev), ev);
    }

    /// Add a switch; `cfg.n_ports` ports are created up front.
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeKind::Switch(Box::new(Switch::new(cfg))));
        self.ports.push(Vec::new());
        self.in_flight.push(Vec::new());
        id
    }

    /// Add a host with deterministic IP/MAC derived from its node id.
    pub fn add_host(&mut self, app: Box<dyn HostApp>) -> NodeId {
        // A host added mid-run must still get its start() callback.
        self.hosts_started = false;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeKind::Host(Box::new(Host {
            id,
            ip: Ipv4Address::from_host_id(id.0),
            mac: EthernetAddress::from_node_id(id.0),
            app,
            nic_queue: VecDeque::new(),
            nic_queued_bytes: 0,
            nic_limit_bytes: 1 << 20,
            tx_frames: 0,
            rx_frames: 0,
            nic_drops: 0,
            started: false,
        })));
        self.ports.push(Vec::new());
        self.in_flight.push(Vec::new());
        id
    }

    /// Connect two nodes full-duplex; ports are auto-assigned and returned.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (u8, u8) {
        let pa = self.ports[a.0 as usize].len() as u8;
        let pb = self.ports[b.0 as usize].len() as u8;
        self.ports[a.0 as usize].push(Port {
            peer: (b, pb),
            spec,
            busy: false,
            rng: StdRng::seed_from_u64(link_stream_seed(self.seed, a, pa)),
            tx_seq: 0,
        });
        self.ports[b.0 as usize].push(Port {
            peer: (a, pa),
            spec,
            busy: false,
            rng: StdRng::seed_from_u64(link_stream_seed(self.seed, b, pb)),
            tx_seq: 0,
        });
        self.in_flight[a.0 as usize].push(VecDeque::new());
        self.in_flight[b.0 as usize].push(VecDeque::new());
        if let NodeKind::Switch(sw) = &mut self.nodes[a.0 as usize] {
            assert!((pa as usize) < sw.cfg.n_ports, "switch {a:?} has too few ports");
            sw.set_link_speed(pa, spec.rate_mbps as u32);
        }
        if let NodeKind::Switch(sw) = &mut self.nodes[b.0 as usize] {
            assert!((pb as usize) < sw.cfg.n_ports, "switch {b:?} has too few ports");
            sw.set_link_speed(pb, spec.rate_mbps as u32);
        }
        (pa, pb)
    }

    /// Mutable access to a switch (panics if `id` is not a local switch).
    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        match &mut self.nodes[id.0 as usize] {
            NodeKind::Switch(s) => s,
            _ => panic!("{id:?} is not a local switch"),
        }
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0 as usize] {
            NodeKind::Switch(s) => s,
            _ => panic!("{id:?} is not a local switch"),
        }
    }

    pub fn is_switch(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.0 as usize], NodeKind::Switch(_))
    }

    /// Whether this kernel owns `id` (false for `NodeKind::Remote` slots
    /// of a partitioned run).
    pub fn is_local(&self, id: NodeId) -> bool {
        !matches!(self.nodes[id.0 as usize], NodeKind::Remote)
    }

    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0 as usize] {
            NodeKind::Host(h) => h,
            _ => panic!("{id:?} is not a local host"),
        }
    }

    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.0 as usize] {
            NodeKind::Host(h) => h,
            _ => panic!("{id:?} is not a local host"),
        }
    }

    /// Replace a host's application (topology builders install `NullApp`).
    pub fn set_app(&mut self, id: NodeId, app: Box<dyn HostApp>) {
        let h = self.host_mut(id);
        h.app = app;
        h.started = false;
        self.hosts_started = false;
    }

    /// Downcast a host's application for result extraction.
    pub fn app_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.host_mut(id).app.as_any().downcast_mut::<T>().expect("app type mismatch")
    }

    /// Degrade a link (both directions) for failure-injection experiments.
    /// In a partitioned run this must happen before [`Network::split`]:
    /// each kernel only updates its own port table.
    pub fn set_link_faults(&mut self, a: NodeId, port_a: u8, drop_prob: f64, corrupt_prob: f64) {
        let (peer, peer_port) = {
            let p = &mut self.ports[a.0 as usize][port_a as usize];
            p.spec.drop_prob = drop_prob;
            p.spec.corrupt_prob = corrupt_prob;
            p.peer
        };
        let back = &mut self.ports[peer.0 as usize][peer_port as usize];
        back.spec.drop_prob = drop_prob;
        back.spec.corrupt_prob = corrupt_prob;
    }

    /// Take a link fully down or up (port status + packets blackholed).
    pub fn set_link_up(&mut self, a: NodeId, port_a: u8, up: bool) {
        let drop = if up { 0.0 } else { 1.0 };
        self.set_link_faults(a, port_a, drop, 0.0);
        let peer = self.ports[a.0 as usize][port_a as usize].peer;
        if let NodeKind::Switch(sw) = &mut self.nodes[a.0 as usize] {
            sw.mem.links[port_a as usize].up = up;
        }
        if let NodeKind::Switch(sw) = &mut self.nodes[peer.0 .0 as usize] {
            sw.mem.links[peer.1 as usize].up = up;
        }
    }

    fn ensure_started(&mut self) {
        if !self.util_tick_scheduled {
            self.util_tick_scheduled = true;
            let at = self.queue.now() + self.util_interval;
            self.schedule_ev(at, Ev::UtilTick);
        }
        if self.hosts_started {
            return;
        }
        self.hosts_started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            let needs_start = match &self.nodes[i] {
                NodeKind::Host(h) => !h.started,
                _ => false,
            };
            if needs_start {
                let mut effects = Vec::new();
                {
                    let NodeKind::Host(h) = &mut self.nodes[i] else { unreachable!() };
                    h.started = true;
                    let mut ctx = HostCtx {
                        now: self.queue.now(),
                        node,
                        ip: h.ip,
                        mac: h.mac,
                        effects: &mut effects,
                        pool: &mut self.pool,
                    };
                    h.app.start(&mut ctx);
                }
                self.apply_effects(node, effects);
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Send(frame) => self.host_enqueue(node, frame),
                Effect::Timer { at, token } => self.schedule_ev(at, Ev::HostTimer { node, token }),
            }
        }
    }

    fn host_enqueue(&mut self, node: NodeId, frame: Vec<u8>) {
        let len = frame.len();
        {
            let NodeKind::Host(h) = &mut self.nodes[node.0 as usize] else {
                panic!("send from non-host")
            };
            if h.nic_queued_bytes + len > h.nic_limit_bytes {
                h.nic_drops += 1;
                self.pool.put(frame);
                return;
            }
            h.nic_queue.push_back(frame);
            h.nic_queued_bytes += len;
        }
        self.try_start_tx(node, 0);
    }

    /// If the transmitter at `(node, port)` is idle and a frame is waiting,
    /// start serializing it.
    fn try_start_tx(&mut self, node: NodeId, port: u8) {
        if self.ports[node.0 as usize].get(port as usize).is_none() {
            return; // unconnected port: blackhole
        }
        if self.ports[node.0 as usize][port as usize].busy {
            return;
        }
        let now = self.queue.now();
        let frame = match &mut self.nodes[node.0 as usize] {
            NodeKind::Switch(sw) => sw.dequeue(now, port),
            NodeKind::Host(h) => {
                let f = h.nic_queue.pop_front();
                if let Some(fr) = &f {
                    h.nic_queued_bytes -= fr.len();
                    h.tx_frames += 1;
                }
                f
            }
            NodeKind::Remote => panic!("transmit from remote node {node:?}"),
        };
        let Some(mut frame) = frame else { return };

        // Fault injection happens "on the wire", drawn from the
        // transmitter's own stream (see [`Port::rng`]).
        let (spec, peer, tx_seq, dropped, corrupt) = {
            let p = &mut self.ports[node.0 as usize][port as usize];
            p.busy = true;
            let spec = p.spec;
            let dropped = spec.drop_prob > 0.0 && p.rng.random::<f64>() < spec.drop_prob;
            let corrupt =
                if !dropped && spec.corrupt_prob > 0.0 && p.rng.random::<f64>() < spec.corrupt_prob
                {
                    Some((p.rng.random_range(0..frame.len()), 1u8 << p.rng.random_range(0..8)))
                } else {
                    None
                };
            let seq = p.tx_seq;
            p.tx_seq += 1;
            (spec, p.peer, seq, dropped, corrupt)
        };
        let tx_ns = frame.len() as u64 * 8 * 1000 / spec.rate_mbps; // bytes*8 / (Mbps) in ns
        self.schedule_ev(now + tx_ns, Ev::TxDone { node, port });

        if dropped {
            self.stats.frames_dropped_in_flight += 1;
            self.pool.put(frame);
            return;
        }
        if let Some((idx, bit)) = corrupt {
            frame[idx] ^= bit;
            self.stats.frames_corrupted += 1;
        }
        let arrive_at = now + tx_ns + spec.delay_ns;
        if matches!(self.nodes[peer.0 .0 as usize], NodeKind::Remote) {
            self.outbox.push(RemoteFrame {
                at: arrive_at,
                node: peer.0,
                port: peer.1,
                seq: tx_seq,
                frame,
            });
        } else {
            self.in_flight[peer.0 .0 as usize][peer.1 as usize].push_back(frame);
            self.schedule_ev(arrive_at, Ev::Arrive { node: peer.0, port: peer.1 });
        }
    }

    /// Frames transmitted toward remote peers since the last call. The
    /// caller (the fabric) routes them to the owning shards at an epoch
    /// barrier.
    pub fn take_outbox(&mut self) -> Vec<RemoteFrame> {
        std::mem::take(&mut self.outbox)
    }

    /// Accept a frame routed from another shard. `f.at` must not precede
    /// this kernel's clock — guaranteed by the fabric's conservative
    /// lookahead window (and enforced by the event queue's time-travel
    /// guard).
    pub fn inject_remote(&mut self, f: RemoteFrame) {
        self.in_flight[f.node.0 as usize][f.port as usize].push_back(f.frame);
        self.schedule_ev(f.at, Ev::Arrive { node: f.node, port: f.port });
    }

    fn handle_arrive(&mut self, node: NodeId, port: u8) {
        let Some(frame) = self.in_flight[node.0 as usize][port as usize].pop_front() else {
            return;
        };
        self.stats.frames_delivered += 1;
        let now = self.queue.now();
        self.stats.observe_arrival(now, node, port, &frame);
        match &mut self.nodes[node.0 as usize] {
            NodeKind::Switch(sw) => {
                match sw.receive(now, port, frame) {
                    ReceiveOutcome::Enqueued { port: out, proc_latency_ns, .. } => {
                        // The pipeline needs proc_latency before the frame is
                        // eligible for transmission.
                        self.schedule_ev(now + proc_latency_ns, Ev::Kick { node, port: out });
                    }
                    ReceiveOutcome::Dropped(_) => {
                        // The switch parks dropped frame buffers; reclaim
                        // them into the shared pool.
                        while let Some(buf) = sw.take_retired() {
                            self.pool.put(buf);
                        }
                    }
                }
            }
            NodeKind::Host(h) => {
                h.rx_frames += 1;
                let mut effects = Vec::new();
                {
                    let mut ctx = HostCtx {
                        now,
                        node,
                        ip: h.ip,
                        mac: h.mac,
                        effects: &mut effects,
                        pool: &mut self.pool,
                    };
                    h.app.on_frame(&mut ctx, frame);
                }
                self.apply_effects(node, effects);
            }
            NodeKind::Remote => panic!("arrival at remote node {node:?}"),
        }
    }

    fn handle_timer(&mut self, node: NodeId, token: u64) {
        let now = self.queue.now();
        let mut effects = Vec::new();
        {
            let NodeKind::Host(h) = &mut self.nodes[node.0 as usize] else { return };
            let mut ctx = HostCtx {
                now,
                node,
                ip: h.ip,
                mac: h.mac,
                effects: &mut effects,
                pool: &mut self.pool,
            };
            h.app.on_timer(&mut ctx, token);
        }
        self.apply_effects(node, effects);
    }

    /// Run until `until` (ns) or until no events remain.
    pub fn run_until(&mut self, until: Time) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (_, ev) = self.queue.pop().unwrap();
            self.stats.events_processed += 1;
            match ev {
                Ev::Arrive { node, port } => self.handle_arrive(node, port),
                Ev::TxDone { node, port } => {
                    self.ports[node.0 as usize][port as usize].busy = false;
                    self.try_start_tx(node, port);
                }
                Ev::Kick { node, port } => self.try_start_tx(node, port),
                Ev::HostTimer { node, token } => self.handle_timer(node, token),
                Ev::UtilTick => {
                    let now = self.queue.now();
                    for n in &mut self.nodes {
                        if let NodeKind::Switch(sw) = n {
                            sw.tick(now);
                        }
                    }
                    let at = now + self.util_interval;
                    self.schedule_ev(at, Ev::UtilTick);
                }
            }
        }
    }

    /// Run for `dur` more nanoseconds, measured from the *last processed
    /// event's* timestamp (`now()`), which may trail the previous
    /// `run_until` target. `Fabric::run_for` measures from the barrier
    /// time instead — drive differential comparisons with `run_until` and
    /// absolute times.
    pub fn run_for(&mut self, dur: Time) {
        let until = self.now() + dur;
        self.run_until(until);
    }

    /// Number of hosts and switches (including remote slots in a shard).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adjacency of a node: `(local port, peer node)` per link.
    pub fn neighbors(&self, node: NodeId) -> Vec<(u8, NodeId)> {
        self.ports[node.0 as usize]
            .iter()
            .enumerate()
            .map(|(p, port)| (p as u8, port.peer.0))
            .collect()
    }

    /// Every directed link: `(node, port, peer, peer_port, spec)`. Used by
    /// the fabric partitioner (lookahead = min cross-shard delay).
    pub fn links(&self) -> Vec<(NodeId, u8, NodeId, u8, LinkSpec)> {
        let mut out = Vec::new();
        for (n, ports) in self.ports.iter().enumerate() {
            for (p, port) in ports.iter().enumerate() {
                out.push((NodeId(n as u32), p as u8, port.peer.0, port.peer.1, port.spec));
            }
        }
        out
    }

    pub fn switch_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| matches!(self.nodes[n.0 as usize], NodeKind::Switch(_)))
            .collect()
    }

    pub fn host_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| matches!(self.nodes[n.0 as usize], NodeKind::Host(_)))
            .collect()
    }

    /// Partition a freshly built network into per-shard kernels.
    ///
    /// `assignment[node]` names the shard (in `0..n_shards`) that owns each
    /// node. Every shard receives the full port table — link specs, peers,
    /// and fault-RNG streams (only the transmitting side of a port ever
    /// consumes its stream, so the copies never diverge) — plus the nodes
    /// assigned to it; all other slots become remote markers. Panics if the
    /// simulation has already started: partitioning an in-flight run would
    /// lose queued events.
    pub fn split(self, assignment: &[usize], n_shards: usize) -> Vec<Network> {
        assert_eq!(assignment.len(), self.nodes.len(), "assignment must cover every node");
        assert!(
            self.queue.now() == 0
                && self.queue.is_empty()
                && !self.hosts_started
                && !self.util_tick_scheduled,
            "split() must happen before the simulation runs"
        );
        let mut shards: Vec<Network> = (0..n_shards)
            .map(|_| {
                let mut n = Network::new(self.seed);
                n.ports = self.ports.clone();
                n.in_flight = self
                    .ports
                    .iter()
                    .map(|ps| ps.iter().map(|_| VecDeque::new()).collect())
                    .collect();
                n.util_interval = self.util_interval;
                n
            })
            .collect();
        for (i, node) in self.nodes.into_iter().enumerate() {
            let owner = assignment[i];
            assert!(owner < n_shards, "node {i} assigned to out-of-range shard {owner}");
            for net in shards.iter_mut() {
                net.nodes.push(NodeKind::Remote);
            }
            shards[owner].nodes[i] = node;
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use std::sync::{Arc, Mutex};
    use tpp_core::wire::{ethernet, ipv4, udp, EthernetRepr};
    use tpp_switch::Action;

    type ReceivedLog = Arc<Mutex<Vec<(Time, Vec<u8>)>>>;

    /// Sends `count` UDP frames to `dst` at start, records received frames.
    struct Blaster {
        dst_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        count: usize,
        received: ReceivedLog,
    }

    impl HostApp for Blaster {
        fn start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..self.count {
                let u = udp::Repr { src_port: 1000 + i as u16, dst_port: 9, payload_len: 100 };
                let udp_bytes = u.encapsulate(ctx.ip, self.dst_ip, &[0u8; 100]);
                let ip = ipv4::Repr {
                    src: ctx.ip,
                    dst: self.dst_ip,
                    protocol: ipv4::protocol::UDP,
                    ttl: 64,
                    payload_len: udp_bytes.len(),
                };
                let frame = EthernetRepr {
                    dst: self.dst_mac,
                    src: ctx.mac,
                    ethertype: ethernet::ethertype::IPV4,
                }
                .encapsulate(&ip.encapsulate(&udp_bytes));
                ctx.send(frame);
            }
        }
        fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
            self.received.lock().unwrap().push((ctx.now, frame));
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_hosts_one_switch_seeded(
        seed: u64,
        rate_mbps: u64,
        delay_ns: u64,
        count: usize,
    ) -> (Network, ReceivedLog) {
        let mut net = Network::new(seed);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        // Hosts get node ids 1, 2.
        let h1 = net.add_host(Box::new(NullApp));
        let h2 = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(1),
            dst_mac: EthernetAddress::from_node_id(1),
            count,
            received: received.clone(),
        }));
        net.connect(sw, h1, LinkSpec::new(rate_mbps, delay_ns));
        net.connect(sw, h2, LinkSpec::new(rate_mbps, delay_ns));
        let s = net.switch_mut(sw);
        s.add_host_route(Ipv4Address::from_host_id(1), Action::Output(0));
        s.add_host_route(Ipv4Address::from_host_id(2), Action::Output(1));
        // Log arrivals at h1 too.
        net.set_app(
            h1,
            Box::new(Blaster {
                dst_ip: Ipv4Address::from_host_id(2),
                dst_mac: EthernetAddress::from_node_id(2),
                count: 0,
                received: received.clone(),
            }),
        );
        (net, received)
    }

    fn two_hosts_one_switch(rate_mbps: u64, delay_ns: u64, count: usize) -> (Network, ReceivedLog) {
        two_hosts_one_switch_seeded(1, rate_mbps, delay_ns, count)
    }

    #[test]
    fn delivery_across_switch() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 3);
        net.run_until(10 * MILLIS);
        assert_eq!(received.lock().unwrap().len(), 3);
    }

    #[test]
    fn serialization_delay_matches_link_rate() {
        // One 142-byte frame at 100 Mb/s = 11.36 us serialization, twice
        // (host link + switch link), plus 2 x 1 us propagation, plus switch
        // pipeline latency (500ns ASIC profile).
        let (mut net, received) = two_hosts_one_switch(100, 1000, 1);
        net.run_until(100 * MILLIS);
        let log = received.lock().unwrap();
        assert_eq!(log.len(), 1);
        let t = log[0].0;
        let frame_len = log[0].1.len() as u64;
        let ser = frame_len * 8 * 1000 / 100;
        let expected = 2 * ser + 2 * 1000 + 500;
        assert!(t >= expected && t < expected + 2000, "arrival at {t}, expected ~{expected}");
    }

    #[test]
    fn back_to_back_frames_serialize() {
        // 10 frames can't arrive faster than serialization allows.
        let (mut net, received) = two_hosts_one_switch(100, 0, 10);
        net.run_until(1000 * MILLIS);
        let log = received.lock().unwrap();
        assert_eq!(log.len(), 10);
        let frame_len = log[0].1.len() as u64;
        let ser = frame_len * 8 * 1000 / 100;
        for pair in log.windows(2) {
            let gap = pair[1].0 - pair[0].0;
            assert!(gap >= ser, "inter-arrival {gap} < serialization {ser}");
        }
    }

    #[test]
    fn drop_faults_lose_frames() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 200);
        // 100% drop between switch and h1.
        net.set_link_faults(NodeId(0), 0, 1.0, 0.0);
        net.run_until(100 * MILLIS);
        assert_eq!(received.lock().unwrap().len(), 0);
        assert_eq!(net.stats.frames_dropped_in_flight, 200);
    }

    #[test]
    fn corruption_faults_flip_bits() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 100);
        net.set_link_faults(NodeId(0), 0, 0.0, 1.0);
        net.run_until(100 * MILLIS);
        // All frames arrive but each has one flipped bit.
        assert_eq!(net.stats.frames_corrupted, 100);
        assert_eq!(received.lock().unwrap().len(), 100);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let (mut net, received) = two_hosts_one_switch_seeded(seed, 1000, 1000, 50);
            net.set_link_faults(NodeId(0), 0, 0.3, 0.0);
            net.run_until(100 * MILLIS);
            let n_received = received.lock().unwrap().len();
            (net.stats.frames_dropped_in_flight, n_received, net.stats.digest())
        };
        assert_eq!(run(7), run(7));
        // Different seeds draw different fault streams (not guaranteed, but
        // 50 coin flips at p=0.3 colliding exactly is unlikely).
        let (d1, _, _) = run(1);
        assert!(d1 > 0);
    }

    #[test]
    fn digest_tracks_behavior_not_bookkeeping() {
        let run = |seed, count| {
            let (mut net, _received) = two_hosts_one_switch_seeded(seed, 1000, 1000, count);
            net.run_until(100 * MILLIS);
            net.stats
        };
        let a = run(3, 10);
        let b = run(3, 10);
        assert_eq!(a.digest(), b.digest(), "identical runs share a digest");
        let c = run(3, 11);
        assert_ne!(a.digest(), c.digest(), "one extra frame changes the digest");
    }

    #[test]
    fn host_timers_fire_in_order() {
        struct TimerApp {
            log: Arc<Mutex<Vec<(Time, u64)>>>,
        }
        impl HostApp for TimerApp {
            fn start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.set_timer(3000, 3);
                ctx.set_timer(1000, 1);
                ctx.set_timer(2000, 2);
            }
            fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
                self.log.lock().unwrap().push((ctx.now, token));
                if token == 1 {
                    ctx.set_timer(500, 4);
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let h = net.add_host(Box::new(TimerApp { log: log.clone() }));
        let _ = h;
        net.run_until(10 * MILLIS);
        assert_eq!(*log.lock().unwrap(), vec![(1000, 1), (1500, 4), (2000, 2), (3000, 3)]);
    }

    #[test]
    fn nic_queue_limit_drops() {
        let mut net = Network::new(0);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        let sink = net.add_host(Box::new(NullApp));
        let src = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(1),
            dst_mac: EthernetAddress::from_node_id(1),
            count: 20000, // ~2.8MB of frames > 1MB NIC limit
            received: received.clone(),
        }));
        net.connect(sw, sink, LinkSpec::new(10, 0));
        net.connect(sw, src, LinkSpec::new(10, 0));
        net.switch_mut(sw).add_host_route(Ipv4Address::from_host_id(1), Action::Output(0));
        net.run_until(MILLIS);
        assert!(net.host(src).nic_drops > 0);
    }

    #[test]
    fn app_mut_downcast() {
        let mut net = Network::new(0);
        let h = net.add_host(Box::new(NullApp));
        let _: &mut NullApp = net.app_mut::<NullApp>(h);
    }

    #[test]
    fn dropped_frames_are_pooled_for_reuse() {
        // Link faults and switch drops feed buffers back into the pool
        // instead of freeing them.
        let (mut net, _received) = two_hosts_one_switch(1000, 1000, 50);
        net.set_link_faults(NodeId(0), 0, 1.0, 0.0);
        net.run_until(100 * MILLIS);
        assert!(net.stats.frames_dropped_in_flight > 0);
        assert!(!net.pool.is_empty(), "dropped frames must land in the pool");
        let before = net.pool.recycled;
        let buf = net.pool.get();
        assert!(buf.is_empty() && buf.capacity() > 0, "recycled buffer keeps its capacity");
        assert_eq!(net.pool.recycled, before + 1);
    }

    #[test]
    fn switch_drops_reclaimed_into_pool() {
        // No-route drops at the switch are reclaimed via take_retired().
        let mut net = Network::new(3);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        let _sink = net.add_host(Box::new(NullApp));
        let src = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(99), // unrouted destination
            dst_mac: EthernetAddress::from_node_id(99),
            count: 10,
            received: received.clone(),
        }));
        net.connect(sw, _sink, LinkSpec::new(1000, 0));
        net.connect(sw, src, LinkSpec::new(1000, 0));
        net.run_until(10 * MILLIS);
        assert!(!net.pool.is_empty(), "no-route drops must be reclaimed");
    }

    #[test]
    fn host_ctx_take_buf_recycles() {
        struct Recycler {
            took_capacity: Arc<Mutex<usize>>,
        }
        impl HostApp for Recycler {
            fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
                // Consume the frame, hand the buffer back, then take it
                // again for the next send.
                ctx.recycle(frame);
                let buf = ctx.take_buf();
                *self.took_capacity.lock().unwrap() = buf.capacity();
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut net, _received) = two_hosts_one_switch(1000, 1000, 1);
        let cap = Arc::new(Mutex::new(0usize));
        net.set_app(NodeId(1), Box::new(Recycler { took_capacity: cap.clone() }));
        net.run_until(10 * MILLIS);
        assert!(*cap.lock().unwrap() > 0, "take_buf must return the recycled frame's storage");
    }

    #[test]
    fn host_added_mid_run_still_starts() {
        struct Starter {
            started: Arc<Mutex<bool>>,
        }
        impl HostApp for Starter {
            fn start(&mut self, _ctx: &mut HostCtx<'_>) {
                *self.started.lock().unwrap() = true;
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(0);
        let _h0 = net.add_host(Box::new(NullApp));
        net.run_until(MILLIS);
        let started = Arc::new(Mutex::new(false));
        let _h1 = net.add_host(Box::new(Starter { started: started.clone() }));
        net.run_until(2 * MILLIS);
        assert!(*started.lock().unwrap(), "late-added host must still get start()");
    }

    #[test]
    fn split_diverts_cross_shard_frames_into_outbox() {
        // Switch in shard 0, hosts in shard 1: every host transmission must
        // come out of shard 1's outbox as a RemoteFrame for the switch.
        let (net, _received) = two_hosts_one_switch(1000, 1000, 5);
        let shards = net.split(&[0, 1, 1], 2);
        let mut host_shard = shards.into_iter().nth(1).unwrap();
        assert!(!host_shard.is_local(NodeId(0)));
        assert!(host_shard.is_local(NodeId(2)));
        host_shard.run_until(MILLIS);
        let out = host_shard.take_outbox();
        assert_eq!(out.len(), 5, "all blaster frames head for the remote switch");
        assert!(out.iter().all(|f| f.node == NodeId(0)), "destined to the switch");
        // Per-link sequence numbers give a total order on the one link.
        let seqs: Vec<u64> = out.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn inject_remote_delivers_like_a_local_send() {
        // Hand-route the RemoteFrames from the host shard into the switch
        // shard and watch the switch forward them back out (into its own
        // outbox, since the destination host is remote there).
        let (net, _received) = two_hosts_one_switch(1000, 1000, 3);
        let mut shards = net.split(&[0, 1, 1], 2);
        shards[1].run_until(MILLIS);
        let frames = shards[1].take_outbox();
        assert_eq!(frames.len(), 3);
        for f in frames {
            shards[0].inject_remote(f);
        }
        shards[0].run_until(2 * MILLIS);
        let forwarded = shards[0].take_outbox();
        assert_eq!(forwarded.len(), 3, "switch forwarded every frame toward remote h1");
        assert!(forwarded.iter().all(|f| f.node == NodeId(1)));
    }
}
