//! The network coordinator: three layers and the batched event loop.
//!
//! The model is deliberately explicit (smoltcp-style simplicity): every
//! packet is a real Ethernet frame (`Vec<u8>`); switches and hosts parse
//! and rewrite actual bytes, so the full wire-format code path is exercised
//! on every hop.
//!
//! # The three layers
//!
//! [`Network`] itself is a thin coordinator over three explicit layers,
//! each ignorant of the others:
//!
//! * [`Scheduler`] — the hierarchical timing-wheel event queue (see
//!   [`crate::engine`]): time, ordering, and same-timestamp batching.
//! * [`LinkFabric`] — link wiring, rate/delay computation, per-link fault
//!   RNG streams and transmit sequence numbers, and the per-`(node, port)`
//!   in-flight frame batches.
//! * [`NodeStore`] — switches, hosts, remote markers, and the
//!   [`FramePool`] buffer freelist.
//!
//! The coordinator owns only the glue: event dispatch, host effect
//! application, statistics, and the cross-shard outbox. A `tpp-fabric`
//! shard drives the *same* three layers through the same coordinator — a
//! shard kernel is not a different engine, just a `Network` whose node
//! store holds `Remote` markers for non-local slots.
//!
//! # Batched delivery
//!
//! The scheduler drains *all* events sharing a timestamp into a reusable
//! batch buffer in one call ([`Scheduler::pop_batch`]). The coordinator
//! walks the batch in key order and hands maximal runs to batch-aware node
//! entry points: link arrivals targeting the same switch go through
//! [`Switch::receive_batch`] (amortizing clock stores and route lookups
//! across back-to-back frames, like an ASIC pipeline), and transmit
//! completions on the same switch pop their next frames through
//! [`Switch::dequeue_batch`]. Batching is *behavior-invariant*: handlers
//! that schedule new events at the current timestamp are merged back into
//! the key order via [`Scheduler::peek_next`], so the pop sequence — and
//! therefore [`NetStats::digest`] — is bit-identical to the
//! one-event-at-a-time loop.
//!
//! Inside [`Switch::receive_batch`] the same contract governs *execution*
//! batching: only batch-invariant inputs are hoisted out of the per-frame
//! loop — the clock, exec/pipeline options, the route-lookup memo, and the
//! program plan (via the per-switch plan cache, which keys on the exact
//! bytes the planner reads). Everything a TPP can observe changing — queue
//! stats, stage SRAM, flow counters, CSTORE effects — is read and written
//! strictly per frame, in arrival order. [`NetStats`] surfaces the
//! efficacy counters (`rx_batches`, `rx_batch_frames`, `rx_batch_max`,
//! `plan_cache_hits`/`misses`/`evictions`); none of them enter the digest,
//! which pins batched execution bit-identical to sequential.
//!
//! # The network as a shard kernel
//!
//! Three properties make one kernel serve both the single-threaded and the
//! sharded runtime:
//!
//! * **Content-keyed event ordering** — same-timestamp events are ordered
//!   by a key packed from `(kind, node, port/token)`, never by insertion
//!   order, so a per-shard queue breaks ties exactly like the global one.
//! * **Per-link fault streams** — every `(node, port)` transmitter owns an
//!   independent RNG seeded from `(network seed, node, port)`. Drop and
//!   corruption draws depend only on the order of frames through that one
//!   link, which sharding preserves, not on global event interleaving.
//! * **Remote peers** — a node slot can be a remote marker (see
//!   [`Network::split`]). Frames transmitted toward a remote peer are
//!   diverted into an *outbox* of [`RemoteFrame`]s instead of the local
//!   event queue; the fabric routes them to the owning shard, which
//!   re-injects them with [`Network::inject_remote`].

use crate::engine::{Scheduler, Time, MILLIS};
use crate::link::LinkFabric;
use crate::nodes::{NodeKind, NodeStore};
use crate::reconfig::{ReconfigAction, ReconfigPlan};
use tpp_core::wire::{EthernetAddress, Ipv4Address};
use tpp_switch::{DropReason, ReceiveOutcome, Switch, SwitchConfig};

pub use crate::link::LinkSpec;
pub use crate::nodes::{FramePool, Host};

/// Identifies a node (switch or host) in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// `SplitMix64` finalizer: the workspace's standard cheap bit mixer.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice (frame contents feed the trace digest).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The interface hosts implement to participate in the simulation.
///
/// Hosts are woken by frame arrivals and timers; they act through
/// [`HostCtx`]. Implementations live in `tpp-endhost` and `tpp-apps`.
/// `Send` is a supertrait so the same application runs unchanged on the
/// single-threaded [`Network`] loop and on a `tpp-fabric` shard thread.
pub trait HostApp: Send {
    /// Called once before the first event is processed.
    fn start(&mut self, _ctx: &mut HostCtx<'_>) {}
    /// A frame arrived at the host NIC.
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: Vec<u8>) {}
    /// A timer set via [`HostCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _token: u64) {}
    /// Escape hatch for experiment drivers to inspect app state after (or
    /// during) a run.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A no-op application (e.g. a pure sink).
pub struct NullApp;
impl HostApp for NullApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// What a host can do when woken.
pub struct HostCtx<'a> {
    pub now: Time,
    pub node: NodeId,
    pub ip: Ipv4Address,
    pub mac: EthernetAddress,
    effects: &'a mut Vec<Effect>,
    pool: &'a mut FramePool,
}

enum Effect {
    Send(Vec<u8>),
    Timer { at: Time, token: u64 },
    Violation(ViolationKind),
}

/// What a transient-safety monitor observed going wrong during a
/// convergence window (see `tpp_apps::transient`). Recorded into
/// [`NetStats`] via [`HostCtx::record_violation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A probe's packet history visited the same switch twice: a transient
    /// forwarding loop (terminated by the TTL guard in the switch path).
    Loop,
    /// A probe was lost after all retries: traffic blackholed, e.g. by a
    /// withdrawn route.
    Blackhole,
    /// A probe completed over a path outside the allowed set.
    PathConformance,
}

impl HostCtx<'_> {
    /// Queue a frame for transmission on the host NIC.
    pub fn send(&mut self, frame: Vec<u8>) {
        self.effects.push(Effect::Send(frame));
    }
    /// Request a timer callback at `now + delay`.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.effects.push(Effect::Timer { at: self.now + delay, token });
    }
    /// Request a timer callback at an absolute time.
    pub fn set_timer_at(&mut self, at: Time, token: u64) {
        self.effects.push(Effect::Timer { at: at.max(self.now), token });
    }
    /// A cleared, possibly recycled buffer for building a frame to
    /// [`send`](HostCtx::send).
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.get()
    }
    /// Hand a fully consumed frame back to the simulation's frame pool.
    pub fn recycle(&mut self, frame: Vec<u8>) {
        self.pool.put(frame);
    }
    /// Count one transient-safety violation into the run's [`NetStats`].
    /// The full per-violation record stays with the monitoring app; the
    /// aggregate counters make violations visible to scenario drivers and
    /// differential tests without downcasting app state.
    pub fn record_violation(&mut self, kind: ViolationKind) {
        self.effects.push(Effect::Violation(kind));
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Frame fully received at `(node, port)`.
    Arrive {
        node: NodeId,
        port: u8,
    },
    /// Transmitter at `(node, port)` finished serializing a frame.
    TxDone {
        node: NodeId,
        port: u8,
    },
    /// Try to start transmitting on `(node, port)` (pipeline-latency kick).
    Kick {
        node: NodeId,
        port: u8,
    },
    HostTimer {
        node: NodeId,
        token: u64,
    },
    UtilTick,
    /// Apply entry `idx` of the reconfiguration plan.
    Reconfig {
        idx: u32,
    },
}

/// Deterministic same-timestamp ordering key (see
/// [`Scheduler`](crate::engine::Scheduler) docs): packed from event content
/// so per-shard queues reproduce the global tie-break order. Layout:
/// `kind:6 | node:32 | sub:26`. Utilization ticks sort first at a boundary,
/// then arrivals, transmit completions, kicks, and host timers. A welcome
/// side effect of key order: all arrivals for one switch are *adjacent* in
/// a same-timestamp batch, ports ascending — exactly the shape
/// [`Switch::receive_batch`] wants.
fn ev_key(ev: &Ev) -> u64 {
    const fn pack(kind: u64, node: u32, sub: u64) -> u64 {
        (kind << 58) | ((node as u64) << 26) | (sub & 0x03FF_FFFF)
    }
    match *ev {
        Ev::UtilTick => 0,
        // Reconfigurations share the utilization tick's kind space: at a
        // boundary they apply after the tick but before any frame arrival,
        // in plan order — the same position on every shard, since the plan
        // is replicated data.
        Ev::Reconfig { idx } => (idx as u64 + 1) & 0x03FF_FFFF,
        Ev::Arrive { node, port } => pack(1, node.0, port as u64),
        Ev::TxDone { node, port } => pack(2, node.0, port as u64),
        Ev::Kick { node, port } => pack(3, node.0, port as u64),
        Ev::HostTimer { node, token } => pack(4, node.0, token),
    }
}

/// A frame crossing a shard boundary: transmitted locally, due to arrive at
/// a node owned by another shard. Produced by the kernel into its outbox
/// ([`Network::take_outbox`]); consumed by [`Network::inject_remote`] on
/// the owning shard after the fabric sorts each epoch batch by
/// `(at, node, port, seq)`.
#[derive(Debug)]
pub struct RemoteFrame {
    /// Absolute arrival time (transmit end + propagation delay).
    pub at: Time,
    /// Destination node (owned by another shard).
    pub node: NodeId,
    /// Destination port on that node.
    pub port: u8,
    /// Per-sender-port transmit sequence: total order of frames on the link.
    pub seq: u64,
    pub frame: Vec<u8>,
}

/// Aggregate statistics of a finished run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    pub frames_delivered: u64,
    pub frames_dropped_in_flight: u64,
    pub frames_corrupted: u64,
    pub events_processed: u64,
    /// Frame-pool occupancy (buffers retained for reuse) as of the last
    /// `run_until` return; summed across shards by [`NetStats::merge`].
    pub pool_retained: u64,
    /// Reconfiguration-plan entries applied. Route entries apply once (on
    /// the owning shard); link entries apply on every shard (each holds the
    /// full port table), so like `events_processed` this is bookkeeping
    /// that varies with the partitioning and stays out of the digest.
    pub reconfigs_applied: u64,
    /// Switch guard drops by cause (behavior, not bookkeeping: the merged
    /// counts are partitioning-invariant, asserted by the churn
    /// differential suite). Transient loops terminated by the TTL guard.
    pub drops_ttl_expired: u64,
    /// Blackhole drops: no route for the destination (e.g. withdrawn).
    pub drops_no_route: u64,
    /// Drop-tail queue overflow.
    pub drops_queue_full: u64,
    /// Unparseable frames (e.g. fault-corrupted beyond recognition).
    pub drops_malformed: u64,
    /// Explicit drop actions (policy).
    pub drops_policy: u64,
    /// Transient-monitor violations recorded via
    /// [`HostCtx::record_violation`]: forwarding loops observed in packet
    /// histories.
    pub violations_loop: u64,
    /// Probes lost after all retries (blackholed traffic).
    pub violations_blackhole: u64,
    /// Probes completing over paths outside the allowed set.
    pub violations_path: u64,
    /// Delivery batches executed through `Switch::receive_batch`. Like
    /// `events_processed`, batching geometry varies with the partitioning
    /// (shards split co-timed arrivals), so these stay out of the digest.
    pub rx_batches: u64,
    /// Total frames delivered through those batches (so the mean batch
    /// size is `rx_batch_frames / rx_batches`).
    pub rx_batch_frames: u64,
    /// Largest single delivery batch observed ([`NetStats::merge`] takes
    /// the max across shards).
    pub rx_batch_max: u64,
    /// TPP plan-cache hits summed over every switch, snapshotted when
    /// `run_until` returns (same convention as `pool_retained`). Hit/miss
    /// totals are bookkeeping — a hit returns a byte-identical plan — so
    /// they stay out of the digest.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (fresh plans), summed over every switch.
    pub plan_cache_misses: u64,
    /// Plan-cache evictions (bounded-capacity overwrites), summed over
    /// every switch.
    pub plan_cache_evictions: u64,
    /// Order-independent trace accumulator: a wrapping sum of one strong
    /// mix per frame arrival, folding in the arrival time, the receiving
    /// `(node, port)`, and an FNV-1a hash of the full frame bytes. Because
    /// wrapping addition is commutative and associative, shards can fold
    /// arrivals in any interleaving and still merge to the exact value the
    /// single-threaded run produces — while any difference in a timestamp,
    /// a route, or a single payload byte (e.g. a TPP result word) changes
    /// the sum.
    pub trace: u64,
}

impl NetStats {
    /// Fold one frame arrival into the commutative trace. The tag is
    /// mixed through `SplitMix64` before combining so every node-id bit is
    /// load-bearing (a plain shift would discard high bits at k=64 scale).
    fn observe_arrival(&mut self, now: Time, node: NodeId, port: u8, frame: &[u8]) {
        let tag = ((node.0 as u64) << 8) | port as u64;
        let h = fnv1a(frame) ^ splitmix64(now ^ splitmix64(tag));
        self.trace = self.trace.wrapping_add(splitmix64(h));
    }

    /// Digest of the run for differential testing: covers delivery, drop,
    /// and corruption counts plus the [`trace`](NetStats::trace)
    /// accumulator. `events_processed`, `pool_retained`, and
    /// `reconfigs_applied` are deliberately excluded — they count
    /// per-queue, per-pool, and per-shard bookkeeping, which differs
    /// across partitionings without any difference in simulated behavior.
    /// The per-cause drop and violation counters are also excluded to keep
    /// historical golden digests valid; they *are* partitioning-invariant,
    /// and the churn differential suite asserts them equal directly.
    pub fn digest(&self) -> u64 {
        let mut h = 0x9AE1_6A3B_2F90_404Fu64;
        for v in [
            self.frames_delivered,
            self.frames_dropped_in_flight,
            self.frames_corrupted,
            self.trace,
        ] {
            h = splitmix64(h ^ v);
        }
        h
    }

    /// Accumulate another shard's statistics into this one.
    pub fn merge(&mut self, other: &NetStats) {
        self.frames_delivered += other.frames_delivered;
        self.frames_dropped_in_flight += other.frames_dropped_in_flight;
        self.frames_corrupted += other.frames_corrupted;
        self.events_processed += other.events_processed;
        self.pool_retained += other.pool_retained;
        self.reconfigs_applied += other.reconfigs_applied;
        self.drops_ttl_expired += other.drops_ttl_expired;
        self.drops_no_route += other.drops_no_route;
        self.drops_queue_full += other.drops_queue_full;
        self.drops_malformed += other.drops_malformed;
        self.drops_policy += other.drops_policy;
        self.violations_loop += other.violations_loop;
        self.violations_blackhole += other.violations_blackhole;
        self.violations_path += other.violations_path;
        self.rx_batches += other.rx_batches;
        self.rx_batch_frames += other.rx_batch_frames;
        self.rx_batch_max = self.rx_batch_max.max(other.rx_batch_max);
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_cache_evictions += other.plan_cache_evictions;
        self.trace = self.trace.wrapping_add(other.trace);
    }

    /// Attribute one switch guard drop to its cause counter.
    fn count_switch_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::TtlExpired => self.drops_ttl_expired += 1,
            DropReason::NoRoute => self.drops_no_route += 1,
            DropReason::QueueFull => self.drops_queue_full += 1,
            DropReason::Malformed => self.drops_malformed += 1,
            DropReason::Policy => self.drops_policy += 1,
        }
    }

    /// Attribute one monitor violation to its kind counter.
    fn count_violation(&mut self, kind: ViolationKind) {
        match kind {
            ViolationKind::Loop => self.violations_loop += 1,
            ViolationKind::Blackhole => self.violations_blackhole += 1,
            ViolationKind::PathConformance => self.violations_path += 1,
        }
    }

    /// Total switch guard drops across all causes.
    pub fn switch_drops(&self) -> u64 {
        self.drops_ttl_expired
            + self.drops_no_route
            + self.drops_queue_full
            + self.drops_malformed
            + self.drops_policy
    }

    /// Total transient-monitor violations across all kinds.
    pub fn violations(&self) -> u64 {
        self.violations_loop + self.violations_blackhole + self.violations_path
    }
}

/// Above this link rate a minimum-size frame could serialize in under a
/// nanosecond, letting a transmit completion chain more same-timestamp
/// work whose keys fall *inside* a batched dequeue run. Such links (well
/// beyond any profile the experiments use) take the single-event path,
/// where the [`Scheduler::peek_next`] merge preserves exact order.
const BATCH_SAFE_RATE_MBPS: u64 = 100_000;

/// The simulated network (equally: one shard kernel of a partitioned run):
/// a thin coordinator over the scheduler, link, and node layers.
pub struct Network {
    scheduler: Scheduler<Ev>,
    links: LinkFabric,
    nodes: NodeStore,
    pub stats: NetStats,
    /// Frames destined to nodes owned by other shards (see [`RemoteFrame`]).
    outbox: Vec<RemoteFrame>,
    util_interval: Time,
    util_tick_scheduled: bool,
    hosts_started: bool,
    /// The reconfiguration plan: timed route/link changes carried as data
    /// (cloned into every shard by [`Network::split`]) and scheduled as
    /// events when the run starts.
    reconfig_plan: ReconfigPlan,
    /// Plan entries already turned into scheduled events.
    reconfigs_scheduled: usize,
    /// Reusable buffers for the batched delivery loop.
    batch: Vec<(u64, Ev)>,
    rx_frames: Vec<(u8, Vec<u8>)>,
    rx_outcomes: Vec<ReceiveOutcome>,
    deq_ports: Vec<u8>,
    deq_frames: Vec<(u8, Vec<u8>)>,
}

impl Network {
    pub fn new(seed: u64) -> Self {
        Network {
            scheduler: Scheduler::new(),
            links: LinkFabric::new(seed),
            nodes: NodeStore::default(),
            stats: NetStats::default(),
            outbox: Vec::new(),
            util_interval: MILLIS,
            util_tick_scheduled: false,
            hosts_started: false,
            reconfig_plan: Vec::new(),
            reconfigs_scheduled: 0,
            batch: Vec::new(),
            rx_frames: Vec::new(),
            rx_outcomes: Vec::new(),
            deq_ports: Vec::new(),
            deq_frames: Vec::new(),
        }
    }

    pub fn now(&self) -> Time {
        self.scheduler.now()
    }

    /// The link layer (read-only): wiring, specs, fault parameters.
    pub fn link_fabric(&self) -> &LinkFabric {
        &self.links
    }

    /// The node layer (read-only): switches, hosts, pool.
    pub fn node_store(&self) -> &NodeStore {
        &self.nodes
    }

    /// The shared frame pool (see [`FramePool`]).
    pub fn pool(&self) -> &FramePool {
        &self.nodes.pool
    }

    pub fn pool_mut(&mut self) -> &mut FramePool {
        &mut self.nodes.pool
    }

    /// Events currently pending in the scheduler layer.
    pub fn pending_events(&self) -> usize {
        self.scheduler.len()
    }

    fn schedule_ev(&mut self, at: Time, ev: Ev) {
        self.scheduler.schedule_keyed(at, ev_key(&ev), ev);
    }

    /// Add a switch; `cfg.n_ports` ports are created up front.
    pub fn add_switch(&mut self, cfg: SwitchConfig) -> NodeId {
        self.links.add_node();
        self.nodes.add_switch(cfg)
    }

    /// Add a host with deterministic IP/MAC derived from its node id.
    pub fn add_host(&mut self, app: Box<dyn HostApp>) -> NodeId {
        // A host added mid-run must still get its start() callback.
        self.hosts_started = false;
        self.links.add_node();
        self.nodes.add_host(app)
    }

    /// Connect two nodes full-duplex; ports are auto-assigned and returned.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (u8, u8) {
        let (pa, pb) = self.links.connect(a, b, spec);
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(a) {
            assert!((pa as usize) < sw.cfg.n_ports, "switch {a:?} has too few ports");
            sw.set_link_speed(pa, spec.rate_mbps as u32);
        }
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(b) {
            assert!((pb as usize) < sw.cfg.n_ports, "switch {b:?} has too few ports");
            sw.set_link_speed(pb, spec.rate_mbps as u32);
        }
        (pa, pb)
    }

    /// Mutable access to a switch (panics if `id` is not a local switch).
    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        self.nodes.switch_mut(id)
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        self.nodes.switch(id)
    }

    pub fn is_switch(&self, id: NodeId) -> bool {
        self.nodes.is_switch(id)
    }

    /// Whether this kernel owns `id` (false for remote slots of a
    /// partitioned run).
    pub fn is_local(&self, id: NodeId) -> bool {
        self.nodes.is_local(id)
    }

    pub fn host(&self, id: NodeId) -> &Host {
        self.nodes.host(id)
    }

    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        self.nodes.host_mut(id)
    }

    /// Replace a host's application (topology builders install `NullApp`).
    pub fn set_app(&mut self, id: NodeId, app: Box<dyn HostApp>) {
        let h = self.nodes.host_mut(id);
        h.app = app;
        h.started = false;
        self.hosts_started = false;
    }

    /// Downcast a host's application for result extraction.
    pub fn app_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes.host_mut(id).app.as_any().downcast_mut::<T>().expect("app type mismatch")
    }

    /// Cap the frame pool's retained-buffer count (see
    /// [`FramePool::set_high_water`]).
    pub fn set_pool_high_water(&mut self, high_water: usize) {
        self.nodes.pool.set_high_water(high_water);
    }

    /// Degrade a link (both directions) for failure-injection experiments.
    /// In a partitioned run this must happen before [`Network::split`]:
    /// each kernel only updates its own port table.
    pub fn set_link_faults(&mut self, a: NodeId, port_a: u8, drop_prob: f64, corrupt_prob: f64) {
        self.links.set_faults(a, port_a, drop_prob, corrupt_prob);
    }

    /// Take a link fully down or up (port status + packets blackholed).
    pub fn set_link_up(&mut self, a: NodeId, port_a: u8, up: bool) {
        let drop = if up { 0.0 } else { 1.0 };
        let (peer, peer_port) = self.links.set_faults(a, port_a, drop, 0.0);
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(a) {
            sw.mem.links[port_a as usize].up = up;
        }
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(peer) {
            sw.mem.links[peer_port as usize].up = up;
        }
    }

    /// Change the rate/delay of a link (both directions), mirroring the new
    /// speed into the endpoint switches' memory maps. A frame already on
    /// the wire keeps its scheduled timing; the profile applies from the
    /// next transmit.
    pub fn set_link_profile(&mut self, a: NodeId, port_a: u8, rate_mbps: u64, delay_ns: Time) {
        let (peer, peer_port) = self.links.set_profile(a, port_a, rate_mbps, delay_ns);
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(a) {
            sw.set_link_speed(port_a, rate_mbps as u32);
        }
        if let NodeKind::Switch(sw) = self.nodes.kind_mut(peer) {
            sw.set_link_speed(peer_port, rate_mbps as u32);
        }
    }

    /// Schedule a reconfiguration to apply at absolute time `at` (clamped
    /// to the clock if in the past). The plan is data until the run starts:
    /// [`Network::split`] clones it into every shard, each of which
    /// schedules the entries it must apply — route changes on the shard
    /// owning the switch, link changes everywhere (every shard carries the
    /// full port table). At a time boundary reconfigurations apply after
    /// the utilization tick and before any frame arrival, in plan order,
    /// on every shard alike — which is what keeps churn scenarios
    /// digest-equal across shard counts.
    pub fn schedule_reconfig(&mut self, at: Time, action: ReconfigAction) {
        self.reconfig_plan.push((at, action));
    }

    /// The installed reconfiguration plan (the fabric folds planned
    /// cross-shard delay reductions into its conservative lookahead).
    pub fn reconfig_plan(&self) -> &[(Time, ReconfigAction)] {
        &self.reconfig_plan
    }

    /// Whether this kernel must schedule plan entry `action` (see
    /// [`Network::schedule_reconfig`]).
    fn reconfig_is_local(&self, action: &ReconfigAction) -> bool {
        match *action {
            ReconfigAction::RouteSet { switch, .. }
            | ReconfigAction::RouteWithdraw { switch, .. } => self.nodes.is_local(switch),
            ReconfigAction::LinkUp { .. }
            | ReconfigAction::LinkDegrade { .. }
            | ReconfigAction::LinkFaults { .. } => true,
        }
    }

    /// Apply plan entry `idx` now.
    fn handle_reconfig(&mut self, idx: u32) {
        let (_, action) = self.reconfig_plan[idx as usize].clone();
        match action {
            ReconfigAction::RouteSet { switch, dst, action } => {
                self.nodes.switch_mut(switch).add_host_route(dst, action);
            }
            ReconfigAction::RouteWithdraw { switch, dst } => {
                self.nodes.switch_mut(switch).remove_host_route(dst);
            }
            ReconfigAction::LinkUp { node, port, up } => self.set_link_up(node, port, up),
            ReconfigAction::LinkDegrade { node, port, rate_mbps, delay_ns } => {
                self.set_link_profile(node, port, rate_mbps, delay_ns);
            }
            ReconfigAction::LinkFaults { node, port, drop_prob, corrupt_prob } => {
                self.set_link_faults(node, port, drop_prob, corrupt_prob);
            }
        }
        self.stats.reconfigs_applied += 1;
    }

    fn ensure_started(&mut self) {
        if !self.util_tick_scheduled {
            self.util_tick_scheduled = true;
            let at = self.scheduler.now() + self.util_interval;
            self.schedule_ev(at, Ev::UtilTick);
        }
        // Turn any plan entries added since the last run into events (this
        // kernel's slice only; see `schedule_reconfig`).
        while self.reconfigs_scheduled < self.reconfig_plan.len() {
            let idx = self.reconfigs_scheduled;
            self.reconfigs_scheduled += 1;
            let (at, ref action) = self.reconfig_plan[idx];
            if self.reconfig_is_local(action) {
                let at = at.max(self.scheduler.now());
                self.schedule_ev(at, Ev::Reconfig { idx: idx as u32 });
            }
        }
        if self.hosts_started {
            return;
        }
        self.hosts_started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            let needs_start = match self.nodes.kind(node) {
                NodeKind::Host(h) => !h.started,
                _ => false,
            };
            if needs_start {
                let mut effects = Vec::new();
                {
                    let (kind, pool) = self.nodes.kind_and_pool_mut(node);
                    let NodeKind::Host(h) = kind else { unreachable!() };
                    h.started = true;
                    let mut ctx = HostCtx {
                        now: self.scheduler.now(),
                        node,
                        ip: h.ip,
                        mac: h.mac,
                        effects: &mut effects,
                        pool,
                    };
                    h.app.start(&mut ctx);
                }
                self.apply_effects(node, effects);
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Send(frame) => self.host_enqueue(node, frame),
                Effect::Timer { at, token } => self.schedule_ev(at, Ev::HostTimer { node, token }),
                Effect::Violation(kind) => self.stats.count_violation(kind),
            }
        }
    }

    fn host_enqueue(&mut self, node: NodeId, frame: Vec<u8>) {
        let len = frame.len();
        {
            let NodeKind::Host(h) = self.nodes.kind_mut(node) else { panic!("send from non-host") };
            if h.nic_queued_bytes + len > h.nic_limit_bytes {
                h.nic_drops += 1;
                self.nodes.pool.put(frame);
                return;
            }
            h.nic_queue.push_back(frame);
            h.nic_queued_bytes += len;
        }
        self.try_start_tx(node, 0);
    }

    /// If the transmitter at `(node, port)` is idle and a frame is waiting,
    /// start serializing it.
    fn try_start_tx(&mut self, node: NodeId, port: u8) {
        if !self.links.is_connected(node, port) {
            return; // unconnected port: blackhole
        }
        if self.links.is_busy(node, port) {
            return;
        }
        let now = self.scheduler.now();
        let frame = match self.nodes.kind_mut(node) {
            NodeKind::Switch(sw) => sw.dequeue(now, port),
            NodeKind::Host(h) => {
                let f = h.nic_queue.pop_front();
                if let Some(fr) = &f {
                    h.nic_queued_bytes -= fr.len();
                    h.tx_frames += 1;
                }
                f
            }
            NodeKind::Remote => panic!("transmit from remote node {node:?}"),
        };
        let Some(frame) = frame else { return };
        self.launch_frame(now, node, port, frame);
    }

    /// Commit a dequeued frame to the wire: fault draws and delay
    /// computation live in the link layer; the coordinator schedules the
    /// resulting events and routes remote-bound frames to the outbox.
    fn launch_frame(&mut self, now: Time, node: NodeId, port: u8, mut frame: Vec<u8>) {
        let tx = self.links.transmit(now, node, port, frame.len());
        self.schedule_ev(tx.tx_done_at, Ev::TxDone { node, port });

        if tx.dropped {
            self.stats.frames_dropped_in_flight += 1;
            self.nodes.pool.put(frame);
            return;
        }
        if let Some((idx, bit)) = tx.corrupt {
            frame[idx] ^= bit;
            self.stats.frames_corrupted += 1;
        }
        let (peer, peer_port) = tx.peer;
        if !self.nodes.is_local(peer) {
            self.outbox.push(RemoteFrame {
                at: tx.arrive_at,
                node: peer,
                port: peer_port,
                seq: tx.seq,
                frame,
            });
        } else {
            self.links.push_in_flight(peer, peer_port, frame);
            self.schedule_ev(tx.arrive_at, Ev::Arrive { node: peer, port: peer_port });
        }
    }

    /// Frames transmitted toward remote peers since the last call. The
    /// caller (the fabric) routes them to the owning shards at an epoch
    /// barrier.
    pub fn take_outbox(&mut self) -> Vec<RemoteFrame> {
        std::mem::take(&mut self.outbox)
    }

    /// Accept a frame routed from another shard. `f.at` must not precede
    /// this kernel's clock — guaranteed by the fabric's conservative
    /// lookahead window (and enforced by the event queue's time-travel
    /// guard).
    pub fn inject_remote(&mut self, f: RemoteFrame) {
        self.links.push_in_flight(f.node, f.port, f.frame);
        self.schedule_ev(f.at, Ev::Arrive { node: f.node, port: f.port });
    }

    fn handle_arrive(&mut self, node: NodeId, port: u8) {
        let Some(frame) = self.links.pop_in_flight(node, port) else {
            return;
        };
        self.stats.frames_delivered += 1;
        let now = self.scheduler.now();
        self.stats.observe_arrival(now, node, port, &frame);
        let (kind, pool) = self.nodes.kind_and_pool_mut(node);
        match kind {
            NodeKind::Switch(sw) => {
                match sw.receive(now, port, frame) {
                    ReceiveOutcome::Enqueued { port: out, proc_latency_ns, .. } => {
                        // The pipeline needs proc_latency before the frame is
                        // eligible for transmission.
                        self.schedule_ev(now + proc_latency_ns, Ev::Kick { node, port: out });
                    }
                    ReceiveOutcome::Dropped(reason) => {
                        self.stats.count_switch_drop(reason);
                        // The switch parks dropped frame buffers; reclaim
                        // them into the shared pool.
                        while let Some(buf) = sw.take_retired() {
                            pool.put(buf);
                        }
                    }
                }
            }
            NodeKind::Host(h) => {
                h.rx_frames += 1;
                let mut effects = Vec::new();
                {
                    let mut ctx =
                        HostCtx { now, node, ip: h.ip, mac: h.mac, effects: &mut effects, pool };
                    h.app.on_frame(&mut ctx, frame);
                }
                self.apply_effects(node, effects);
            }
            NodeKind::Remote => panic!("arrival at remote node {node:?}"),
        }
    }

    fn handle_timer(&mut self, node: NodeId, token: u64) {
        let now = self.scheduler.now();
        let mut effects = Vec::new();
        {
            let (kind, pool) = self.nodes.kind_and_pool_mut(node);
            let NodeKind::Host(h) = kind else { return };
            let mut ctx = HostCtx { now, node, ip: h.ip, mac: h.mac, effects: &mut effects, pool };
            h.app.on_timer(&mut ctx, token);
        }
        self.apply_effects(node, effects);
    }

    /// Dispatch one event the classic way (the non-batched path: host
    /// events, util ticks, and anything the batch segmenter opts out of).
    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive { node, port } => self.handle_arrive(node, port),
            Ev::TxDone { node, port } => {
                self.links.clear_busy(node, port);
                self.try_start_tx(node, port);
            }
            Ev::Kick { node, port } => self.try_start_tx(node, port),
            Ev::HostTimer { node, token } => self.handle_timer(node, token),
            Ev::Reconfig { idx } => self.handle_reconfig(idx),
            Ev::UtilTick => {
                let now = self.scheduler.now();
                for n in &mut self.nodes.nodes {
                    if let NodeKind::Switch(sw) = n {
                        sw.tick(now);
                    }
                }
                let at = now + self.util_interval;
                self.schedule_ev(at, Ev::UtilTick);
            }
        }
    }

    /// Deliver a run of same-timestamp arrivals to one switch through
    /// [`Switch::receive_batch`], then schedule the pipeline kicks in the
    /// same order the one-at-a-time loop would have.
    fn deliver_switch_batch(&mut self, t: Time, node: NodeId, events: &[(u64, Ev)]) {
        let mut frames = std::mem::take(&mut self.rx_frames);
        let mut outcomes = std::mem::take(&mut self.rx_outcomes);
        frames.clear();
        outcomes.clear();
        for &(_, ev) in events {
            let Ev::Arrive { port, .. } = ev else { unreachable!("segmenter produced non-arrive") };
            if let Some(frame) = self.links.pop_in_flight(node, port) {
                self.stats.frames_delivered += 1;
                self.stats.observe_arrival(t, node, port, &frame);
                frames.push((port, frame));
            }
        }
        if !frames.is_empty() {
            self.stats.rx_batches += 1;
            self.stats.rx_batch_frames += frames.len() as u64;
            self.stats.rx_batch_max = self.stats.rx_batch_max.max(frames.len() as u64);
        }
        let mut any_drop = false;
        {
            let sw = self.nodes.switch_mut(node);
            sw.receive_batch(t, &mut frames, &mut outcomes);
        }
        for oc in &outcomes {
            match *oc {
                ReceiveOutcome::Enqueued { port: out, proc_latency_ns, .. } => {
                    self.schedule_ev(t + proc_latency_ns, Ev::Kick { node, port: out });
                }
                ReceiveOutcome::Dropped(reason) => {
                    self.stats.count_switch_drop(reason);
                    any_drop = true;
                }
            }
        }
        if any_drop {
            let (kind, pool) = self.nodes.kind_and_pool_mut(node);
            let NodeKind::Switch(sw) = kind else { unreachable!("segmenter checked is_switch") };
            while let Some(buf) = sw.take_retired() {
                pool.put(buf);
            }
        }
        self.rx_frames = frames;
        self.rx_outcomes = outcomes;
    }

    /// Handle a run of same-timestamp transmit completions (or kicks) on
    /// one switch: free the transmitters, pop the next frame of every
    /// ready port through [`Switch::dequeue_batch`], and put each on the
    /// wire in port order — the exact sequence the one-at-a-time loop
    /// produces, since the events arrived key-sorted by port.
    fn txdone_switch_batch(&mut self, t: Time, node: NodeId, events: &[(u64, Ev)], tx_done: bool) {
        let mut ports = std::mem::take(&mut self.deq_ports);
        ports.clear();
        for &(_, ev) in events {
            let port = match ev {
                Ev::TxDone { port, .. } if tx_done => {
                    self.links.clear_busy(node, port);
                    port
                }
                Ev::Kick { port, .. } if !tx_done => port,
                _ => unreachable!("segmenter produced a mixed run"),
            };
            // Duplicate kicks for one port are adjacent (key-sorted): only
            // the first can win the transmitter, exactly like the
            // one-at-a-time loop where the second kick finds the port busy.
            if ports.last() == Some(&port) {
                continue;
            }
            if self.links.is_connected(node, port) && !self.links.is_busy(node, port) {
                ports.push(port);
            }
        }
        let mut frames = std::mem::take(&mut self.deq_frames);
        frames.clear();
        self.nodes.switch_mut(node).dequeue_batch(t, &ports, &mut frames);
        for (port, frame) in frames.drain(..) {
            self.launch_frame(t, node, port, frame);
        }
        self.deq_ports = ports;
        self.deq_frames = frames;
    }

    /// Whether every port in a prospective dequeue run serializes even a
    /// minimum-size frame in ≥ 1 ns (see [`BATCH_SAFE_RATE_MBPS`]).
    fn dequeue_batch_safe(&self, node: NodeId, events: &[(u64, Ev)]) -> bool {
        events.iter().all(|&(_, ev)| match ev {
            Ev::TxDone { port, .. } | Ev::Kick { port, .. } => {
                !self.links.is_connected(node, port)
                    || self.links.spec(node, port).rate_mbps <= BATCH_SAFE_RATE_MBPS
            }
            _ => true,
        })
    }

    /// Process one same-timestamp batch in exact heap order: maximal
    /// same-switch runs go through the batch entry points; everything else
    /// dispatches singly. Handlers scheduling *new* events at `t` are
    /// merged back in by key via [`Scheduler::peek_next`].
    fn process_batch_at(&mut self, t: Time, batch: &[(u64, Ev)]) {
        let mut i = 0;
        // Merge checks are only needed once a handler has actually
        // scheduled at `t` (the insert-at-now counter moves); the common
        // all-future-work case pays nothing.
        let mut mark = self.scheduler.now_insert_marks();
        while i < batch.len() {
            if self.scheduler.now_insert_marks() != mark {
                loop {
                    match self.scheduler.peek_next() {
                        Some((pt, pk)) if pt == t && pk < batch[i].0 => {
                            let (_, ev) = self.scheduler.pop().unwrap();
                            self.stats.events_processed += 1;
                            self.handle_event(ev);
                        }
                        // Still events pending at `t` with keys at or past
                        // the cursor: leave the mark dirty so later batch
                        // items keep checking.
                        Some((pt, _)) if pt == t => break,
                        _ => {
                            mark = self.scheduler.now_insert_marks();
                            break;
                        }
                    }
                }
            }
            let run_end = |kind_match: &dyn Fn(&Ev) -> bool| {
                let mut j = i + 1;
                while j < batch.len() && kind_match(&batch[j].1) {
                    j += 1;
                }
                j
            };
            match batch[i].1 {
                Ev::Arrive { node, .. } if self.nodes.is_switch(node) => {
                    let j = run_end(&|ev| matches!(*ev, Ev::Arrive { node: n, .. } if n == node));
                    self.deliver_switch_batch(t, node, &batch[i..j]);
                    i = j;
                }
                Ev::TxDone { node, .. } if self.nodes.is_switch(node) => {
                    let j = run_end(&|ev| matches!(*ev, Ev::TxDone { node: n, .. } if n == node));
                    if self.dequeue_batch_safe(node, &batch[i..j]) {
                        self.txdone_switch_batch(t, node, &batch[i..j], true);
                        i = j;
                    } else {
                        self.handle_event(batch[i].1);
                        i += 1;
                    }
                }
                Ev::Kick { node, .. } if self.nodes.is_switch(node) => {
                    let j = run_end(&|ev| matches!(*ev, Ev::Kick { node: n, .. } if n == node));
                    // A zero-base-latency pipeline lets an arrival merged
                    // mid-run schedule a kick at the *current* timestamp,
                    // whose key can fall inside this run's span — only the
                    // single-event path (merge check before every event)
                    // reproduces heap order then. With base latency > 0
                    // such kicks always land at a later timestamp.
                    let kicks_at_now_possible =
                        self.nodes.switch(node).cfg.cost.base_latency_ns == 0;
                    if !kicks_at_now_possible && self.dequeue_batch_safe(node, &batch[i..j]) {
                        self.txdone_switch_batch(t, node, &batch[i..j], false);
                        i = j;
                    } else {
                        self.handle_event(batch[i].1);
                        i += 1;
                    }
                }
                ev => {
                    self.handle_event(ev);
                    i += 1;
                }
            }
        }
    }

    /// Run until `until` (ns) or until no events remain.
    pub fn run_until(&mut self, until: Time) {
        self.ensure_started();
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(t) = self.scheduler.peek_time() {
            if t > until {
                break;
            }
            batch.clear();
            self.scheduler.pop_batch(&mut batch);
            self.stats.events_processed += batch.len() as u64;
            self.process_batch_at(t, &batch);
        }
        self.batch = batch;
        self.stats.pool_retained = self.nodes.pool.len() as u64;
        // Snapshot plan-cache totals across this kernel's switches (remote
        // shard slots hold no switch, so fabric-wide sums stay correct).
        let mut hits = 0;
        let mut misses = 0;
        let mut evictions = 0;
        for n in &self.nodes.nodes {
            if let NodeKind::Switch(sw) = n {
                let s = sw.plan_cache_stats();
                hits += s.hits;
                misses += s.misses;
                evictions += s.evictions;
            }
        }
        self.stats.plan_cache_hits = hits;
        self.stats.plan_cache_misses = misses;
        self.stats.plan_cache_evictions = evictions;
    }

    /// Run for `dur` more nanoseconds, measured from the *last processed
    /// event's* timestamp (`now()`), which may trail the previous
    /// `run_until` target. `Fabric::run_for` measures from the barrier
    /// time instead — drive differential comparisons with `run_until` and
    /// absolute times.
    pub fn run_for(&mut self, dur: Time) {
        let until = self.now() + dur;
        self.run_until(until);
    }

    /// Number of hosts and switches (including remote slots in a shard).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adjacency of a node, allocation-free: `(local port, peer node)` per
    /// link. Prefer this on hot paths (BFS route setup, partitioning); the
    /// [`Network::neighbors`] `Vec` form remains for tests and one-shot
    /// topology inspection.
    pub fn neighbors_iter(&self, node: NodeId) -> impl Iterator<Item = (u8, NodeId)> + '_ {
        self.links.neighbors(node)
    }

    /// Adjacency of a node: `(local port, peer node)` per link.
    pub fn neighbors(&self, node: NodeId) -> Vec<(u8, NodeId)> {
        self.neighbors_iter(node).collect()
    }

    /// Every directed link, allocation-free:
    /// `(node, port, peer, peer_port, spec)`. Used by the fabric
    /// partitioner (lookahead = min cross-shard delay).
    pub fn links_iter(&self) -> impl Iterator<Item = (NodeId, u8, NodeId, u8, LinkSpec)> + '_ {
        self.links.links()
    }

    /// Every directed link, as a `Vec` (tests / topology setup).
    pub fn links(&self) -> Vec<(NodeId, u8, NodeId, u8, LinkSpec)> {
        self.links_iter().collect()
    }

    pub fn switch_ids(&self) -> Vec<NodeId> {
        self.nodes.switch_ids().collect()
    }

    pub fn host_ids(&self) -> Vec<NodeId> {
        self.nodes.host_ids().collect()
    }

    /// Partition a freshly built network into per-shard kernels.
    ///
    /// `assignment[node]` names the shard (in `0..n_shards`) that owns each
    /// node. Every shard receives the full link layer — specs, peers, and
    /// fault-RNG streams (only the transmitting side of a port ever
    /// consumes its stream, so the copies never diverge) — plus the nodes
    /// assigned to it; all other slots become remote markers. Panics if the
    /// simulation has already started: partitioning an in-flight run would
    /// lose queued events.
    pub fn split(self, assignment: &[usize], n_shards: usize) -> Vec<Network> {
        assert_eq!(assignment.len(), self.nodes.len(), "assignment must cover every node");
        assert!(
            self.scheduler.now() == 0
                && self.scheduler.is_empty()
                && !self.hosts_started
                && !self.util_tick_scheduled,
            "split() must happen before the simulation runs"
        );
        debug_assert_eq!(self.reconfigs_scheduled, 0, "plan entries scheduled before split");
        let mut shards: Vec<Network> = (0..n_shards)
            .map(|_| {
                let mut n = Network::new(self.links.seed());
                n.links = self.links.split_clone();
                n.util_interval = self.util_interval;
                n.nodes.pool.set_high_water(self.nodes.pool.high_water());
                // The full plan travels to every shard; each schedules only
                // the entries it must apply (see `schedule_reconfig`).
                n.reconfig_plan = self.reconfig_plan.clone();
                n
            })
            .collect();
        for (i, node) in self.nodes.into_nodes().into_iter().enumerate() {
            let owner = assignment[i];
            assert!(owner < n_shards, "node {i} assigned to out-of-range shard {owner}");
            for net in shards.iter_mut() {
                net.nodes.push_remote();
            }
            shards[owner].nodes.nodes[i] = node;
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use std::sync::{Arc, Mutex};
    use tpp_core::wire::{ethernet, ipv4, udp, EthernetRepr};
    use tpp_switch::Action;

    type ReceivedLog = Arc<Mutex<Vec<(Time, Vec<u8>)>>>;

    /// Sends `count` UDP frames to `dst` at start, records received frames.
    struct Blaster {
        dst_ip: Ipv4Address,
        dst_mac: EthernetAddress,
        count: usize,
        received: ReceivedLog,
    }

    impl HostApp for Blaster {
        fn start(&mut self, ctx: &mut HostCtx<'_>) {
            for i in 0..self.count {
                let u = udp::Repr { src_port: 1000 + i as u16, dst_port: 9, payload_len: 100 };
                let udp_bytes = u.encapsulate(ctx.ip, self.dst_ip, &[0u8; 100]);
                let ip = ipv4::Repr {
                    src: ctx.ip,
                    dst: self.dst_ip,
                    protocol: ipv4::protocol::UDP,
                    ttl: 64,
                    payload_len: udp_bytes.len(),
                };
                let frame = EthernetRepr {
                    dst: self.dst_mac,
                    src: ctx.mac,
                    ethertype: ethernet::ethertype::IPV4,
                }
                .encapsulate(&ip.encapsulate(&udp_bytes));
                ctx.send(frame);
            }
        }
        fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
            self.received.lock().unwrap().push((ctx.now, frame));
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_hosts_one_switch_seeded(
        seed: u64,
        rate_mbps: u64,
        delay_ns: u64,
        count: usize,
    ) -> (Network, ReceivedLog) {
        let mut net = Network::new(seed);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        // Hosts get node ids 1, 2.
        let h1 = net.add_host(Box::new(NullApp));
        let h2 = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(1),
            dst_mac: EthernetAddress::from_node_id(1),
            count,
            received: received.clone(),
        }));
        net.connect(sw, h1, LinkSpec::new(rate_mbps, delay_ns));
        net.connect(sw, h2, LinkSpec::new(rate_mbps, delay_ns));
        let s = net.switch_mut(sw);
        s.add_host_route(Ipv4Address::from_host_id(1), Action::Output(0));
        s.add_host_route(Ipv4Address::from_host_id(2), Action::Output(1));
        // Log arrivals at h1 too.
        net.set_app(
            h1,
            Box::new(Blaster {
                dst_ip: Ipv4Address::from_host_id(2),
                dst_mac: EthernetAddress::from_node_id(2),
                count: 0,
                received: received.clone(),
            }),
        );
        (net, received)
    }

    fn two_hosts_one_switch(rate_mbps: u64, delay_ns: u64, count: usize) -> (Network, ReceivedLog) {
        two_hosts_one_switch_seeded(1, rate_mbps, delay_ns, count)
    }

    #[test]
    fn delivery_across_switch() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 3);
        net.run_until(10 * MILLIS);
        assert_eq!(received.lock().unwrap().len(), 3);
    }

    #[test]
    fn serialization_delay_matches_link_rate() {
        // One 142-byte frame at 100 Mb/s = 11.36 us serialization, twice
        // (host link + switch link), plus 2 x 1 us propagation, plus switch
        // pipeline latency (500ns ASIC profile).
        let (mut net, received) = two_hosts_one_switch(100, 1000, 1);
        net.run_until(100 * MILLIS);
        let log = received.lock().unwrap();
        assert_eq!(log.len(), 1);
        let t = log[0].0;
        let frame_len = log[0].1.len() as u64;
        let ser = frame_len * 8 * 1000 / 100;
        let expected = 2 * ser + 2 * 1000 + 500;
        assert!(t >= expected && t < expected + 2000, "arrival at {t}, expected ~{expected}");
    }

    #[test]
    fn back_to_back_frames_serialize() {
        // 10 frames can't arrive faster than serialization allows.
        let (mut net, received) = two_hosts_one_switch(100, 0, 10);
        net.run_until(1000 * MILLIS);
        let log = received.lock().unwrap();
        assert_eq!(log.len(), 10);
        let frame_len = log[0].1.len() as u64;
        let ser = frame_len * 8 * 1000 / 100;
        for pair in log.windows(2) {
            let gap = pair[1].0 - pair[0].0;
            assert!(gap >= ser, "inter-arrival {gap} < serialization {ser}");
        }
    }

    #[test]
    fn drop_faults_lose_frames() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 200);
        // 100% drop between switch and h1.
        net.set_link_faults(NodeId(0), 0, 1.0, 0.0);
        net.run_until(100 * MILLIS);
        assert_eq!(received.lock().unwrap().len(), 0);
        assert_eq!(net.stats.frames_dropped_in_flight, 200);
    }

    #[test]
    fn corruption_faults_flip_bits() {
        let (mut net, received) = two_hosts_one_switch(1000, 1000, 100);
        net.set_link_faults(NodeId(0), 0, 0.0, 1.0);
        net.run_until(100 * MILLIS);
        // All frames arrive but each has one flipped bit.
        assert_eq!(net.stats.frames_corrupted, 100);
        assert_eq!(received.lock().unwrap().len(), 100);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let (mut net, received) = two_hosts_one_switch_seeded(seed, 1000, 1000, 50);
            net.set_link_faults(NodeId(0), 0, 0.3, 0.0);
            net.run_until(100 * MILLIS);
            let n_received = received.lock().unwrap().len();
            (net.stats.frames_dropped_in_flight, n_received, net.stats.digest())
        };
        assert_eq!(run(7), run(7));
        // Different seeds draw different fault streams (not guaranteed, but
        // 50 coin flips at p=0.3 colliding exactly is unlikely).
        let (d1, _, _) = run(1);
        assert!(d1 > 0);
    }

    #[test]
    fn digest_tracks_behavior_not_bookkeeping() {
        let run = |seed, count| {
            let (mut net, _received) = two_hosts_one_switch_seeded(seed, 1000, 1000, count);
            net.run_until(100 * MILLIS);
            net.stats
        };
        let a = run(3, 10);
        let b = run(3, 10);
        assert_eq!(a.digest(), b.digest(), "identical runs share a digest");
        let c = run(3, 11);
        assert_ne!(a.digest(), c.digest(), "one extra frame changes the digest");
    }

    #[test]
    fn host_timers_fire_in_order() {
        struct TimerApp {
            log: Arc<Mutex<Vec<(Time, u64)>>>,
        }
        impl HostApp for TimerApp {
            fn start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.set_timer(3000, 3);
                ctx.set_timer(1000, 1);
                ctx.set_timer(2000, 2);
            }
            fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
                self.log.lock().unwrap().push((ctx.now, token));
                if token == 1 {
                    ctx.set_timer(500, 4);
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let h = net.add_host(Box::new(TimerApp { log: log.clone() }));
        let _ = h;
        net.run_until(10 * MILLIS);
        assert_eq!(*log.lock().unwrap(), vec![(1000, 1), (1500, 4), (2000, 2), (3000, 3)]);
    }

    #[test]
    fn zero_delay_timer_chains_preserve_key_order() {
        // A timer handler scheduling another timer at delay 0 exercises the
        // same-timestamp merge path: the new event must still fire at the
        // current timestamp, after the already-pending events of that
        // timestamp with smaller keys.
        struct ChainApp {
            log: Arc<Mutex<Vec<(Time, u64)>>>,
        }
        impl HostApp for ChainApp {
            fn start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.set_timer(1000, 1);
                ctx.set_timer(1000, 5);
            }
            fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
                self.log.lock().unwrap().push((ctx.now, token));
                if token == 1 {
                    // Key (kind=timer, node, 3) sorts between tokens 1 and 5:
                    // must fire *before* the staged token-5 event.
                    ctx.set_timer(0, 3);
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let _h = net.add_host(Box::new(ChainApp { log: log.clone() }));
        net.run_until(10 * MILLIS);
        assert_eq!(*log.lock().unwrap(), vec![(1000, 1), (1000, 3), (1000, 5)]);
    }

    #[test]
    fn nic_queue_limit_drops() {
        let mut net = Network::new(0);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        let sink = net.add_host(Box::new(NullApp));
        let src = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(1),
            dst_mac: EthernetAddress::from_node_id(1),
            count: 20000, // ~2.8MB of frames > 1MB NIC limit
            received: received.clone(),
        }));
        net.connect(sw, sink, LinkSpec::new(10, 0));
        net.connect(sw, src, LinkSpec::new(10, 0));
        net.switch_mut(sw).add_host_route(Ipv4Address::from_host_id(1), Action::Output(0));
        net.run_until(MILLIS);
        assert!(net.host(src).nic_drops > 0);
    }

    #[test]
    fn app_mut_downcast() {
        let mut net = Network::new(0);
        let h = net.add_host(Box::new(NullApp));
        let _: &mut NullApp = net.app_mut::<NullApp>(h);
    }

    #[test]
    fn dropped_frames_are_pooled_for_reuse() {
        // Link faults and switch drops feed buffers back into the pool
        // instead of freeing them.
        let (mut net, _received) = two_hosts_one_switch(1000, 1000, 50);
        net.set_link_faults(NodeId(0), 0, 1.0, 0.0);
        net.run_until(100 * MILLIS);
        assert!(net.stats.frames_dropped_in_flight > 0);
        assert!(!net.pool().is_empty(), "dropped frames must land in the pool");
        assert_eq!(net.stats.pool_retained, net.pool().len() as u64, "occupancy is exposed");
        let before = net.pool().recycled;
        let buf = net.pool_mut().get();
        assert!(buf.is_empty() && buf.capacity() > 0, "recycled buffer keeps its capacity");
        assert_eq!(net.pool().recycled, before + 1);
    }

    #[test]
    fn pool_high_water_caps_and_shrinks() {
        let mut pool = FramePool::default();
        pool.set_high_water(4);
        for _ in 0..10 {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.len(), 4, "puts beyond the high-water mark free normally");
        pool.shrink_to(1);
        assert_eq!(pool.len(), 1);
        // Raising the mark allows growth again.
        pool.set_high_water(8);
        for _ in 0..10 {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.len(), 8);
        // Lowering it shrinks immediately.
        pool.set_high_water(2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn switch_drops_reclaimed_into_pool() {
        // No-route drops at the switch are reclaimed via take_retired().
        let mut net = Network::new(3);
        let received = Arc::new(Mutex::new(Vec::new()));
        let sw = net.add_switch(SwitchConfig::new(1, 2));
        let _sink = net.add_host(Box::new(NullApp));
        let src = net.add_host(Box::new(Blaster {
            dst_ip: Ipv4Address::from_host_id(99), // unrouted destination
            dst_mac: EthernetAddress::from_node_id(99),
            count: 10,
            received: received.clone(),
        }));
        net.connect(sw, _sink, LinkSpec::new(1000, 0));
        net.connect(sw, src, LinkSpec::new(1000, 0));
        net.run_until(10 * MILLIS);
        assert!(!net.pool().is_empty(), "no-route drops must be reclaimed");
    }

    #[test]
    fn host_ctx_take_buf_recycles() {
        struct Recycler {
            took_capacity: Arc<Mutex<usize>>,
        }
        impl HostApp for Recycler {
            fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Vec<u8>) {
                // Consume the frame, hand the buffer back, then take it
                // again for the next send.
                ctx.recycle(frame);
                let buf = ctx.take_buf();
                *self.took_capacity.lock().unwrap() = buf.capacity();
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut net, _received) = two_hosts_one_switch(1000, 1000, 1);
        let cap = Arc::new(Mutex::new(0usize));
        net.set_app(NodeId(1), Box::new(Recycler { took_capacity: cap.clone() }));
        net.run_until(10 * MILLIS);
        assert!(*cap.lock().unwrap() > 0, "take_buf must return the recycled frame's storage");
    }

    #[test]
    fn host_added_mid_run_still_starts() {
        struct Starter {
            started: Arc<Mutex<bool>>,
        }
        impl HostApp for Starter {
            fn start(&mut self, _ctx: &mut HostCtx<'_>) {
                *self.started.lock().unwrap() = true;
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(0);
        let _h0 = net.add_host(Box::new(NullApp));
        net.run_until(MILLIS);
        let started = Arc::new(Mutex::new(false));
        let _h1 = net.add_host(Box::new(Starter { started: started.clone() }));
        net.run_until(2 * MILLIS);
        assert!(*started.lock().unwrap(), "late-added host must still get start()");
    }

    #[test]
    fn split_diverts_cross_shard_frames_into_outbox() {
        // Switch in shard 0, hosts in shard 1: every host transmission must
        // come out of shard 1's outbox as a RemoteFrame for the switch.
        let (net, _received) = two_hosts_one_switch(1000, 1000, 5);
        let shards = net.split(&[0, 1, 1], 2);
        let mut host_shard = shards.into_iter().nth(1).unwrap();
        assert!(!host_shard.is_local(NodeId(0)));
        assert!(host_shard.is_local(NodeId(2)));
        host_shard.run_until(MILLIS);
        let out = host_shard.take_outbox();
        assert_eq!(out.len(), 5, "all blaster frames head for the remote switch");
        assert!(out.iter().all(|f| f.node == NodeId(0)), "destined to the switch");
        // Per-link sequence numbers give a total order on the one link.
        let seqs: Vec<u64> = out.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn split_propagates_pool_high_water() {
        let (mut net, _received) = two_hosts_one_switch(1000, 1000, 1);
        net.set_pool_high_water(7);
        let shards = net.split(&[0, 1, 1], 2);
        assert!(shards.iter().all(|s| s.pool().high_water() == 7));
    }

    #[test]
    fn inject_remote_delivers_like_a_local_send() {
        // Hand-route the RemoteFrames from the host shard into the switch
        // shard and watch the switch forward them back out (into its own
        // outbox, since the destination host is remote there).
        let (net, _received) = two_hosts_one_switch(1000, 1000, 3);
        let mut shards = net.split(&[0, 1, 1], 2);
        shards[1].run_until(MILLIS);
        let frames = shards[1].take_outbox();
        assert_eq!(frames.len(), 3);
        for f in frames {
            shards[0].inject_remote(f);
        }
        shards[0].run_until(2 * MILLIS);
        let forwarded = shards[0].take_outbox();
        assert_eq!(forwarded.len(), 3, "switch forwarded every frame toward remote h1");
        assert!(forwarded.iter().all(|f| f.node == NodeId(1)));
    }
}
