//! # tpp-netsim — deterministic discrete-event network simulator
//!
//! The substrate on which the paper's experiments run (substituting for the
//! authors' Mininet/Open vSwitch testbed — see DESIGN.md §2), organized as
//! three explicit layers under a thin coordinator:
//!
//! * [`engine`] — the scheduler layer: a deterministic hierarchical
//!   timing-wheel event queue with same-timestamp batch draining.
//! * [`link`] — the link layer: full-duplex rate/delay links, per-link
//!   fault injection (drops, corruption), transmit sequencing, and
//!   in-flight frame batches.
//! * [`nodes`] — the node layer: switches (from `tpp-switch`), hosts with
//!   pluggable applications, and the frame-buffer pool.
//! * [`net`] — the coordinator gluing the layers into the batched event
//!   loop (and the shard kernel of `tpp-fabric`).
//! * [`scenario`] — declarative topology construction: a [`TopologySpec`]
//!   (star, dumbbell, line, leaf-spine, fat-trees plain/oversubscribed/
//!   asymmetric, jellyfish, edge-list import) built by [`TopologyBuilder`],
//!   plus [`ChurnSpec`] compiling timed or seeded-random churn into a
//!   reconfiguration plan.
//! * [`topology`] — the [`Topology`] type plus BFS shortest-path route
//!   installation with ECMP groups on ties.
//! * [`reconfig`] — runtime reconfiguration: scheduled route/link changes
//!   ([`ReconfigAction`]) and the dependency-ordered update scheduler
//!   ([`order_route_updates`]).
//!
//! Every packet is a real Ethernet frame; switches execute TPPs on real
//! bytes at every hop.

#![forbid(unsafe_code)]

pub mod engine;
pub mod link;
pub mod net;
pub mod nodes;
pub mod reconfig;
pub mod scenario;
pub mod topology;

pub use engine::{Scheduler, Time, MILLIS, SECONDS};
pub use link::LinkFabric;
pub use net::{
    FramePool, Host, HostApp, HostCtx, LinkSpec, NetStats, Network, NodeId, NullApp, RemoteFrame,
    ViolationKind,
};
pub use nodes::NodeStore;
pub use reconfig::{
    order_route_updates, plan_route_updates, ReconfigAction, ReconfigPlan, RouteUpdate,
};
pub use scenario::{viewer_fanout, ChurnSpec, TopologyBuilder, TopologySpec};
pub use topology::Topology;
