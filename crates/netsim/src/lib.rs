//! # tpp-netsim — deterministic discrete-event network simulator
//!
//! The substrate on which the paper's experiments run (substituting for the
//! authors' Mininet/Open vSwitch testbed — see DESIGN.md §2):
//!
//! * [`engine`] — a deterministic event queue (time + sequence ordering).
//! * [`net`] — switches (from `tpp-switch`), hosts with pluggable
//!   applications, full-duplex rate/delay links, per-link fault injection
//!   (drops, corruption), and the event loop.
//! * [`topology`] — builders (star, dumbbell, line, leaf-spine, fat-tree)
//!   with BFS shortest-path route installation and ECMP groups on ties.
//!
//! Every packet is a real Ethernet frame; switches execute TPPs on real
//! bytes at every hop.

pub mod engine;
pub mod net;
pub mod topology;

pub use engine::{Time, MILLIS, SECONDS};
pub use net::{
    FramePool, Host, HostApp, HostCtx, LinkSpec, NetStats, Network, NodeId, NullApp, RemoteFrame,
};
pub use topology::Topology;
